"""Benchmark — execs/coverage-over-time series (the standard fuzzing
evaluation line plot, ClosureX vs AFL++ forkserver on one target)."""

import pytest

from conftest import save_result
from repro.experiments import run_timeline


@pytest.fixture(scope="module")
def timeline(config):
    return run_timeline("gpmf-parser", config)


def test_timeline_regenerates(benchmark, config, results_dir):
    figure = benchmark.pedantic(
        run_timeline, args=("gpmf-parser", config), rounds=1, iterations=1
    )
    save_result(results_dir, "fig_timeline", figure.render())


def test_both_series_present(timeline):
    assert {s.mechanism for s in timeline.series} == {"closurex", "forkserver"}


def test_execs_monotonic(timeline):
    for series in timeline.series:
        execs = [point[1] for point in series.points]
        assert execs == sorted(execs)


def test_closurex_executes_more_by_the_end(timeline):
    finals = {s.mechanism: s.points[-1][1] for s in timeline.series if s.points}
    assert finals["closurex"] > finals["forkserver"]
