"""Benchmark E5 — the execution-mechanism spectrum (paper §2, Figs 1-2).

Per-test-case cost of fresh / forkserver / naive-persistent / ClosureX
on one target, split into target execution vs process management.
The defining shape: fresh >> forkserver >> ClosureX ~ persistent, with
process management dominating fresh (>80%) and almost absent from
ClosureX (<20%).
"""

import pytest

from conftest import save_result
from repro.experiments import run_spectrum


@pytest.fixture(scope="module")
def spectrum():
    return run_spectrum("giftext", iterations=30)


def test_spectrum_regenerates(benchmark, results_dir):
    result = benchmark.pedantic(
        run_spectrum, kwargs={"target": "giftext", "iterations": 30},
        rounds=1, iterations=1,
    )
    save_result(results_dir, "fig_mechanism_spectrum", result.render())


def test_ordering(spectrum):
    assert spectrum.ordering_correct(), spectrum.render()


def test_management_shares(spectrum):
    shares = {p.mechanism: p.management_share for p in spectrum.points}
    assert shares["fresh"] > 0.8
    assert shares["forkserver"] > 0.4
    assert shares["closurex"] < 0.2
    assert shares["persistent"] < 0.2


def test_closurex_near_persistent_speed(spectrum):
    by_name = {p.mechanism: p.ns_per_exec for p in spectrum.points}
    # "near-persistent performance": within 2x of the incorrect loop
    assert by_name["closurex"] < 2.0 * by_name["persistent"]
