"""Sentinel cost/benefit: digest cadence vs detection latency.

The integrity sentinel charges every digest, repair, and shadow replay
to the virtual clock, so its overhead is a measurable slice of campaign
budget — and its cadence (`digest_every`) is a dial trading that
overhead against how long a restore leak survives undetected.  This
benchmark quantifies both sides:

- **overhead** — virtual ns spent on digests over a fixed exec count of
  a real target, per cadence (plus one shadow-differ row, the expensive
  end of the spectrum);
- **detection latency** — execs (and virtual ns) between a persistent
  restore leak appearing and the oracle catching it, per cadence.  A
  persistent leak (here: a wrong static-analysis proof eliding the heap
  sweep every restore) is caught at the first digest check, so latency
  is ``cadence - 1`` execs; a *transient* single-restore sabotage is
  caught only when the digest lands on the sabotaged exec itself.

Tables land in ``benchmarks/results/integrity_overhead.txt`` and
``integrity_detection.txt``.
"""

from repro.analysis.pollution import DIMENSIONS, DimensionFinding, PollutionReport
from repro.chaos import FaultInjector, FaultPlan, FaultSite, FaultSpec
from repro.execution import ClosureXExecutor, SupervisedExecutor
from repro.integrity import EscalationPolicy, IntegritySentinel
from repro.minic import compile_c
from repro.passes import PassManager, closurex_passes
from repro.runtime.harness import HarnessConfig
from repro.sim_os import Kernel
from repro.targets import get_target

from conftest import save_result

CADENCES = (1, 2, 4, 8)
EXECS = 40

#: Leaks one chunk per exec — the persistent-leak workload once a fake
#: "heap is clean" proof turns off the restore sweep.
LEAKY = r"""
int counter;

int main(int argc, char **argv) {
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    char buf[16];
    long n = fread(buf, 1, 16, f);
    if (n < 1) { exit(2); }
    counter++;
    char *scratch = (char*)malloc(32);
    scratch[0] = buf[0];
    fclose(f);
    return counter;
}
"""


def _leaky_module():
    module = compile_c(LEAKY, "bench-leaky")
    PassManager(closurex_passes(11)).run(module)
    return module


def _run_target(spec, policy):
    kernel = Kernel()
    sentinel = IntegritySentinel(policy)
    executor = ClosureXExecutor(
        spec.build_closurex(), spec.image_bytes, kernel, sentinel=sentinel
    )
    executor.boot()
    seeds = [bytes(s) for s in spec.seeds]
    for index in range(EXECS):
        executor.run(seeds[index % len(seeds)])
    executor.shutdown()
    return sentinel.stats, kernel.clock.now_ns


def test_digest_cadence_overhead(results_dir):
    spec = get_target("giftext")
    rows = []
    overheads = {}
    for cadence in CADENCES:
        stats, total_ns = _run_target(
            spec, EscalationPolicy(digest_every=cadence, shadow_every=0)
        )
        overheads[cadence] = stats.overhead_ns
        rows.append((f"digest_every={cadence}", stats.checks,
                     stats.overhead_ns, total_ns))
    stats, total_ns = _run_target(
        spec, EscalationPolicy(digest_every=8, shadow_every=8)
    )
    rows.append((f"digest_every=8 + shadow_every=8",
                 stats.checks + stats.shadow_runs,
                 stats.overhead_ns, total_ns))

    lines = [
        f"sentinel overhead — {spec.name}, {EXECS} execs (virtual ns)",
        f"{'configuration':<32} {'checks':>7} {'overhead_ns':>12} "
        f"{'campaign_ns':>12} {'share':>7}",
    ]
    for name, checks, overhead_ns, total_ns in rows:
        lines.append(
            f"{name:<32} {checks:>7} {overhead_ns:>12} {total_ns:>12} "
            f"{overhead_ns / total_ns:>6.2%}"
        )
    save_result(results_dir, "integrity_overhead", "\n".join(lines))

    # Coarser cadence must be strictly cheaper; the whole cost lives on
    # the virtual clock, so it is visible in the campaign total.
    assert overheads[1] > overheads[2] > overheads[4] > overheads[8]
    assert all(stats_overhead > 0 for stats_overhead in overheads.values())


def _persistent_leak_run(cadence):
    """Campaign where every restore leaks (wrong clean-heap proof)."""
    findings = {
        d: DimensionFinding(d, dirty=(d != "heap")) for d in DIMENSIONS
    }
    report = PollutionReport("bench-leaky", "main", findings=findings)
    kernel = Kernel()
    sentinel = IntegritySentinel(
        EscalationPolicy(digest_every=cadence, shadow_every=0)
    )
    executor = SupervisedExecutor(ClosureXExecutor(
        _leaky_module(), 500_000, kernel, sentinel=sentinel,
        config=HarnessConfig(pollution=report),
    ))
    executor.boot()
    leak_born_ns = None
    for index in range(16):
        result = executor.run(bytes([97 + index]) + b"-seed")
        assert result.return_code == 1
        if leak_born_ns is None:
            leak_born_ns = kernel.clock.now_ns  # first exec leaked
    event = sentinel.ledger.events[0]
    executor.shutdown()
    return event, leak_born_ns


def _transient_sabotage_run(cadence):
    """Single-restore sabotage at exec 5: caught only if a digest
    check lands on that exec."""
    kernel = Kernel()
    sentinel = IntegritySentinel(
        EscalationPolicy(digest_every=cadence, shadow_every=0)
    )
    inner = ClosureXExecutor(_leaky_module(), 500_000, kernel,
                             sentinel=sentinel)
    injector = FaultInjector(
        FaultPlan([FaultSpec(FaultSite.SKIP_HEAP_SWEEP, 4)]),
        clock=kernel.clock,
    )
    executor = SupervisedExecutor(inner, injector=injector)
    executor.boot()
    for index in range(16):
        executor.run(bytes([97 + index]) + b"-seed")
    executor.shutdown()
    return sentinel.stats.leaks > 0


def test_detection_latency_vs_cadence(results_dir):
    lines = [
        "detection latency vs digest cadence (persistent + transient leaks)",
        f"{'cadence':>7} {'caught_at_exec':>14} {'latency_execs':>13} "
        f"{'latency_ns':>11} {'transient_caught':>16}",
    ]
    for cadence in CADENCES:
        event, leak_born_ns = _persistent_leak_run(cadence)
        latency_execs = event.exec_index - 1
        latency_ns = event.at_ns - leak_born_ns
        caught = _transient_sabotage_run(cadence)
        lines.append(
            f"{cadence:>7} {event.exec_index:>14} {latency_execs:>13} "
            f"{latency_ns:>11} {('yes' if caught else 'MISSED'):>16}"
        )
        # A persistent leak is caught at the first scheduled check.
        assert event.exec_index == cadence
        # A single-restore sabotage at exec 5 is only caught when the
        # cadence divides 5 — the honest price of coarser checking.
        assert caught == (5 % cadence == 0)
    save_result(results_dir, "integrity_detection", "\n".join(lines))
