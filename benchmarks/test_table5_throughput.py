"""Benchmark E1 — paper Table 5: test-case execution rate.

Regenerates the ClosureX-vs-AFL++ throughput comparison: per-target
test cases per 24 virtual hours, speedup, and Mann-Whitney p-value.

Shape expectations (paper: per-target speedups 2.36-4.79, avg 3.53):
ClosureX must beat the forkserver on every target, with the average in
the same band.
"""

import pytest

from conftest import save_result
from repro.experiments import run_table5


@pytest.fixture(scope="module")
def table5(config):
    return run_table5(config)


def test_table5_regenerates(benchmark, config, results_dir):
    result = benchmark.pedantic(run_table5, args=(config,), rounds=1, iterations=1)
    save_result(results_dir, "table5_throughput", result.render())
    assert len(result.rows) == len(config.targets)


def test_closurex_wins_every_target(table5):
    for row in table5.rows:
        assert row.speedup > 1.3, f"{row.benchmark}: speedup {row.speedup:.2f}"


def test_average_speedup_in_paper_band(table5, config):
    if len(config.targets) < 6 or config.budget_ns < 15_000_000:
        pytest.skip("band claim applies to full-size runs "
                    "(>=6 targets, REPRO_BUDGET_MS>=15)")
    # paper: 3.53x average; we accept the 2.5-5.5 band for scaled runs
    assert 2.5 < table5.average_speedup < 5.5


def test_speedups_statistically_significant_with_enough_trials(table5, config):
    if config.trials < 4:
        pytest.skip("significance needs >= 4 trials (set REPRO_TRIALS=5)")
    significant = [row for row in table5.rows if row.p_value < 0.05]
    assert len(significant) >= len(table5.rows) * 0.8
