"""Benchmark E3 — paper Table 7: time-to-bug.

Shape expectations (paper: ClosureX finds shared bugs ~1.9x faster and
in ~25% more trials; a minority of rows may favour AFL++): on the four
bug-bearing targets, ClosureX's aggregate discovery speed and finding
count must be at least on par, and the planted bug types must match the
paper's rows.
"""

import pytest

from conftest import save_result
from repro.experiments import BUG_TARGETS, ExperimentConfig, run_table7


@pytest.fixture(scope="module")
def table7_config(config):
    # time-to-bug needs longer campaigns than throughput measurement
    return ExperimentConfig(
        budget_ns=max(config.budget_ns * 3, 50_000_000),
        trials=config.trials,
        targets=[t for t in config.targets if t in BUG_TARGETS] or list(BUG_TARGETS),
    )


@pytest.fixture(scope="module")
def table7(table7_config):
    return run_table7(table7_config)


def test_table7_regenerates(benchmark, table7_config, results_dir):
    result = benchmark.pedantic(
        run_table7, args=(table7_config,), rounds=1, iterations=1
    )
    save_result(results_dir, "table7_time_to_bug", result.render())
    assert result.rows


def test_bug_types_match_paper_rows(table7):
    labels = {(row.benchmark, row.bug_type) for row in table7.rows}
    expected_types = {
        "c-blosc2": {"Null Ptr Deref."},
        "gpmf-parser": {"Division by Zero", "Unaddressable Access",
                        "Invalid Write", "Invalid Read"},
        "libbpf": {"Null Ptr Deref."},
        "md4c": {"Memcpy with negative size", "Array out of bounds access"},
    }
    for benchmark_name, types in expected_types.items():
        present = {t for b, t in labels if b == benchmark_name}
        if present:  # target included in this run
            assert present <= types

def test_closurex_finds_bugs(table7):
    found = [row for row in table7.rows if row.closurex_times]
    assert found, "ClosureX found no bugs at this budget"


def test_closurex_finds_at_least_as_many_trials(table7):
    closurex_count, aflpp_count = table7.finding_counts()
    assert closurex_count >= aflpp_count


def test_aggregate_speedup_favours_closurex(table7):
    speedup = table7.aggregate_speedup()
    if speedup is None:
        pytest.skip("no bug found by both mechanisms at this budget")
    assert speedup > 0.8  # parity or better; paper reports ~1.9x
