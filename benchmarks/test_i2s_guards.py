"""I2S guard-cracking benchmark: the issue's acceptance experiment.

Paired campaigns (havoc-only vs I2S-enabled, same seeds, same virtual
budget) must reach a magic-byte / length-field-guarded edge within
half the havoc arm's virtual time on at least three targets.  The
rendered table lands in ``benchmarks/results/i2s_guards.txt``.

The guard-cell methodology (witness minus seeds minus near-miss
decoy, stability-intersected) lives in
:mod:`repro.experiments.i2s_exp`.

A 60ms budget (vs the 20ms benchmark default) keeps censored havoc
arms meaningfully above the I2S arms' actual crack times; override
with ``REPRO_BUDGET_MS`` as usual.
"""

from __future__ import annotations

import dataclasses

from conftest import save_result

from repro.experiments.i2s_exp import GUARD_TARGETS, run_i2s_guards

MIN_TARGETS_MET = 3
BUDGET_NS = 60_000_000


def test_i2s_reaches_guards_in_half_the_time(config, results_dir):
    sized = dataclasses.replace(config, budget_ns=max(config.budget_ns,
                                                      BUDGET_NS))
    result = run_i2s_guards(sized)
    save_result(results_dir, "i2s_guards", result.render())
    assert len(result.rows) == len(GUARD_TARGETS)
    assert result.targets_met >= MIN_TARGETS_MET, result.render()
