"""Benchmark E6 — paper Figures 3-5: the pass transformations at work.

Figure 3: GlobalPass relocates every writable global into
``closure_global_section`` while constants stay put.
Figures 4-5: one iteration's lifecycle — globals dirtied by the test
case, chunks/handles tracked, everything restored.
"""

import pytest

from conftest import save_result
from repro.experiments import run_global_pass_figure, run_restore_lifecycle
from repro.targets import target_names


@pytest.fixture(scope="module")
def global_figures():
    return {name: run_global_pass_figure(name) for name in target_names()}


def test_figures_regenerate(benchmark, results_dir):
    def build():
        lines = [run_global_pass_figure(name).render() for name in target_names()]
        lines += [run_restore_lifecycle(name).render()
                  for name in ("bsdtar", "gpmf-parser", "md4c")]
        return "\n".join(lines)

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    save_result(results_dir, "fig_pass_transforms", text)


def test_every_target_has_relocated_globals(global_figures):
    for name, figure in global_figures.items():
        assert figure.relocated, name
        assert figure.section_bytes > 0, name


def test_constants_never_relocated(global_figures):
    for name, figure in global_figures.items():
        assert not (set(figure.relocated) & set(figure.kept_constant)), name


def test_restore_lifecycle_cleans_up():
    for name in ("bsdtar", "libpcap", "md4c"):
        figure = run_restore_lifecycle(name)
        assert figure.clean_after_restore, name
        assert figure.restored_section_bytes > 0, name


def test_lifecycle_observes_dirty_state():
    figure = run_restore_lifecycle("bsdtar")
    assert figure.dirty_global_bytes > 0
