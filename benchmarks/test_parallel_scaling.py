"""Parallel-campaign scaling: aggregate throughput vs worker count.

Each worker owns a full virtual machine and fuzzes the same virtual
budget window concurrently, so the fleet's aggregate virtual throughput
(total execs over one budget) should scale near-linearly with worker
count, shaved only by sync-import overhead — the whole point of
sharding a campaign.  The experiment sweeps 1/2/4/8 workers on every
benchmark target and renders ``benchmarks/results/parallel_scaling.txt``.

Acceptance floor asserted here: >= 2.5x aggregate virtual exec/s at 4
workers vs 1 worker on at least 8 of the 10 targets.
"""

from __future__ import annotations

from conftest import save_result
from repro.parallel import ParallelCampaign, ParallelConfig

WORKER_COUNTS = (1, 2, 4, 8)
BUDGET_NS = 6_000_000
SYNC_NS = 2_000_000
SEED = 7


def _run(target: str, n_workers: int):
    return ParallelCampaign(ParallelConfig(
        target=target,
        n_workers=n_workers,
        seed=SEED,
        budget_ns=BUDGET_NS,
        sync_every_ns=SYNC_NS,
    )).run()


def test_parallel_scaling(config, results_dir):
    header = (
        f"{'target':<14}"
        + "".join(f"{f'{n}w execs/vs':>14}" for n in WORKER_COUNTS)
        + f"{'4w speedup':>12}{'8w speedup':>12}"
    )
    lines = [
        "Aggregate virtual throughput vs worker count "
        f"(budget {BUDGET_NS / 1e6:g} vms, sync {SYNC_NS / 1e6:g} vms, "
        f"seed {SEED})",
        "",
        header,
        "-" * len(header),
    ]
    speedups_at_4 = {}
    for target in config.targets:
        rates = {}
        for n_workers in WORKER_COUNTS:
            result = _run(target, n_workers)
            rates[n_workers] = result.aggregate_execs_per_vsecond
        speedups_at_4[target] = rates[4] / rates[1]
        lines.append(
            f"{target:<14}"
            + "".join(f"{rates[n]:>14,.0f}" for n in WORKER_COUNTS)
            + f"{rates[4] / rates[1]:>11.2f}x"
            + f"{rates[8] / rates[1]:>11.2f}x"
        )
    passing = sum(1 for s in speedups_at_4.values() if s >= 2.5)
    lines += [
        "-" * len(header),
        f"targets with >= 2.5x aggregate throughput at 4 workers: "
        f"{passing}/{len(speedups_at_4)}",
    ]
    save_result(results_dir, "parallel_scaling", "\n".join(lines))
    assert passing >= min(8, len(speedups_at_4)), speedups_at_4
