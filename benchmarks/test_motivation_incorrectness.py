"""Benchmark E7 — the motivation (paper §1-2): naive persistent fuzzing
is semantically incorrect in exactly three observable ways, and
ClosureX fixes all three while a fresh process defines the ground truth.
"""

import pytest

from conftest import save_result
from repro.experiments import run_motivation


@pytest.fixture(scope="module")
def motivation():
    return run_motivation()


def test_motivation_regenerates(benchmark, results_dir):
    report = benchmark.pedantic(run_motivation, rounds=1, iterations=1)
    save_result(results_dir, "motivation_incorrectness", report.describe())


def test_fresh_process_is_ground_truth(motivation):
    assert motivation.fresh_crash


def test_pathology_missed_crash(motivation):
    assert motivation.persistent_missed_crash


def test_pathology_false_crash(motivation):
    assert motivation.persistent_false_crashes
    assert not motivation.false_crash_reproducible_fresh


def test_pollution_accumulates(motivation):
    assert motivation.persistent_peak_leaked_bytes > 100_000
    assert motivation.persistent_peak_open_fds > 10


def test_closurex_has_none_of_the_pathologies(motivation):
    assert motivation.closurex_crash
    assert motivation.demonstrates_incorrectness
