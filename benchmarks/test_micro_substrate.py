"""Microbenchmarks of the substrate itself (real wall-clock time):
interpreter throughput, harness restore latency, and per-mechanism
dispatch overhead.  These are pytest-benchmark timings of the Python
implementation, complementing the virtual-time experiments.
"""

import pytest

from repro.minic import compile_c
from repro.passes import PassManager, closurex_passes
from repro.runtime import ClosureXHarness
from repro.sim_os import Kernel
from repro.targets import get_target
from repro.vm import VM

HOT_LOOP = """
int main(int argc, char **argv) {
    long s = 0;
    for (int i = 0; i < 500; i++) { s += i * 3; }
    return (int)(s & 0xff);
}
"""


def test_interpreter_throughput(benchmark):
    module = compile_c(HOT_LOOP, "hot")

    def run():
        vm = VM(module)
        vm.load()
        argc, argv = vm.setup_argv(["hot"])
        vm.run_function(module.get_function("main"), [argc, argv])
        return vm.instructions_executed

    instructions = benchmark(run)
    assert instructions > 3000


def test_minic_compile_latency(benchmark):
    spec = get_target("gpmf-parser")
    module = benchmark(lambda: compile_c(spec.source, "bench"))
    assert module.instruction_count() > 100


def test_closurex_pipeline_latency(benchmark):
    spec = get_target("giftext")

    def build():
        module = compile_c(spec.source, "bench")
        PassManager(closurex_passes(1)).run(module)
        return module

    module = benchmark(build)
    assert module.has_function("target_main")


def test_harness_iteration_latency(benchmark):
    spec = get_target("giftext")
    module = spec.build_closurex()
    harness = ClosureXHarness(module)
    harness.boot()
    seed = spec.seeds[0]

    result = benchmark(lambda: harness.run_test_case(seed))
    assert result.status.survivable


def test_restore_latency(benchmark):
    spec = get_target("bsdtar")
    module = spec.build_closurex()
    harness = ClosureXHarness(module)
    harness.boot()

    def dirty_and_restore():
        harness.run_test_case(spec.seeds[2], restore=False)
        return harness.restore_state()

    report = benchmark(dirty_and_restore)
    assert report.section_bytes > 0


def test_fork_dispatch_overhead(benchmark):
    from repro.execution import ForkServerExecutor

    spec = get_target("giftext")
    executor = ForkServerExecutor(spec.build_baseline(), spec.image_bytes,
                                  Kernel())
    executor.boot()
    seed = spec.seeds[0]
    result = benchmark(lambda: executor.run(seed))
    assert not result.is_crash
