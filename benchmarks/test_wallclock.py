"""Wall-clock throughput sanity bench (real seconds, not virtual ns).

A pytest-shaped shim over :mod:`tools.bench`: runs the same
measurement at small scale and pins the schema so the
``BENCH_wallclock.json`` artifact written by ``python tools/bench.py``
can't silently drift.  Throughput numbers themselves are machine-
dependent and only sanity-checked (positive, persistent-family faster
per-exec than fresh-process in virtual time).
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

_BENCH_PY = pathlib.Path(__file__).parent.parent / "tools" / "bench.py"
_spec = importlib.util.spec_from_file_location("repro_bench", _BENCH_PY)
bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench)

CELL_KEYS = {
    "target", "mechanism", "optimized", "i2s", "execs", "wall_s",
    "execs_per_s", "virtual_ns_per_exec", "instructions_per_exec",
}


@pytest.fixture(scope="module")
def small_report():
    return bench.run_bench(
        targets=["giftext"],
        mechanisms=["closurex", "fresh"],
        execs=30,
    )


def test_report_schema(small_report):
    assert small_report["schema"] == "repro-bench-wallclock/3"
    assert set(small_report["host"]) == {
        "python", "implementation", "machine", "system",
    }
    assert small_report["execs_per_cell"] == 30
    # closurex + fresh baselines, plus the automatic optimized-closurex
    # and armed-observer (i2s) closurex cells run_bench adds whenever
    # closurex is measured.
    assert len(small_report["cells"]) == 4
    for cell in small_report["cells"]:
        assert set(cell) == CELL_KEYS


def test_throughput_is_positive_and_timed(small_report):
    for cell in small_report["cells"]:
        assert cell["execs"] == 30
        assert cell["wall_s"] > 0
        assert cell["execs_per_s"] > 0
        assert cell["virtual_ns_per_exec"] > 0
        assert cell["instructions_per_exec"] > 0


def _by_variant(report):
    return {
        (c["mechanism"], c["optimized"], c["i2s"]): c
        for c in report["cells"]
    }


def test_closurex_cheaper_than_fresh_in_virtual_time(small_report):
    cells = _by_variant(small_report)
    assert (
        cells[("closurex", False, False)]["virtual_ns_per_exec"]
        < cells[("fresh", False, False)]["virtual_ns_per_exec"]
    )


def test_optimized_closurex_executes_fewer_instructions(small_report):
    cells = _by_variant(small_report)
    assert (
        cells[("closurex", True, False)]["instructions_per_exec"]
        < cells[("closurex", False, False)]["instructions_per_exec"]
    )


def test_i2s_observation_does_not_change_virtual_cost(small_report):
    """Arming the compare observer is a host-side tap: it may cost
    real seconds but must not perturb the simulated execution."""
    cells = _by_variant(small_report)
    baseline = cells[("closurex", False, False)]
    armed = cells[("closurex", False, True)]
    assert armed["instructions_per_exec"] == \
        baseline["instructions_per_exec"]
    assert armed["virtual_ns_per_exec"] == baseline["virtual_ns_per_exec"]


def test_report_is_json_serialisable(small_report):
    text = json.dumps(small_report, sort_keys=True)
    assert json.loads(text) == small_report


def test_checked_in_artifact_matches_schema():
    """The committed BENCH_wallclock.json must stay schema-valid."""
    path = pathlib.Path(__file__).parent.parent / "BENCH_wallclock.json"
    if not path.exists():
        pytest.skip("BENCH_wallclock.json not generated yet")
    report = json.loads(path.read_text())
    assert report["schema"] == "repro-bench-wallclock/3"
    assert report["cells"], "artifact has no measurement cells"
    optimized_cells = 0
    i2s_cells = 0
    for cell in report["cells"]:
        assert set(cell) == CELL_KEYS
        assert cell["execs_per_s"] > 0
        optimized_cells += cell["optimized"]
        i2s_cells += cell["i2s"]
    assert optimized_cells, "artifact carries no optimized cells"
    assert i2s_cells, "artifact carries no i2s (armed observer) cells"
