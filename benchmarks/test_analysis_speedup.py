"""Analysis-guided instrumentation: deterministic virtual-time speedup.

Runs the same seed corpus through two persistent harnesses for the one
built-in target the pollution classifier proves heap-clean (md4c):

- **full** — the blind five-pass ClosureX build, and
- **analyzed** — the pollution-aware build (HeapPass elided, restricted
  GlobalPass) with the report handed to the harness so the heap sweep
  is skipped at restore time.

The comparison is in *virtual* nanoseconds, so the result is exact and
repeatable — no wall-clock noise — while the behaviour (status, return
code, coverage map) is asserted identical: the throughput win costs no
correctness.  A companion wall-clock microbenchmark times the analysis
itself to show it is a negligible one-time build cost.
"""

from __future__ import annotations

from repro.analysis import PollutionAnalyzer
from repro.runtime import ClosureXHarness
from repro.runtime.harness import HarnessConfig
from repro.targets import get_target

ITERATIONS = 40


def _drive(harness, seeds, iterations=ITERATIONS):
    """Run *iterations* test cases; returns (virtual_ns, outcomes)."""
    start = harness.vm.cost
    outcomes = []
    for i in range(iterations):
        result = harness.run_test_case(seeds[i % len(seeds)])
        outcomes.append(
            (result.status, result.return_code, bytes(harness.vm.coverage_map))
        )
    return harness.vm.cost - start, outcomes


def test_analyzed_build_beats_full_instrumentation(results_dir):
    from conftest import save_result

    spec = get_target("md4c")

    full_module = spec.build_closurex()
    full = ClosureXHarness(full_module)
    full.boot()
    full_ns, full_outcomes = _drive(full, spec.seeds)

    analyzed_module, report = spec.build_analyzed()
    analyzed = ClosureXHarness(
        analyzed_module, config=HarnessConfig(pollution=report)
    )
    analyzed.boot()
    analyzed_ns, analyzed_outcomes = _drive(analyzed, spec.seeds)

    # Correctness first: per-iteration behaviour is indistinguishable.
    assert analyzed_outcomes == full_outcomes

    # Then the win: strictly less virtual time for the same work.
    assert analyzed_ns < full_ns
    saved_per_iter = (full_ns - analyzed_ns) / ITERATIONS
    speedup = full_ns / analyzed_ns
    save_result(
        results_dir, "analysis_speedup",
        f"target=md4c iterations={ITERATIONS}\n"
        f"clean dimensions: {', '.join(report.clean_dimensions())}\n"
        f"passes elided:    {', '.join(sorted(report.skip_passes()))}\n"
        f"full build:      {full_ns:>10d} virtual ns\n"
        f"analyzed build:  {analyzed_ns:>10d} virtual ns\n"
        f"saved/iteration: {saved_per_iter:>10.1f} virtual ns\n"
        f"speedup:         {speedup:>10.4f}x",
    )


def test_pollution_analysis_latency(benchmark):
    """The analysis is a one-time build cost, not a loop cost."""
    spec = get_target("md4c")
    module = spec.compile()
    report = benchmark(lambda: PollutionAnalyzer(module).run())
    assert report.is_clean("heap")
