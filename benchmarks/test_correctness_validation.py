"""Benchmark E4 — paper §6.1.4: semantic-correctness validation.

The paper's headline correctness claim: for every queue input, ClosureX
execution after heavy state pollution is dataflow- and
control-flow-equivalent to a fresh process (with natural
non-determinism masked), and a Valgrind-style memcheck stays clean.
"""

import pytest

from conftest import save_result
from repro.experiments import ExperimentConfig, run_correctness


@pytest.fixture(scope="module")
def correctness_config(config):
    return ExperimentConfig(
        budget_ns=min(config.budget_ns, 10_000_000),
        trials=1,
        targets=config.targets,
    )


@pytest.fixture(scope="module")
def correctness(correctness_config):
    return run_correctness(correctness_config, sample_size=4,
                           pollution_rounds=60)


def test_correctness_regenerates(benchmark, correctness_config, results_dir):
    result = benchmark.pedantic(
        run_correctness,
        args=(correctness_config,),
        kwargs={"sample_size": 4, "pollution_rounds": 60},
        rounds=1, iterations=1,
    )
    save_result(results_dir, "correctness_validation", result.render())
    assert result.rows


def test_zero_dataflow_divergence(correctness):
    for row in correctness.rows:
        assert row.dataflow_diverged == 0, row.benchmark


def test_zero_controlflow_divergence(correctness):
    for row in correctness.rows:
        assert row.controlflow_diverged == 0, row.benchmark


def test_memcheck_clean_everywhere(correctness):
    for row in correctness.rows:
        assert row.memcheck_clean, row.benchmark


def test_all_targets_fully_correct(correctness):
    assert correctness.all_correct
