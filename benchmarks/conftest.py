"""Shared fixtures for the paper-reproduction benchmarks.

Sizing comes from the environment (see repro.experiments.config):

    REPRO_BUDGET_MS  virtual ms per campaign   (default 20)
    REPRO_TRIALS     trials per configuration  (default 3)
    REPRO_TARGETS    comma-separated target subset

Campaign results are cached per (target, mechanism, budget, seed), so
Tables 5/6/7 share one set of campaigns within a pytest session.
Rendered tables are written to ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import ExperimentConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return ExperimentConfig()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}")
