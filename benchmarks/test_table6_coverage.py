"""Benchmark E2 — paper Table 6: edge-coverage improvement.

Shape expectations (paper: average +7.8%, improvement positive on most
targets but statistically significant on only a subset): ClosureX's
extra throughput should buy equal-or-better coverage on the large
majority of targets.
"""

import pytest

from conftest import save_result
from repro.experiments import run_table6


@pytest.fixture(scope="module")
def table6(config):
    return run_table6(config)


def test_table6_regenerates(benchmark, config, results_dir):
    result = benchmark.pedantic(run_table6, args=(config,), rounds=1, iterations=1)
    save_result(results_dir, "table6_coverage", result.render())
    assert len(result.rows) == len(config.targets)


def test_coverage_percentages_sane(table6):
    for row in table6.rows:
        assert 0 < row.closurex_coverage <= 100
        assert 0 < row.aflpp_coverage <= 100


def test_closurex_coverage_not_worse_on_most_targets(table6):
    at_least_equal = [r for r in table6.rows if r.improvement >= -2.0]
    assert len(at_least_equal) >= max(1, int(0.7 * len(table6.rows)))


def test_average_improvement_positive(table6):
    assert table6.average_improvement > 0
