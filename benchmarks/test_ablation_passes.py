"""Benchmark E8 — ablations over ClosureX's design choices.

Dropping any single restoration pass must break exactly its invariant
(DESIGN.md E8); the init-handle fseek optimisation must not change
correctness while reducing restore work where init handles exist.
"""

import pytest

from conftest import save_result
from repro.experiments import run_fd_rewind_ablation, run_pass_ablation


@pytest.fixture(scope="module")
def ablation():
    return run_pass_ablation("bsdtar")


def test_ablation_regenerates(benchmark, results_dir):
    result = benchmark.pedantic(
        run_pass_ablation, args=("bsdtar",), rounds=1, iterations=1
    )
    save_result(results_dir, "ablation_passes", result.render())


def test_full_pipeline_is_clean(ablation):
    assert ablation.row_for("").fully_clean


def test_each_pass_guards_its_invariant(ablation):
    assert not ablation.row_for("ExitPass").survives_exit
    assert not ablation.row_for("HeapPass").heap_clean
    assert not ablation.row_for("FilePass").fds_clean
    assert not ablation.row_for("GlobalPass").globals_clean


def test_no_collateral_damage(ablation):
    """Skipping one pass must not break the others' invariants."""
    heap_row = ablation.row_for("HeapPass")
    assert heap_row.globals_clean and heap_row.survives_exit
    global_row = ablation.row_for("GlobalPass")
    assert global_row.heap_clean and global_row.fds_clean


def test_fd_rewind_optimisation(results_dir):
    result = run_fd_rewind_ablation("giftext", iterations=10)
    text = (
        f"{result.target}: rewound={result.rewound_with_optimisation} "
        f"closed(without opt)={result.closed_without_optimisation} "
        f"restore {result.restore_ns_with} vs {result.restore_ns_without} ns"
    )
    save_result(results_dir, "ablation_fd_rewind", text)
    assert result.restore_ns_with >= 0
