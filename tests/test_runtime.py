"""Unit tests for the ClosureX runtime: chunk map, FD tracker, global
snapshot, and the harness loop."""

import pytest

from repro.minic import compile_c
from repro.passes import PassManager, closurex_passes
from repro.runtime import (
    ChunkMap,
    ClosureXHarness,
    FDTracker,
    GlobalSectionSnapshot,
    HarnessConfig,
    IterationStatus,
)
from repro.vm import TrapKind

TARGET_SOURCE = r"""
int counter;
int mode;
char name[16];

int main(int argc, char **argv) {
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    char buf[32];
    long n = fread(buf, 1, 32, f);
    counter++;
    if (n < 1) { exit(2); }                 /* leaks f */
    char *keep = (char*)malloc(24);
    keep[0] = buf[0];
    if (buf[0] == 'M') { mode = 5; }
    if (buf[0] == 'X') {
        int *p = NULL;
        *p = 1;
    }
    if (buf[0] == 'R') { return 9; }        /* leaks keep and f */
    fclose(f);
    free(keep);
    return 0;
}
"""


def build_harness(config: HarnessConfig | None = None) -> ClosureXHarness:
    module = compile_c(TARGET_SOURCE, "runtime-test")
    PassManager(closurex_passes(3)).run(module)
    harness = ClosureXHarness(module, config=config)
    harness.boot()
    return harness


class TestChunkMap:
    def test_record_and_remove(self):
        cmap = ChunkMap()
        cmap.record(0x1000, 64)
        assert 0x1000 in cmap
        assert cmap.remove(0x1000)
        assert not cmap.remove(0x1000)
        assert cmap.total_freed_by_target == 1

    def test_null_not_recorded(self):
        cmap = ChunkMap()
        cmap.record(0, 64)
        assert len(cmap) == 0

    def test_sweep_skips_init_chunks(self):
        cmap = ChunkMap()
        cmap.record(0x1000, 8, init=True)
        cmap.record(0x2000, 16)
        swept = cmap.sweep()
        assert [c.address for c in swept] == [0x2000]
        assert 0x1000 in cmap
        assert cmap.total_swept == 1

    def test_mark_all_init(self):
        cmap = ChunkMap()
        cmap.record(0x1000, 8)
        assert cmap.mark_all_init() == 1
        assert cmap.leaked() == []
        assert cmap.live_count(include_init=False) == 0


class TestFDTracker:
    def test_sweep_separates_init_handles(self):
        tracker = FDTracker()
        tracker.record(10, "/init", init=True)
        tracker.record(20, "/leaked")
        to_close, to_rewind = tracker.sweep()
        assert [h.handle for h in to_close] == [20]
        assert [h.handle for h in to_rewind] == [10]
        assert tracker.open_count() == 1  # init handle kept

    def test_remove(self):
        tracker = FDTracker()
        tracker.record(10, "/a")
        assert tracker.remove(10)
        assert not tracker.remove(10)


class TestHarnessLifecycle:
    def test_boot_snapshots_global_section(self):
        harness = build_harness()
        assert harness.snapshot is not None
        assert harness.snapshot.size > 0
        assert len(harness.snapshot.buffer) == harness.snapshot.size

    def test_normal_return(self):
        harness = build_harness()
        result = harness.run_test_case(b"hello")
        assert result.status is IterationStatus.OK
        assert result.return_code == 0
        assert result.restore is not None

    def test_exit_longjmps_back(self):
        harness = build_harness()
        result = harness.run_test_case(b"")
        assert result.status is IterationStatus.EXIT
        assert result.return_code == 2
        # the loop survives:
        again = harness.run_test_case(b"hello")
        assert again.status is IterationStatus.OK

    def test_crash_reported(self):
        harness = build_harness()
        result = harness.run_test_case(b"X boom")
        assert result.status is IterationStatus.CRASH
        assert result.trap is not None
        assert result.trap.kind is TrapKind.NULL_DEREF
        assert not result.status.survivable

    def test_globals_restored(self):
        harness = build_harness()
        vm = harness.vm
        mode_addr = vm.global_addr("mode")
        harness.run_test_case(b"M set mode")
        assert vm.memory.read_int(mode_addr, 4, vm.site) == 0  # restored

    def test_leaked_chunks_swept(self):
        harness = build_harness()
        result = harness.run_test_case(b"R leak")
        assert result.status is IterationStatus.OK
        assert result.return_code == 9
        assert result.restore.leaked_chunks == 1
        assert result.restore.leaked_bytes == 24
        assert result.restore.closed_fds == 1
        assert harness.vm.heap.live_chunk_count() == 0
        assert harness.vm.fd_table.open_handle_count() == 0

    def test_exit_path_leaks_fd_and_is_swept(self):
        harness = build_harness()
        result = harness.run_test_case(b"")
        assert result.restore.closed_fds == 1

    def test_many_iterations_stay_clean(self):
        harness = build_harness()
        inputs = [b"hello", b"", b"R leak", b"M mode", b"normal"] * 20
        for data in inputs:
            harness.run_test_case(data)
        vm = harness.vm
        assert vm.heap.live_chunk_count() == 0
        assert vm.fd_table.open_handle_count() == 0
        assert harness.iterations == 100

    def test_restore_cost_charged(self):
        harness = build_harness()
        result = harness.run_test_case(b"R leak")
        assert result.restore.restore_ns > 0
        assert result.exec_ns > result.restore.restore_ns

    def test_identical_inputs_same_instruction_count(self):
        """Determinism: the restored process replays identically."""
        harness = build_harness()
        first = harness.run_test_case(b"hello world")
        for _ in range(5):
            harness.run_test_case(b"R different stuff")
        second = harness.run_test_case(b"hello world")
        assert first.instructions == second.instructions

    def test_unbooted_harness_rejects_run(self):
        module = compile_c(TARGET_SOURCE, "runtime-test")
        PassManager(closurex_passes(3)).run(module)
        harness = ClosureXHarness(module)
        with pytest.raises(RuntimeError):
            harness.run_test_case(b"x")

    def test_uninstrumented_module_rejected(self):
        module = compile_c(TARGET_SOURCE, "runtime-test")
        with pytest.raises(ValueError, match="target_main"):
            ClosureXHarness(module)


class TestGlobalSectionSnapshot:
    def test_dirty_offsets_and_restore(self):
        harness = build_harness()
        snapshot = harness.snapshot
        harness.run_test_case(b"M dirty", restore=False)
        assert snapshot.dirty_offsets()
        copied = snapshot.restore()
        assert copied == snapshot.size
        assert snapshot.dirty_offsets() == []

    def test_restore_before_capture_rejected(self):
        harness = build_harness()
        fresh = GlobalSectionSnapshot(harness.vm, "closure_global_section")
        with pytest.raises(RuntimeError):
            fresh.restore()


class TestDeferredInit:
    SOURCE = r"""
    int table[8];
    int initialized;

    void build_tables() {
        for (int i = 0; i < 8; i++) { table[i] = i * i; }
        initialized = 1;
    }

    int main(int argc, char **argv) {
        if (!initialized) { build_tables(); }
        return table[3];
    }
    """

    def _harness(self, deferred):
        module = compile_c(self.SOURCE, "deferred-test")
        PassManager(closurex_passes(3)).run(module)
        config = HarnessConfig(
            deferred_init_functions=("build_tables",) if deferred else ()
        )
        harness = ClosureXHarness(module, config=config)
        harness.boot()
        return harness

    def test_deferred_init_runs_once_and_is_preserved(self):
        harness = self._harness(deferred=True)
        first = harness.run_test_case(b"x")
        assert first.return_code == 9
        # init ran before the snapshot, so 'initialized' stays set and
        # the in-loop init is skipped on every iteration:
        second = harness.run_test_case(b"x")
        assert second.return_code == 9
        assert second.instructions < first.instructions or (
            second.instructions == first.instructions
        )

    def test_without_deferral_init_reruns_every_iteration(self):
        deferred = self._harness(deferred=True)
        plain = self._harness(deferred=False)
        deferred_result = deferred.run_test_case(b"x")
        plain_result = plain.run_test_case(b"x")
        assert plain_result.instructions > deferred_result.instructions
