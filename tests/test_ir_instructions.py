"""Unit tests for instruction construction and typing rules."""

import pytest

from repro.ir import (
    Alloca,
    ArrayType,
    BinOp,
    Call,
    Cast,
    CondBr,
    FunctionType,
    GetElementPtr,
    I1,
    I8,
    I32,
    I64,
    ICmp,
    IRBuilder,
    Load,
    Module,
    Phi,
    Ret,
    Select,
    Store,
    StructType,
    Switch,
    VOID,
    const_i32,
    const_i64,
    null_ptr,
    pointer_type,
)


def _func(ret=I32, params=(I32,)):
    module = Module("m")
    func = module.add_function("f", FunctionType(ret, list(params)))
    func.ensure_args()
    return module, func


class TestBinOpAndICmp:
    def test_binop_requires_matching_int_types(self):
        with pytest.raises(TypeError):
            BinOp("add", const_i32(1), const_i64(1))

    def test_binop_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            BinOp("frobnicate", const_i32(1), const_i32(2))

    def test_binop_result_type(self):
        assert BinOp("mul", const_i64(2), const_i64(3)).type == I64

    def test_icmp_produces_i1(self):
        assert ICmp("eq", const_i32(1), const_i32(2)).type == I1

    def test_icmp_allows_pointers(self):
        inst = ICmp("eq", null_ptr(I8), null_ptr(I8))
        assert inst.type == I1

    def test_icmp_rejects_unknown_predicate(self):
        with pytest.raises(ValueError):
            ICmp("lt?", const_i32(1), const_i32(2))


class TestMemoryInstructions:
    def test_alloca_size_and_type(self):
        inst = Alloca(I64, count=4)
        assert inst.allocation_size() == 32
        assert inst.type == pointer_type(I64)

    def test_load_requires_pointer(self):
        with pytest.raises(TypeError):
            Load(const_i32(0))

    def test_load_result_is_pointee(self):
        slot = Alloca(I32)
        assert Load(slot).type == I32

    def test_store_type_check(self):
        slot = Alloca(I32)
        Store(const_i32(1), slot)  # ok
        with pytest.raises(TypeError):
            Store(const_i64(1), slot)

    def test_store_is_void(self):
        assert Store(const_i32(1), Alloca(I32)).type.is_void


class TestGEP:
    def test_first_index_keeps_type(self):
        base = Alloca(I32)
        gep = GetElementPtr(base, [const_i64(3)])
        assert gep.type == pointer_type(I32)

    def test_struct_navigation(self):
        struct = StructType("pair", [("a", I32), ("b", I64)])
        base = Alloca(struct)
        gep = GetElementPtr(base, [const_i64(0), const_i32(1)])
        assert gep.type == pointer_type(I64)

    def test_array_navigation(self):
        base = Alloca(ArrayType(I8, 16))
        gep = GetElementPtr(base, [const_i64(0), const_i64(5)])
        assert gep.type == pointer_type(I8)

    def test_struct_index_must_be_constant(self):
        struct = StructType("s", [("a", I32)])
        base = Alloca(struct)
        variable_index = BinOp("add", const_i32(0), const_i32(0))
        with pytest.raises(TypeError):
            GetElementPtr(base, [const_i64(0), variable_index])

    def test_cannot_index_scalar(self):
        base = Alloca(I32)
        with pytest.raises(TypeError):
            GetElementPtr(base, [const_i64(0), const_i32(0)])

    def test_requires_index(self):
        with pytest.raises(ValueError):
            GetElementPtr(Alloca(I32), [])


class TestCalls:
    def test_arg_count_checked(self):
        module, func = _func()
        with pytest.raises(TypeError):
            Call(func, [])

    def test_arg_types_checked(self):
        module, func = _func()
        with pytest.raises(TypeError):
            Call(func, [const_i64(1)])

    def test_result_type(self):
        module, func = _func()
        call = Call(func, [const_i32(1)])
        assert call.type == I32
        assert call.callee is func


class TestCasts:
    def test_trunc_must_narrow(self):
        with pytest.raises(TypeError):
            Cast("trunc", const_i32(1), I64)

    def test_zext_must_widen(self):
        with pytest.raises(TypeError):
            Cast("zext", const_i64(1), I32)

    def test_bitcast_pointers_only(self):
        with pytest.raises(TypeError):
            Cast("bitcast", const_i32(1), I64)

    def test_ptr_int_conversions(self):
        ptr = Alloca(I8)
        as_int = Cast("ptrtoint", ptr, I64)
        assert as_int.type == I64
        back = Cast("inttoptr", as_int, pointer_type(I8))
        assert back.type == pointer_type(I8)


class TestControlFlow:
    def test_condbr_requires_i1(self):
        _module, func = _func()
        b1, b2 = func.append_block(), func.append_block()
        with pytest.raises(TypeError):
            CondBr(const_i32(1), b1, b2)

    def test_switch_successors(self):
        _module, func = _func()
        default, case1 = func.append_block(), func.append_block()
        switch = Switch(const_i32(0), default)
        switch.add_case(1, case1)
        assert switch.successors() == [default, case1]

    def test_ret_terminator(self):
        inst = Ret(const_i32(0))
        assert inst.is_terminator
        assert inst.successors() == []
        assert Ret().value is None

    def test_select_type_checks(self):
        cond = ICmp("eq", const_i32(1), const_i32(1))
        sel = Select(cond, const_i32(1), const_i32(2))
        assert sel.type == I32
        with pytest.raises(TypeError):
            Select(cond, const_i32(1), const_i64(2))
        with pytest.raises(TypeError):
            Select(const_i32(1), const_i32(1), const_i32(2))


class TestPhi:
    def test_incoming_type_checked(self):
        _module, func = _func()
        block = func.append_block()
        phi = Phi(I32)
        with pytest.raises(TypeError):
            phi.add_incoming(const_i64(1), block)

    def test_value_for_block(self):
        _module, func = _func()
        b1, b2 = func.append_block(), func.append_block()
        phi = Phi(I32)
        phi.add_incoming(const_i32(1), b1)
        phi.add_incoming(const_i32(2), b2)
        assert phi.value_for_block(b2).value == 2
        with pytest.raises(KeyError):
            phi.value_for_block(func.append_block())


class TestBlockDiscipline:
    def test_no_instructions_after_terminator(self):
        _module, func = _func(VOID, ())
        block = func.append_block("entry")
        builder = IRBuilder(block)
        builder.ret()
        with pytest.raises(ValueError):
            block.append(Ret())

    def test_erase_from_parent(self):
        _module, func = _func(VOID, ())
        block = func.append_block("entry")
        builder = IRBuilder(block)
        slot = builder.alloca(I32)
        builder.ret()
        slot.erase_from_parent()
        assert len(block) == 1
        with pytest.raises(ValueError):
            slot.erase_from_parent()
