"""Tests for ``repro.store`` — the durable-storage plane.

The headline test is the tentpole's acceptance criterion: a campaign
killed under every disk-fault plan (torn write, ENOSPC, EIO-on-fsync,
lost rename, silent bit flip) recovers to a result digest bit-identical
to the undisturbed run, and ``fsck`` passes over the recovered tree.

The rest of the file covers the layers that make that true: the
hardened primitives (``atomic_write``, CRC framing, append logs), the
content-addressed :class:`CorpusStore` (dedup, refcounts, distillation,
scrub), the consumers refactored onto them (checkpoints, the service
journal, the experiments results store), and the hash-only sync
exchange in ``repro.parallel``.
"""

from __future__ import annotations

import errno
import json
import os
import re
import subprocess
import sys

import pytest

from repro.chaos import (
    FaultInjector,
    FaultPlan,
    FaultSite,
    FaultSpec,
    InjectedFault,
)
from repro.execution import ForkServerExecutor
from repro.experiments.platform.store import ResultsStore
from repro.fuzzing import (
    Campaign,
    CampaignConfig,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.fuzzing.corpus import input_hash
from repro.minic import compile_c
from repro.parallel import (
    ParallelCampaign,
    ParallelConfig,
    RoundReport,
    SyncCandidate,
    SyncHub,
)
from repro.passes import PassManager, baseline_passes
from repro.service.recovery import JobJournal
from repro.sim_os import Kernel
from repro.store import (
    AppendLog,
    CorpusStore,
    DISK_FAULT_SITES,
    FrameError,
    LogCorruption,
    ObjectCorruption,
    atomic_write,
    canonical_line,
    disk_chaos,
    fsck_tree,
    is_temp_artifact,
    load_newest,
    object_digest,
    open_store,
    read_framed,
    write_framed,
)

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

SOURCE = r"""
int main(int argc, char **argv) {
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    char buf[16];
    long n = fread(buf, 1, 16, f);
    if (n < 1) { exit(2); }
    char *scratch = (char*)malloc(16);
    scratch[0] = buf[0];
    if (buf[0] == 'X' && n > 4) {
        int *p = NULL;
        *p = 1;
    }
    fclose(f);
    free(scratch);
    return (int)n;
}
"""

IMAGE = 400_000
SEEDS = [b"hello", b"Xseed"]
BUDGET_NS = 24_000_000

#: CI's store-chaos job sweeps this seed (see .github/workflows/ci.yml).
GOLDEN_SEED = int(os.environ.get("STORE_CHAOS_SEED", "7"))

MAGIC = b"TESTMAG1"


def _module():
    module = compile_c(SOURCE, "store-test")
    PassManager(baseline_passes(11)).run(module)
    return module


def _executor():
    return ForkServerExecutor(_module(), IMAGE, Kernel())


def _campaign(config):
    return Campaign(_executor(), seeds=SEEDS, config=config)


def _arm(site: str, occurrence: int) -> FaultInjector:
    """An injector firing one disk fault at the given poll occurrence."""
    return FaultInjector(FaultPlan([FaultSpec(FaultSite(site), occurrence)]))


def _flip_byte(path: str, offset: int | None = None) -> None:
    data = bytearray(open(path, "rb").read())
    at = len(data) // 2 if offset is None else offset
    data[at] ^= 0x01
    with open(path, "wb") as handle:
        handle.write(bytes(data))


# ---------------------------------------------------------------------------
# atomic_write: the one seam
# ---------------------------------------------------------------------------


class TestAtomicWrite:
    def test_roundtrip_and_rotation(self, tmp_path):
        path = str(tmp_path / "f.bin")
        for generation in (b"one", b"two", b"three"):
            atomic_write(path, generation, keep=2)
        assert open(path, "rb").read() == b"three"
        assert open(path + ".1", "rb").read() == b"two"
        assert not os.path.exists(path + ".2")     # keep=2 drops the oldest
        assert not any(
            is_temp_artifact(name) for name in os.listdir(tmp_path)
        )

    def test_torn_write_models_power_cut(self, tmp_path):
        path = str(tmp_path / "f.bin")
        atomic_write(path, b"old-contents")
        with pytest.raises(InjectedFault):
            atomic_write(path, b"new-contents!", faults=_arm("torn-write", 0))
        # Destination untouched; the torn temp survives like a real crash.
        assert open(path, "rb").read() == b"old-contents"
        torn = [n for n in os.listdir(tmp_path) if is_temp_artifact(n)]
        assert len(torn) == 1
        assert len(open(str(tmp_path / torn[0]), "rb").read()) < len(
            b"new-contents!"
        )

    def test_enospc_is_a_real_errno(self, tmp_path):
        path = str(tmp_path / "f.bin")
        atomic_write(path, b"old")
        with pytest.raises(OSError) as exc:
            atomic_write(path, b"newer", faults=_arm("enospc", 0))
        assert exc.value.errno == errno.ENOSPC
        # A *reported* failure cleans its temp; the destination is intact.
        assert open(path, "rb").read() == b"old"
        assert not any(is_temp_artifact(n) for n in os.listdir(tmp_path))

    def test_eio_on_fsync(self, tmp_path):
        path = str(tmp_path / "f.bin")
        atomic_write(path, b"old")
        with pytest.raises(OSError) as exc:
            atomic_write(path, b"newer", faults=_arm("eio-fsync", 0))
        assert exc.value.errno == errno.EIO
        assert open(path, "rb").read() == b"old"
        assert not any(is_temp_artifact(n) for n in os.listdir(tmp_path))

    def test_lost_rename_leaves_old_file(self, tmp_path):
        path = str(tmp_path / "f.bin")
        atomic_write(path, b"old")
        with pytest.raises(InjectedFault):
            atomic_write(path, b"newer", faults=_arm("lost-rename", 0))
        assert open(path, "rb").read() == b"old"
        # The fully written temp survives (crash inside the rename window).
        torn = [n for n in os.listdir(tmp_path) if is_temp_artifact(n)]
        assert len(torn) == 1
        assert open(str(tmp_path / torn[0]), "rb").read() == b"newer"

    def test_bit_flip_is_silent(self, tmp_path):
        path = str(tmp_path / "f.bin")
        atomic_write(path, b"payload!", faults=_arm("bit-flip", 0))
        rotted = open(path, "rb").read()
        assert rotted != b"payload!"
        assert len(rotted) == len(b"payload!")
        assert sum(
            bin(a ^ b).count("1") for a, b in zip(rotted, b"payload!")
        ) == 1

    def test_global_seam_scopes_with_context_manager(self, tmp_path):
        path = str(tmp_path / "f.bin")
        with disk_chaos(_arm("torn-write", 0)):
            with pytest.raises(InjectedFault):
                atomic_write(path, b"data")
        atomic_write(path, b"data")    # chaos cleared on exit
        assert open(path, "rb").read() == b"data"


# ---------------------------------------------------------------------------
# CRC-framed record files
# ---------------------------------------------------------------------------


class TestFramed:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "f.rec")
        write_framed(path, MAGIC, b"the-body")
        assert read_framed(path, MAGIC) == b"the-body"

    def test_bad_magic_names_offset(self, tmp_path):
        path = str(tmp_path / "f.rec")
        atomic_write(path, b"WRONGMAGplus-some-body")
        with pytest.raises(FrameError, match=r"bad magic at byte offset 0"):
            read_framed(path, MAGIC)

    def test_crc_failure_names_offset_and_both_crcs(self, tmp_path):
        path = str(tmp_path / "f.rec")
        write_framed(path, MAGIC, b"the-body-to-protect")
        _flip_byte(path)
        with pytest.raises(FrameError) as exc:
            read_framed(path, MAGIC)
        message = str(exc.value)
        assert re.search(r"byte offset \d+", message)
        assert re.search(r"expected [0-9a-f]{8}, actual [0-9a-f]{8}", message)

    def test_load_newest_falls_back_a_generation(self, tmp_path):
        path = str(tmp_path / "f.rec")
        write_framed(path, MAGIC, b"gen-old", keep=2)
        write_framed(path, MAGIC, b"gen-new", keep=2)
        _flip_byte(path)
        body, loaded_from = load_newest(path, MAGIC)
        assert body == b"gen-old"
        assert loaded_from == path + ".1"

    def test_load_newest_with_nothing_loadable(self, tmp_path):
        path = str(tmp_path / "f.rec")
        write_framed(path, MAGIC, b"only", keep=1)
        _flip_byte(path)
        with pytest.raises(FrameError, match="no loadable generation"):
            load_newest(path, MAGIC)


# ---------------------------------------------------------------------------
# torn-tail-tolerant append logs
# ---------------------------------------------------------------------------


class TestAppendLog:
    def test_roundtrip_is_canonical(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        log = AppendLog(path)
        log.append({"b": 2, "a": 1})
        log.append({"x": [1, 2]})
        assert log.read() == [{"a": 1, "b": 2}, {"x": [1, 2]}]
        raw = open(path, "rb").read()
        assert raw == b'{"a":1,"b":2}\n{"x":[1,2]}\n'
        assert canonical_line({"b": 2, "a": 1}) == '{"a":1,"b":2}'

    def test_torn_tail_dropped_and_repaired(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        log = AppendLog(path)
        log.append({"n": 1})
        with open(path, "ab") as handle:
            handle.write(b'{"n":2')       # the crash-torn half line
        records, damage = AppendLog(path).scan()
        assert records == [{"n": 1}]
        assert [d.kind for d in damage] == ["torn-tail"]
        assert damage[0].byte_offset == len(b'{"n":1}\n')
        # read() treats the torn tail as expected damage, not an error...
        assert AppendLog(path).read() == [{"n": 1}]
        # ...and the next append truncates it before writing.
        fresh = AppendLog(path)
        fresh.append({"n": 3})
        assert fresh.read() == [{"n": 1}, {"n": 3}]

    def test_mid_stream_corruption_raises_with_offset(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        log = AppendLog(path)
        log.append({"n": 1})
        with open(path, "ab") as handle:
            handle.write(b"!!garbage!!\n")
        log.append({"n": 2})
        with pytest.raises(LogCorruption) as exc:
            AppendLog(path).read()
        offset = len(b'{"n":1}\n')
        assert exc.value.byte_offset == offset
        assert exc.value.line_number == 2
        assert f"byte offset {offset}" in str(exc.value)

    def test_fsync_batching(self, tmp_path):
        log = AppendLog(str(tmp_path / "s.jsonl"), fsync_every=3)
        log.append({"n": 1})
        log.append({"n": 2})
        assert log._pending == 2
        log.append({"n": 3})             # the cadence barrier
        assert log._pending == 0
        log.append({"n": 4})
        log.append({"n": 5}, sync=True)  # the forced barrier
        assert log._pending == 0
        log.append({"n": 6})
        log.sync()
        assert log._pending == 0

    def test_injected_tear_then_resume(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        log = AppendLog(path, faults=_arm("torn-write", 1))
        log.append({"n": 1})
        with pytest.raises(InjectedFault):
            log.append({"n": 2})
        # The failed append left a torn tail; the stream keeps working.
        log.append({"n": 3})
        assert AppendLog(path).read() == [{"n": 1}, {"n": 3}]

    def test_rewrite_replaces_stream(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        log = AppendLog(path)
        for n in range(5):
            log.append({"n": n})
        log.rewrite([{"n": 0}, {"n": 1}])
        assert AppendLog(path).read() == [{"n": 0}, {"n": 1}]


# ---------------------------------------------------------------------------
# consumers: checkpoint errors, the service journal, the results store
# ---------------------------------------------------------------------------


class TestCheckpointDiagnostics:
    def test_crc_failure_reports_offset_and_crcs(self, tmp_path):
        """Satellite: CheckpointError carries the byte offset and the
        expected/actual CRC, not just 'failed'."""
        path = str(tmp_path / "c.ckpt")
        save_checkpoint(_campaign(CampaignConfig(budget_ns=1, seed=1)), path)
        _flip_byte(path)
        with pytest.raises(CheckpointError) as exc:
            load_checkpoint(path)
        message = str(exc.value)
        assert re.search(r"byte offset \d+", message)
        assert re.search(r"expected [0-9a-f]{8}, actual [0-9a-f]{8}", message)
        assert path in message

    def test_rotation_leaves_no_temp_files(self, tmp_path):
        path = str(tmp_path / "c.ckpt")
        campaign = _campaign(CampaignConfig(budget_ns=1, seed=1))
        for _ in range(3):
            save_checkpoint(campaign, path, keep=2)
        assert os.path.exists(path) and os.path.exists(path + ".1")
        assert not any(is_temp_artifact(n) for n in os.listdir(tmp_path))


class TestJobJournal:
    def test_replay_error_names_offset(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = JobJournal(path)
        journal.append({"event": "submitted", "job": "j1"})
        with open(path, "ab") as handle:
            handle.write(b"\x00\xffrot\n")
        journal.append({"event": "started", "job": "j1"})
        with pytest.raises(LogCorruption) as exc:
            JobJournal(path).read()
        assert exc.value.byte_offset > 0
        assert "byte offset" in str(exc.value)
        assert path in str(exc.value)

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = JobJournal(path)
        journal.append({"event": "submitted"})
        with open(path, "ab") as handle:
            handle.write(b'{"event":"sta')
        assert JobJournal(path).read() == [{"event": "submitted"}]


class TestResultsStoreDurability:
    def test_enospc_mid_append_then_space_returns(self, tmp_path):
        """Satellite: the disk filling mid-append leaves the stream
        readable, and appends resume cleanly once space returns."""
        store = ResultsStore(str(tmp_path))
        for n in range(3):
            store.append("t1", {"kind": "progress", "n": n})
        # The injector only sees polls inside the chaos scope, so the
        # next append is its first enospc occurrence: it tears mid-line.
        with disk_chaos(_arm("enospc", 0)):
            with pytest.raises(OSError) as exc:
                store.append("t1", {"kind": "progress", "n": 3})
        assert exc.value.errno == errno.ENOSPC
        # Readable now, from this handle and a cold one: the torn tail
        # is dropped, the acknowledged prefix survives.
        assert [r["n"] for r in store.read("t1")] == [0, 1, 2]
        assert [r["n"] for r in ResultsStore(str(tmp_path)).read("t1")] == [
            0, 1, 2,
        ]
        # Space returns (the chaos scope ended): appends repair the
        # torn tail and continue.
        store.append("t1", {"kind": "progress", "n": 4})
        store.append("t1", {"kind": "final", "n": 5})
        assert [r["n"] for r in ResultsStore(str(tmp_path)).read("t1")] == [
            0, 1, 2, 4, 5,
        ]


# ---------------------------------------------------------------------------
# the content-addressed corpus store
# ---------------------------------------------------------------------------


class TestCorpusStore:
    def test_put_get_roundtrip_addresses_by_content(self, tmp_path):
        store = CorpusStore(str(tmp_path))
        digest = store.put(b"some input")
        assert digest == object_digest(b"some input")
        assert digest == input_hash(b"some input")   # store address == hash
        assert store.get(digest) == b"some input"
        assert store.has(digest)

    def test_dedup_and_refcounts(self, tmp_path):
        store = CorpusStore(str(tmp_path))
        a = store.put(b"shared", owner="tenant-a")
        b = store.put(b"shared", owner="tenant-b")
        assert a == b
        assert len(list(store.objects())) == 1
        assert store.refcount(a) == 2
        assert store.refs("tenant-a") == {a}
        # References persist across handles (they live in ref logs).
        assert CorpusStore(str(tmp_path)).refcount(a) == 2

    def test_retain_release_prune(self, tmp_path):
        store = CorpusStore(str(tmp_path))
        keep = store.put(b"keep", owner="o")
        drop = store.put(b"drop", owner="o")
        assert store.retain("o", {keep}) == 1
        assert store.refs("o") == {keep}
        assert CorpusStore(str(tmp_path)).refs("o") == {keep}
        removed = store.prune()
        assert drop in removed
        assert store.has(keep) and not store.has(drop)
        store.release("o")
        assert store.prune() and not store.has(keep)

    def test_get_repairs_bit_rot_from_replica(self, tmp_path):
        store = CorpusStore(str(tmp_path))
        digest = store.put(b"precious payload")
        _flip_byte(store.object_path(digest))
        assert store.get(digest) == b"precious payload"
        # The primary was healed in place, not just served from mirror.
        assert open(store.object_path(digest), "rb").read() == (
            b"precious payload"
        )

    def test_get_quarantines_unrecoverable_rot(self, tmp_path):
        store = CorpusStore(str(tmp_path))
        digest = store.put(b"doomed")
        _flip_byte(store.object_path(digest))
        _flip_byte(store.mirror_path(digest))
        with pytest.raises(ObjectCorruption) as exc:
            store.get(digest)
        assert digest in str(exc.value)
        assert not store.has(digest)
        assert os.listdir(os.path.join(str(tmp_path), "quarantine"))

    def test_scrub_repairs_both_directions(self, tmp_path):
        store = CorpusStore(str(tmp_path))
        rot_primary = store.put(b"primary-rots")
        rot_mirror = store.put(b"mirror-rots")
        healthy = store.put(b"stays-healthy")
        doomed = store.put(b"loses-both")
        _flip_byte(store.object_path(rot_primary))
        _flip_byte(store.mirror_path(rot_mirror))
        _flip_byte(store.object_path(doomed))
        _flip_byte(store.mirror_path(doomed))
        # A read-only scrub reports without touching the tree.
        preview = store.scrub(repair=False)
        assert set(preview.degraded) == {rot_primary, rot_mirror}
        assert preview.quarantined == (doomed,)
        assert not preview.clean
        assert store.has(doomed)                     # nothing moved yet
        report = store.scrub(repair=True)
        assert report.checked == 4
        assert set(report.repaired) == {rot_primary, rot_mirror}
        assert report.quarantined == (doomed,)
        assert store.get(rot_primary) == b"primary-rots"
        assert store.get(healthy) == b"stays-healthy"
        assert not store.has(doomed)
        assert store.scrub().clean

    def test_distill_is_bit_greedy_cmin(self, tmp_path):
        store = CorpusStore(str(tmp_path))
        superset = store.put(b"covers-bits-0-and-1")
        subset = store.put(b"covers-bit-0")
        disjoint = store.put(b"covers-bit-11")
        entries = [
            (subset, b"\x01\x00", 2),      # nothing beyond the superset
            (superset, b"\x03\x00", 1),    # cheapest, covers bits {0,1}
            (disjoint, b"\x00\x08", 3),    # the only cover of bit 11
        ]
        selected = store.distill(entries)
        assert selected == [superset, disjoint]

    def test_open_store_refuses_non_store_roots(self, tmp_path):
        os.makedirs(str(tmp_path / "not-a-store"))
        with pytest.raises(Exception):
            open_store(str(tmp_path / "not-a-store"))
        root = str(tmp_path / "real")
        CorpusStore(root).put(b"x")
        assert open_store(root).stats()["objects"] == 1


# ---------------------------------------------------------------------------
# campaign wiring: persistence is off the virtual timeline
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def stored_run(tmp_path_factory):
    """One campaign persisted through a corpus store, plus its no-store
    twin's digest for the invariance checks."""
    root = str(tmp_path_factory.mktemp("corpus-store"))
    plain = _campaign(CampaignConfig(budget_ns=BUDGET_NS, seed=7))
    plain.run()
    store = CorpusStore(root)
    stored = _campaign(
        CampaignConfig(
            budget_ns=BUDGET_NS, seed=7,
            corpus_store=store, corpus_owner="tenant-a",
        )
    )
    stored.run()
    return root, stored, plain.state_digest()


class TestCampaignWiring:
    def test_store_does_not_perturb_the_run(self, stored_run):
        _root, stored, plain_digest = stored_run
        assert stored.state_digest() == plain_digest

    def test_every_corpus_payload_is_stored(self, stored_run):
        root, stored, _ = stored_run
        store = CorpusStore(root)
        hashes = {input_hash(e.data) for e in stored.corpus.entries}
        assert hashes
        assert hashes <= set(store.objects())
        assert hashes <= store.refs("tenant-a")

    def test_cross_campaign_dedup(self, stored_run):
        """A second tenant fuzzing the same target shares the store:
        identical inputs land as references, not copies."""
        root, _stored, _ = stored_run
        store = CorpusStore(root)
        rerun = _campaign(
            CampaignConfig(
                budget_ns=BUDGET_NS, seed=7,
                corpus_store=store, corpus_owner="tenant-b",
            )
        )
        rerun.run()
        refs_a = store.refs("tenant-a")
        refs_b = store.refs("tenant-b")
        shared = refs_a & refs_b
        assert len(shared) / len(refs_a | refs_b) >= 0.30
        # Physical storage holds one copy of everything shared.
        assert len(list(store.objects())) == len(refs_a | refs_b)
        # A *different-seed* campaign still shares at least the seed
        # corpus (and usually early discoveries).
        other = _campaign(
            CampaignConfig(
                budget_ns=BUDGET_NS, seed=11,
                corpus_store=store, corpus_owner="tenant-c",
            )
        )
        other.run()
        assert len(refs_a & store.refs("tenant-c")) >= len(SEEDS)

    def test_distilled_corpus_covers_the_same_map(self, stored_run):
        """afl-cmin acceptance: the distilled set's coverage OR equals
        the full corpus's."""
        root, stored, _ = stored_run
        store = CorpusStore(root)
        entries = [
            (
                input_hash(e.data),
                e.coverage_signature,
                e.exec_ns * max(1, len(e.data)),
            )
            for e in stored.corpus.entries
        ]
        selected = store.distill(entries)
        signatures = {digest: sig for digest, sig, _ in entries}
        full = 0
        for _digest, sig, _w in entries:
            full |= int.from_bytes(sig, "little")
        distilled = 0
        for digest in selected:
            distilled |= int.from_bytes(signatures[digest], "little")
        assert distilled == full
        assert 0 < len(selected) <= len(entries)
        # Every selected digest resolves from the store.
        for digest in selected:
            assert store.get(digest)


# ---------------------------------------------------------------------------
# hash-only sync exchange
# ---------------------------------------------------------------------------


def _report(shard_id, discoveries):
    return RoundReport(
        shard_id=shard_id, round_index=0, clock_ns=0, execs=1,
        edges_found=0, corpus_size=1, unique_crashes=0, total_crashes=0,
        unique_hangs=0, imported=0, discoveries=discoveries,
    )


class TestHashOnlySync:
    def test_from_entry_ships_digest_not_payload(self, stored_run, tmp_path):
        _root, stored, _ = stored_run
        store = CorpusStore(str(tmp_path))
        entry = stored.corpus.entries[0]
        candidate = SyncCandidate.from_entry(3, entry, store=store, owner="w3")
        assert candidate.data is None
        assert candidate.digest == input_hash(entry.data)
        assert candidate.hash == candidate.digest
        assert store.get(candidate.digest) == entry.data

    def test_hub_resolves_payloads_at_drain(self, stored_run, tmp_path):
        _root, stored, _ = stored_run
        store = CorpusStore(str(tmp_path))
        entry = stored.corpus.entries[0]
        candidate = SyncCandidate.from_entry(0, entry, store=store)
        hub = SyncHub(n_workers=2, store=store)
        assert hub.ingest([_report(0, [candidate])]) == 1
        assert hub.drain(1) == [entry.data]

    def test_hub_without_store_rejects_hash_only(self, stored_run, tmp_path):
        _root, stored, _ = stored_run
        store = CorpusStore(str(tmp_path))
        candidate = SyncCandidate.from_entry(
            0, stored.corpus.entries[0], store=store
        )
        hub = SyncHub(n_workers=2)
        hub.ingest([_report(0, [candidate])])
        with pytest.raises(RuntimeError, match="no corpus store"):
            hub.drain(1)

    def test_parallel_digest_invariant_with_store(self, tmp_path):
        """The end-to-end check: a parallel campaign exchanging hashes
        through a shared store merges bit-identically to one shipping
        payloads — across both transports."""
        base = dict(target="md4c", n_workers=2, seed=7,
                    budget_ns=6_000_000, sync_every_ns=2_000_000)
        golden = ParallelCampaign(ParallelConfig(**base)).run()
        root = str(tmp_path / "shared-corpus")
        stored = ParallelCampaign(
            ParallelConfig(**base, corpus_store_root=root)
        ).run()
        assert stored.digest() == golden.digest()
        assert stored.sync.delivered > 0        # the exchange really ran
        store = open_store(root)
        assert set(stored.corpus_hashes) <= set(store.objects())
        proc_root = str(tmp_path / "proc-corpus")
        via_processes = ParallelCampaign(
            ParallelConfig(
                **base, corpus_store_root=proc_root, use_processes=True
            )
        ).run()
        assert via_processes.digest() == golden.digest()


# ---------------------------------------------------------------------------
# fsck
# ---------------------------------------------------------------------------


class TestFsck:
    def _build_damaged_tree(self, tmp_path):
        tree = str(tmp_path)
        ckpt = os.path.join(tree, "campaign.ckpt")
        campaign = _campaign(CampaignConfig(budget_ns=1, seed=1))
        save_checkpoint(campaign, ckpt, keep=2)
        save_checkpoint(campaign, ckpt, keep=2)
        _flip_byte(ckpt)                       # live gen rots; .1 loadable
        log = AppendLog(os.path.join(tree, "journal.jsonl"))
        log.append({"n": 1})
        with open(log.path, "ab") as handle:
            handle.write(b'{"n":2')            # torn tail
        store = CorpusStore(os.path.join(tree, "corpus"))
        degraded = store.put(b"rots-but-mirrored", owner="o")
        store.put(b"healthy", owner="o")
        _flip_byte(store.object_path(degraded))
        with open(os.path.join(tree, "stray.tmp"), "wb") as handle:
            handle.write(b"leftover")
        return tree, ckpt, log.path, store, degraded

    def test_expected_crash_residue_is_warnings_only(self, tmp_path):
        tree, *_ = self._build_damaged_tree(tmp_path)
        report = fsck_tree(tree)
        assert report.ok, [f.to_dict() for f in report.findings]
        kinds = {f.kind for f in report.findings}
        assert kinds == {
            "corrupt-generation", "torn-tail", "object-rot", "stray-temp",
        }
        assert not report.errors
        assert report.stores_scanned == 1

    def test_repair_fixes_everything_fixable(self, tmp_path):
        tree, ckpt, log_path, store, degraded = self._build_damaged_tree(
            tmp_path
        )
        report = fsck_tree(tree, repair=True)
        assert report.ok
        assert all(f.repaired for f in report.findings)
        assert not os.path.exists(ckpt)            # corrupt live gen swept
        assert os.path.exists(ckpt + ".1")
        assert open(log_path, "rb").read().endswith(b'{"n":1}\n')
        assert not os.path.exists(os.path.join(tree, "stray.tmp"))
        fresh = CorpusStore(store.root)
        assert open(fresh.object_path(degraded), "rb").read() == (
            b"rots-but-mirrored"
        )
        assert not fsck_tree(tree).findings

    def test_unrecoverable_rot_is_an_error_until_quarantined(self, tmp_path):
        tree, _ckpt, _log, store, _deg = self._build_damaged_tree(tmp_path)
        doomed = store.put(b"doomed", owner="o")
        _flip_byte(store.object_path(doomed))
        _flip_byte(store.mirror_path(doomed))
        report = fsck_tree(tree)
        assert not report.ok
        assert {f.kind for f in report.errors} == {"object-unrecoverable"}
        # Repair quarantines the object and drops the dangling ref; the
        # data loss is still reported as an error on *this* run...
        repair = fsck_tree(tree, repair=True)
        assert any(f.kind == "object-unrecoverable" for f in repair.errors)
        # ...but the tree is consistent again afterwards.
        after = fsck_tree(tree)
        assert after.ok and not after.findings
        assert doomed not in CorpusStore(store.root).refs("o")

    def test_mid_log_corruption_repair_keeps_valid_prefix(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        log = AppendLog(path)
        log.append({"n": 1})
        with open(path, "ab") as handle:
            handle.write(b"\xff\xfe broken \n")
        log.append({"n": 2})
        report = fsck_tree(str(tmp_path))
        assert not report.ok
        assert report.errors[0].kind == "log-corruption"
        fsck_tree(str(tmp_path), repair=True)
        assert AppendLog(path).read() == [{"n": 1}]
        assert fsck_tree(str(tmp_path)).ok

    def test_cli_exit_codes_and_json_report(self, tmp_path):
        tree, *_ = self._build_damaged_tree(tmp_path)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
        )
        report_path = str(tmp_path / "report.json")

        def _fsck(*extra):
            return subprocess.run(
                [sys.executable, "-m", "repro.store", "fsck", tree, *extra],
                env=env, capture_output=True, text=True,
            )

        clean = _fsck("--json", report_path)
        assert clean.returncode == 0, clean.stdout + clean.stderr
        payload = json.load(open(report_path))
        assert payload["ok"] is True
        assert payload["root"] == tree
        assert payload["findings"]
        # Rot both copies of an object: fsck now fails the tree...
        store = CorpusStore(os.path.join(tree, "corpus"))
        doomed = store.put(b"doomed", owner="o")
        _flip_byte(store.object_path(doomed))
        _flip_byte(store.mirror_path(doomed))
        assert _fsck().returncode == 1
        # ...--repair quarantines (reporting the loss), after which the
        # tree verifies clean again.
        _fsck("--repair")
        assert _fsck().returncode == 0


# ---------------------------------------------------------------------------
# the golden disk-chaos test
# ---------------------------------------------------------------------------


def _golden_config(tree, store, halt_at_ns=None):
    return CampaignConfig(
        budget_ns=BUDGET_NS, seed=GOLDEN_SEED,
        checkpoint_path=os.path.join(tree, "campaign.ckpt"),
        checkpoint_interval_ns=3_000_000,
        corpus_store=store, corpus_owner="golden",
        halt_at_ns=halt_at_ns,
    )


@pytest.fixture(scope="module")
def golden_baseline(tmp_path_factory):
    """The undisturbed run's digest, plus how often each disk site is
    polled during it — used to aim each fault at mid-run I/O."""
    tree = str(tmp_path_factory.mktemp("golden-baseline"))
    probe = FaultInjector(FaultPlan([]))    # counts polls, never fires
    campaign = Campaign(
        _executor(), seeds=SEEDS,
        config=_golden_config(tree, CorpusStore(os.path.join(tree, "corpus"))),
    )
    with disk_chaos(probe):
        campaign.run()
    counters = {site: probe.counters.get(site, 0) for site in DISK_FAULT_SITES}
    assert all(count > 3 for count in counters.values()), counters
    assert fsck_tree(tree).ok
    return campaign.state_digest(), counters


class TestGoldenDiskChaos:
    @pytest.mark.parametrize("site", DISK_FAULT_SITES)
    def test_killed_campaign_recovers_bit_identical(
        self, site, golden_baseline, tmp_path
    ):
        """The headline: kill a persisted campaign under each disk-fault
        plan, resume it, and require a digest bit-identical to the
        undisturbed run — then fsck the whole surviving tree."""
        golden_digest, counters = golden_baseline
        tree = str(tmp_path)
        store_root = os.path.join(tree, "corpus")
        # Aim at ~40% of the run's polls of this site: deep enough that
        # checkpoints exist, early enough that real work remains.
        occurrence = max(2, counters[site] * 2 // 5)
        # Raising sites kill the process themselves; the silent bit
        # flip needs a separate death (the halt hook) to recover from.
        halt = BUDGET_NS * 7 // 10 if site == "bit-flip" else None
        campaign = Campaign(
            _executor(), seeds=SEEDS,
            config=_golden_config(tree, CorpusStore(store_root), halt),
        )
        injector = _arm(site, occurrence)
        died = False
        with disk_chaos(injector):
            try:
                campaign.run()
            except (InjectedFault, OSError):
                died = True
        assert injector.fired, f"{site} never fired (occurrence {occurrence})"
        if site != "bit-flip":
            assert died

        resume_config = _golden_config(tree, CorpusStore(store_root))
        ckpt = resume_config.checkpoint_path
        if os.path.exists(ckpt):
            resumed = Campaign.resume(ckpt, _executor(), resume_config)
        else:
            # The fault struck before the first checkpoint survived:
            # recovery is a restart, which determinism makes equivalent.
            resumed = Campaign(_executor(), seeds=SEEDS, config=resume_config)
        resumed.run()
        assert resumed.state_digest() == golden_digest

        report = fsck_tree(tree)
        assert report.ok, [f.to_dict() for f in report.findings]

    def test_generated_disk_plans_never_break_recovery(
        self, golden_baseline, tmp_path
    ):
        """Beyond single faults: a seed-generated multi-fault disk plan
        (the CI store-chaos job's shape) still recovers bit-identically."""
        golden_digest, _counters = golden_baseline
        tree = str(tmp_path)
        store_root = os.path.join(tree, "corpus")
        plan = FaultPlan.generate(
            GOLDEN_SEED, 3,
            sites=FaultPlan.DISK_SITES, max_occurrence=40,
        )
        campaign = Campaign(
            _executor(), seeds=SEEDS,
            config=_golden_config(
                tree, CorpusStore(store_root), BUDGET_NS * 7 // 10
            ),
        )
        survived_to_halt = True
        with disk_chaos(FaultInjector(plan)):
            try:
                campaign.run()
            except (InjectedFault, OSError):
                survived_to_halt = False
        resume_config = _golden_config(tree, CorpusStore(store_root))
        ckpt = resume_config.checkpoint_path
        if os.path.exists(ckpt):
            resumed = Campaign.resume(ckpt, _executor(), resume_config)
        else:
            resumed = Campaign(_executor(), seeds=SEEDS, config=resume_config)
        resumed.run()
        assert resumed.state_digest() == golden_digest
        assert fsck_tree(tree).ok
        assert survived_to_halt or True     # either death mode is legal
