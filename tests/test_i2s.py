"""Tests for the input-to-state stage: compare tapping, operand
encoding/location, auto-dictionaries, campaign wiring, and the
checkpoint round-trip of the stage's accumulated state.

The end-to-end pin is the stage's reason to exist: a campaign whose
seeds never satisfy a 4-byte magic guard cracks it by reading the
expected value out of an observed compare, within a budget where plain
havoc has a ~1-in-2^32 shot per mutation.
"""

import random
import struct

import pytest

from repro.analysis.dictionary import mine_dictionary_tokens
from repro.execution import ClosureXExecutor
from repro.fuzzing import Campaign, CampaignConfig, HavocMutator
from repro.fuzzing.i2s import (
    AutoDictionary,
    CmpObserver,
    I2SStage,
    StageStats,
    operand_encodings,
    replacement_patches,
)
from repro.fuzzing.mutators import MAX_INPUT_SIZE
from repro.minic import compile_c
from repro.passes import PassManager, closurex_passes
from repro.sim_os import Kernel
from repro.targets import get_target

#: A parser whose interesting half hides behind a 4-byte big-endian
#: magic — the canonical input-to-state situation.
SOURCE = r"""
char input_buf[64];
long input_len;

long rd_u32(char *p) {
    return ((long)p[0] << 24) | ((long)p[1] << 16)
         | ((long)p[2] << 8) | (long)p[3];
}

int main(int argc, char **argv) {
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    input_len = fread(input_buf, 1, 64, f);
    if (input_len < 8) { exit(2); }
    long magic = rd_u32(input_buf);
    if (magic == 0x1a2b3c4d) {
        long version = rd_u32(input_buf + 4);
        if (version == 0x2000) { exit(7); }
        exit(6);
    }
    exit(3);
}
"""

MAGIC_BE = b"\x1a\x2b\x3c\x4d"
IMAGE = 400_000


def _module():
    module = compile_c(SOURCE, "i2s-test")
    PassManager(closurex_passes(11)).run(module)
    return module


def _executor():
    return ClosureXExecutor(_module(), IMAGE, Kernel())


def _fingerprint(campaign, result):
    """Everything 'bit-identical' means for a finished campaign."""
    return {
        "execs": result.execs,
        "elapsed_ns": result.elapsed_ns,
        "edges": result.edges_found,
        "corpus": [
            (e.data, e.coverage_signature) for e in campaign.corpus.entries
        ],
        "crash_identities": [r.identity for r in result.crash_reports],
        "clock_ns": campaign.clock.now_ns,
        "rng": campaign.rng.getstate(),
        "stage_execs": {
            name: stats.execs
            for name, stats in campaign.stage_stats.items()
        },
    }


class TestOperandEncodings:
    def test_covers_both_endiannesses_at_the_natural_width(self):
        encodings = {
            encoded for _, _, encoded in operand_encodings(0x11223344, 32)
        }
        assert struct.pack("<I", 0x11223344) in encodings
        assert struct.pack(">I", 0x11223344) in encodings

    def test_wide_value_skips_narrow_widths(self):
        widths = {n for n, _, _ in operand_encodings(0x11223344, 32)}
        assert widths == {4, 8}  # does not fit 1 or 2 bytes

    def test_small_value_appears_at_every_width(self):
        widths = {n for n, _, _ in operand_encodings(0x41, 32)}
        assert widths == {1, 2, 4, 8}

    def test_sign_extended_form_locates_narrower(self):
        # 0xff80 at 16 bits is -128; a file may store it as one byte.
        encodings = {
            encoded for _, _, encoded in operand_encodings(0xFF80, 16)
        }
        assert b"\x80" in encodings
        assert struct.pack("<H", 0xFF80) in encodings

    def test_negative_value_sign_extends_wider(self):
        # -1 at 32 bits may live in the file as 8 bytes of 0xff.
        encodings = {
            encoded for _, _, encoded in operand_encodings(0xFFFFFFFF, 32)
        }
        assert b"\xff" * 8 in encodings
        assert b"\xff" * 4 in encodings

    def test_no_duplicate_encodings(self):
        encoded = [e for _, _, e in operand_encodings(0x41, 32)]
        assert len(encoded) == len(set(encoded))


class TestReplacementPatches:
    def test_exact_and_off_by_one(self):
        patches = replacement_patches(0x100, 32, 4, big=False)
        assert struct.pack("<I", 0x100) in patches
        assert struct.pack("<I", 0x101) in patches
        assert struct.pack("<I", 0xFF) in patches

    def test_truncates_to_located_width(self):
        patches = replacement_patches(0x1FF, 32, 1, big=False)
        assert all(len(p) == 1 for p in patches)
        assert b"\xff" in patches  # 0x1ff truncated

    def test_respects_byte_order(self):
        assert struct.pack(">I", 0x100) in replacement_patches(
            0x100, 32, 4, big=True
        )


class TestCmpObserver:
    def test_disarmed_by_default(self):
        observer = CmpObserver()
        assert not observer.active

    def test_captures_the_magic_compare(self):
        executor = _executor()
        executor.attach_cmp_observer(observer := CmpObserver())
        executor.boot()
        observer.begin()
        executor.run(b"\x00\x00\x00\x00guarded!")
        records = observer.take()
        executor.shutdown()
        assert not observer.active
        operand_pairs = {(lhs, rhs) for _, _, lhs, rhs, _ in records}
        assert (0, 0x1A2B3C4D) in operand_pairs or (
            0x1A2B3C4D, 0) in operand_pairs

    def test_disarmed_execution_records_nothing(self):
        executor = _executor()
        executor.attach_cmp_observer(observer := CmpObserver())
        executor.boot()
        executor.run(b"\x00\x00\x00\x00guarded!")
        executor.shutdown()
        assert observer.records == []

    def test_record_limit_caps_collection(self):
        executor = _executor()
        executor.attach_cmp_observer(observer := CmpObserver(limit=2))
        executor.boot()
        observer.begin()
        executor.run(b"\x00\x00\x00\x00guarded!")
        records = observer.take()
        executor.shutdown()
        assert len(records) == 2


class TestAutoDictionary:
    def test_rejects_single_byte_and_oversized_tokens(self):
        d = AutoDictionary(max_token_len=4)
        assert not d.add(b"x")
        assert not d.add(b"12345")
        assert d.add(b"ab")

    def test_deduplicates(self):
        d = AutoDictionary()
        assert d.add(b"magic")
        assert not d.add(b"magic")
        assert len(d) == 1

    def test_add_value_encodes_both_byte_orders(self):
        d = AutoDictionary()
        d.add_value(0x1A2B3C4D, 32)
        assert struct.pack("<I", 0x1A2B3C4D) in d.tokens
        assert struct.pack(">I", 0x1A2B3C4D) in d.tokens

    def test_add_value_skips_single_byte_values(self):
        d = AutoDictionary()
        assert d.add_value(0x41, 32) == 0
        assert len(d) == 0

    def test_pick_is_deterministic_and_none_when_empty(self):
        d = AutoDictionary()
        assert d.pick(random.Random(1)) is None
        d.add(b"one")
        d.add(b"two")
        assert d.pick(random.Random(7)) == d.pick(random.Random(7))

    def test_restore_replaces_contents_in_place(self):
        d = AutoDictionary()
        d.add(b"old")
        held = d.tokens                 # the mutator holds this reference
        d.restore([b"new", b"tokens"])
        assert held == [b"new", b"tokens"]
        assert not d.add(b"new")        # dedup set restored too

    def test_token_cap(self):
        d = AutoDictionary(max_tokens=2)
        assert d.add(b"aa") and d.add(b"bb")
        assert not d.add(b"cc")


class TestStaticMining:
    def test_mines_icmp_magic_through_the_literal_cast(self):
        tokens = mine_dictionary_tokens(_module())
        assert MAGIC_BE in tokens                      # big-endian form
        assert MAGIC_BE[::-1] in tokens                # little-endian form

    def test_mines_memcmp_string_signatures(self):
        spec = get_target("giftext")
        tokens = mine_dictionary_tokens(spec.build_closurex())
        assert b"GIF87a" in tokens
        assert b"GIF89a" in tokens

    def test_mines_the_pcap_magic(self):
        spec = get_target("libpcap")
        tokens = mine_dictionary_tokens(spec.build_closurex())
        assert struct.pack(">I", 0xA1B2C3D4) in tokens

    def test_deterministic_order(self):
        first = mine_dictionary_tokens(_module())
        second = mine_dictionary_tokens(_module())
        assert first == second


class TestHavocDictionaryInvariance:
    def test_empty_dictionary_leaves_stream_byte_identical(self):
        """An attached-but-empty dictionary must not perturb havoc:
        the i2s-off and i2s-on configurations share one mutation
        stream until the first token arrives."""
        plain = HavocMutator(random.Random(42))
        with_dict = HavocMutator(random.Random(42),
                                 dictionary=AutoDictionary())
        data = b"some input bytes"
        for _ in range(200):
            assert plain.mutate(data) == with_dict.mutate(data)

    def test_tokens_surface_in_mutations_once_present(self):
        dictionary = AutoDictionary()
        dictionary.add(b"\xde\xad\xbe\xef\xca\xfe")
        mutator = HavocMutator(random.Random(7), dictionary=dictionary)
        outputs = [mutator.mutate(b"\x00" * 24) for _ in range(300)]
        assert any(b"\xde\xad\xbe\xef\xca\xfe" in out for out in outputs)

    def test_mutations_never_exceed_max_size(self):
        dictionary = AutoDictionary()
        dictionary.add(b"tokentokentoken!")
        mutator = HavocMutator(random.Random(3), max_size=32,
                               dictionary=dictionary)
        data = b"\x55" * 32             # already at the cap
        for _ in range(500):
            out = mutator.mutate(data)
            assert len(out) <= 32

    def test_default_cap_is_global_max_input_size(self):
        mutator = HavocMutator(random.Random(5))
        data = b"\x55" * MAX_INPUT_SIZE
        for _ in range(300):
            assert len(mutator.mutate(data)) <= MAX_INPUT_SIZE


BUDGET_NS = 12_000_000


class TestI2SCampaign:
    def test_cracks_the_magic_havoc_cannot_guess(self):
        """The headline behaviour: seeds never pass the guard, the
        observed compare hands the stage the winning 4 bytes."""
        campaign = Campaign(
            _executor(), seeds=[b"\x00\x00\x00\x00AAAAAAAA"],
            config=CampaignConfig(budget_ns=BUDGET_NS, seed=1,
                                  i2s_enabled=True),
        )
        campaign.run()
        assert any(
            entry.data[:4] == MAGIC_BE
            for entry in campaign.corpus.entries
        )

    def test_same_seed_replays_bit_identically(self):
        config = CampaignConfig(budget_ns=BUDGET_NS, seed=9,
                                i2s_enabled=True)
        first = Campaign(_executor(), [b"\x00" * 12], config)
        second = Campaign(_executor(), [b"\x00" * 12], config)
        assert _fingerprint(first, first.run()) == \
            _fingerprint(second, second.run())

    def test_disabled_matches_default_config(self):
        """i2s_enabled=False must be a perfect no-op: same stream as a
        config that never heard of I2S."""
        default = Campaign(
            _executor(), [b"\x00" * 12],
            CampaignConfig(budget_ns=BUDGET_NS, seed=4),
        )
        disabled = Campaign(
            _executor(), [b"\x00" * 12],
            CampaignConfig(budget_ns=BUDGET_NS, seed=4, i2s_enabled=False),
        )
        assert _fingerprint(default, default.run()) == \
            _fingerprint(disabled, disabled.run())

    def test_stage_stats_account_i2s_execs(self):
        campaign = Campaign(
            _executor(), [b"\x00" * 12],
            CampaignConfig(budget_ns=BUDGET_NS, seed=2, i2s_enabled=True),
        )
        result = campaign.run()
        assert result.stage_stats["i2s"].execs > 0
        assert campaign._i2s.site_pairs  # compares were observed

    def test_static_dictionary_mined_once(self):
        campaign = Campaign(
            _executor(), [b"\x00" * 12],
            CampaignConfig(budget_ns=BUDGET_NS, seed=2, i2s_enabled=True),
        )
        campaign.run()
        assert campaign._i2s.static_mined
        assert MAGIC_BE in campaign._i2s.dictionary.tokens

    def test_static_dictionary_opt_out(self):
        campaign = Campaign(
            _executor(), [b"\x00" * 12],
            CampaignConfig(budget_ns=BUDGET_NS, seed=2, i2s_enabled=True,
                           i2s_static_dictionary=False),
        )
        campaign.run()
        assert not campaign._i2s.static_mined


class TestThrottle:
    def _campaign(self, **overrides):
        config = CampaignConfig(budget_ns=1, seed=1, i2s_enabled=True,
                                **overrides)
        return Campaign(_executor(), [b"\x00" * 12], config)

    def test_not_throttled_before_fair_trial(self):
        campaign = self._campaign(i2s_throttle_min_execs=256)
        campaign.stage_stats["i2s"] = StageStats(execs=10, finds=0, ns=100)
        campaign.stage_stats["havoc"] = StageStats(execs=900, finds=9,
                                                   ns=9000)
        assert not campaign._i2s_throttled()

    def test_throttled_when_find_rate_collapses(self):
        campaign = self._campaign(i2s_throttle_min_execs=256)
        campaign.stage_stats["i2s"] = StageStats(execs=300, finds=0,
                                                 ns=3000)
        campaign.stage_stats["havoc"] = StageStats(execs=900, finds=9,
                                                   ns=9000)
        assert campaign._i2s_throttled()

    def test_not_throttled_while_paying_its_way(self):
        campaign = self._campaign(i2s_throttle_min_execs=256)
        campaign.stage_stats["i2s"] = StageStats(execs=300, finds=30,
                                                 ns=3000)
        campaign.stage_stats["havoc"] = StageStats(execs=900, finds=9,
                                                   ns=9000)
        assert not campaign._i2s_throttled()


class TestCheckpointRoundTrip:
    def test_snapshot_restore_is_lossless(self):
        stage = I2SStage(CampaignConfig(i2s_enabled=True))
        stage.site_pairs[("f", "b", "c")] = [(32, 0, 0x1A2B3C4D, "eq")]
        stage.dictionary.add(b"magic")
        stage.static_mined = True
        fresh = I2SStage(CampaignConfig(i2s_enabled=True))
        fresh.restore(stage.snapshot())
        assert fresh.snapshot() == stage.snapshot()

    def test_kill_and_resume_is_bit_identical(self, tmp_path):
        """The stage's accumulated state — dictionary, per-site pairs,
        efficacy stats — must travel through RPRCKPT1 so a resumed
        campaign continues the exact interrupted run."""
        seeds = [b"\x00\x00\x00\x00AAAAAAAA"]
        uninterrupted = Campaign(
            _executor(), seeds,
            CampaignConfig(budget_ns=BUDGET_NS, seed=6, i2s_enabled=True),
        )
        golden = _fingerprint(uninterrupted, uninterrupted.run())

        path = str(tmp_path / "i2s.ckpt")
        halted = Campaign(
            _executor(), seeds,
            CampaignConfig(
                budget_ns=BUDGET_NS, seed=6, i2s_enabled=True,
                checkpoint_path=path,
                checkpoint_interval_ns=BUDGET_NS // 10,
                halt_at_ns=BUDGET_NS // 2,
            ),
        )
        halted.run()

        resumed = Campaign.resume(path, _executor())
        assert resumed._i2s is not None
        replay = _fingerprint(resumed, resumed.run())
        assert replay == golden
        assert resumed._i2s.snapshot() == uninterrupted._i2s.snapshot()
