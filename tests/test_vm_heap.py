"""Unit tests for the checked heap allocator."""

import pytest

from repro.vm.errors import CrashSite, TrapKind, VMTrap
from repro.vm.heap import Heap
from repro.vm.memory import AddressSpace

SITE = CrashSite("f", "b")


@pytest.fixture
def heap():
    return Heap(AddressSpace(), budget_bytes=1 << 20)


class TestAllocation:
    def test_malloc_returns_writable_chunk(self, heap):
        address = heap.malloc(64, SITE)
        heap.space.write(address, b"x" * 64, SITE)
        assert heap.chunk_size(address) == 64

    def test_malloc_zero_returns_null(self, heap):
        assert heap.malloc(0, SITE) == 0

    def test_malloc_negative_traps(self, heap):
        with pytest.raises(VMTrap) as info:
            heap.malloc(-8, SITE)
        assert info.value.kind is TrapKind.OUT_OF_MEMORY

    def test_calloc_zeroes(self, heap):
        address = heap.calloc(4, 8, SITE)
        assert heap.space.read(address, 32, SITE) == bytes(32)

    def test_budget_enforced(self, heap):
        heap.budget_bytes = 100
        heap.malloc(60, SITE)
        with pytest.raises(VMTrap) as info:
            heap.malloc(60, SITE)
        assert info.value.kind is TrapKind.OUT_OF_MEMORY

    def test_stats(self, heap):
        a = heap.malloc(10, SITE)
        heap.malloc(20, SITE)
        heap.free(a, SITE)
        assert heap.stats.allocations == 2
        assert heap.stats.frees == 1
        assert heap.stats.bytes_allocated == 30
        assert heap.stats.peak_live_bytes == 30
        assert heap.live_bytes == 20


class TestFree:
    def test_free_null_is_noop(self, heap):
        heap.free(0, SITE)

    def test_double_free_detected(self, heap):
        address = heap.malloc(16, SITE)
        heap.free(address, SITE)
        with pytest.raises(VMTrap) as info:
            heap.free(address, SITE)
        assert info.value.kind is TrapKind.DOUBLE_FREE

    def test_invalid_free_detected(self, heap):
        address = heap.malloc(16, SITE)
        with pytest.raises(VMTrap) as info:
            heap.free(address + 4, SITE)  # interior pointer
        assert info.value.kind is TrapKind.INVALID_FREE

    def test_use_after_free_via_space(self, heap):
        address = heap.malloc(16, SITE)
        heap.free(address, SITE)
        with pytest.raises(VMTrap) as info:
            heap.space.read(address, 1, SITE)
        assert info.value.kind is TrapKind.USE_AFTER_FREE


class TestRealloc:
    def test_realloc_null_is_malloc(self, heap):
        address = heap.realloc(0, 32, SITE)
        assert heap.chunk_size(address) == 32

    def test_realloc_grows_and_preserves(self, heap):
        address = heap.malloc(8, SITE)
        heap.space.write(address, b"12345678", SITE)
        bigger = heap.realloc(address, 16, SITE)
        assert heap.space.read(bigger, 8, SITE) == b"12345678"
        assert heap.chunk_size(bigger) == 16
        assert heap.chunk_size(address) is None

    def test_realloc_shrinks(self, heap):
        address = heap.malloc(16, SITE)
        heap.space.write(address, b"abcdefgh" * 2, SITE)
        smaller = heap.realloc(address, 4, SITE)
        assert heap.space.read(smaller, 4, SITE) == b"abcd"

    def test_realloc_to_zero_frees(self, heap):
        address = heap.malloc(16, SITE)
        assert heap.realloc(address, 0, SITE) == 0
        assert heap.live_chunk_count() == 0

    def test_realloc_invalid_pointer(self, heap):
        with pytest.raises(VMTrap) as info:
            heap.realloc(0xDEAD, 8, SITE)
        assert info.value.kind is TrapKind.INVALID_FREE


class TestLeakTracking:
    def test_leaked_chunks(self, heap):
        kept = heap.malloc(8, SITE)
        freed = heap.malloc(8, SITE)
        heap.free(freed, SITE)
        leaks = heap.leaked_chunks()
        assert [r.base for r in leaks] == [kept]

    def test_snapshot_live_set(self, heap):
        address = heap.malloc(4, SITE)
        heap.space.write(address, b"abcd", SITE)
        snapshot = heap.snapshot_live_set()
        assert snapshot == {address: b"abcd"}
