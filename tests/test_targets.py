"""Tests for the benchmark targets: registry integrity, build health,
seed behaviour, and Table 4 consistency."""

import pytest

from repro.ir import verify_module
from repro.passes.global_pass import CLOSURE_GLOBAL_SECTION
from repro.passes.rename_main import TARGET_MAIN
from repro.runtime.harness import IterationStatus
from repro.targets import BENCHMARKS, all_targets, get_target, target_names
from tests.helpers import run_fresh


class TestRegistry:
    def test_exactly_ten_targets(self):
        assert len(all_targets()) == 10

    def test_names_match_table4(self):
        assert set(target_names()) == set(BENCHMARKS)

    def test_table4_formats_and_sizes(self):
        for spec in all_targets():
            input_format, image_bytes = BENCHMARKS[spec.name]
            assert spec.input_format == input_format
            assert spec.image_bytes == image_bytes

    def test_bug_manifest_matches_table7(self):
        expected = {"c-blosc2": 4, "gpmf-parser": 6, "libbpf": 3, "md4c": 2}
        for spec in all_targets():
            assert len(spec.bugs) == expected.get(spec.name, 0)
        total = sum(len(spec.bugs) for spec in all_targets())
        assert total == 15  # the paper's fifteen 0-days

    def test_bug_ids_unique(self):
        ids = [b.bug_id for spec in all_targets() for b in spec.bugs]
        assert len(ids) == len(set(ids))

    def test_get_target_unknown(self):
        with pytest.raises(KeyError):
            get_target("nginx")


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
class TestBuilds:
    def test_baseline_build_verifies(self, name):
        module = get_target(name).build_baseline()
        verify_module(module)
        assert module.has_function("main")

    def test_closurex_build_verifies(self, name):
        module = get_target(name).build_closurex()
        verify_module(module)
        assert module.has_function(TARGET_MAIN)
        assert not module.has_function("main")
        assert module.globals_in_section(CLOSURE_GLOBAL_SECTION)

    def test_persistent_build(self, name):
        module = get_target(name).build_persistent()
        assert module.has_function(TARGET_MAIN)
        # exit must NOT be hooked in the naive persistent build
        assert not module.has_function("closurex_exit_hook") or all(
            inst.callee.name != "closurex_exit_hook"
            for func in module.defined_functions()
            for inst in func.instructions()
            if hasattr(inst, "callee")
        )

    def test_static_edges_positive(self, name):
        assert get_target(name).static_edge_count() > 20


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
class TestSeeds:
    def test_has_multiple_seeds(self, name):
        assert len(get_target(name).seeds) >= 3

    def test_seeds_run_clean(self, name):
        """Seeds must parse successfully — no crash, no early exit — or
        coverage-guided fuzzing never gets past the format gates."""
        spec = get_target(name)
        for i, seed in enumerate(spec.seeds):
            result = run_fresh(spec, seed)
            assert result.status in (IterationStatus.OK, IterationStatus.EXIT), (
                f"{name} seed {i}: {result.status} {result.trap}"
            )
            assert not result.is_crash, f"{name} seed {i} crashed: {result.trap}"

    def test_seed_execution_cost_in_band(self, name):
        """Per-exec cost must stay in the regime the Table 5 cost model
        was calibrated for (it drives the speedup band)."""
        spec = get_target(name)
        for seed in spec.seeds:
            result = run_fresh(spec, seed)
            assert 100 <= result.instructions <= 25_000

    def test_garbage_input_does_not_crash(self, name):
        """Unstructured garbage should be rejected, not crash: the
        planted bugs must require format-aware mutation."""
        spec = get_target(name)
        for junk in (b"", b"\x00" * 40, b"garbage!" * 10, b"\xff" * 64):
            result = run_fresh(spec, junk)
            assert not result.is_crash, f"{name} crashed on junk: {result.trap}"
