"""Golden tests for the statistics behind the experiment reports.

Every expected value here is hand-computed from the definitions (not
from the code under test), including the tie-heavy and tiny-sample
edge cases the report generator actually hits with 2-3 trials per arm.
If one of these breaks, the report's p-value / Â₁₂ / CI columns mean
something different than documented.
"""

import pytest

from repro.experiments.stats import (
    a12_magnitude,
    bootstrap_ci,
    mann_whitney_p,
    mann_whitney_u,
    median,
    vargha_delaney_a12,
)


class TestMannWhitneyU:
    def test_disjoint_low_sample_loses_every_pair(self):
        # Every (a, b) pair has a < b: zero wins, zero ties.
        assert mann_whitney_u([1, 2, 3], [4, 5, 6]) == 0.0

    def test_disjoint_high_sample_wins_every_pair(self):
        # 3 x 3 pairs, all wins.
        assert mann_whitney_u([4, 5, 6], [1, 2, 3]) == 9.0

    def test_interleaved_hand_count(self):
        # a=[1,3,5] vs b=[2,4]: pairs won by a are (3,2), (5,2), (5,4)
        # -> U = 3, no ties.
        assert mann_whitney_u([1, 3, 5], [2, 4]) == 3.0

    def test_ties_count_half(self):
        # a=[1,1,2], b=[1,2,2]: wins = (2 vs 1) once per a=2 -> 1;
        # ties = (1,1) twice + (2,2) twice -> 4 halves = 2.0; U = 3.0.
        assert mann_whitney_u([1, 1, 2], [1, 2, 2]) == 3.0

    def test_identical_samples_split_evenly(self):
        # All 9 pairs tie -> U = 4.5 = m*n/2.
        assert mann_whitney_u([7, 8, 9], [7, 8, 9]) == 4.5

    def test_empty_sample(self):
        assert mann_whitney_u([], [1, 2]) == 0.0
        assert mann_whitney_u([1, 2], []) == 0.0


class TestVarghaDelaneyA12:
    def test_complete_dominance(self):
        assert vargha_delaney_a12([4, 5, 6], [1, 2, 3]) == 1.0
        assert vargha_delaney_a12([1, 2, 3], [4, 5, 6]) == 0.0

    def test_identical_samples_are_a_coin_flip(self):
        assert vargha_delaney_a12([5, 5, 5], [5, 5, 5]) == 0.5

    def test_tie_heavy_hand_value(self):
        # U = 3.0 (see above), m*n = 9 -> Â₁₂ = 1/3.
        assert vargha_delaney_a12([1, 1, 2], [1, 2, 2]) == pytest.approx(
            3.0 / 9.0
        )

    def test_single_observation_each(self):
        assert vargha_delaney_a12([2], [1]) == 1.0
        assert vargha_delaney_a12([1], [1]) == 0.5

    def test_empty_degenerates_to_half(self):
        assert vargha_delaney_a12([], [1]) == 0.5
        assert vargha_delaney_a12([1], []) == 0.5

    def test_symmetry(self):
        a, b = [1.0, 4.0, 4.0, 7.0], [2.0, 4.0, 6.0]
        assert vargha_delaney_a12(a, b) + vargha_delaney_a12(b, a) == (
            pytest.approx(1.0)
        )


class TestA12Magnitude:
    # Vargha & Delaney's thresholds on |Â₁₂ - 0.5|: 0.06 / 0.14 / 0.21.
    @pytest.mark.parametrize("a12,label", [
        (0.5, "negligible"),
        (0.55, "negligible"),
        (0.57, "small"),
        (0.45, "negligible"),
        (0.36, "medium"),
        (0.64, "medium"),
        (0.72, "large"),
        (0.0, "large"),
        (1.0, "large"),
    ])
    def test_scale(self, a12, label):
        assert a12_magnitude(a12) == label


class TestMannWhitneyPExact:
    def test_three_vs_three_disjoint(self):
        # Exact two-sided p for complete separation at n=m=3:
        # 2 / C(6,3) = 2/20 = 0.1.
        p = mann_whitney_p([1, 2, 3], [4, 5, 6])
        assert p == pytest.approx(0.1)

    def test_four_vs_four_disjoint(self):
        # 2 / C(8,4) = 2/70.
        p = mann_whitney_p([1, 2, 3, 4], [5, 6, 7, 8])
        assert p == pytest.approx(2.0 / 70.0)

    def test_degenerate_and_empty_are_one(self):
        assert mann_whitney_p([3, 3, 3], [3, 3, 3]) == 1.0
        assert mann_whitney_p([], [1, 2]) == 1.0

    def test_two_sided_symmetry(self):
        a, b = [1.0, 2.0, 5.0], [3.0, 4.0, 6.0]
        assert mann_whitney_p(a, b) == pytest.approx(mann_whitney_p(b, a))


class TestBootstrapCI:
    def test_empty_is_zero_interval(self):
        assert bootstrap_ci([]) == (0.0, 0.0)

    def test_single_value_is_point_interval(self):
        assert bootstrap_ci([3.5]) == (3.5, 3.5)

    def test_constant_sample_is_point_interval(self):
        assert bootstrap_ci([5.0, 5.0, 5.0, 5.0]) == (5.0, 5.0)

    def test_same_seed_is_deterministic(self):
        values = [1.0, 4.0, 2.0, 8.0, 5.0, 7.0]
        assert bootstrap_ci(values, seed=42) == bootstrap_ci(
            values, seed=42
        )

    def test_seed_actually_drives_resampling(self):
        # Any two seeds may collide on the same percentile interval,
        # but across a handful of seeds the resampling must vary.
        values = [1.0, 4.0, 2.0, 8.0, 5.0, 7.0]
        intervals = {
            bootstrap_ci(values, n_boot=50, seed=s) for s in range(8)
        }
        assert len(intervals) > 1

    def test_interval_brackets_the_point_estimate(self):
        values = [10.0, 12.0, 11.0, 14.0, 13.0, 9.0, 15.0]
        lo, hi = bootstrap_ci(values, seed=0)
        assert lo <= median(values) <= hi
        assert min(values) <= lo and hi <= max(values)

    def test_custom_statistic(self):
        values = [0.0, 10.0]
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        lo, hi = bootstrap_ci(values, statistic=mean, seed=0)
        # Resampled means of {0, 10} pairs can only be 0, 5, or 10.
        assert {lo, hi} <= {0.0, 5.0, 10.0}
        assert lo <= hi

    def test_tiny_sample_stays_in_range(self):
        lo, hi = bootstrap_ci([2.0, 6.0], seed=0)
        assert 2.0 <= lo <= hi <= 6.0
