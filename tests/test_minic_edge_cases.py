"""MiniC edge cases beyond the main conformance suite: unsigned types,
comma operator, every compound assignment, nested control flow, array
parameters, and scoping subtleties."""

import pytest

from repro.minic import compile_c
from repro.minic.errors import SemanticError
from repro.vm import VM


def run_main(source: str) -> int:
    module = compile_c(source, "edge")
    vm = VM(module)
    vm.load()
    argc, argv = vm.setup_argv(["edge"])
    return vm.run_function(module.get_function("main"), [argc, argv])


def expr_main(body: str) -> int:
    return run_main("int main(int argc, char **argv) { " + body + " }")


class TestUnsignedTypes:
    def test_unsigned_int_division(self):
        assert expr_main(
            "unsigned int a = 0xFFFFFFFE; unsigned int b = a / 2;"
            "return b == 0x7FFFFFFF ? 1 : 0;"
        ) == 1

    def test_unsigned_comparison(self):
        assert expr_main(
            "unsigned int a = 0xFFFFFFFF; return a > 5 ? 1 : 0;"
        ) == 1

    def test_signed_comparison_contrast(self):
        assert expr_main(
            "int a = (int)0xFFFFFFFF; return a > 5 ? 1 : 0;"
        ) == 0

    def test_unsigned_shift(self):
        assert expr_main(
            "unsigned int a = 0x80000000; return (int)(a >> 31);"
        ) == 1

    def test_signed_shift_contrast(self):
        assert expr_main(
            "int a = (int)0x80000000; return (a >> 31) & 0xFF;"
        ) == 0xFF

    def test_bare_unsigned_is_unsigned_int(self):
        assert expr_main(
            "unsigned a = 7; return (int)(a + 1);"
        ) == 8

    def test_unsigned_long(self):
        assert expr_main(
            "unsigned long a = 0xFFFFFFFFFFFFFFFF; return a > 100 ? 1 : 0;"
        ) == 1


class TestCompoundAssignments:
    @pytest.mark.parametrize(
        "op,start,operand,expected",
        [
            ("+=", 10, 3, 13),
            ("-=", 10, 3, 7),
            ("*=", 10, 3, 30),
            ("/=", 10, 3, 3),
            ("%=", 10, 3, 1),
            ("&=", 12, 10, 8),
            ("|=", 12, 3, 15),
            ("^=", 12, 10, 6),
            ("<<=", 3, 2, 12),
            (">>=", 12, 2, 3),
        ],
    )
    def test_all_ops(self, op, start, operand, expected):
        assert expr_main(
            f"int a = {start}; a {op} {operand}; return a;"
        ) == expected

    def test_compound_on_array_element(self):
        assert expr_main(
            "int a[3]; a[1] = 5; a[1] += 10; return a[1];"
        ) == 15

    def test_compound_on_struct_field(self):
        assert run_main(
            "struct S { int v; };"
            "int main(int argc, char **argv) {"
            " struct S s; s.v = 2; s.v *= 21; return s.v; }"
        ) == 42

    def test_compound_evaluates_lvalue_once(self):
        # If the index expression re-evaluated, i would advance twice.
        assert expr_main(
            "int a[4]; int i = 0;"
            "a[0] = 1; a[1] = 100;"
            "a[i++] += 5;"
            "return a[0] * 1000 + a[1] + i;"
        ) == 6101


class TestCommaAndSequencing:
    def test_comma_operator(self):
        assert expr_main("int a = (1, 2, 3); return a;") == 3

    def test_comma_in_for_step(self):
        assert expr_main(
            "int s = 0; int j = 0;"
            "for (int i = 0; i < 3; i++, j += 2) { s += j; }"
            "return s;"
        ) == 6

    def test_assignment_expression_value(self):
        assert expr_main("int a; int b = (a = 7) + 1; return a + b;") == 15


class TestScoping:
    def test_inner_scope_shadows(self):
        assert expr_main(
            "int x = 1; { int x = 2; x = 3; } return x;"
        ) == 1

    def test_for_loop_variable_scoped(self):
        assert expr_main(
            "int i = 100; for (int i = 0; i < 3; i++) { } return i;"
        ) == 100

    def test_global_shadowed_by_local(self):
        assert run_main(
            "int g = 5;"
            "int main(int argc, char **argv) { int g = 9; return g; }"
        ) == 9


class TestPointerEdgeCases:
    def test_pointer_to_pointer(self):
        assert expr_main(
            "int x = 3; int *p = &x; int **pp = &p; **pp = 8; return x;"
        ) == 8

    def test_negative_index(self):
        assert expr_main(
            "int a[4]; a[1] = 77; int *p = &a[2]; return p[-1];"
        ) == 77

    def test_pointer_decrement(self):
        assert expr_main(
            "char s[4] = \"abc\"; char *p = &s[2]; p--; return *p;"
        ) == ord("b")

    def test_void_pointer_roundtrip(self):
        assert expr_main(
            "int x = 6; void *v = (void*)&x; int *p = (int*)v; return *p * 7;"
        ) == 42

    def test_array_of_struct_pointers_via_malloc(self):
        assert run_main(
            "struct N { int v; };"
            "int main(int argc, char **argv) {"
            "  struct N *nodes = (struct N*)malloc(sizeof(struct N) * 4);"
            "  for (int i = 0; i < 4; i++) { nodes[i].v = i * i; }"
            "  int total = 0;"
            "  for (int i = 0; i < 4; i++) { total += nodes[i].v; }"
            "  free((char*)nodes);"
            "  return total; }"
        ) == 14


class TestControlFlowEdges:
    def test_break_in_switch_inside_loop(self):
        assert expr_main(
            "int s = 0;"
            "for (int i = 0; i < 4; i++) {"
            "  switch (i) { case 2: s += 100; break; default: s += 1; }"
            "}"
            "return s;"
        ) == 103

    def test_continue_skips_switch(self):
        assert expr_main(
            "int s = 0;"
            "for (int i = 0; i < 4; i++) {"
            "  if (i == 1) continue;"
            "  s += i;"
            "}"
            "return s;"
        ) == 5

    def test_nested_while_break_only_inner(self):
        assert expr_main(
            "int n = 0;"
            "int i = 0;"
            "while (i < 3) {"
            "  int j = 0;"
            "  while (1) { j++; if (j == 2) break; }"
            "  n += j; i++;"
            "}"
            "return n;"
        ) == 6

    def test_dead_code_after_return_dropped(self):
        assert expr_main("return 4; return 9;") == 4

    def test_empty_switch(self):
        assert expr_main("switch (argc) { } return 3;") == 3


class TestDeviationsAreEnforced:
    def test_pointer_global_init_rejected(self):
        with pytest.raises(SemanticError):
            compile_c('char *msg = "hi"; int main(int a, char **v) { return 0; }',
                      "t")

    def test_string_into_non_char_array_rejected(self):
        with pytest.raises(SemanticError):
            compile_c('int x[4] = "abc"; int main(int a, char **v) { return 0; }',
                      "t")

    def test_whole_struct_assignment_rejected(self):
        with pytest.raises(SemanticError):
            compile_c(
                "struct S { int v; };"
                "int main(int a, char **v) {"
                " struct S x; struct S y; x.v = 1; y = x; return y.v; }",
                "t",
            )
