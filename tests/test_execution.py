"""Tests for the four execution mechanisms against a shared target."""

import pytest

from repro.execution import (
    ClosureXExecutor,
    ForkServerExecutor,
    FreshProcessExecutor,
    NaivePersistentExecutor,
)
from repro.minic import compile_c
from repro.passes import PassManager, baseline_passes, closurex_passes, persistent_passes
from repro.runtime.harness import IterationStatus
from repro.sim_os import Kernel
from repro.vm import TrapKind

SOURCE = r"""
int counter;
char last[8];

int main(int argc, char **argv) {
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    char buf[16];
    long n = fread(buf, 1, 16, f);
    if (n < 1) { exit(2); }
    counter++;
    last[0] = buf[0];
    char *scratch = (char*)malloc(32);
    scratch[0] = buf[0];
    if (buf[0] == 'X') {
        int *p = NULL;
        *p = 1;
    }
    if (buf[0] == 'L') { return counter; }  /* leaks scratch + f */
    fclose(f);
    free(scratch);
    return counter;
}
"""

IMAGE = 500_000


def _module(kind):
    module = compile_c(SOURCE, "exec-test")
    pipeline = {
        "baseline": baseline_passes,
        "persistent": persistent_passes,
        "closurex": closurex_passes,
    }[kind]
    PassManager(pipeline(11)).run(module)
    return module


@pytest.fixture
def fresh():
    return FreshProcessExecutor(_module("baseline"), IMAGE, Kernel())


@pytest.fixture
def forkserver():
    executor = ForkServerExecutor(_module("baseline"), IMAGE, Kernel())
    executor.boot()
    return executor


@pytest.fixture
def persistent():
    executor = NaivePersistentExecutor(_module("persistent"), IMAGE, Kernel())
    executor.boot()
    return executor


@pytest.fixture
def closurex():
    executor = ClosureXExecutor(_module("closurex"), IMAGE, Kernel())
    executor.boot()
    return executor


class TestBasicBehaviour:
    def test_all_mechanisms_agree_on_clean_input(
        self, fresh, forkserver, persistent, closurex
    ):
        for executor in (fresh, forkserver, persistent, closurex):
            result = executor.run(b"hello")
            assert result.status in (IterationStatus.OK, IterationStatus.EXIT)
            assert result.return_code == 1  # first run: counter == 1

    def test_all_mechanisms_see_the_crash(
        self, fresh, forkserver, persistent, closurex
    ):
        for executor in (fresh, forkserver, persistent, closurex):
            result = executor.run(b"X boom")
            assert result.is_crash
            assert result.trap.kind is TrapKind.NULL_DEREF

    def test_coverage_populated(self, forkserver):
        result = forkserver.run(b"hello")
        assert sum(1 for b in result.coverage if b) > 3


class TestIsolationSemantics:
    def test_fresh_and_forkserver_isolate_counter(self, fresh, forkserver):
        for executor in (fresh, forkserver):
            first = executor.run(b"aaaa")
            second = executor.run(b"aaaa")
            assert first.return_code == second.return_code == 1

    def test_closurex_isolates_counter(self, closurex):
        first = closurex.run(b"aaaa")
        second = closurex.run(b"aaaa")
        assert first.return_code == second.return_code == 1

    def test_persistent_pollutes_counter(self, persistent):
        first = persistent.run(b"aaaa")
        second = persistent.run(b"aaaa")
        assert first.return_code == 1
        assert second.return_code == 2  # stale global: the paper's point

    def test_persistent_accumulates_leaks(self, persistent):
        for _ in range(6):
            persistent.run(b"L leak")
        assert persistent.pollution.peak_leaked_chunks >= 6
        assert persistent.pollution.peak_open_fds >= 6
        assert persistent.pollution.dirty_global_iterations > 0

    def test_closurex_sweeps_leaks(self, closurex):
        for _ in range(6):
            closurex.run(b"L leak")
        harness = closurex.harness
        assert harness.vm.heap.live_chunk_count() == 0
        assert harness.vm.fd_table.open_handle_count() == 0


class TestRespawnBehaviour:
    def test_persistent_respawns_on_exit(self, persistent):
        result = persistent.run(b"")
        assert result.status is IterationStatus.PROCESS_EXIT
        assert persistent.stats.respawns == 1
        # pollution cleared by the respawn:
        after = persistent.run(b"aaaa")
        assert after.return_code == 1

    def test_closurex_survives_exit_without_respawn(self, closurex):
        result = closurex.run(b"")
        assert result.status is IterationStatus.EXIT
        assert closurex.stats.respawns == 0

    def test_closurex_respawns_on_crash(self, closurex):
        closurex.run(b"X boom")
        assert closurex.stats.respawns == 1
        after = closurex.run(b"aaaa")
        assert after.return_code == 1


class TestCostOrdering:
    def test_mechanism_spectrum(self, fresh, forkserver, persistent, closurex):
        """Per-exec cost: fresh >> forkserver > closurex ~ persistent."""
        def average_ns(executor, runs=8):
            start = executor.clock.now_ns
            for _ in range(runs):
                executor.run(b"hello")
            return (executor.clock.now_ns - start) / runs

        fresh_ns = average_ns(fresh)
        fork_ns = average_ns(forkserver)
        closurex_ns = average_ns(closurex)
        persistent_ns = average_ns(persistent)
        assert fresh_ns > 3 * fork_ns
        assert fork_ns > 1.5 * closurex_ns
        assert closurex_ns < 2 * persistent_ns

    def test_stats_observe(self, closurex):
        closurex.run(b"hello")
        closurex.run(b"")
        closurex.run(b"X crash")
        stats = closurex.stats
        assert stats.execs == 3
        assert stats.normal_returns == 1
        assert stats.clean_exits == 1
        assert stats.crashes == 1
        assert stats.execs_per_virtual_second() > 0
