"""The fuzzing service: admission, robustness ladder, crash recovery.

The centrepiece is the golden ``kill -9`` family: a server is hard-
killed mid-job and restarted, and every accepted job must complete with
a digest bit-identical to the uninterrupted run — under three
different service-plane chaos plans.  The invariant that makes this
testable at all: service faults cost wall time, never virtual time, so
a job's digest is a pure function of ``(target, mechanism, seed,
budget_ns)`` regardless of what the service suffered.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.chaos.plan import FaultPlan, FaultSite, FaultSpec
from repro.execution import SupervisedExecutor
from repro.experiments.campaign_runner import build_executor
from repro.fuzzing import Campaign, CampaignConfig
from repro.service import (
    FuzzService,
    JobScheduler,
    JobSpec,
    QuotaExceeded,
    QuotaLedger,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServicePolicy,
)
from repro.service.protocol import decode_frame, encode_frame
from repro.service.recovery import JobJournal, ServiceState
from repro.sim_os import Kernel
from repro.targets import get_target

SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")


# -- references ----------------------------------------------------------

def direct_digest(target: str, seed: int, budget_ns: int) -> str:
    """The uninterrupted, unserved reference digest for one job."""
    kernel = Kernel()
    executor = SupervisedExecutor(build_executor(target, "closurex", kernel))
    config = CampaignConfig(budget_ns=budget_ns, seed=seed)
    campaign = Campaign(executor, get_target(target).seeds, config)
    campaign.start()
    campaign.step_until(campaign.run_start_ns + budget_ns)
    campaign.finish_run()
    return campaign.state_digest()


def fast_policy(**overrides) -> ServicePolicy:
    defaults = dict(
        slice_ns=1_000_000,
        checkpoint_every_slices=2,
        backoff_base_s=0.001,
        backoff_cap_s=0.01,
    )
    defaults.update(overrides)
    return ServicePolicy(**defaults)


async def start_service(state_dir, **config_overrides):
    config_kwargs = dict(
        state_dir=str(state_dir), workers=2, policy=fast_policy(),
        reconcile_s=0.05,
    )
    config_kwargs.update(config_overrides)
    service = FuzzService(ServiceConfig(**config_kwargs))
    task = asyncio.ensure_future(service.run())
    await service.started.wait()
    return service, task


async def stop_service(service, task):
    service.request_stop()
    await task


async def submit_and_finish(client, params):
    """Submit one job and watch it to its terminal row."""
    accepted = await client.call("submit", params)
    return await client.call("watch", {"job_id": accepted["job_id"]})


# -- quota ledger units --------------------------------------------------

def test_ledger_two_phase_accounting():
    ledger = QuotaLedger(default_quota_ns=100)
    ledger.reserve("t", "j1", 60)
    account = ledger.account("t")
    assert account.reserved_ns == 60 and account.available_ns == 40
    ledger.charge("t", "j1", 25)
    assert account.consumed_ns == 25 and account.reserved_ns == 35
    # Monotone: a replayed slice re-reports an already-billed instant.
    ledger.charge("t", "j1", 25)
    ledger.charge("t", "j1", 10)
    assert account.consumed_ns == 25
    ledger.charge("t", "j1", 60)
    assert account.consumed_ns == 60 and account.reserved_ns == 0
    ledger.settle("t", "j1", 60)
    assert account.completed == 1 and account.available_ns == 40


def test_ledger_rejects_over_quota_and_counts():
    ledger = QuotaLedger(default_quota_ns=100, tenant_quotas={"vip": 1000})
    ledger.reserve("t", "j1", 80)
    with pytest.raises(QuotaExceeded) as info:
        ledger.reserve("t", "j2", 30)
    assert info.value.available_ns == 20
    assert ledger.account("t").rejected_quota == 1
    ledger.reserve("vip", "j3", 900)   # per-tenant override
    ledger.reserve("t", "j4", 20, force=True)  # replay bypasses the gate


def test_ledger_quarantine_refunds_reservation():
    ledger = QuotaLedger(default_quota_ns=100)
    ledger.reserve("t", "j1", 60)
    ledger.charge("t", "j1", 10)
    ledger.settle("t", "j1", 60, quarantined=True)
    account = ledger.account("t")
    assert account.quarantined == 1 and account.reserved_ns == 0
    assert account.available_ns == 90


# -- protocol / spec units -----------------------------------------------

def test_protocol_frame_round_trip():
    frame = {"id": 3, "method": "submit", "params": {"tenant": "t"}}
    assert decode_frame(encode_frame(frame).rstrip(b"\n")) == frame
    with pytest.raises(Exception):
        decode_frame(b"not json")
    with pytest.raises(Exception):
        decode_frame(b"[1,2]")


def test_job_spec_validation():
    good = JobSpec.from_params(
        {"tenant": "t", "target": "md4c", "budget_ns": 1000}
    )
    assert good.mechanism == "closurex" and good.to_wire()["tenant"] == "t"
    for params in (
        {"tenant": "t", "target": "md4c"},                    # missing
        {"tenant": "t", "target": "nope", "budget_ns": 1},    # target
        {"tenant": "", "target": "md4c", "budget_ns": 1},     # tenant
        {"tenant": "t", "target": "md4c", "budget_ns": 0},    # budget
        {"tenant": "t", "target": "md4c", "budget_ns": 1,
         "mechanism": "nope"},                                # mechanism
        {"tenant": "t", "target": "md4c", "budget_ns": 1,
         "bogus": 1},                                         # unknown
    ):
        with pytest.raises(ValueError):
            JobSpec.from_params(params)


def test_scheduler_id_sequence_survives_recovery():
    scheduler = JobScheduler(max_queued=4)
    assert scheduler.next_job_id() == "job-0001"
    scheduler.note_recovered_id("job-0007")
    assert scheduler.next_job_id() == "job-0008"


def test_journal_torn_tail_is_dropped(tmp_path):
    journal = JobJournal(str(tmp_path / "j.jsonl"))
    journal.append({"kind": "accepted", "job_id": "job-0001"})
    journal.append({"kind": "completed", "job_id": "job-0001"})
    with open(journal.path, "a", encoding="utf-8") as handle:
        handle.write('{"kind": "accepted", "job_id": "jo')  # torn
    records = journal.read()
    assert [r["kind"] for r in records] == ["accepted", "completed"]


# -- end-to-end over the wire --------------------------------------------

def test_service_end_to_end_digest_matches_direct(tmp_path):
    """A served job equals the same campaign run directly: same digest,
    and the stream carried real progress samples."""
    async def main():
        service, task = await start_service(tmp_path)
        client = await ServiceClient.connect(*service.endpoint)
        samples = []
        accepted = await client.call("submit", {
            "tenant": "acme", "target": "md4c", "budget_ns": 8_000_000,
            "seed": 5,
        })
        final = await client.call(
            "watch", {"job_id": accepted["job_id"]},
            lambda method, params: samples.append((method, params)),
        )
        stats = await client.call("stats", {"job_id": accepted["job_id"]})
        status = await client.call("status", {})
        await client.close()
        await stop_service(service, task)
        return final, samples, stats, status

    final, samples, stats, status = asyncio.run(main())
    assert final["state"] == "done"
    assert final["digest"] == direct_digest("md4c", 5, 8_000_000)
    assert samples and all(m == "job.sample" for m, _ in samples)
    assert samples[-1][1]["execs"] == final["execs"] > 0
    assert stats["fuzzer_stats"]["execs_done"] == final["execs"]
    assert stats["fuzzer_stats"]["paths_total"] > 0
    (tenant,) = status["tenants"]
    assert tenant["tenant"] == "acme"
    assert tenant["consumed_ns"] >= 8_000_000
    assert tenant["reserved_ns"] == 0 and tenant["completed"] == 1


def test_service_multi_tenant_accounting_and_quota_rejection(tmp_path):
    async def main():
        service, task = await start_service(
            tmp_path, default_quota_ns=10_000_000,
            tenant_quotas={"big": 50_000_000},
        )
        client = await ServiceClient.connect(*service.endpoint)
        ok = await client.call("submit", {
            "tenant": "small", "target": "md4c", "budget_ns": 8_000_000,
        })
        try:
            await client.call("submit", {
                "tenant": "small", "target": "md4c",
                "budget_ns": 8_000_000, "seed": 1,
            })
            rejection = None
        except ServiceError as error:
            rejection = error
        big = await client.call("submit", {
            "tenant": "big", "target": "md4c", "budget_ns": 20_000_000,
            "seed": 2,
        })
        await client.call("watch", {"job_id": ok["job_id"]})
        await client.call("watch", {"job_id": big["job_id"]})
        tenants = (await client.call("tenants", {}))["tenants"]
        await client.close()
        await stop_service(service, task)
        return rejection, tenants

    rejection, tenants = asyncio.run(main())
    assert rejection is not None and rejection.code == "QUOTA_EXCEEDED"
    assert rejection.retry_after_ms is not None
    by_tenant = {row["tenant"]: row for row in tenants}
    assert by_tenant["small"]["rejected_quota"] == 1
    assert by_tenant["small"]["completed"] == 1
    assert by_tenant["big"]["completed"] == 1
    assert by_tenant["big"]["quota_ns"] == 50_000_000


def test_service_queue_full_backpressure(tmp_path):
    async def main():
        # No workers: the first job sits in the queue, making the
        # bound deterministic rather than a race with completion.
        service, task = await start_service(
            tmp_path, workers=0, max_queued=1, retry_after_ms=123,
        )
        client = await ServiceClient.connect(*service.endpoint)
        await client.call("submit", {
            "tenant": "t", "target": "md4c", "budget_ns": 6_000_000,
        })
        try:
            await client.call("submit", {
                "tenant": "t", "target": "md4c", "budget_ns": 6_000_000,
                "seed": 1,
            })
            rejection = None
        except ServiceError as error:
            rejection = error
        tenants = (await client.call("tenants", {}))["tenants"]
        await client.close()
        await stop_service(service, task)
        return rejection, tenants

    rejection, tenants = asyncio.run(main())
    assert rejection is not None and rejection.code == "QUEUE_FULL"
    assert rejection.retry_after_ms == 123
    assert tenants[0]["rejected_queue"] == 1


def test_service_rejects_unknown_method_job_and_draining(tmp_path):
    async def main():
        service, task = await start_service(tmp_path)
        client = await ServiceClient.connect(*service.endpoint)
        codes = []
        for method, params in (
            ("frobnicate", {}),
            ("status", {"job_id": "job-9999"}),
            ("submit", {"tenant": "t", "target": "nope", "budget_ns": 1}),
        ):
            try:
                await client.call(method, params)
            except ServiceError as error:
                codes.append(error.code)
        service.draining = True
        try:
            await client.call("submit", {
                "tenant": "t", "target": "md4c", "budget_ns": 1_000_000,
            })
        except ServiceError as error:
            codes.append(error.code)
        await client.close()
        await stop_service(service, task)
        return codes

    assert asyncio.run(main()) == [
        "UNKNOWN_METHOD", "UNKNOWN_JOB", "BAD_REQUEST", "DRAINING",
    ]


# -- the degradation ladder under chaos ----------------------------------

def _plan(*specs) -> FaultPlan:
    return FaultPlan(specs=[FaultSpec(site, occ) for site, occ in specs])


def test_worker_wedge_restart_step_preserves_digest(tmp_path):
    """Rung 1: a wedged slice is retried from the checkpoint and the
    job still lands on the clean digest."""
    async def main():
        service, task = await start_service(
            tmp_path,
            chaos_plan=_plan((FaultSite.WORKER_WEDGE, 1)),
        )
        client = await ServiceClient.connect(*service.endpoint)
        final = await submit_and_finish(client, {
            "tenant": "t", "target": "md4c", "budget_ns": 8_000_000,
            "seed": 5,
        })
        await client.close()
        await stop_service(service, task)
        return final

    final = asyncio.run(main())
    assert final["state"] == "done"
    assert final["strikes"] == 1 and final["step_restarts"] == 1
    assert final["digest"] == direct_digest("md4c", 5, 8_000_000)


def test_worker_wedge_escalates_to_respawn_then_completes(tmp_path):
    """Rung 2: strikes past the restart limit replace the worker; the
    job resumes on the fresh worker and still matches the clean run."""
    async def main():
        service, task = await start_service(
            tmp_path,
            workers=1,
            chaos_plan=_plan(
                (FaultSite.WORKER_WEDGE, 0),
                (FaultSite.WORKER_WEDGE, 1),
                (FaultSite.WORKER_WEDGE, 2),
            ),
            policy=fast_policy(restart_step_limit=2, max_respawns=1),
        )
        client = await ServiceClient.connect(*service.endpoint)
        final = await submit_and_finish(client, {
            "tenant": "t", "target": "md4c", "budget_ns": 8_000_000,
            "seed": 5,
        })
        respawns = service.pool.respawns
        await client.close()
        await stop_service(service, task)
        return final, respawns

    final, respawns = asyncio.run(main())
    assert final["state"] == "done"
    assert final["respawns"] == 1 and respawns == 1
    assert final["digest"] == direct_digest("md4c", 5, 8_000_000)


def test_worker_wedge_exhausts_ladder_into_quarantine(tmp_path):
    """Rung 3: a job that wedges on every attempt is quarantined and
    its unconsumed quota refunded."""
    async def main():
        service, task = await start_service(
            tmp_path,
            workers=1,
            chaos_plan=_plan(
                *[(FaultSite.WORKER_WEDGE, occ) for occ in range(8)]
            ),
            policy=fast_policy(restart_step_limit=1, max_respawns=1),
        )
        client = await ServiceClient.connect(*service.endpoint)
        final = await submit_and_finish(client, {
            "tenant": "t", "target": "md4c", "budget_ns": 8_000_000,
        })
        tenants = (await client.call("tenants", {}))["tenants"]
        await client.close()
        await stop_service(service, task)
        return final, tenants

    final, tenants = asyncio.run(main())
    assert final["state"] == "quarantined"
    assert final["quarantine_reason"] == "worker-wedge"
    assert tenants[0]["quarantined"] == 1
    assert tenants[0]["reserved_ns"] == 0
    assert tenants[0]["available_ns"] > 0


def test_queue_drop_is_healed_by_reconcile(tmp_path):
    """A dispatch eaten by the chaos plane is re-enqueued by the
    reconcile pass — the journal, not the queue, is authoritative."""
    async def main():
        service, task = await start_service(
            tmp_path,
            chaos_plan=_plan((FaultSite.JOB_QUEUE_DROP, 0)),
        )
        client = await ServiceClient.connect(*service.endpoint)
        final = await submit_and_finish(client, {
            "tenant": "t", "target": "md4c", "budget_ns": 6_000_000,
            "seed": 5,
        })
        drops = service.scheduler.queue_drops_recovered
        await client.close()
        await stop_service(service, task)
        return final, drops

    final, drops = asyncio.run(main())
    assert final["state"] == "done" and drops == 1
    assert final["digest"] == direct_digest("md4c", 5, 6_000_000)


def test_torn_checkpoint_falls_back_a_generation(tmp_path):
    """``ckpt-torn`` then a wedge: the reload must fall back past the
    torn generation (or restart from scratch) and still hit the clean
    digest."""
    async def main():
        service, task = await start_service(
            tmp_path,
            chaos_plan=_plan(
                (FaultSite.CKPT_TORN, 0),
                (FaultSite.WORKER_WEDGE, 2),
            ),
        )
        client = await ServiceClient.connect(*service.endpoint)
        final = await submit_and_finish(client, {
            "tenant": "t", "target": "md4c", "budget_ns": 10_000_000,
            "seed": 5,
        })
        await client.close()
        await stop_service(service, task)
        return final

    final = asyncio.run(main())
    assert final["state"] == "done" and final["strikes"] == 1
    assert final["digest"] == direct_digest("md4c", 5, 10_000_000)


def test_clock_overrun_bills_service_side_only(tmp_path):
    """``clock-overrun`` charges the tenant an extra slice but never
    perturbs the campaign's virtual timeline (digest unchanged)."""
    async def main():
        service, task = await start_service(
            tmp_path,
            chaos_plan=_plan((FaultSite.CLOCK_OVERRUN, 2)),
        )
        client = await ServiceClient.connect(*service.endpoint)
        final = await submit_and_finish(client, {
            "tenant": "t", "target": "md4c", "budget_ns": 8_000_000,
            "seed": 5,
        })
        tenants = (await client.call("tenants", {}))["tenants"]
        await client.close()
        await stop_service(service, task)
        return final, tenants

    final, tenants = asyncio.run(main())
    assert final["state"] == "done"
    assert final["overrun_ns"] == 1_000_000
    assert tenants[0]["overrun_ns"] == 1_000_000
    # Actual consumption = final virtual clock (may overshoot the
    # budget by a partial queue cycle) + the billed overrun slice.
    assert tenants[0]["consumed_ns"] >= 8_000_000 + 1_000_000
    assert final["digest"] == direct_digest("md4c", 5, 8_000_000)


# -- crash recovery ------------------------------------------------------

def test_in_process_crash_recovery_resumes_bit_identical(tmp_path):
    """Abandon a server mid-job (the in-process analogue of SIGKILL:
    workers cancelled between slices, nothing settled) and restart over
    the same state dir: every accepted job completes with the clean
    digest, and the second server reports them recovered."""
    async def main():
        service, task = await start_service(tmp_path, workers=2)
        client = await ServiceClient.connect(*service.endpoint)
        jobs = []
        for seed, budget in ((5, 40_000_000), (9, 30_000_000)):
            accepted = await client.call("submit", {
                "tenant": "t", "target": "md4c", "budget_ns": budget,
                "seed": seed,
            })
            jobs.append(accepted["job_id"])
        # Detect progress by inspecting the scheduler directly: an RPC
        # round trip is slow relative to worker slices and would let
        # the jobs run to completion before the "crash".
        while not any(
            job.execs > 0 for job in service.scheduler.jobs.values()
        ):
            await asyncio.sleep(0.01)
        await client.close()
        await stop_service(service, task)   # hard abort, no drain

        revived, task2 = await start_service(tmp_path, workers=2)
        assert revived.recovered_jobs == 2   # killed mid-flight
        client2 = await ServiceClient.connect(*revived.endpoint)
        finals = [
            await client2.call("watch", {"job_id": job_id})
            for job_id in jobs
        ]
        await client2.close()
        await stop_service(revived, task2)
        return finals

    finals = asyncio.run(main())
    assert [f["state"] for f in finals] == ["done", "done"]
    assert finals[0]["digest"] == direct_digest("md4c", 5, 40_000_000)
    assert finals[1]["digest"] == direct_digest("md4c", 9, 30_000_000)
    assert any(f["resumed"] for f in finals)


def test_terminal_jobs_survive_restart_without_rerun(tmp_path):
    """Completed rows (digest included) come back from the journal; the
    restarted server re-runs nothing and accounting is reconstructed."""
    async def main():
        service, task = await start_service(tmp_path)
        client = await ServiceClient.connect(*service.endpoint)
        final = await submit_and_finish(client, {
            "tenant": "t", "target": "md4c", "budget_ns": 6_000_000,
        })
        await client.close()
        await stop_service(service, task)

        revived, task2 = await start_service(tmp_path)
        client2 = await ServiceClient.connect(*revived.endpoint)
        row = await client2.call("status", {"job_id": final["job_id"]})
        tenants = (await client2.call("tenants", {}))["tenants"]
        recovered = revived.recovered_jobs
        await client2.close()
        await stop_service(revived, task2)
        return final, row, tenants, recovered

    final, row, tenants, recovered = asyncio.run(main())
    assert recovered == 0
    assert row["state"] == "done" and row["digest"] == final["digest"]
    assert tenants[0]["completed"] == 1 and tenants[0]["reserved_ns"] == 0


# -- the golden kill -9 family -------------------------------------------

SERVICE_JOBS = [
    {"tenant": "t1", "target": "md4c", "budget_ns": 30_000_000, "seed": 0},
    {"tenant": "t1", "target": "zlib", "budget_ns": 30_000_000,
     "seed": 7},
    {"tenant": "t2", "target": "md4c", "budget_ns": 25_000_000, "seed": 3},
]


def _serve(state_dir: str, chaos_seed: int | None = None,
           chaos_faults: int = 0) -> subprocess.Popen:
    cmd = [
        sys.executable, "-m", "repro.service", "serve",
        "--state-dir", state_dir, "--workers", "2",
        "--slice-ns", "1000000", "--checkpoint-every-slices", "2",
    ]
    if chaos_faults:
        cmd += ["--chaos-seed", str(chaos_seed),
                "--chaos-faults", str(chaos_faults)]
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    return subprocess.Popen(
        cmd, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _wait_endpoint(state_dir: str, timeout_s: float = 60.0):
    state = ServiceState(state_dir)
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            return state.read_endpoint()
        except (FileNotFoundError, json.JSONDecodeError, KeyError):
            time.sleep(0.05)
    raise AssertionError("server never advertised an endpoint")


async def _drive_to_completion(host, port, job_ids, timeout_s=120.0):
    client = await ServiceClient.connect(host, port)
    try:
        deadline = time.monotonic() + timeout_s
        while True:
            rows = {}
            for job_id in job_ids:
                rows[job_id] = await client.call(
                    "status", {"job_id": job_id}
                )
            if all(
                row["state"] in ("done", "quarantined")
                for row in rows.values()
            ):
                return rows
            if time.monotonic() > deadline:
                raise AssertionError(f"jobs never finished: {rows}")
            await asyncio.sleep(0.1)
    finally:
        await client.close()


@pytest.mark.parametrize("chaos_seed", [101, 202, 303])
def test_kill9_recovery_is_bit_identical(tmp_path, chaos_seed):
    """The acceptance criterion: SIGKILL the serving process after
    acceptance, restart it over the same state dir, and every accepted
    job completes with a digest bit-identical to the uninterrupted
    (unserved) reference — under three different service-chaos plans."""
    golden = {
        f"job-{i:04d}": direct_digest(
            job["target"], job["seed"], job["budget_ns"]
        )
        for i, job in enumerate(SERVICE_JOBS, start=1)
    }
    state_dir = str(tmp_path / "state")
    server = _serve(state_dir, chaos_seed=chaos_seed, chaos_faults=6)
    try:
        host, port = _wait_endpoint(state_dir)

        async def submit_all():
            client = await ServiceClient.connect(host, port)
            try:
                ids = []
                for job in SERVICE_JOBS:
                    accepted = await client.call("submit", dict(job))
                    ids.append(accepted["job_id"])
                # Wait until some job is visibly mid-run, so the kill
                # lands in the middle of real work.
                while True:
                    status = await client.call("status", {})
                    if any(row["execs"] > 0 for row in status["jobs"]):
                        return ids
                    await asyncio.sleep(0.02)
            finally:
                await client.close()

        job_ids = asyncio.run(submit_all())
        assert sorted(job_ids) == sorted(golden)

        os.kill(server.pid, signal.SIGKILL)
        server.wait(timeout=30)
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)

    # A stale endpoint file must not point the client at the corpse.
    os.unlink(os.path.join(state_dir, "endpoint.json"))
    server = _serve(state_dir, chaos_seed=chaos_seed, chaos_faults=6)
    try:
        host, port = _wait_endpoint(state_dir)
        rows = asyncio.run(_drive_to_completion(host, port, job_ids))
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)

    for job_id, row in rows.items():
        assert row["state"] == "done", row
        assert row["digest"] == golden[job_id], (
            f"{job_id} diverged after kill -9 + recovery"
        )
    # No accepted job was duplicated or invented by recovery.
    journal = JobJournal(os.path.join(state_dir, "journal.jsonl"))
    accepted = [r for r in journal.read() if r["kind"] == "accepted"]
    assert [r["job_id"] for r in accepted] == sorted(golden)
