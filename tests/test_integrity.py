"""Tests for the state-integrity sentinel (:mod:`repro.integrity`).

Covers: structural state digests (determinism, pickling, per-dimension
sensitivity), the restore oracle's detect -> targeted-repair loop for
every silent sabotage site, shadow differential detection of semantic
divergence with ground-truth quarantine, escalation through the
supervised ladder when in-place repair cannot heal the process, the
``analysis.contradiction`` path when a leak lands in a proven-clean
dimension, the golden chaos campaign whose coverage stays bit-identical
to an uninjected run, and the sentinel-disabled regression guard that
proves the sabotage sites really do corrupt results when nobody is
watching.
"""

import json
import pickle

import pytest

from repro.analysis.pollution import (
    DIMENSIONS,
    DimensionFinding,
    PollutionReport,
)
from repro.chaos import FaultInjector, FaultPlan, FaultSite, FaultSpec
from repro.execution import ClosureXExecutor, SupervisedExecutor
from repro.fuzzing.coverage import VirginMap, coverage_signature
from repro.integrity import (
    EscalationPolicy,
    IntegritySentinel,
    RestoreOracle,
    compute_digest,
)
from repro.minic import compile_c
from repro.passes import PassManager, closurex_passes
from repro.runtime.harness import ClosureXHarness, HarnessConfig
from repro.sim_os import Kernel
from repro.telemetry import TelemetryConfig, build_telemetry

#: Pollutes every dimension each exec: bumps a restored global, leaks a
#: heap chunk (``scratch``) and a FILE handle (``g``).  With a working
#: restore the return code is always ``counter + 1 == 1``.
SOURCE_LEAKY = r"""
int counter;

int main(int argc, char **argv) {
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    char buf[16];
    long n = fread(buf, 1, 16, f);
    if (n < 1) { exit(2); }
    counter++;
    char *scratch = (char*)malloc(32);
    scratch[0] = buf[0];
    char *g = fopen(argv[1], "r");
    if (buf[0] == 'X') {
        int *p = NULL;
        *p = 1;
    }
    fclose(f);
    return counter;
}
"""

#: Semantic pollution the digest is structurally blind to: the target
#: mutates the *contents* of an init-phase heap chunk, flipping later
#: executions onto a path no fresh process would take.  Only the shadow
#: differ catches this.
SOURCE_STICKY = r"""
char *state;

void setup() {
    state = (char*)malloc(4);
    state[0] = 0;
}

int main(int argc, char **argv) {
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    char buf[8];
    long n = fread(buf, 1, 8, f);
    fclose(f);
    if (state[0] == 7) { return 42; }
    if (n > 0) {
        if (buf[0] == 'P') { state[0] = 7; }
    }
    return 1;
}
"""

#: Owns one init-phase heap chunk that ``main`` never touches — the
#: escalation test frees it behind the chunk map's back, a corruption
#: no targeted sweep can repair.
SOURCE_INIT = r"""
char *cache;

void setup() {
    cache = (char*)malloc(8);
    cache[0] = 1;
}

int main(int argc, char **argv) {
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    char buf[8];
    long n = fread(buf, 1, 8, f);
    fclose(f);
    return (int)n;
}
"""

IMAGE = 500_000

STICKY_CONFIG = dict(deferred_init_functions=("setup",))


def _module(source, name):
    module = compile_c(source, name)
    PassManager(closurex_passes(11)).run(module)
    return module


def _booted_harness(source=SOURCE_LEAKY, name="digest-leaky", config=None,
                    faults=None):
    counters = {"faults": faults} if faults is not None else None
    harness = ClosureXHarness(
        _module(source, name), config=config, vm_counters=counters
    )
    harness.boot()
    return harness


def _supervised(source, name, *, plan=None, policy=None, config=None,
                telemetry=None, bundle_path=None):
    """Sentinel-guarded ClosureX executor under the supervised ladder —
    the full production stack the acceptance criteria describe."""
    kernel = Kernel()
    sentinel = IntegritySentinel(
        policy if policy is not None
        else EscalationPolicy(digest_every=1, shadow_every=0),
        bundle_path=bundle_path,
    )
    inner = ClosureXExecutor(
        _module(source, name), IMAGE, kernel, config=config, sentinel=sentinel
    )
    injector = (
        FaultInjector(plan, clock=kernel.clock) if plan is not None else None
    )
    executor = SupervisedExecutor(inner, injector=injector)
    if telemetry is not None:
        executor.attach_telemetry(telemetry)
    executor.boot()
    return executor, sentinel, inner


class TestStateDigest:
    def test_digest_is_deterministic(self):
        harness = _booted_harness()
        first = compute_digest(harness)
        second = compute_digest(harness)
        assert first == second
        assert hash(first) == hash(second)
        assert first.diff(second) == ()

    def test_digest_identical_across_processes(self):
        a = compute_digest(_booted_harness(name="proc-a"))
        b = compute_digest(_booted_harness(name="proc-b"))
        assert a == b

    def test_digest_pickle_round_trip(self):
        digest = compute_digest(_booted_harness())
        clone = pickle.loads(pickle.dumps(digest))
        assert clone == digest
        assert hash(clone) == hash(digest)
        for dimension in DIMENSIONS:
            assert clone.value(dimension) == digest.value(dimension)

    def test_unrestored_run_perturbs_tracked_dimensions(self):
        harness = _booted_harness()
        oracle = RestoreOracle()
        oracle.capture_baseline(harness)
        harness.run_test_case(b"hello", restore=False)
        verdict = oracle.check(harness)
        assert not verdict.clean
        for dimension in ("heap", "file", "global"):
            assert dimension in verdict.leaked_dimensions

    def test_restored_run_matches_baseline(self):
        """The paper's correctness claim, checked digest-for-digest:
        after fine-grain restoration every dimension equals pristine."""
        harness = _booted_harness()
        oracle = RestoreOracle()
        oracle.capture_baseline(harness)
        for data in (b"hello", b"world", b"longer-input-here"):
            harness.run_test_case(data)
            assert oracle.check(harness).clean

    def test_digest_and_baseline_costs_are_charged(self):
        harness = _booted_harness()
        oracle = RestoreOracle()
        assert oracle.capture_baseline(harness) > 0
        assert oracle.check(harness).cost_ns > 0


class TestRestoreOracle:
    """Harness-level detect -> targeted repair for every sabotage site."""

    CASES = [
        (FaultSite.SKIP_HEAP_SWEEP, ("heap",)),
        (FaultSite.LEAK_FD, ("file",)),
        (FaultSite.DIRTY_GLOBAL_BYTE, ("global",)),
        (FaultSite.SKIP_CTX_REWIND, ("exit",)),
    ]

    @pytest.mark.parametrize(
        "site,expected", CASES, ids=[s.value for s, _ in CASES]
    )
    def test_detects_and_repairs_each_dimension(self, site, expected):
        injector = FaultInjector(FaultPlan([FaultSpec(site, 0)]))
        harness = _booted_harness(name=f"oracle-{site.value}", faults=injector)
        oracle = RestoreOracle()
        oracle.capture_baseline(harness)
        harness.run_test_case(b"hello")  # restore silently sabotaged
        verdict = oracle.check(harness)
        assert not verdict.clean
        for dimension in expected:
            assert dimension in verdict.leaked_dimensions
        assert harness.repair_dimensions(verdict.leaked_dimensions) > 0
        assert oracle.check(harness).clean


class TestSentinelHealing:
    """Executor-level: silent sabotage detected within one exec and
    healed in place, campaign results untouched."""

    @pytest.mark.parametrize(
        "site,expected",
        TestRestoreOracle.CASES,
        ids=[s.value for s, _ in TestRestoreOracle.CASES],
    )
    def test_heals_silent_sabotage_within_one_exec(self, site, expected):
        plan = FaultPlan([FaultSpec(site, 1)])
        executor, sentinel, inner = _supervised(
            SOURCE_LEAKY, f"heal-{site.value}", plan=plan
        )
        rcs = [
            executor.run(bytes([97 + i]) + b"-input").return_code
            for i in range(4)
        ]
        assert rcs == [1, 1, 1, 1]
        stats = sentinel.stats
        assert stats.leaks == 1
        assert stats.repairs >= 1
        assert stats.escalations == 0
        assert inner.stats.respawns == 0
        event = sentinel.ledger.events[0]
        assert event.repaired and not event.escalated
        # Occurrence 1 sabotages the second exec's restore; the leak is
        # attributed to exactly that exec, not discovered later.
        assert event.exec_index == 2
        for dimension in expected:
            assert dimension in event.dimensions

    def test_counters_surface_in_telemetry(self):
        telemetry = build_telemetry(
            TelemetryConfig(enabled=True, sink="memory")
        )
        plan = FaultPlan([FaultSpec(FaultSite.SKIP_HEAP_SWEEP, 1)])
        executor, sentinel, _ = _supervised(
            SOURCE_LEAKY, "heal-metrics", plan=plan, telemetry=telemetry
        )
        for i in range(3):
            executor.run(bytes([97 + i]) + b"-input")
        metrics = telemetry.metrics
        assert metrics.counter("integrity.baselines").value >= 1
        assert metrics.counter("integrity.checks").value >= 3
        assert metrics.counter("integrity.leaks").value == 1
        assert metrics.counter("integrity.leak.heap").value == 1
        assert metrics.counter("integrity.repairs").value == 1
        assert sentinel.stats.overhead_ns > 0

    def test_diagnostic_bundle_is_written(self, tmp_path):
        bundle = str(tmp_path / "integrity.jsonl")
        plan = FaultPlan([FaultSpec(FaultSite.LEAK_FD, 0)])
        executor, _, _ = _supervised(
            SOURCE_LEAKY, "heal-bundle", plan=plan, bundle_path=bundle
        )
        executor.run(b"hello")
        with open(bundle) as handle:
            lines = [json.loads(line) for line in handle]
        assert len(lines) == 1
        assert lines[0]["source"] == "oracle"
        assert lines[0]["dimensions"] == ["file"]
        assert lines[0]["repaired"] is True


class TestShadowDiffer:
    def test_semantic_divergence_detected_and_quarantined(self):
        policy = EscalationPolicy(digest_every=1, shadow_every=1)
        executor, sentinel, inner = _supervised(
            SOURCE_STICKY, "shadow-sticky", policy=policy,
            config=HarnessConfig(**STICKY_CONFIG),
        )
        # The poison input behaves identically in persistent and fresh
        # processes (it *sets* the sticky bit on both), so it passes.
        assert executor.run(b"Poison").return_code == 1
        # The next input would answer 42 in the poisoned persistent
        # process; fresh-process ground truth is 1.  The digest cannot
        # see init-chunk contents — only the shadow catches this.
        result = executor.run(b"after")
        assert result.return_code == 1
        assert sentinel.stats.divergences == 1
        assert sentinel.stats.escalations == 1
        assert inner.stats.respawns == 1
        assert len(sentinel.ledger.quarantine) == 1
        shadow_event = next(
            e for e in sentinel.ledger.events if e.source == "shadow"
        )
        assert shadow_event.escalated and not shadow_event.repaired
        # Re-running the quarantined input replays ground truth instead
        # of re-polluting the process.
        assert executor.run(b"after").return_code == 1
        assert sentinel.stats.quarantine_hits >= 1
        # The respawned process serves untainted inputs correctly.
        assert executor.run(b"calm").return_code == 1


class TestEscalation:
    def test_unrepairable_corruption_escalates_to_respawn(self):
        executor, sentinel, inner = _supervised(
            SOURCE_INIT, "escalate-init",
            config=HarnessConfig(**STICKY_CONFIG),
        )
        assert executor.run(b"abc").return_code == 3
        # Corrupt the process behind the chunk map's back: free an
        # init-phase chunk directly.  No targeted sweep can resurrect
        # it, so in-place repair must fail and escalate.
        harness = inner.harness
        address = next(
            a for a, c in harness.chunk_map._chunks.items() if c.init
        )
        harness.vm.heap.free(address, harness.vm.site)
        result = executor.run(b"abcd")
        # The supervised ladder voided the corrupted attempt, respawned
        # the process, and the retry produced the correct answer.
        assert result.return_code == 4
        assert sentinel.stats.repair_failures == 1
        assert sentinel.stats.escalations == 1
        assert inner.stats.respawns == 1
        assert executor.supervision.recovered_by_site.get("restore") == 1
        event = next(e for e in sentinel.ledger.events if e.escalated)
        assert "heap" in event.dimensions
        # The fresh process is clean again; no further leaks.
        assert executor.run(b"ab").return_code == 2
        assert sentinel.stats.leaks == 1


class TestContradiction:
    def test_leak_in_proven_clean_dimension_is_a_contradiction(self):
        # A fabricated pollution proof claims the (actually leaky) heap
        # dimension is clean, so restore_state elides the heap sweep —
        # modelling a wrong static analysis, the one failure a
        # correctness-critical system must surface loudly.
        findings = {
            d: DimensionFinding(d, dirty=(d != "heap")) for d in DIMENSIONS
        }
        report = PollutionReport("leaky", "main", findings=findings)
        telemetry = build_telemetry(
            TelemetryConfig(enabled=True, sink="memory")
        )
        executor, sentinel, _ = _supervised(
            SOURCE_LEAKY, "contradict",
            config=HarnessConfig(pollution=report), telemetry=telemetry,
        )
        rcs = [
            executor.run(data).return_code
            for data in (b"one", b"two", b"three")
        ]
        # The sentinel repairs what the wrong proof skipped: results
        # stay correct even though the analysis lied every exec.
        assert rcs == [1, 1, 1]
        assert sentinel.stats.leaks == 3
        assert sentinel.stats.contradictions == 3
        assert all(
            e.contradictions == ("heap",) for e in sentinel.ledger.events
        )
        assert all(e.repaired for e in sentinel.ledger.events)
        assert telemetry.metrics.counter("analysis.contradiction").value == 3
        assert "contradiction" in sentinel.ledger.events[0].detail


class TestGoldenCampaign:
    """Acceptance criterion: a sabotaged-but-guarded run is
    observationally identical to an unsabotaged one."""

    def _inputs(self):
        return [bytes([ord("a") + (i % 13)]) + b"-seed" for i in range(12)]

    def _coverage_run(self, plan=None, with_sentinel=False):
        kernel = Kernel()
        sentinel = (
            IntegritySentinel(EscalationPolicy(digest_every=1, shadow_every=0))
            if with_sentinel else None
        )
        inner = ClosureXExecutor(
            _module(SOURCE_LEAKY, "golden"), IMAGE, kernel, sentinel=sentinel
        )
        injector = (
            FaultInjector(plan, clock=kernel.clock)
            if plan is not None else None
        )
        executor = SupervisedExecutor(inner, injector=injector)
        executor.boot()
        virgin = VirginMap()
        outcomes = []
        for data in self._inputs():
            result = executor.run(data)
            virgin.observe(result.coverage)
            outcomes.append((
                result.status,
                result.return_code,
                coverage_signature(result.coverage),
            ))
        executor.shutdown()
        return outcomes, virgin.virgin.tobytes(), sentinel

    def test_sabotaged_run_matches_clean_run_bit_for_bit(self):
        clean_outcomes, clean_virgin, _ = self._coverage_run()
        plan = FaultPlan([
            FaultSpec(FaultSite.SKIP_HEAP_SWEEP, 2),
            FaultSpec(FaultSite.LEAK_FD, 5),
            FaultSpec(FaultSite.DIRTY_GLOBAL_BYTE, 9),
        ])
        outcomes, virgin, sentinel = self._coverage_run(
            plan=plan, with_sentinel=True
        )
        assert outcomes == clean_outcomes
        assert virgin == clean_virgin
        assert sentinel.stats.leaks == 3
        assert all(e.repaired for e in sentinel.ledger.events)
        # Every sabotage is caught at the very exec whose restore it
        # corrupted (occurrence N sabotages exec N+1's restore).
        assert [e.exec_index for e in sentinel.ledger.events] == [3, 6, 10]


class TestSentinelDisabledRegression:
    """Without the sentinel the sabotage sites *do* corrupt campaign
    results — the regression guard that keeps the chaos sites honest."""

    PLAN = [FaultSpec(FaultSite.DIRTY_GLOBAL_BYTE, 0)]

    def test_sabotage_without_sentinel_corrupts_results(self):
        kernel = Kernel()
        inner = ClosureXExecutor(
            _module(SOURCE_LEAKY, "unguarded"), IMAGE, kernel
        )
        inner.attach_faults(
            FaultInjector(FaultPlan(list(self.PLAN)), clock=kernel.clock)
        )
        inner.boot()
        rcs = [
            inner.run(data).return_code for data in (b"one", b"two", b"three")
        ]
        # The first exec's restore flipped a byte of the global section:
        # the second exec reports a counter no fresh process ever held.
        assert rcs[0] == 1 and rcs[2] == 1
        assert rcs[1] != 1

    def test_same_plan_with_sentinel_stays_correct(self):
        executor, sentinel, _ = _supervised(
            SOURCE_LEAKY, "guarded", plan=FaultPlan(list(self.PLAN))
        )
        rcs = [
            executor.run(data).return_code
            for data in (b"one", b"two", b"three")
        ]
        assert rcs == [1, 1, 1]
        assert sentinel.stats.leaks == 1
        assert sentinel.ledger.events[0].dimensions == ("global",)


class TestSentinelCheckpoint:
    def test_ledger_and_quarantine_travel_with_snapshot(self):
        policy = EscalationPolicy(digest_every=1, shadow_every=1)
        executor, sentinel, _ = _supervised(
            SOURCE_STICKY, "ckpt-sticky", policy=policy,
            config=HarnessConfig(**STICKY_CONFIG),
        )
        executor.run(b"Poison")
        executor.run(b"after")  # diverges -> quarantined with ground truth
        assert len(sentinel.ledger.quarantine) == 1
        state = executor.snapshot_state()

        executor2, sentinel2, _ = _supervised(
            SOURCE_STICKY, "ckpt-sticky-resumed", policy=policy,
            config=HarnessConfig(**STICKY_CONFIG),
        )
        executor2.restore_state(state)
        assert sentinel2.stats.divergences == 1
        assert len(sentinel2.ledger.quarantine) == 1
        assert len(sentinel2.ledger.events) == len(sentinel.ledger.events)
        # The resumed executor replays ground truth without re-running
        # the divergent input through its (clean) persistent process.
        hits_before = sentinel2.stats.quarantine_hits
        assert executor2.run(b"after").return_code == 1
        assert sentinel2.stats.quarantine_hits == hits_before + 1


class TestSelfCheckCLI:
    def test_module_entry_reports_all_targets_clean(self, capsys):
        from repro.integrity.__main__ import main

        assert main() == 0
        out = capsys.readouterr().out
        assert "restore-clean" in out
        assert "FAIL" not in out
