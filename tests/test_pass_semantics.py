"""Semantics-preservation tests for the pass pipelines beyond the
target-level differential suite: each pass individually must not change
what the program computes, only how its state is managed."""

import pytest

from repro.minic import compile_c
from repro.passes import (
    CoveragePass,
    GlobalPass,
    PassManager,
    RenameMainPass,
)
from repro.vm import VM

PROGRAM = """
int acc;
int lut[8];

int work(int x) {
    lut[x & 7] = x * 3;
    acc += lut[x & 7];
    return acc;
}

int main(int argc, char **argv) {
    int total = 0;
    for (int i = 1; i <= 6; i++) { total = work(i * argc); }
    return total;
}
"""


def run_entry(module, entry, argc=2):
    vm = VM(module)
    vm.load()
    _argc, argv = vm.setup_argv(["p", "x"])
    return vm.run_function(module.get_function(entry), [argc, argv])


class TestBehaviourPreservation:
    def test_rename_main_preserves_result(self):
        plain = compile_c(PROGRAM, "p")
        renamed = compile_c(PROGRAM, "p")
        RenameMainPass().run(renamed)
        assert run_entry(plain, "main") == run_entry(renamed, "target_main")

    def test_global_pass_preserves_result_and_initials(self):
        plain = compile_c(PROGRAM, "p")
        moved = compile_c(PROGRAM, "p")
        GlobalPass().run(moved)
        assert run_entry(plain, "main") == run_entry(moved, "main")
        # initial images identical even though sections moved
        vm = VM(moved)
        vm.load()
        assert vm.section_bytes("closure_global_section") == bytes(
            4 + 32
        )  # acc + lut, both zero-initialised

    def test_coverage_pass_preserves_result(self):
        plain = compile_c(PROGRAM, "p")
        instrumented = compile_c(PROGRAM, "p")
        CoveragePass(seed=3).run(instrumented)
        assert run_entry(plain, "main") == run_entry(instrumented, "main")

    def test_coverage_pass_only_adds_guard_calls(self):
        plain = compile_c(PROGRAM, "p")
        instrumented = compile_c(PROGRAM, "p")
        CoveragePass(seed=3).run(instrumented)
        plain_count = plain.instruction_count()
        blocks = sum(len(f.blocks) for f in instrumented.defined_functions())
        assert instrumented.instruction_count() == plain_count + blocks

    def test_instrumented_costs_more_but_computes_the_same(self):
        plain = compile_c(PROGRAM, "p")
        instrumented = compile_c(PROGRAM, "p")
        CoveragePass(seed=3).run(instrumented)
        vm_a, vm_b = VM(plain), VM(instrumented)
        vm_a.load(), vm_b.load()
        argc_a, argv_a = vm_a.setup_argv(["p"])
        argc_b, argv_b = vm_b.setup_argv(["p"])
        result_a = vm_a.run_function(plain.get_function("main"), [2, argv_a])
        result_b = vm_b.run_function(instrumented.get_function("main"), [2, argv_b])
        assert result_a == result_b
        assert vm_b.cost > vm_a.cost          # instrumentation is not free
        assert sum(1 for x in vm_b.coverage_map if x) > 0
        assert sum(vm_a.coverage_map) == 0    # uninstrumented records nothing
