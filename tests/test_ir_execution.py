"""Execution-level conformance tests for IR constructs the MiniC
front-end doesn't emit (select, switch defaults, undef, casts), plus
arithmetic corner cases straight through the interpreter."""

import pytest

from repro.ir import (
    FunctionType,
    I8,
    I32,
    I64,
    IRBuilder,
    Module,
    UndefValue,
    int_type,
)
from repro.vm import VM, TrapKind, VMTrap


def run_unary_function(build_body, param_bits=32, ret_bits=32, arg=0):
    """Build i<ret> f(i<param>) with *build_body*(builder, arg_value)."""
    module = Module("m")
    func = module.add_function(
        "f", FunctionType(int_type(ret_bits), [int_type(param_bits)])
    )
    func.ensure_args(["x"])
    builder = IRBuilder(func.append_block("entry"))
    builder.ret(build_body(builder, func.args[0]))
    vm = VM(module)
    vm.load()
    return vm.run_function(func, [arg])


class TestSelect:
    def test_select_true(self):
        def body(b, x):
            cond = b.icmp("sgt", x, b.i32(10))
            return b.select(cond, b.i32(1), b.i32(2))

        assert run_unary_function(body, arg=50) == 1
        assert run_unary_function(body, arg=5) == 2


class TestSwitch:
    def _switch_fn(self):
        module = Module("m")
        func = module.add_function("f", FunctionType(I32, [I32]))
        func.ensure_args(["x"])
        entry = func.append_block("entry")
        default = func.append_block("default")
        one = func.append_block("one")
        two = func.append_block("two")
        builder = IRBuilder(entry)
        switch = builder.switch(func.args[0], default)
        switch.add_case(1, one)
        switch.add_case(2, two)
        IRBuilder(default).ret(IRBuilder(default).i32(99))
        IRBuilder(one).ret(IRBuilder(one).i32(10))
        IRBuilder(two).ret(IRBuilder(two).i32(20))
        vm = VM(module)
        vm.load()
        return vm, func

    def test_cases_and_default(self):
        vm, func = self._switch_fn()
        assert vm.run_function(func, [1]) == 10
        assert vm.run_function(func, [2]) == 20
        assert vm.run_function(func, [7]) == 99

    def test_case_values_wrap_to_type(self):
        vm, func = self._switch_fn()
        # -1 wrapped as u32 doesn't match any case
        assert vm.run_function(func, [0xFFFFFFFF]) == 99


class TestArithmeticCorners:
    def test_sdiv_negative_truncates_toward_zero(self):
        def body(b, x):
            return b.sdiv(x, b.i32(2))

        result = run_unary_function(body, arg=int_type(32).wrap(-7))
        assert int_type(32).to_signed(result) == -3

    def test_srem_sign_follows_dividend(self):
        def body(b, x):
            return b.srem(x, b.i32(3))

        result = run_unary_function(body, arg=int_type(32).wrap(-7))
        assert int_type(32).to_signed(result) == -1

    def test_udiv_treats_operands_unsigned(self):
        def body(b, x):
            return b.udiv(x, b.i32(2))

        result = run_unary_function(body, arg=int_type(32).wrap(-2))
        assert result == 0x7FFFFFFF

    def test_udiv_by_zero_traps(self):
        def body(b, x):
            return b.udiv(x, b.i32(0))

        with pytest.raises(VMTrap) as info:
            run_unary_function(body, arg=1)
        assert info.value.kind is TrapKind.DIV_BY_ZERO

    def test_oversized_shift_produces_zero(self):
        def body(b, x):
            return b.shl(x, b.i32(40))

        assert run_unary_function(body, arg=1) == 0

    def test_ashr_keeps_sign(self):
        def body(b, x):
            return b.ashr(x, b.i32(4))

        result = run_unary_function(body, arg=int_type(32).wrap(-64))
        assert int_type(32).to_signed(result) == -4

    def test_lshr_zero_fills(self):
        def body(b, x):
            return b.lshr(x, b.i32(28))

        assert run_unary_function(body, arg=int_type(32).wrap(-1)) == 0xF

    def test_mul_wraps(self):
        def body(b, x):
            return b.mul(x, x)

        assert run_unary_function(body, arg=1 << 20) == 0  # 2^40 mod 2^32

    def test_unsigned_comparison(self):
        def body(b, x):
            cond = b.icmp("ugt", x, b.i32(10))
            return b.zext(cond, int_type(32))

        # -1 unsigned is huge
        assert run_unary_function(body, arg=int_type(32).wrap(-1)) == 1


class TestCastsAtRuntime:
    def test_sext_then_trunc_roundtrip(self):
        def body(b, x):
            wide = b.sext(x, I64)
            return b.trunc(wide, int_type(32))

        value = int_type(32).wrap(-5)
        assert run_unary_function(body, arg=value) == value

    def test_sext_sign_extends(self):
        def body(b, x):
            return b.sext(x, I64)

        result = run_unary_function(body, param_bits=8, ret_bits=64,
                                    arg=int_type(8).wrap(-1))
        assert result == (1 << 64) - 1

    def test_zext_zero_extends(self):
        def body(b, x):
            return b.zext(x, I64)

        result = run_unary_function(body, param_bits=8, ret_bits=64, arg=0xFF)
        assert result == 0xFF

    def test_ptrtoint_inttoptr_roundtrip(self):
        module = Module("m")
        func = module.add_function("f", FunctionType(I32, []))
        builder = IRBuilder(func.append_block("entry"))
        slot = builder.alloca(I32)
        builder.store(builder.i32(77), slot)
        as_int = builder.ptrtoint(slot, I64)
        back = builder.inttoptr(as_int, slot.type)
        builder.ret(builder.load(back))
        vm = VM(module)
        vm.load()
        assert vm.run_function(func, []) == 77


class TestUndefAndUnreachable:
    def test_undef_reads_as_zero(self):
        module = Module("m")
        func = module.add_function("f", FunctionType(I32, []))
        builder = IRBuilder(func.append_block("entry"))
        builder.ret(builder.add(UndefValue(I32), builder.i32(3)))
        vm = VM(module)
        vm.load()
        assert vm.run_function(func, []) == 3

    def test_unreachable_traps(self):
        module = Module("m")
        func = module.add_function("f", FunctionType(I32, []))
        IRBuilder(func.append_block("entry")).unreachable()
        vm = VM(module)
        vm.load()
        with pytest.raises(VMTrap) as info:
            vm.run_function(func, [])
        assert info.value.kind is TrapKind.UNREACHABLE


class TestGlobalAccessAtRuntime:
    def test_global_array_read_write(self):
        module = Module("m")
        from repro.ir import ArrayType

        module.add_global("arr", ArrayType(I8, 8))
        func = module.add_function("f", FunctionType(I32, []))
        builder = IRBuilder(func.append_block("entry"))
        base = module.get_global("arr")
        slot = builder.gep(base, [builder.i64(0), builder.i64(3)])
        builder.store(builder.i8(0x5A), slot)
        loaded = builder.load(slot)
        builder.ret(builder.zext(loaded, I32))
        vm = VM(module)
        vm.load()
        assert vm.run_function(func, []) == 0x5A

    def test_global_oob_traps_as_array_oob(self):
        module = Module("m")
        from repro.ir import ArrayType

        module.add_global("arr", ArrayType(I8, 8))
        func = module.add_function("f", FunctionType(I32, []))
        builder = IRBuilder(func.append_block("entry"))
        base = module.get_global("arr")
        slot = builder.gep(base, [builder.i64(0), builder.i64(9)])
        builder.store(builder.i8(1), slot)
        builder.ret(builder.i32(0))
        vm = VM(module)
        vm.load()
        with pytest.raises(VMTrap) as info:
            vm.run_function(func, [])
        assert info.value.kind is TrapKind.ARRAY_OOB
