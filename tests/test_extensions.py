"""Tests for the implemented §7.2 extensions and AFL-style trimming."""

import random

import pytest

from repro.execution import ClosureXExecutor
from repro.fuzzing import Campaign, CampaignConfig
from repro.ir import Call
from repro.minic import compile_c
from repro.passes import FilePass, HeapPass, PassManager, closurex_passes
from repro.runtime import ClosureXHarness, HarnessConfig
from repro.sim_os import Kernel


class TestCustomAllocatorHooking:
    SOURCE = """
    char *pool_alloc(long n);
    void pool_release(char *p);

    char *pool_alloc(long n) { return (char*)malloc(n); }
    void pool_release(char *p) { free(p); }

    int main(int argc, char **argv) {
        char *p = pool_alloc(64);
        p[0] = 1;
        return 0;                   /* leaks p via the custom allocator */
    }
    """

    def test_inner_calls_still_tracked(self):
        """Even without naming the custom allocator, its *internal*
        malloc/free are target code and get rerouted, so the leak is
        swept."""
        module = compile_c(self.SOURCE, "pool")
        PassManager(closurex_passes(1)).run(module)
        harness = ClosureXHarness(module)
        harness.boot()
        result = harness.run_test_case(b"x")
        assert result.restore.leaked_chunks == 1
        assert harness.vm.heap.live_chunk_count() == 0


class TestFilePassExtraHandles:
    SOURCE = """
    char *sock_open(char *path, char *mode);
    int sock_close(char *s);

    int main(int argc, char **argv) {
        char *s = sock_open(argv[1], "r");
        if (!s) { exit(1); }
        return 0;                   /* leaks the 'socket' */
    }

    char *sock_open(char *path, char *mode) { return fopen(path, mode); }
    int sock_close(char *s) { return fclose(s); }
    """

    def test_socket_style_apis_reroute(self):
        module = compile_c(self.SOURCE, "sock")
        result = FilePass(extra_opens=["sock_open"],
                          extra_closes=["sock_close"]).run(module)
        # sock_open/sock_close are *defined* here so they are left
        # alone, but their internal fopen/fclose are rerouted:
        assert result.details["fopen_calls_rerouted"] == 1
        assert result.details["fclose_calls_rerouted"] == 1

    def test_declared_extra_open_is_rerouted(self):
        source = """
        char *dial(char *path, char *mode);
        int main(int argc, char **argv) {
            char *s = dial(argv[1], "r");
            return s ? 0 : 1;
        }
        """
        module = compile_c(source, "dial")
        result = FilePass(extra_opens=["dial"]).run(module)
        assert result.details["dial_calls_rerouted"] == 1
        calls = [
            inst.callee.name
            for func in module.defined_functions()
            for inst in func.instructions()
            if isinstance(inst, Call)
        ]
        assert "closurex_fopen_hook" in calls


class TestTrimStage:
    # Header-only parser: everything past the 8-byte header is ignored,
    # so trailing padding is coverage-irrelevant and trimmable.
    SOURCE = """
    int seen;
    int main(int argc, char **argv) {
        char buf[256];
        char *f = fopen(argv[1], "r");
        if (!f) { exit(1); }
        long n = fread(buf, 1, 256, f);
        fclose(f);
        if (n < 8) { exit(2); }
        if (buf[0] != 'T' || buf[1] != 'R') { exit(3); }
        seen = buf[4] + buf[5];
        return seen & 0x7f;
    }
    """

    def _campaign(self, enable_trim):
        module = compile_c(self.SOURCE, "trim-target")
        PassManager(closurex_passes(4)).run(module)
        executor = ClosureXExecutor(module, 100_000, Kernel())
        padded_seed = b"TRxx\x05\x06yy" + b"z" * 120
        return Campaign(
            executor, [padded_seed],
            CampaignConfig(budget_ns=3_000_000, seed=5,
                           enable_trim=enable_trim),
        )

    def test_trim_shrinks_padded_entries(self):
        campaign = self._campaign(enable_trim=True)
        campaign.run()
        entry = campaign.corpus.entries[0]
        assert entry.trim_done
        assert len(entry.data) < 40  # the 120-byte tail is gone

    def test_trim_can_be_disabled(self):
        campaign = self._campaign(enable_trim=False)
        campaign.run()
        entry = campaign.corpus.entries[0]
        assert len(entry.data) == 128

    def test_trim_preserves_coverage_signature(self):
        campaign = self._campaign(enable_trim=True)
        campaign.run()
        entry = campaign.corpus.entries[0]
        module = compile_c(self.SOURCE, "trim-target")
        PassManager(closurex_passes(4)).run(module)
        executor = ClosureXExecutor(module, 100_000, Kernel())
        executor.boot()
        result = executor.run(entry.data)
        from repro.fuzzing import coverage_signature

        assert coverage_signature(result.coverage) == entry.coverage_signature


class TestDeferredInitConfig:
    def test_unknown_init_function_raises(self):
        from repro.targets import get_target

        module = get_target("giftext").build_closurex()
        harness = ClosureXHarness(
            module, config=HarnessConfig(deferred_init_functions=("nope",))
        )
        with pytest.raises(KeyError):
            harness.boot()
