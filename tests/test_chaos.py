"""Tests for the chaos plane and the self-healing supervisor.

Covers: deterministic fault plans, occurrence-indexed injection at the
kernel / pipe / libc sites, supervised recovery (retry, backoff,
respawn, wedge, shm, quarantine, degradation ladder), the Table 5
no-double-count invariant, and the acceptance-criteria campaign that
survives a non-trivial fault plan with results matching a fault-free
run.

``CHAOS_SEED`` (env) parameterises the seed-generated plan tests so the
CI chaos job can sweep distinct seeds over the same assertions.
"""

import os

import pytest

from repro.chaos import (
    FaultInjector,
    FaultPlan,
    FaultSite,
    FaultSpec,
    InjectedFault,
)
from repro.execution import (
    ClosureXExecutor,
    ForkServerExecutor,
    FreshProcessExecutor,
    SupervisedExecutor,
    SupervisionPolicy,
)
from repro.fuzzing import Campaign, CampaignConfig
from repro.fuzzing.coverage import coverage_signature
from repro.minic import compile_c
from repro.passes import PassManager, baseline_passes, closurex_passes
from repro.runtime.harness import IterationStatus
from repro.sim_os import Kernel
from repro.vm.errors import VMError

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))

SOURCE = r"""
int counter;

int main(int argc, char **argv) {
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    char buf[16];
    long n = fread(buf, 1, 16, f);
    if (n < 1) { exit(2); }
    counter++;
    char *scratch = (char*)malloc(32);
    scratch[0] = buf[0];
    if (buf[0] == 'X') {
        int *p = NULL;
        *p = 1;
    }
    if (buf[0] == 'H') {
        while (1) { counter++; }
    }
    fclose(f);
    free(scratch);
    return counter;
}
"""

IMAGE = 500_000


def _module(kind="baseline"):
    module = compile_c(SOURCE, "chaos-test")
    pipeline = {
        "baseline": baseline_passes,
        "closurex": closurex_passes,
    }[kind]
    PassManager(pipeline(11)).run(module)
    return module


def _supervised_forkserver(plan=None, policy=None):
    kernel = Kernel()
    inner = ForkServerExecutor(_module(), IMAGE, kernel)
    injector = FaultInjector(plan, clock=kernel.clock) if plan else None
    executor = SupervisedExecutor(inner, policy=policy, injector=injector)
    executor.boot()
    return executor


class TestFaultPlan:
    def test_generate_is_deterministic(self):
        a = FaultPlan.generate(CHAOS_SEED, 12)
        b = FaultPlan.generate(CHAOS_SEED, 12)
        assert a.specs == b.specs
        assert len(a) == 12

    def test_generate_draws_distinct_pairs(self):
        plan = FaultPlan.generate(CHAOS_SEED, 20)
        pairs = {(s.site, s.occurrence) for s in plan.specs}
        assert len(pairs) == 20

    def test_different_seeds_differ(self):
        assert (
            FaultPlan.generate(1, 10).specs != FaultPlan.generate(2, 10).specs
        )

    def test_restore_excluded_by_default(self):
        plan = FaultPlan.generate(CHAOS_SEED, 30)
        assert all(s.site is not FaultSite.RESTORE for s in plan.specs)


class TestFaultInjector:
    def test_fires_at_exact_occurrence(self):
        plan = FaultPlan([FaultSpec(FaultSite.MALLOC, 2)])
        injector = FaultInjector(plan)
        assert injector.poll("malloc") is None
        assert injector.poll("malloc") is None
        fault = injector.poll("malloc")
        assert isinstance(fault, InjectedFault)
        assert fault.site == "malloc"
        assert fault.detail == "ENOMEM"
        # One-shot: the spec is consumed.
        assert injector.poll("malloc") is None
        assert injector.fired_count == 1
        assert injector.pending_count == 0

    def test_sites_count_independently(self):
        plan = FaultPlan([FaultSpec(FaultSite.FORK, 0)])
        injector = FaultInjector(plan)
        assert injector.poll("spawn") is None
        assert injector.poll("fork") is not None

    def test_fault_is_not_target_behaviour(self):
        # The supervisor's classification hinges on this: injected
        # faults must never be mistaken for VM traps.
        assert not issubclass(InjectedFault, VMError)

    def test_records_stamp_virtual_time(self):
        kernel = Kernel()
        plan = FaultPlan([FaultSpec(FaultSite.SPAWN, 0)])
        injector = FaultInjector(plan, clock=kernel.clock)
        kernel.clock.advance(1234)
        injector.poll("spawn")
        assert injector.fired[0].at_ns == 1234

    def test_state_roundtrip(self):
        plan = FaultPlan([FaultSpec(FaultSite.PIPE, 1)])
        injector = FaultInjector(plan)
        injector.poll("pipe")
        state = injector.snapshot_state()
        injector.poll("pipe")          # fires
        injector.restore_state(state)  # rewind: armed again
        assert injector.pending_count == 1
        assert injector.poll("pipe") is not None


class TestKernelInjection:
    def test_spawn_fault_raises_and_burns_time(self):
        plan = FaultPlan([FaultSpec(FaultSite.SPAWN, 0)])
        kernel = Kernel(faults=FaultInjector(plan))
        with pytest.raises(InjectedFault):
            kernel.spawn("prog", 1_000_000)
        assert kernel.stats.failed_spawns == 1
        assert kernel.clock.now_ns > 0          # EAGAIN still costs time
        assert kernel.live_process_count() == 0
        # The transient clears: the next spawn succeeds.
        assert kernel.spawn("prog", 1_000_000).pid >= 1000

    def test_fork_fault_raises(self):
        plan = FaultPlan([FaultSpec(FaultSite.FORK, 0)])
        kernel = Kernel(faults=FaultInjector(plan))
        parent = kernel.spawn("prog", 1_000_000)
        with pytest.raises(InjectedFault):
            kernel.fork(parent, 1 << 20)
        assert kernel.stats.failed_forks == 1
        assert kernel.fork(parent, 1 << 20).parent_pid == parent.pid


class TestLibcInjection:
    def _fresh(self, plan):
        kernel = Kernel()
        executor = FreshProcessExecutor(_module(), IMAGE, kernel)
        executor.attach_faults(FaultInjector(plan, clock=kernel.clock))
        return executor

    @pytest.mark.parametrize("site", [
        FaultSite.MALLOC, FaultSite.FOPEN, FaultSite.FREAD,
    ])
    def test_libc_fault_escapes_as_infrastructure(self, site):
        executor = self._fresh(FaultPlan([FaultSpec(site, 0)]))
        with pytest.raises(InjectedFault) as exc:
            executor.run(b"hello")
        assert exc.value.site == site.value

    def test_unfaulted_run_unaffected(self):
        executor = self._fresh(FaultPlan([FaultSpec(FaultSite.MALLOC, 50)]))
        assert executor.run(b"hello").return_code == 1


class TestSupervisedRecovery:
    def test_boot_retries_spawn_fault(self):
        plan = FaultPlan([FaultSpec(FaultSite.SPAWN, 0)])
        executor = _supervised_forkserver(plan)
        assert executor.supervision.recoveries == 1
        assert executor.supervision.backoff_ns > 0
        assert executor.healthy()
        assert executor.run(b"hello").return_code == 1

    def test_pipe_drop_respawns_server_not_abort(self):
        # Handshake polls once at boot; each run polls once more.
        plan = FaultPlan([FaultSpec(FaultSite.PIPE, 2)])
        executor = _supervised_forkserver(plan)
        first = executor.run(b"hello")
        second = executor.run(b"hello")   # pipe collapses, server respawned
        assert first.return_code == second.return_code == 1
        assert executor.supervision.respawns == 1
        assert executor.supervision.recovered_by_site.get("pipe") == 1

    def test_fork_fault_mid_campaign_recovers(self):
        plan = FaultPlan([FaultSpec(FaultSite.FORK, 1)])
        executor = _supervised_forkserver(plan)
        executor.run(b"hello")
        result = executor.run(b"hello")
        assert result.return_code == 1
        assert executor.supervision.recovered_by_site.get("fork") == 1

    def test_wedge_is_killed_and_retried(self):
        plan = FaultPlan([FaultSpec(FaultSite.WEDGE, 0)])
        executor = _supervised_forkserver(plan)
        result = executor.run(b"hello")
        # The wedged attempt was voided; the retry ran to completion
        # under the normal instruction budget.
        assert result.status in (IterationStatus.OK, IterationStatus.EXIT)
        assert result.return_code == 1
        assert executor.supervision.recovered_by_site.get("wedge") == 1

    def test_shm_corruption_discards_attempt(self):
        clean = _supervised_forkserver(None)
        reference = coverage_signature(clean.run(b"hello").coverage)
        plan = FaultPlan([FaultSpec(FaultSite.SHM, 0)])
        executor = _supervised_forkserver(plan)
        result = executor.run(b"hello")
        assert coverage_signature(result.coverage) == reference
        assert executor.supervision.recovered_by_site.get("shm") == 1

    def test_no_double_count_regression(self):
        """Table 5 invariant: a retried execution is one logical exec."""
        plan = FaultPlan([
            FaultSpec(FaultSite.FORK, 1),
            FaultSpec(FaultSite.MALLOC, 2),
            FaultSpec(FaultSite.PIPE, 3),
        ])
        executor = _supervised_forkserver(plan)
        for _ in range(6):
            executor.run(b"hello")
        assert executor.supervision.recoveries == 3
        assert executor.stats.execs == 6
        # The wrapped executor really did pay for the voided attempts.
        assert executor.inner.stats.execs > 6 or \
            executor.inner.kernel.stats.failed_forks > 0

    def test_results_match_fault_free_run(self):
        """Acceptance: per-input results are identical to a fault-free
        executor for every input untouched by quarantine."""
        inputs = [b"hello", b"X boom", b"", b"abc", b"X again", b"zzzz"]
        plan = FaultPlan([
            FaultSpec(FaultSite.SPAWN, 1),
            FaultSpec(FaultSite.FORK, 2),
            FaultSpec(FaultSite.PIPE, 3),
            FaultSpec(FaultSite.MALLOC, 3),
            FaultSpec(FaultSite.WEDGE, 1),
            FaultSpec(FaultSite.SHM, 4),
        ])
        chaotic = _supervised_forkserver(plan)
        clean = _supervised_forkserver(None)
        for data in inputs:
            a = chaotic.run(data)
            b = clean.run(data)
            assert a.status == b.status, data
            assert a.return_code == b.return_code, data
            assert coverage_signature(a.coverage) == \
                coverage_signature(b.coverage), data
        assert chaotic.supervision.recoveries >= 4
        assert chaotic.supervision.quarantined_inputs == 0
        assert chaotic.stats.execs == clean.stats.execs == len(inputs)

    def test_genuine_hang_quarantine(self):
        policy = SupervisionPolicy(max_kills_per_input=2)
        executor = _supervised_forkserver(None, policy)
        executor.exec_instruction_limit = 20_000
        first = executor.run(b"Hang")
        assert first.is_hang
        second = executor.run(b"Hang")     # second kill -> quarantined
        assert executor.supervision.quarantined_inputs == 1
        third = executor.run(b"Hang")      # replayed, not executed
        assert third is second
        assert executor.supervision.quarantine_hits == 1
        # Unrelated inputs still execute normally.
        assert executor.run(b"hello").return_code == 1


class TestDegradationLadder:
    def _supervised_closurex(self, n_restore_faults, policy):
        kernel = Kernel()
        inner = ClosureXExecutor(_module("closurex"), IMAGE, kernel)
        plan = FaultPlan([
            FaultSpec(FaultSite.RESTORE, i) for i in range(n_restore_faults)
        ])
        injector = FaultInjector(plan, clock=kernel.clock)
        executor = SupervisedExecutor(
            inner, policy=policy, injector=injector,
            fallback_factory=lambda: ForkServerExecutor(
                _module(), IMAGE, kernel
            ),
        )
        executor.boot()
        return executor

    def test_restore_faults_escalate_then_degrade(self):
        policy = SupervisionPolicy(
            restore_escalation_threshold=2, degrade_after_escalations=2,
        )
        executor = self._supervised_closurex(4, policy)
        assert executor.mechanism == "closurex"
        result = executor.run(b"hello")
        assert result.return_code == 1
        assert executor.supervision.escalations == 2
        assert executor.supervision.degradations == 1
        assert executor.mechanism == "forkserver"
        # Degraded mode keeps serving correct results.
        assert executor.run(b"X boom").is_crash

    def test_below_threshold_restores_in_place(self):
        policy = SupervisionPolicy(restore_escalation_threshold=3)
        executor = self._supervised_closurex(1, policy)
        result = executor.run(b"hello")
        assert result.return_code == 1
        assert executor.supervision.escalations == 0
        assert executor.supervision.respawns == 0
        assert executor.mechanism == "closurex"


class TestChaosCampaign:
    def _campaign(self, plan, budget_ns=30_000_000, **config_kwargs):
        kernel = Kernel()
        inner = ForkServerExecutor(_module(), IMAGE, kernel)
        injector = (
            FaultInjector(plan, clock=kernel.clock) if plan else None
        )
        executor = SupervisedExecutor(inner, injector=injector)
        config = CampaignConfig(
            budget_ns=budget_ns, seed=CHAOS_SEED, **config_kwargs
        )
        return Campaign(executor, seeds=[b"hello", b"init"], config=config)

    def test_campaign_survives_nontrivial_fault_plan(self):
        """Acceptance: >=5 faults across spawn/fork/malloc/pipe/wedge;
        the campaign completes its virtual budget and reports the
        recoveries."""
        plan = FaultPlan([
            FaultSpec(FaultSite.SPAWN, 1),
            FaultSpec(FaultSite.FORK, 7),
            FaultSpec(FaultSite.MALLOC, 11),
            FaultSpec(FaultSite.PIPE, 5),
            FaultSpec(FaultSite.WEDGE, 3),
            FaultSpec(FaultSite.FREAD, 20),
        ])
        campaign = self._campaign(plan)
        result = campaign.run()
        injector = campaign.executor.injector
        assert injector.fired_count == len(plan)
        assert result.recoveries >= 5
        assert result.execs > 50
        # The budget was consumed, not aborted.
        assert result.elapsed_ns >= campaign.config.budget_ns
        assert result.unique_crashes == 0 or result.crash_reports

    def test_seeded_plan_campaign_completes(self):
        """CI chaos-matrix entry: a seed-generated plan (CHAOS_SEED env)
        never aborts the campaign."""
        plan = FaultPlan.generate(CHAOS_SEED, 10)
        campaign = self._campaign(plan)
        result = campaign.run()
        assert result.elapsed_ns >= campaign.config.budget_ns
        assert result.execs > 0

    def test_chaos_campaign_is_deterministic(self):
        plan = FaultPlan.generate(CHAOS_SEED, 8)
        first = self._campaign(plan).run()
        second = self._campaign(plan).run()
        assert first.execs == second.execs
        assert first.edges_found == second.edges_found
        assert first.recoveries == second.recoveries
        assert first.elapsed_ns == second.elapsed_ns

    def test_hang_budget_and_triage_routing(self):
        """Satellite: the per-test-case instruction budget comes from
        CampaignConfig and hang inputs land in their own dedup bucket."""
        campaign = self._campaign(
            None, budget_ns=20_000_000, exec_instruction_limit=20_000,
        )
        campaign.seeds = [b"hello", b"Hang1", b"Hang2"]
        result = campaign.run()
        assert campaign.executor.exec_instruction_limit == 20_000
        assert result.total_hangs >= 2
        # Both wedge in the same loop -> one deduplicated report.
        assert result.unique_hangs == 1
        assert result.hang_reports[0].occurrences >= 2
        # Hangs are not crashes.
        assert all(r.found_at_ns >= 0 for r in result.hang_reports)


class TestSupervisedStateRoundTrip:
    """Satellite: the backoff/quarantine ladder must survive a
    ``snapshot_state``/``restore_state`` round trip mid-ladder and
    replay bit-identically — attempt counters, degradation level, and
    the injector's fault schedule included.  The snapshot is pickled
    and unpickled to emulate the disk hop a checkpoint takes (the live
    snapshot shares mutable objects with the executor)."""

    INPUTS_PREFIX = [b"hello", b"X one", b""]
    INPUTS_SUFFIX = [b"abc", b"X two", b"zzzz", b"qqqq"]

    @staticmethod
    def _plan():
        return FaultPlan([
            FaultSpec(FaultSite.FORK, 1),      # fires in the prefix
            FaultSpec(FaultSite.WEDGE, 1),     # fires in the prefix
            FaultSpec(FaultSite.PIPE, 5),      # still armed at snapshot
            FaultSpec(FaultSite.MALLOC, 6),    # still armed at snapshot
        ])

    @staticmethod
    def _observe(executor, data):
        before_ns = executor.clock.now_ns
        result = executor.run(data)
        return (
            result.status,
            result.return_code,
            coverage_signature(result.coverage),
            executor.clock.now_ns - before_ns,   # virtual cost, backoff
        )                                        # charges included

    def test_mid_ladder_round_trip_replays_bit_identical(self):
        import pickle

        golden = _supervised_forkserver(self._plan())
        for data in self.INPUTS_PREFIX:
            golden.run(data)
        # Mid-ladder: recoveries already happened, faults still armed.
        assert golden.supervision.recoveries >= 2
        assert golden.injector.armed
        snapshot = pickle.loads(pickle.dumps(golden.snapshot_state()))

        golden_tail = [self._observe(golden, d) for d in self.INPUTS_SUFFIX]

        revived = _supervised_forkserver(self._plan())
        revived.restore_state(snapshot)
        revived_tail = [
            self._observe(revived, d) for d in self.INPUTS_SUFFIX
        ]

        # Same results, same virtual costs (backoff replay included).
        assert revived_tail == golden_tail
        # Same ladder state at the end: attempt counters, quarantine,
        # degradation, cumulative stats, and injector schedule.
        assert revived.supervision == golden.supervision
        assert revived._hang_kills == golden._hang_kills
        assert sorted(revived.quarantine) == sorted(golden.quarantine)
        assert revived._degraded == golden._degraded
        assert revived.stats.execs == golden.stats.execs
        assert revived.injector.counters == golden.injector.counters
        assert revived.injector.armed == golden.injector.armed

    def test_round_trip_preserves_quarantine_and_degradation(self):
        """Quarantine records and the degraded flag survive the disk
        hop: a quarantined input is replayed, not re-executed, after
        restore."""
        import pickle

        policy = SupervisionPolicy(max_kills_per_input=1)
        golden = _supervised_forkserver(None, policy)
        golden.exec_instruction_limit = 20_000
        golden.run(b"Hang")                  # killed once -> quarantined
        assert golden.supervision.quarantined_inputs == 1

        snapshot = pickle.loads(pickle.dumps(golden.snapshot_state()))
        revived = _supervised_forkserver(None, policy)
        revived.exec_instruction_limit = 20_000
        revived.restore_state(snapshot)

        replayed = revived.run(b"Hang")      # served from quarantine
        assert replayed.is_hang
        assert revived.supervision.quarantine_hits == 1
        assert revived.supervision.quarantined_inputs == 1
        assert revived.run(b"hello").return_code == 1
