"""Unit tests for the simulated kernel and cost model."""

import pytest

from repro.sim_os import (
    DEFAULT_COSTS,
    CostModel,
    Kernel,
    ProcessState,
    VirtualClock,
)


class TestVirtualClock:
    def test_advances(self):
        clock = VirtualClock()
        clock.advance(500)
        clock.advance(250)
        assert clock.now_ns == 750
        assert clock.now_seconds == 7.5e-7

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)


class TestCostModel:
    def test_spawn_scales_with_image(self):
        small = DEFAULT_COSTS.spawn_cost(100_000)
        large = DEFAULT_COSTS.spawn_cost(10_000_000)
        assert large > small > DEFAULT_COSTS.spawn_base_ns

    def test_fork_scales_with_footprint(self):
        assert DEFAULT_COSTS.fork_cost(50 << 20) > DEFAULT_COSTS.fork_cost(1 << 20)

    def test_cow_floor(self):
        assert DEFAULT_COSTS.cow_cost(0) == (
            DEFAULT_COSTS.cow_floor_pages * DEFAULT_COSTS.cow_fault_per_page_ns
        )
        big = DEFAULT_COSTS.cow_cost(100 * 4096)
        assert big > DEFAULT_COSTS.cow_cost(0)

    def test_restore_cost_components(self):
        base = DEFAULT_COSTS.closurex_restore_cost(0, 0, 0, 0)
        with_chunks = DEFAULT_COSTS.closurex_restore_cost(0, 5, 0, 0)
        with_bytes = DEFAULT_COSTS.closurex_restore_cost(4096, 0, 0, 0)
        with_fds = DEFAULT_COSTS.closurex_restore_cost(0, 0, 2, 1)
        assert base == DEFAULT_COSTS.restore_base_ns
        assert with_chunks == base + 5 * DEFAULT_COSTS.heap_sweep_per_chunk_ns
        assert with_bytes > base
        assert with_fds == (
            base + 2 * DEFAULT_COSTS.fd_close_ns + DEFAULT_COSTS.fd_rewind_ns
        )

    def test_ordering_invariant(self):
        """The execution-mechanism spectrum: spawn >> fork >> restore."""
        spawn = DEFAULT_COSTS.spawn_cost(1_000_000)
        fork = DEFAULT_COSTS.fork_cost(1_000_000) + DEFAULT_COSTS.teardown_child_ns
        restore = DEFAULT_COSTS.closurex_restore_cost(2048, 4, 1, 1)
        assert spawn > 5 * fork
        assert fork > 5 * restore


class TestKernel:
    def test_spawn_registers_process(self):
        kernel = Kernel()
        record = kernel.spawn("prog", 1_000_000)
        assert record.state is ProcessState.RUNNING
        assert kernel.live_process_count() == 1
        assert kernel.stats.spawns == 1
        assert kernel.clock.now_ns == DEFAULT_COSTS.spawn_cost(1_000_000)

    def test_fork_links_parent(self):
        kernel = Kernel()
        parent = kernel.spawn("prog", 1_000_000)
        child = kernel.fork(parent, 2 << 20)
        assert child.parent_pid == parent.pid
        assert child.image == "prog"
        assert kernel.stats.forks == 1

    def test_reap_marks_exit(self):
        kernel = Kernel()
        record = kernel.spawn("prog", 1000)
        kernel.reap(record, 0)
        assert record.state is ProcessState.EXITED
        assert record.exit_code == 0
        assert kernel.live_process_count() == 0

    def test_reap_crash(self):
        kernel = Kernel()
        record = kernel.spawn("prog", 1000)
        kernel.reap(record, None, crashed=True)
        assert record.state is ProcessState.CRASHED

    def test_fresh_teardown_costs_more(self):
        costs = CostModel()
        kernel = Kernel(costs)
        a = kernel.spawn("p", 1000)
        before = kernel.clock.now_ns
        kernel.reap(a, 0, fresh=True)
        fresh_cost = kernel.clock.now_ns - before
        b = kernel.spawn("p", 1000)
        before = kernel.clock.now_ns
        kernel.reap(b, 0)
        child_cost = kernel.clock.now_ns - before
        assert fresh_cost > child_cost

    def test_stats_aggregation(self):
        kernel = Kernel()
        parent = kernel.spawn("p", 1000)
        kernel.fork(parent, 4096)
        kernel.charge_cow(8192)
        assert kernel.stats.process_management_ns() == (
            kernel.stats.spawn_ns + kernel.stats.fork_ns + kernel.stats.cow_ns
        )
        assert kernel.stats.cow_ns > 0

    def test_unique_pids(self):
        kernel = Kernel()
        pids = {kernel.spawn("p", 1).pid for _ in range(10)}
        assert len(pids) == 10
