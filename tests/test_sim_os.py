"""Unit tests for the simulated kernel and cost model."""

import pytest

from repro.sim_os import (
    DEFAULT_COSTS,
    FORKSRV_HELLO,
    CostModel,
    ForkserverChannel,
    Kernel,
    PipeBroken,
    ProcessState,
    SimPipe,
    VirtualClock,
)


class TestVirtualClock:
    def test_advances(self):
        clock = VirtualClock()
        clock.advance(500)
        clock.advance(250)
        assert clock.now_ns == 750
        assert clock.now_seconds == 7.5e-7

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_negative_advance_leaves_clock_untouched(self):
        clock = VirtualClock()
        clock.advance(100)
        with pytest.raises(ValueError):
            clock.advance(-50)
        assert clock.now_ns == 100

    def test_zero_advance_is_legal(self):
        clock = VirtualClock()
        clock.advance(0)
        assert clock.now_ns == 0

    def test_monotonic_over_many_advances(self):
        clock = VirtualClock()
        seen = []
        for step in (1, 10, 0, 100, 7):
            clock.advance(step)
            seen.append(clock.now_ns)
        assert seen == sorted(seen)
        assert clock.now_ns == 118

    def test_repr_shows_ns(self):
        clock = VirtualClock()
        clock.advance(42)
        assert "42" in repr(clock)


class TestCostModel:
    def test_spawn_scales_with_image(self):
        small = DEFAULT_COSTS.spawn_cost(100_000)
        large = DEFAULT_COSTS.spawn_cost(10_000_000)
        assert large > small > DEFAULT_COSTS.spawn_base_ns

    def test_fork_scales_with_footprint(self):
        assert DEFAULT_COSTS.fork_cost(50 << 20) > DEFAULT_COSTS.fork_cost(1 << 20)

    def test_cow_floor(self):
        assert DEFAULT_COSTS.cow_cost(0) == (
            DEFAULT_COSTS.cow_floor_pages * DEFAULT_COSTS.cow_fault_per_page_ns
        )
        big = DEFAULT_COSTS.cow_cost(100 * 4096)
        assert big > DEFAULT_COSTS.cow_cost(0)

    def test_restore_cost_components(self):
        base = DEFAULT_COSTS.closurex_restore_cost(0, 0, 0, 0)
        with_chunks = DEFAULT_COSTS.closurex_restore_cost(0, 5, 0, 0)
        with_bytes = DEFAULT_COSTS.closurex_restore_cost(4096, 0, 0, 0)
        with_fds = DEFAULT_COSTS.closurex_restore_cost(0, 0, 2, 1)
        assert base == DEFAULT_COSTS.restore_base_ns
        assert with_chunks == base + 5 * DEFAULT_COSTS.heap_sweep_per_chunk_ns
        assert with_bytes > base
        assert with_fds == (
            base + 2 * DEFAULT_COSTS.fd_close_ns + DEFAULT_COSTS.fd_rewind_ns
        )

    def test_ordering_invariant(self):
        """The execution-mechanism spectrum: spawn >> fork >> restore."""
        spawn = DEFAULT_COSTS.spawn_cost(1_000_000)
        fork = DEFAULT_COSTS.fork_cost(1_000_000) + DEFAULT_COSTS.teardown_child_ns
        restore = DEFAULT_COSTS.closurex_restore_cost(2048, 4, 1, 1)
        assert spawn > 5 * fork
        assert fork > 5 * restore


class TestKernel:
    def test_spawn_registers_process(self):
        kernel = Kernel()
        record = kernel.spawn("prog", 1_000_000)
        assert record.state is ProcessState.RUNNING
        assert kernel.live_process_count() == 1
        assert kernel.stats.spawns == 1
        assert kernel.clock.now_ns == DEFAULT_COSTS.spawn_cost(1_000_000)

    def test_fork_links_parent(self):
        kernel = Kernel()
        parent = kernel.spawn("prog", 1_000_000)
        child = kernel.fork(parent, 2 << 20)
        assert child.parent_pid == parent.pid
        assert child.image == "prog"
        assert kernel.stats.forks == 1

    def test_reap_marks_exit(self):
        kernel = Kernel()
        record = kernel.spawn("prog", 1000)
        kernel.reap(record, 0)
        assert record.state is ProcessState.EXITED
        assert record.exit_code == 0
        assert kernel.live_process_count() == 0

    def test_reap_crash(self):
        kernel = Kernel()
        record = kernel.spawn("prog", 1000)
        kernel.reap(record, None, crashed=True)
        assert record.state is ProcessState.CRASHED

    def test_fresh_teardown_costs_more(self):
        costs = CostModel()
        kernel = Kernel(costs)
        a = kernel.spawn("p", 1000)
        before = kernel.clock.now_ns
        kernel.reap(a, 0, fresh=True)
        fresh_cost = kernel.clock.now_ns - before
        b = kernel.spawn("p", 1000)
        before = kernel.clock.now_ns
        kernel.reap(b, 0)
        child_cost = kernel.clock.now_ns - before
        assert fresh_cost > child_cost

    def test_stats_aggregation(self):
        kernel = Kernel()
        parent = kernel.spawn("p", 1000)
        kernel.fork(parent, 4096)
        kernel.charge_cow(8192)
        assert kernel.stats.process_management_ns() == (
            kernel.stats.spawn_ns + kernel.stats.fork_ns + kernel.stats.cow_ns
        )
        assert kernel.stats.cow_ns > 0

    def test_unique_pids(self):
        kernel = Kernel()
        pids = {kernel.spawn("p", 1).pid for _ in range(10)}
        assert len(pids) == 10


class TestProcessRecordLifecycle:
    def test_spawn_stamps_birth_time(self):
        kernel = Kernel()
        record = kernel.spawn("prog", 1_000_000)
        # Registration happens after the spawn cost is charged, so the
        # record's birth time equals the clock at the end of the spawn.
        assert record.spawned_at_ns == kernel.clock.now_ns
        assert record.ended_at_ns is None
        assert record.exit_code is None

    def test_reap_stamps_end_time_after_teardown_cost(self):
        kernel = Kernel()
        record = kernel.spawn("prog", 1_000_000)
        kernel.reap(record, 3)
        assert record.ended_at_ns == kernel.clock.now_ns
        assert record.ended_at_ns > record.spawned_at_ns
        assert record.exit_code == 3
        assert record.state is ProcessState.EXITED

    def test_forked_child_lifecycle_is_independent(self):
        kernel = Kernel()
        parent = kernel.spawn("prog", 1_000_000)
        child = kernel.fork(parent, 1 << 20)
        kernel.reap(child, 0)
        assert child.state is ProcessState.EXITED
        assert parent.state is ProcessState.RUNNING
        assert kernel.live_process_count() == 1
        assert child.image == parent.image
        assert child.pid != parent.pid

    def test_crash_keeps_exit_code_none(self):
        kernel = Kernel()
        record = kernel.spawn("prog", 1000)
        kernel.reap(record, None, crashed=True)
        assert record.state is ProcessState.CRASHED
        assert record.exit_code is None
        assert record.ended_at_ns is not None


class TestKernelAccounting:
    def test_spawn_teardown_ns_sum_to_clock(self):
        """Every ns the clock advanced is attributed to a stats bucket."""
        kernel = Kernel()
        a = kernel.spawn("p", 500_000)
        b = kernel.fork(a, 1 << 20)
        kernel.charge_cow(3 * 4096)
        kernel.reap(b, 0)
        kernel.reap(a, 0, fresh=True)
        stats = kernel.stats
        assert stats.process_management_ns() == kernel.clock.now_ns
        assert stats.spawns == 1 and stats.forks == 1 and stats.teardowns == 2

    def test_teardown_ns_included_in_management(self):
        kernel = Kernel()
        record = kernel.spawn("p", 1000)
        kernel.reap(record, 0)
        assert kernel.stats.teardown_ns > 0
        assert kernel.stats.process_management_ns() >= kernel.stats.teardown_ns

    def test_respawn_cycle_accounting(self):
        """Spawn/teardown pairs leave the process table balanced."""
        kernel = Kernel()
        for _ in range(5):
            record = kernel.spawn("p", 10_000)
            kernel.reap(record, 0, fresh=True)
        assert kernel.stats.spawns == 5
        assert kernel.stats.teardowns == 5
        assert kernel.live_process_count() == 0
        assert len(kernel.processes) == 5

    def test_charge_dispatch_advances_clock_only(self):
        kernel = Kernel()
        before_stats = kernel.stats.process_management_ns()
        kernel.charge_dispatch()
        assert kernel.clock.now_ns == kernel.costs.dispatch_ns
        assert kernel.stats.process_management_ns() == before_stats


class _OneShotPipeFault:
    """Duck-typed stand-in for the chaos injector (sim_os never
    imports repro.chaos, so neither does its test double)."""

    def __init__(self, at_occurrence=0):
        self.at_occurrence = at_occurrence
        self.polls = 0

    def poll(self, site):
        occurrence = self.polls
        self.polls += 1
        if site == "pipe" and occurrence == self.at_occurrence:
            return PipeBroken("injected drop")
        return None


class TestSimPipe:
    def test_write_then_read(self):
        pipe = SimPipe()
        pipe.write(b"abcd")
        assert pipe.read(4) == b"abcd"
        assert pipe.bytes_written == 4

    def test_short_read_means_dead_peer(self):
        pipe = SimPipe()
        pipe.write(b"ab")
        with pytest.raises(PipeBroken):
            pipe.read(4)

    def test_severed_pipe_raises_both_ways(self):
        pipe = SimPipe()
        pipe.sever()
        with pytest.raises(PipeBroken):
            pipe.write(b"x")
        with pytest.raises(PipeBroken):
            pipe.read(1)


class TestForkserverChannel:
    def test_handshake_establishes_and_charges(self):
        kernel = Kernel()
        channel = ForkserverChannel(kernel)
        channel.handshake()
        assert channel.established
        assert channel.handshakes == 1
        assert kernel.clock.now_ns == kernel.costs.pipe_handshake_ns

    def test_roundtrip_echoes_child_pid(self):
        kernel = Kernel()
        channel = ForkserverChannel(kernel)
        channel.handshake()
        assert channel.fork_roundtrip(4321) == 4321
        assert channel.roundtrips == 1

    def test_roundtrip_before_handshake_is_protocol_error(self):
        channel = ForkserverChannel(Kernel())
        with pytest.raises(PipeBroken):
            channel.fork_roundtrip(1)

    def test_injected_drop_severs_handshake(self):
        kernel = Kernel(faults=_OneShotPipeFault(at_occurrence=0))
        channel = ForkserverChannel(kernel)
        with pytest.raises(PipeBroken):
            channel.handshake()
        assert not channel.established
        assert channel.ctl.broken and channel.status.broken
        # The time the failed handshake took is still charged.
        assert kernel.clock.now_ns == kernel.costs.pipe_handshake_ns

    def test_injected_drop_severs_roundtrip(self):
        kernel = Kernel(faults=_OneShotPipeFault(at_occurrence=1))
        channel = ForkserverChannel(kernel)
        channel.handshake()
        with pytest.raises(PipeBroken):
            channel.fork_roundtrip(7)
        assert not channel.established

    def test_reset_gives_fresh_pipes_for_respawn(self):
        kernel = Kernel(faults=_OneShotPipeFault(at_occurrence=0))
        channel = ForkserverChannel(kernel)
        with pytest.raises(PipeBroken):
            channel.handshake()
        channel.reset()
        channel.handshake()  # fault was one-shot; the respawn succeeds
        assert channel.established
        assert channel.fork_roundtrip(99) == 99

    def test_hello_word_is_fork_magic(self):
        assert FORKSRV_HELLO.to_bytes(4, "little") == b"FORK"
