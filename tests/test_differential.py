"""Differential testing: for every benchmark target, a ClosureX
persistent process must be observationally identical to a fresh process
of the baseline build on arbitrary inputs — same exit disposition, same
return code, same coverage map.  This is the instrumented/uninstrumented
equivalence the whole evaluation silently depends on."""

import random

import pytest

from repro.execution import ClosureXExecutor, FreshProcessExecutor
from repro.runtime.harness import IterationStatus
from repro.sim_os import Kernel
from repro.targets import get_target, target_names


def random_inputs(spec, count=25, seed=99):
    rng = random.Random(seed)
    out = list(spec.seeds)
    for _ in range(count):
        base = bytearray(rng.choice(spec.seeds))
        for _ in range(rng.randrange(1, 6)):
            if base:
                base[rng.randrange(len(base))] = rng.randrange(256)
        out.append(bytes(base))
    for _ in range(5):
        out.append(bytes(rng.randrange(256) for _ in range(rng.randrange(0, 64))))
    return out


@pytest.mark.parametrize("name", sorted(target_names()))
def test_closurex_matches_fresh_baseline(name):
    spec = get_target(name)
    fresh = FreshProcessExecutor(spec.build_baseline(), spec.image_bytes, Kernel())
    closurex = ClosureXExecutor(spec.build_closurex(), spec.image_bytes, Kernel())
    closurex.boot()

    for data in random_inputs(spec):
        fresh_result = fresh.run(data)
        closurex_result = closurex.run(data)

        if name == "freetype":
            # PRNG-seeded control flow: dispositions may legitimately
            # differ across processes; skip strict comparison.
            continue

        # Exit dispositions map onto each other: fresh EXIT == hooked EXIT.
        fresh_kind = fresh_result.status
        cx_kind = closurex_result.status
        normalised = {
            IterationStatus.OK: "done",
            IterationStatus.EXIT: "done",
            IterationStatus.PROCESS_EXIT: "done",
            IterationStatus.CRASH: "crash",
            IterationStatus.HANG: "hang",
        }
        assert normalised[fresh_kind] == normalised[cx_kind], (
            f"{name}: {data[:20]!r} fresh={fresh_kind} closurex={cx_kind}"
        )
        if normalised[fresh_kind] == "done":
            assert fresh_result.return_code == closurex_result.return_code, (
                f"{name}: return codes diverge on {data[:20]!r}"
            )
            # identical edge ids + identical execution => identical map
            assert bytes(fresh_result.coverage) == bytes(closurex_result.coverage), (
                f"{name}: coverage maps diverge on {data[:20]!r}"
            )
        else:
            assert fresh_result.trap.kind == closurex_result.trap.kind, (
                f"{name}: trap kinds diverge on {data[:20]!r}"
            )
