"""Unit tests for values, constants, use-lists, and replaceAllUsesWith."""

import pytest

from repro.ir import (
    ArrayType,
    ConstantData,
    ConstantInt,
    ConstantNull,
    FunctionType,
    GlobalVariable,
    I8,
    I32,
    I64,
    IRBuilder,
    Module,
    ZeroInitializer,
    const_i32,
    null_ptr,
    pointer_type,
)


class TestConstants:
    def test_constant_int_wraps(self):
        assert ConstantInt(I8, 300).value == 44
        assert ConstantInt(I32, -1).value == 0xFFFFFFFF

    def test_signed_value(self):
        assert ConstantInt(I8, 0xFF).signed_value == -1
        assert ConstantInt(I32, 5).signed_value == 5

    def test_requires_int_type(self):
        with pytest.raises(TypeError):
            ConstantInt(pointer_type(I8), 0)

    def test_null_refs(self):
        assert null_ptr(I8).ref() == "null"

    def test_constant_data_size_checked(self):
        with pytest.raises(ValueError):
            ConstantData(ArrayType(I8, 4), b"too long")
        cd = ConstantData(ArrayType(I8, 4), b"abcd")
        assert cd.data == b"abcd"


class TestGlobalVariable:
    def test_default_sections(self):
        zero = GlobalVariable("z", I32)
        assert zero.section == ".bss"
        init = GlobalVariable("d", I32, ConstantInt(I32, 7))
        assert init.section == ".data"
        const = GlobalVariable("c", I32, ConstantInt(I32, 7), is_constant=True)
        assert const.section == ".rodata"

    def test_type_is_pointer_to_value_type(self):
        var = GlobalVariable("g", I32)
        assert var.type == pointer_type(I32)
        assert var.value_type == I32

    def test_initial_bytes_zero(self):
        assert GlobalVariable("z", I64).initial_bytes() == bytes(8)

    def test_initial_bytes_int(self):
        var = GlobalVariable("d", I32, ConstantInt(I32, 0x01020304))
        assert var.initial_bytes() == bytes([4, 3, 2, 1])

    def test_initial_bytes_data(self):
        array = ArrayType(I8, 3)
        var = GlobalVariable("s", array, ConstantData(array, b"hi\x00"))
        assert var.initial_bytes() == b"hi\x00"

    def test_set_section(self):
        var = GlobalVariable("g", I32)
        var.set_section("closure_global_section")
        assert var.section == "closure_global_section"


class TestUseLists:
    def _make_add(self):
        module = Module("m")
        func = module.add_function("f", FunctionType(I32, [I32]))
        func.ensure_args(["x"])
        builder = IRBuilder(func.append_block("entry"))
        total = builder.add(func.args[0], const_i32(1))
        builder.ret(total)
        return module, func, total

    def test_operands_register_uses(self):
        _module, func, total = self._make_add()
        arg = func.args[0]
        assert arg.num_uses == 1
        assert total.num_uses == 1  # used by ret

    def test_replace_all_uses_with(self):
        _module, func, total = self._make_add()
        replacement = const_i32(42)
        count = total.replace_all_uses_with(replacement)
        assert count == 1
        ret = func.entry_block.instructions[-1]
        assert ret.value is replacement
        assert total.num_uses == 0

    def test_replace_with_self_is_noop(self):
        _module, _func, total = self._make_add()
        assert total.replace_all_uses_with(total) == 0

    def test_users_are_distinct(self):
        module = Module("m")
        func = module.add_function("f", FunctionType(I32, [I32]))
        func.ensure_args(["x"])
        builder = IRBuilder(func.append_block("entry"))
        doubled = builder.add(func.args[0], func.args[0])
        builder.ret(doubled)
        assert len(list(func.args[0].users())) == 1  # one user, two uses
        assert func.args[0].num_uses == 2

    def test_drop_all_operands(self):
        _module, func, total = self._make_add()
        arg = func.args[0]
        ret = func.entry_block.instructions[-1]
        ret.erase_from_parent()
        assert total.num_uses == 0
        assert arg.num_uses == 1  # still used by the add

    def test_zero_initializer_ref(self):
        assert ZeroInitializer(I32).ref() == "zeroinitializer"
