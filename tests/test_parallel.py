"""Parallel multi-worker campaigns: sync protocol, determinism,
transport equivalence, failure healing, coordinated checkpoint/resume.

The hard invariant under test everywhere: for a fixed ``(seed,
n_workers, sync_every)`` the merged result digest is bit-identical —
across repeated runs, across the inline and process transports, across
a worker being killed mid-round and replaced, and across the
orchestrator itself dying at a barrier and resuming from the
coordinated checkpoint.
"""

from __future__ import annotations

import os

import pytest

from repro.execution import ClosureXExecutor
from repro.fuzzing import Campaign, CampaignConfig, CheckpointError
from repro.fuzzing.coverage import VirginMap, classify
from repro.parallel import (
    ParallelCampaign,
    ParallelConfig,
    SyncCandidate,
    SyncHub,
    derive_worker_seed,
)
from repro.sim_os import Kernel
from repro.targets import get_target
from repro.vm.interpreter import COVERAGE_MAP_SIZE

TARGET = "md4c"
BUDGET_NS = 6_000_000
SYNC_NS = 2_000_000


def _config(**overrides) -> ParallelConfig:
    base = dict(target=TARGET, n_workers=2, seed=7,
                budget_ns=BUDGET_NS, sync_every_ns=SYNC_NS)
    base.update(overrides)
    return ParallelConfig(**base)


@pytest.fixture(scope="module")
def golden():
    """One uninterrupted inline run every invariant test compares to."""
    return ParallelCampaign(_config()).run()


# ---------------------------------------------------------------------------
# worker seed derivation
# ---------------------------------------------------------------------------


class TestWorkerSeeds:
    def test_deterministic(self):
        assert derive_worker_seed(7, 3) == derive_worker_seed(7, 3)

    def test_distinct_across_shards(self):
        seeds = {derive_worker_seed(7, shard) for shard in range(64)}
        assert len(seeds) == 64

    def test_distinct_across_campaign_seeds(self):
        assert derive_worker_seed(1, 0) != derive_worker_seed(2, 0)

    def test_nonnegative_and_bounded(self):
        for shard in range(16):
            seed = derive_worker_seed(123456789, shard)
            assert 0 <= seed <= 0x7FFFFFFF


# ---------------------------------------------------------------------------
# sync hub protocol
# ---------------------------------------------------------------------------


def _candidate(shard, entry_id, data, cells):
    raw = bytearray(COVERAGE_MAP_SIZE)
    for index, count in cells.items():
        raw[index] = count
    return SyncCandidate(
        shard_id=shard, entry_id=entry_id, data=data,
        signature=classify(raw).tobytes(), exec_ns=1000,
    )


def _report(shard, discoveries, round_index=0):
    from repro.parallel.sync import RoundReport
    return RoundReport(
        shard_id=shard, round_index=round_index, clock_ns=0, execs=0,
        edges_found=0, corpus_size=0, unique_crashes=0, total_crashes=0,
        unique_hangs=0, imported=0, discoveries=discoveries,
    )


class TestSyncHub:
    def test_novel_input_broadcast_to_other_shards_only(self):
        hub = SyncHub(3)
        cand = _candidate(1, 0, b"a", {5: 1})
        assert hub.ingest([_report(1, [cand])]) == 1
        assert [len(box) for box in hub.outboxes] == [1, 0, 1]

    def test_content_hash_dedup(self):
        hub = SyncHub(2)
        first = _candidate(0, 0, b"same", {5: 1})
        second = _candidate(1, 0, b"same", {9: 1})  # new edge, same bytes
        hub.ingest([_report(0, [first]), _report(1, [second])])
        assert hub.stats.accepted == 1
        assert hub.stats.duplicates == 1

    def test_novelty_filter_rejects_known_coverage(self):
        hub = SyncHub(2)
        hub.ingest([_report(0, [_candidate(0, 0, b"a", {5: 1})])])
        hub.ingest([_report(0, [_candidate(0, 1, b"b", {5: 1})])])
        assert hub.stats.accepted == 1
        assert hub.stats.stale == 1

    def test_merge_order_is_shard_order_not_arrival_order(self):
        make = lambda: [  # noqa: E731 - tiny local factory
            _report(1, [_candidate(1, 0, b"one", {5: 1})]),
            _report(0, [_candidate(0, 0, b"zero", {5: 1})]),
        ]
        forward, backward = SyncHub(2), SyncHub(2)
        forward.ingest(make())
        backward.ingest(list(reversed(make())))
        # Same coverage cell: shard 0 must win the race in both cases.
        assert forward.corpus_hashes() == backward.corpus_hashes()
        assert forward.accepted[0].shard_id == 0

    def test_seed_corpus_never_interesting(self):
        hub = SyncHub(2)
        hub.register_seeds([b"seed"])
        hub.ingest([_report(0, [_candidate(0, 0, b"seed", {5: 1})])])
        assert hub.stats.accepted == 0
        assert hub.stats.duplicates == 1

    def test_backpressure_cap_and_fifo_order(self):
        hub = SyncHub(2, max_imports_per_sync=2)
        cands = [
            _candidate(0, i, bytes([i]), {i: 1}) for i in range(5)
        ]
        hub.ingest([_report(0, cands)])
        first = hub.drain(1)
        assert first == [bytes([0]), bytes([1])]
        assert hub.pending() == 3
        assert hub.drain(1) == [bytes([2]), bytes([3])]
        assert hub.drain(1) == [bytes([4])]
        assert hub.drain(1) == []
        assert hub.stats.delivered == 5

    def test_own_outbox_never_receives_own_discovery(self):
        hub = SyncHub(2)
        hub.ingest([_report(0, [_candidate(0, 0, b"a", {5: 1})])])
        assert hub.drain(0) == []
        assert hub.drain(1) == [b"a"]

    def test_snapshot_roundtrip(self):
        hub = SyncHub(2, max_imports_per_sync=3)
        hub.register_seeds([b"seed"])
        hub.ingest([_report(0, [_candidate(0, 0, b"a", {5: 1})])])
        clone = SyncHub.from_state(hub.snapshot_state())
        assert clone.seen_hashes == hub.seen_hashes
        assert clone.corpus_hashes() == hub.corpus_hashes()
        assert clone.max_imports_per_sync == 3
        assert [list(b) for b in clone.outboxes] == [
            list(b) for b in hub.outboxes
        ]
        # and the novelty filter state survived: same input is stale
        clone.ingest([_report(1, [_candidate(1, 9, b"b", {5: 1})])])
        assert clone.stats.stale == hub.stats.stale + 1


# ---------------------------------------------------------------------------
# stepwise campaign driving (the substrate the orchestrator relies on)
# ---------------------------------------------------------------------------


class TestStepwiseCampaign:
    def _campaign(self):
        spec = get_target(TARGET)
        executor = ClosureXExecutor(
            spec.build_closurex(), spec.image_bytes, Kernel()
        )
        return Campaign(
            executor, spec.seeds,
            CampaignConfig(budget_ns=BUDGET_NS, seed=7),
        )

    def test_step_until_chunks_equal_single_run(self):
        whole = self._campaign()
        whole_result = whole.run()

        chunked = self._campaign()
        chunked.start()
        for stop in range(SYNC_NS, BUDGET_NS + SYNC_NS, SYNC_NS):
            chunked.step_until(min(stop, BUDGET_NS))
        chunked_result = chunked.finish_run()

        assert chunked_result.execs == whole_result.execs
        assert chunked_result.edges_found == whole_result.edges_found
        assert chunked_result.elapsed_ns == whole_result.elapsed_ns
        assert (
            [e.data for e in chunked.corpus.entries]
            == [e.data for e in whole.corpus.entries]
        )

    def test_import_rejects_stale_and_accepts_novel(self):
        campaign = self._campaign()
        campaign.start()
        campaign.step_until(SYNC_NS)
        size = len(campaign.corpus)
        # Re-importing an input the campaign already holds is never novel.
        assert campaign.import_input(campaign.corpus.entries[0].data) is False
        assert len(campaign.corpus) == size

    def test_export_cursor_yields_each_entry_once(self):
        campaign = self._campaign()
        campaign.start()
        seeds = campaign.corpus.export_new()
        assert [e.data for e in seeds] == [bytes(s) for s in
                                           get_target(TARGET).seeds]
        campaign.step_until(SYNC_NS)
        fresh = campaign.corpus.export_new()
        assert all(e.entry_id >= len(seeds) for e in fresh)
        assert campaign.corpus.export_new() == []


# ---------------------------------------------------------------------------
# end-to-end determinism invariants
# ---------------------------------------------------------------------------


class TestParallelDeterminism:
    def test_two_runs_bit_identical(self, golden):
        repeat = ParallelCampaign(_config()).run()
        assert repeat.digest() == golden.digest()
        assert repeat.corpus_hashes == golden.corpus_hashes
        assert repeat.merged_virgin_bytes == golden.merged_virgin_bytes
        assert (repeat.merged_crash_identities
                == golden.merged_crash_identities)

    def test_process_transport_matches_inline(self, golden):
        result = ParallelCampaign(_config(use_processes=True)).run()
        assert result.digest() == golden.digest()

    def test_killed_worker_replaced_bit_identically(self, golden):
        result = ParallelCampaign(
            _config(use_processes=True, die_at_rounds={1: 1})
        ).run()
        assert result.replacements == 1
        assert result.digest() == golden.digest()

    def test_different_seed_differs(self, golden):
        other = ParallelCampaign(_config(seed=8)).run()
        assert other.digest() != golden.digest()

    def test_workers_explore_divergent_streams(self, golden):
        assert len(golden.workers) == 2
        # Shards share seeds + budget but mutate independently; their
        # discovery sets must not be clones of each other.
        assert golden.sync.offered > 0
        assert golden.sync.accepted > 0

    def test_single_worker_degenerates_gracefully(self):
        result = ParallelCampaign(_config(n_workers=1)).run()
        assert result.n_workers == 1
        assert result.sync.delivered == 0
        assert result.total_execs > 0

    def test_merged_coverage_superset_of_every_worker(self, golden):
        merged = VirginMap.from_bytes(golden.merged_virgin_bytes)
        assert merged.edges_found() >= max(
            r.edges_found for r in golden.workers
        )
        assert golden.total_execs == sum(r.execs for r in golden.workers)


# ---------------------------------------------------------------------------
# coordinated checkpoint / resume
# ---------------------------------------------------------------------------


class TestCoordinatedCheckpoint:
    def test_halt_and_resume_bit_identical(self, golden, tmp_path):
        path = str(tmp_path / "fleet.ckpt")
        halted = ParallelCampaign(
            _config(checkpoint_path=path, halt_after_round=1)
        )
        assert halted.run() is None          # orchestrator "dies" here
        assert os.path.exists(path)

        resumed = ParallelCampaign.resume(path)
        result = resumed.run()
        assert result.resumed
        assert result.digest() == golden.digest()

    def test_resume_after_worker_death_bit_identical(self, golden, tmp_path):
        # The full disaster: one worker is killed mid-round, the healed
        # fleet checkpoints, the orchestrator dies at the next barrier,
        # and the resumed run still reproduces the golden digest.
        path = str(tmp_path / "fleet.ckpt")
        halted = ParallelCampaign(_config(
            use_processes=True, die_at_rounds={1: 1},
            checkpoint_path=path, halt_after_round=1,
        ))
        assert halted.run() is None
        result = ParallelCampaign.resume(path).run()
        assert result.digest() == golden.digest()

    def test_resume_rejects_mismatched_config(self, tmp_path):
        path = str(tmp_path / "fleet.ckpt")
        halted = ParallelCampaign(
            _config(checkpoint_path=path, halt_after_round=0)
        )
        halted.run()
        with pytest.raises(CheckpointError):
            ParallelCampaign.resume(path, _config(seed=99))

    def test_resume_rejects_single_campaign_checkpoint(self, tmp_path):
        from repro.fuzzing.checkpoint import CHECKPOINT_VERSION, save_state
        path = str(tmp_path / "single.ckpt")
        save_state({"version": CHECKPOINT_VERSION, "kind": "campaign"}, path)
        with pytest.raises(CheckpointError):
            ParallelCampaign.resume(path)

    def test_checkpoint_strips_test_hooks(self, tmp_path):
        path = str(tmp_path / "fleet.ckpt")
        halted = ParallelCampaign(_config(
            checkpoint_path=path, halt_after_round=0,
            die_at_rounds={0: 99},
        ))
        halted.run()
        resumed = ParallelCampaign.resume(path)
        assert resumed.config.halt_after_round is None
        assert resumed.config.die_at_rounds == {}


# ---------------------------------------------------------------------------
# reporting + CLI
# ---------------------------------------------------------------------------


class TestReportingAndCli:
    def test_merged_stats_files(self, tmp_path):
        report_dir = str(tmp_path / "stats")
        ParallelCampaign(_config(report_dir=report_dir)).run()
        stats = (tmp_path / "stats" / "fuzzer_stats").read_text()
        assert "n_workers" in stats and "execs_done" in stats
        plot = (tmp_path / "stats" / "plot_data").read_text().splitlines()
        assert plot[0].startswith("# relative_time, round")
        assert len(plot) >= 1 + BUDGET_NS // SYNC_NS

    def test_per_worker_stats_files(self, tmp_path):
        report_dir = str(tmp_path / "stats")
        ParallelCampaign(
            _config(report_dir=report_dir, per_worker_reports=True)
        ).run()
        for shard in range(2):
            worker_stats = (
                tmp_path / "stats" / f"worker_{shard}" / "fuzzer_stats"
            ).read_text()
            assert "shard_id" in worker_stats

    def test_cli_runs_twice_with_identical_digest(self, capsys):
        from repro.parallel.__main__ import main
        argv = ["--target", TARGET, "--workers", "2", "--seed", "7",
                "--budget-ms", "4", "--sync-ms", "2"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        digest = [l for l in first.splitlines() if l.startswith("digest:")]
        assert digest and digest == [
            l for l in second.splitlines() if l.startswith("digest:")
        ]

    def test_cli_list_targets(self, capsys):
        from repro.parallel.__main__ import main
        assert main(["--list-targets"]) == 0
        assert TARGET in capsys.readouterr().out.split()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ParallelConfig(target=TARGET, n_workers=0)
        with pytest.raises(ValueError):
            ParallelConfig(target=TARGET, mechanism="warp-drive")

    def test_digest_covers_corpus_and_coverage(self, golden):
        import dataclasses
        mutated = dataclasses.replace(
            golden, corpus_hashes=list(golden.corpus_hashes[1:])
        )
        assert mutated.digest() != golden.digest()
