"""Golden bit-identity suite for the validated optimizer.

For every built-in target, the optimized ClosureX build must be
observationally indistinguishable from the unoptimized one on the
whole available corpus — seed inputs plus every crafted crash input:
identical coverage maps, crash digests (trap kind + function + block),
program output, return codes, and final filesystem contents.  The only
licensed difference is the dynamic instruction count, which must drop
by at least 10% on at least five targets (the optimization actually
pays for itself).
"""

from __future__ import annotations

import pytest

from repro.analysis.opt import observe
from repro.targets import get_target, target_names

from tests.helpers import all_crash_inputs

TARGETS = target_names()


def _corpus(name) -> list[bytes]:
    spec = get_target(name)
    inputs = list(spec.seeds)
    inputs.extend(all_crash_inputs().get(name, {}).values())
    return inputs


@pytest.fixture(scope="module")
def builds():
    """name -> (baseline module, optimized module, report), built once."""
    out = {}
    for name in TARGETS:
        spec = get_target(name)
        baseline = spec.build_closurex()
        optimized, report = spec.build_optimized()
        out[name] = (baseline, optimized, report)
    return out


@pytest.mark.parametrize("name", TARGETS)
def test_every_input_observes_bit_identically(builds, name):
    baseline, optimized, _report = builds[name]
    for i, data in enumerate(_corpus(name)):
        reference = observe(baseline, data)
        got = observe(optimized, data)
        assert reference.matches(got), (
            f"{name} input {i}: {reference.describe_mismatch(got)}"
        )
        assert got.coverage == reference.coverage
        assert got.crash == reference.crash


@pytest.mark.parametrize("name", TARGETS)
def test_optimizer_applied_cleanly(builds, name):
    _baseline, optimized, report = builds[name]
    assert report.rejected == 0, [
        o.errors for o in report.outcomes if o.errors
    ]
    assert report.applied > 0
    assert report.instructions_after < report.instructions_before
    assert optimized.instruction_count() == report.instructions_after


def test_dynamic_instruction_floor(builds):
    """>=10% fewer dynamic instructions on >=5 targets (seed corpus)."""
    reductions = {}
    for name in TARGETS:
        baseline, optimized, _report = builds[name]
        seeds = get_target(name).seeds
        before = sum(observe(baseline, s).instructions for s in seeds)
        after = sum(observe(optimized, s).instructions for s in seeds)
        assert before > 0
        reductions[name] = 100.0 * (before - after) / before
    winners = [name for name, cut in reductions.items() if cut >= 10.0]
    assert len(winners) >= 5, reductions
