"""End-to-end MiniC semantics tests: compile with the front-end, execute
in the MiniVM, check the observable result — the closest thing the
front-end has to a conformance suite."""

import pytest

from repro.minic import compile_c
from repro.minic.errors import SemanticError
from repro.vm import VM, ProcessExit, TrapKind, VMTrap


def run_main(source: str, argv: list[str] | None = None,
             files: dict[str, bytes] | None = None) -> int:
    module = compile_c(source, "test")
    vm = VM(module)
    vm.load()
    for path, data in (files or {}).items():
        vm.fs.write_file(path, data)
    argc, argv_addr = vm.setup_argv(argv or ["test"])
    return vm.run_function(module.get_function("main"), [argc, argv_addr])


def expr_main(body: str) -> int:
    return run_main("int main(int argc, char **argv) { " + body + " }")


class TestArithmetic:
    def test_basic_ops(self):
        assert expr_main("return 2 + 3 * 4 - 6 / 2;") == 11

    def test_signed_division_truncates_toward_zero(self):
        assert expr_main("int a = -7; return a / 2;") & 0xFFFFFFFF == 0xFFFFFFFD

    def test_modulo_sign(self):
        assert expr_main("int a = -7; return a % 3 + 10;") == 9  # -1 + 10

    def test_shifts(self):
        assert expr_main("return (1 << 10) >> 3;") == 128

    def test_bitwise(self):
        assert expr_main("return (0xF0 | 0x0F) & 0x3C ^ 0x01;") == 0x3D

    def test_unsigned_hex_literal_compares_correctly(self):
        # 0xa1b2c3d4 must zero-extend to 64 bits (C unsigned semantics).
        assert expr_main(
            "long m = 0xa1b2c3d4; return m == 0xa1b2c3d4 ? 1 : 0;"
        ) == 1

    def test_char_is_unsigned(self):
        assert expr_main("char c = 0xff; return c > 0 ? 1 : 0;") == 1

    def test_integer_promotion_in_comparison(self):
        assert expr_main("char c = 200; int x = 100; return c > x ? 1 : 0;") == 1

    def test_unary_minus_and_not(self):
        assert expr_main("int a = 5; return -a + 10;") == 5
        assert expr_main("return !0 + !7;") == 1
        assert expr_main("return (~0 & 0xff);") == 255


class TestControlFlow:
    def test_if_else(self):
        assert expr_main("if (argc > 0) { return 1; } else { return 2; }") == 1

    def test_while_loop(self):
        assert expr_main(
            "int s = 0; int i = 0; while (i < 5) { s += i; i++; } return s;"
        ) == 10

    def test_for_with_break_continue(self):
        assert expr_main(
            "int s = 0;"
            "for (int i = 0; i < 10; i++) {"
            "  if (i == 7) break;"
            "  if (i % 2) continue;"
            "  s += i;"
            "} return s;"
        ) == 12  # 0+2+4+6

    def test_do_while_runs_once(self):
        assert expr_main("int n = 0; do { n++; } while (0); return n;") == 1

    def test_switch_with_fallthrough(self):
        source = (
            "int f(int x) { int r = 0; switch (x) {"
            " case 1: r = 10; break;"
            " case 2: r = 20;"
            " case 3: r += 5; break;"
            " default: r = 99; } return r; }"
            "int main(int argc, char **argv) {"
            " return f(1) + f(2) + f(3) + f(9); }"
        )
        assert run_main(source) == 10 + 25 + 5 + 99

    def test_short_circuit_and(self):
        # The RHS would trap (div by zero) if evaluated.
        assert expr_main("int z = 0; if (z && 1 / z) { return 1; } return 2;") == 2

    def test_short_circuit_or(self):
        assert expr_main("int z = 0; if (1 || 1 / z) { return 3; } return 4;") == 3

    def test_ternary(self):
        assert expr_main("int x = 5; return x > 3 ? x * 2 : x;") == 10

    def test_nested_loops(self):
        assert expr_main(
            "int s = 0;"
            "for (int i = 0; i < 3; i++)"
            "  for (int j = 0; j < 3; j++)"
            "    if (i == j) s += i;"
            "return s;"
        ) == 3


class TestPointersAndArrays:
    def test_array_indexing(self):
        assert expr_main(
            "int a[4]; for (int i = 0; i < 4; i++) a[i] = i * i;"
            "return a[3];"
        ) == 9

    def test_pointer_arithmetic(self):
        assert expr_main(
            "int a[4]; a[2] = 42; int *p = a; p = p + 2; return *p;"
        ) == 42

    def test_address_of_and_deref(self):
        assert expr_main("int x = 7; int *p = &x; *p = 9; return x;") == 9

    def test_pointer_difference(self):
        assert expr_main(
            "int a[8]; int *p = &a[6]; int *q = &a[1]; return (int)(p - q);"
        ) == 5

    def test_char_buffer_with_string_init(self):
        assert expr_main(
            'char buf[8] = "abc"; return buf[0] + buf[3];'
        ) == ord("a")  # NUL padding after the literal

    def test_string_literal_functions(self):
        assert expr_main('return (int)strlen("hello");') == 5

    def test_pointer_increment(self):
        assert expr_main(
            "char s[4] = \"xyz\"; char *p = s; p++; return *p;"
        ) == ord("y")

    def test_null_comparison(self):
        assert expr_main(
            "char *p = NULL; if (!p) { return 5; } return 6;"
        ) == 5


class TestStructs:
    SOURCE = """
    struct Point { int x; int y; };
    struct Node { int value; struct Node *next; };

    int main(int argc, char **argv) {
        struct Point p;
        p.x = 3;
        p.y = 4;
        struct Node a, b;
        a.value = 10;
        a.next = &b;
        b.value = 20;
        b.next = NULL;
        return p.x * p.y + a.next->value;
    }
    """

    def test_struct_fields_and_arrow(self):
        assert run_main(self.SOURCE) == 32

    def test_struct_in_global(self):
        source = """
        struct S { int a; char pad[4]; long b; };
        struct S g;
        int main(int argc, char **argv) {
            g.a = 1; g.b = 41;
            return g.a + (int)g.b;
        }
        """
        assert run_main(source) == 42

    def test_sizeof_struct(self):
        source = """
        struct S { char c; long b; };
        int main(int argc, char **argv) { return (int)sizeof(struct S); }
        """
        assert run_main(source) == 16


class TestFunctions:
    def test_recursion(self):
        source = """
        int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
        int main(int argc, char **argv) { return fib(10); }
        """
        assert run_main(source) == 55

    def test_forward_reference(self):
        source = """
        int helper(int x);
        int main(int argc, char **argv) { return helper(20); }
        int helper(int x) { return x * 2; }
        """
        assert run_main(source) == 40

    def test_void_function(self):
        source = """
        int counter;
        void bump() { counter += 3; }
        int main(int argc, char **argv) { bump(); bump(); return counter; }
        """
        assert run_main(source) == 6

    def test_implicit_return_zero(self):
        assert run_main("int main(int argc, char **argv) { int x = 1; }") == 0

    def test_argv_access(self):
        source = """
        int main(int argc, char **argv) {
            return argc * 100 + (int)strlen(argv[1]);
        }
        """
        assert run_main(source, ["prog", "abc"]) == 203


class TestGlobals:
    def test_global_init_and_mutation(self):
        source = """
        int counter = 5;
        int table[4];
        int main(int argc, char **argv) {
            table[1] = counter;
            counter = 7;
            return table[1] + counter;
        }
        """
        assert run_main(source) == 12

    def test_const_global_is_readonly_data(self):
        module = compile_c("const int K = 9; int main(int a, char **v) { return K; }", "t")
        assert module.get_global("K").is_constant
        assert module.get_global("K").section == ".rodata"


class TestLibcIntegration:
    def test_malloc_free_roundtrip(self):
        assert expr_main(
            "int *p = (int*)malloc(16); p[1] = 11; int v = p[1];"
            "free((char*)p); return v;"
        ) == 11

    def test_file_io(self):
        source = """
        int main(int argc, char **argv) {
            char buf[16];
            char *f = fopen(argv[1], "r");
            if (!f) return -1;
            long n = fread(buf, 1, 16, f);
            fclose(f);
            return (int)n * 10 + buf[0] - '0';
        }
        """
        result = run_main(source, ["prog", "/in"], files={"/in": b"7abc"})
        assert result == 47

    def test_exit_propagates(self):
        with pytest.raises(ProcessExit) as info:
            run_main("int main(int argc, char **argv) { exit(3); return 0; }")
        assert info.value.code == 3

    def test_memcmp_and_strcmp(self):
        assert expr_main(
            'return memcmp("abc", "abd", 2) == 0 && strcmp("x", "x") == 0 ? 1 : 0;'
        ) == 1


class TestTraps:
    def test_division_by_zero_traps(self):
        with pytest.raises(VMTrap) as info:
            expr_main("int z = argc - 1; return 5 / z;")
        assert info.value.kind is TrapKind.DIV_BY_ZERO

    def test_null_write_traps(self):
        with pytest.raises(VMTrap) as info:
            expr_main("int *p = NULL; *p = 1; return 0;")
        assert info.value.kind is TrapKind.NULL_DEREF


class TestSemanticErrors:
    def test_undeclared_identifier(self):
        with pytest.raises(SemanticError, match="undeclared"):
            compile_c("int main(int a, char **v) { return missing; }", "t")

    def test_unknown_struct(self):
        with pytest.raises(SemanticError, match="unknown struct"):
            compile_c("struct Nope *p; int main(int a, char **v) { return 0; }", "t")

    def test_call_arity_checked(self):
        with pytest.raises(SemanticError, match="arguments"):
            compile_c(
                "int f(int x) { return x; }"
                "int main(int a, char **v) { return f(); }", "t"
            )

    def test_undeclared_function(self):
        with pytest.raises(SemanticError, match="undeclared function"):
            compile_c("int main(int a, char **v) { return nope(); }", "t")

    def test_break_outside_loop(self):
        with pytest.raises(SemanticError, match="break"):
            compile_c("int main(int a, char **v) { break; return 0; }", "t")
