"""Unit tests for Module/Function/BasicBlock, the builder, verifier,
printer, and CFG utilities."""

import pytest

from repro.ir import (
    Br,
    FunctionType,
    I32,
    I64,
    IRBuilder,
    Module,
    Phi,
    Ret,
    StructType,
    VOID,
    VerificationError,
    cfg,
    const_i32,
    print_function,
    print_module,
    verify_module,
)
from repro.ir import cfg


class TestModuleSymbols:
    def test_duplicate_function_rejected(self):
        module = Module("m")
        module.add_function("f", FunctionType(VOID, []))
        with pytest.raises(ValueError):
            module.add_function("f", FunctionType(VOID, []))

    def test_function_global_namespace_shared(self):
        module = Module("m")
        module.add_global("sym", I32)
        with pytest.raises(ValueError):
            module.add_function("sym", FunctionType(VOID, []))

    def test_declare_function_idempotent(self):
        module = Module("m")
        first = module.declare_function("malloc", FunctionType(I64, [I64]))
        second = module.declare_function("malloc", FunctionType(I64, [I64]))
        assert first is second

    def test_declare_conflicting_signature_rejected(self):
        module = Module("m")
        module.declare_function("f", FunctionType(I64, [I64]))
        with pytest.raises(ValueError):
            module.declare_function("f", FunctionType(I32, []))

    def test_rename_preserves_order(self):
        module = Module("m")
        module.add_function("a", FunctionType(VOID, []))
        main = module.add_function("main", FunctionType(VOID, []))
        module.add_function("z", FunctionType(VOID, []))
        module.rename_function(main, "target_main")
        assert list(module.functions) == ["a", "target_main", "z"]
        assert module.get_function("target_main") is main

    def test_rename_to_existing_rejected(self):
        module = Module("m")
        module.add_function("a", FunctionType(VOID, []))
        main = module.add_function("main", FunctionType(VOID, []))
        with pytest.raises(ValueError):
            module.rename_function(main, "a")

    def test_globals_in_section(self):
        module = Module("m")
        module.add_global("a", I32)
        module.add_global("b", I32, section="special")
        assert [g.name for g in module.globals_in_section("special")] == ["b"]

    def test_struct_registry(self):
        module = Module("m")
        struct = module.add_struct(StructType("s", [("x", I32)]))
        assert module.get_struct("s") is struct
        with pytest.raises(ValueError):
            module.add_struct(StructType("s", []))


class TestFunctionBlocks:
    def test_block_names_uniquified(self):
        module = Module("m")
        func = module.add_function("f", FunctionType(VOID, []))
        first = func.append_block("loop")
        second = func.append_block("loop")
        assert first.name != second.name

    def test_entry_block_of_declaration_raises(self):
        module = Module("m")
        func = module.add_function("f", FunctionType(VOID, []))
        assert func.is_declaration
        with pytest.raises(ValueError):
            _ = func.entry_block

    def test_instruction_count(self):
        module = Module("m")
        func = module.add_function("f", FunctionType(VOID, []))
        builder = IRBuilder(func.append_block())
        builder.alloca(I32)
        builder.ret()
        assert func.instruction_count() == 2
        assert module.instruction_count() == 2


class TestVerifier:
    def _skeleton(self):
        module = Module("m")
        func = module.add_function("f", FunctionType(I32, []))
        return module, func

    def test_valid_module_passes(self):
        module, func = self._skeleton()
        builder = IRBuilder(func.append_block("entry"))
        builder.ret(const_i32(0))
        verify_module(module)

    def test_missing_terminator_detected(self):
        module, func = self._skeleton()
        block = func.append_block("entry")
        IRBuilder(block).alloca(I32)
        with pytest.raises(VerificationError, match="terminator"):
            verify_module(module)

    def test_empty_block_detected(self):
        module, func = self._skeleton()
        func.append_block("entry")
        with pytest.raises(VerificationError, match="empty"):
            verify_module(module)

    def test_use_before_def_detected(self):
        module, func = self._skeleton()
        entry = func.append_block("entry")
        later = func.append_block("later")
        builder = IRBuilder(later)
        value = builder.add(const_i32(1), const_i32(2))
        builder.ret(value)
        # entry uses a value defined only in 'later'
        entry_builder = IRBuilder(entry)
        entry_builder.ret(value)
        with pytest.raises(VerificationError, match="before definition"):
            verify_module(module)

    def test_phi_incoming_mismatch_detected(self):
        module, func = self._skeleton()
        entry = func.append_block("entry")
        merge = func.append_block("merge")
        IRBuilder(entry).br(merge)
        phi = Phi(I32)
        phi.add_incoming(const_i32(1), func.append_block("bogus"))
        merge.append(phi)
        merge.append(Ret(phi))
        with pytest.raises(VerificationError, match="phi"):
            verify_module(module)

    def test_constant_in_closure_section_detected(self):
        module, func = self._skeleton()
        builder = IRBuilder(func.append_block("entry"))
        builder.ret(const_i32(0))
        var = module.add_global("c", I32, const_i32(1), is_constant=True)
        var.set_section("closure_global_section")
        with pytest.raises(VerificationError, match="closure_global_section"):
            verify_module(module)


class TestPrinter:
    def test_prints_declaration(self):
        module = Module("m")
        module.declare_function("puts", FunctionType(I32, [I64]))
        text = print_module(module)
        assert "declare i32 @puts(i64)" in text

    def test_prints_definition(self):
        module = Module("m")
        func = module.add_function("f", FunctionType(I32, [I32]))
        func.ensure_args(["x"])
        builder = IRBuilder(func.append_block("entry"))
        builder.ret(builder.add(func.args[0], const_i32(1)))
        text = print_function(func)
        assert "define i32 @f(i32 %x)" in text
        assert "ret i32" in text
        assert "add i32" in text

    def test_prints_globals_and_structs(self):
        module = Module("m")
        module.add_struct(StructType("pair", [("a", I32), ("b", I32)]))
        module.add_global("g", I32)
        text = print_module(module)
        assert "%pair = type" in text
        assert "@g = global i32" in text


class TestCFG:
    def _diamond(self):
        module = Module("m")
        func = module.add_function("f", FunctionType(I32, [I32]))
        func.ensure_args(["x"])
        entry = func.append_block("entry")
        left = func.append_block("left")
        right = func.append_block("right")
        merge = func.append_block("merge")
        builder = IRBuilder(entry)
        cond = builder.icmp("eq", func.args[0], const_i32(0))
        builder.cond_br(cond, left, right)
        IRBuilder(left).br(merge)
        IRBuilder(right).br(merge)
        IRBuilder(merge).ret(const_i32(0))
        return module, func, (entry, left, right, merge)

    def test_edges(self):
        _module, func, (entry, left, right, merge) = self._diamond()
        edges = cfg.function_edges(func)
        assert (entry, left) in edges
        assert (entry, right) in edges
        assert (left, merge) in edges
        assert len(edges) == 4

    def test_predecessors(self):
        _module, func, (_entry, left, right, merge) = self._diamond()
        preds = cfg.predecessors(func)
        assert set(preds[merge]) == {left, right}

    def test_reachability(self):
        module, func, blocks = self._diamond()
        unreachable = func.append_block("dead")
        IRBuilder(unreachable).ret(const_i32(1))
        reachable = cfg.reachable_blocks(func)
        assert unreachable not in reachable
        assert set(blocks) <= reachable

    def test_topological_order_starts_at_entry(self):
        _module, func, (entry, _l, _r, merge) = self._diamond()
        order = cfg.topological_order(func)
        assert order[0] is entry
        assert order[-1] is merge

    def test_edge_count_and_block_ids(self):
        module, func, _blocks = self._diamond()
        assert cfg.edge_count(module) == 4
        ids = cfg.block_ids(module)
        assert sorted(ids.values()) == [0, 1, 2, 3]

    def test_call_site_count_ignores_declarations(self):
        module, func, _ = self._diamond()
        helper = module.add_function("h", FunctionType(VOID, []))
        IRBuilder(helper.append_block()).ret()
        declared = module.declare_function("ext", FunctionType(VOID, []))
        merge = func.get_block("merge")
        merge.instructions.pop()  # drop ret
        builder = IRBuilder(merge)
        builder.call(helper, [])
        builder.call(declared, [])
        builder.ret(const_i32(0))
        assert cfg.call_site_count(module) == 1
