"""Tests for the fuzzer: coverage maps, mutators, corpus, triage,
and campaign behaviour."""

import random

import pytest

from repro.fuzzing import (
    Campaign,
    CampaignConfig,
    Corpus,
    CrashTriage,
    HavocMutator,
    VirginMap,
    classify,
    coverage_signature,
    deterministic_mutations,
    edge_count,
)
from repro.fuzzing.mutators import MAX_INPUT_SIZE
from repro.vm.errors import CrashSite, TrapKind, VMTrap
from repro.vm.interpreter import COVERAGE_MAP_SIZE


def make_map(cells: dict[int, int]) -> bytearray:
    out = bytearray(COVERAGE_MAP_SIZE)
    for index, value in cells.items():
        out[index] = value
    return out


class TestClassification:
    def test_bucket_boundaries(self):
        raw = bytes([0, 1, 2, 3, 4, 7, 8, 15, 16, 31, 32, 127, 128, 255])
        classified = classify(raw + bytes(COVERAGE_MAP_SIZE - len(raw)))
        assert list(classified[:14]) == [
            0, 1, 2, 4, 8, 8, 16, 16, 32, 32, 64, 64, 128, 128
        ]

    def test_edge_count(self):
        assert edge_count(make_map({5: 1, 99: 200})) == 2
        assert edge_count(bytearray(COVERAGE_MAP_SIZE)) == 0

    def test_signature_is_classified(self):
        signature = coverage_signature(make_map({3: 5}))
        assert signature[3] == 8


class TestVirginMap:
    def test_first_observation_is_new_edges(self):
        virgin = VirginMap()
        assert virgin.observe(make_map({10: 1})) == VirginMap.NEW_EDGES

    def test_same_map_is_not_new(self):
        virgin = VirginMap()
        virgin.observe(make_map({10: 1}))
        assert virgin.observe(make_map({10: 1})) == VirginMap.NO_NEW

    def test_new_hitcount_bucket(self):
        virgin = VirginMap()
        virgin.observe(make_map({10: 1}))
        assert virgin.observe(make_map({10: 200})) == VirginMap.NEW_COUNTS

    def test_would_be_new_does_not_fold(self):
        virgin = VirginMap()
        assert virgin.would_be_new(make_map({7: 1})) == VirginMap.NEW_EDGES
        assert virgin.would_be_new(make_map({7: 1})) == VirginMap.NEW_EDGES

    def test_edges_found(self):
        virgin = VirginMap()
        virgin.observe(make_map({1: 1, 2: 1, 3: 1}))
        assert virgin.edges_found() == 3


class TestDeterministicMutations:
    def test_bitflips_present(self):
        mutations = set(deterministic_mutations(b"\x00"))
        assert b"\x80" in mutations  # first bitflip
        assert b"\xff" in mutations  # byteflip

    def test_empty_input_yields_nothing(self):
        assert list(deterministic_mutations(b"")) == []

    def test_all_outputs_same_length(self):
        for mutated in deterministic_mutations(b"abcd"):
            assert len(mutated) == 4

    def test_interesting_values_injected(self):
        mutations = set(deterministic_mutations(b"\x42\x42"))
        assert b"\x7f\x42" in mutations  # INTERESTING_8 127


class TestHavoc:
    def test_output_bounded(self):
        havoc = HavocMutator(random.Random(1), max_size=64)
        for _ in range(200):
            assert 1 <= len(havoc.mutate(b"seed input")) <= 64

    def test_default_bound(self):
        havoc = HavocMutator(random.Random(2))
        data = bytes(range(256)) * 4
        for _ in range(50):
            assert len(havoc.mutate(data)) <= MAX_INPUT_SIZE

    def test_deterministic_given_seed(self):
        a = HavocMutator(random.Random(7)).mutate(b"hello world")
        b = HavocMutator(random.Random(7)).mutate(b"hello world")
        assert a == b

    def test_splice_mixes_parents(self):
        havoc = HavocMutator(random.Random(3))
        out = havoc.splice(b"A" * 32, b"B" * 32)
        assert out  # non-empty; content is randomised

    def test_empty_input_survives(self):
        havoc = HavocMutator(random.Random(4))
        assert havoc.mutate(b"")


class TestCorpus:
    def _entry(self, corpus, data=b"x", cells=None, exec_ns=1000):
        signature = coverage_signature(make_map(cells or {1: 1}))
        return corpus.add(data, signature, exec_ns, now_ns=0)

    def test_add_assigns_ids(self):
        corpus = Corpus()
        first = self._entry(corpus)
        second = self._entry(corpus)
        assert (first.entry_id, second.entry_id) == (0, 1)

    def test_favored_prefers_fast_small(self):
        corpus = Corpus()
        slow = self._entry(corpus, b"s" * 100, {1: 1}, exec_ns=100_000)
        fast = self._entry(corpus, b"f", {1: 1}, exec_ns=100)
        assert fast.favored
        assert not slow.favored

    def test_unique_cell_keeps_entry_favored(self):
        corpus = Corpus()
        a = self._entry(corpus, b"a", {1: 1}, exec_ns=100)
        b = self._entry(corpus, b"b", {2: 1}, exec_ns=100_000)
        assert a.favored and b.favored  # b owns cell 2

    def test_select_next_cycles(self):
        corpus = Corpus()
        for i in range(5):
            self._entry(corpus, bytes([i]), {i: 1})
        rng = random.Random(0)
        selected = {corpus.select_next(rng).entry_id for _ in range(50)}
        assert len(selected) == 5

    def test_energy_scales(self):
        corpus = Corpus()
        fast = self._entry(corpus, b"f", {1: 1}, exec_ns=10)
        slow = self._entry(corpus, b"s" * 64, {2: 1}, exec_ns=1_000_000)
        assert corpus.energy(fast) > corpus.energy(slow)
        assert corpus.energy(slow) >= 8

    def test_depth_bonus(self):
        corpus = Corpus()
        parent = self._entry(corpus, b"p", {1: 1})
        child = corpus.add(b"c", coverage_signature(make_map({2: 1})), 1000, 0,
                           parent=parent)
        assert child.depth == 1
        assert child.parent_id == parent.entry_id

    def test_empty_corpus_select_raises(self):
        with pytest.raises(IndexError):
            Corpus().select_next(random.Random(0))


class TestTriage:
    def _trap(self, kind=TrapKind.NULL_DEREF, function="f", block="b"):
        return VMTrap(kind, "boom", CrashSite(function, block))

    def test_dedup_by_identity(self):
        triage = CrashTriage()
        assert triage.record(self._trap(), b"a", 100) is not None
        assert triage.record(self._trap(), b"b", 200) is None
        assert triage.unique_count == 1
        assert triage.total_crashes == 2
        report = triage.reports()[0]
        assert report.occurrences == 2
        assert report.found_at_ns == 100

    def test_different_sites_are_different_bugs(self):
        triage = CrashTriage()
        triage.record(self._trap(function="f"), b"a", 1)
        triage.record(self._trap(function="g"), b"b", 2)
        assert triage.unique_count == 2

    def test_first_hit_lookup(self):
        triage = CrashTriage()
        trap = self._trap()
        triage.record(trap, b"a", 123)
        assert triage.first_hit_ns(trap.identity()) == 123
        assert triage.first_hit_ns((TrapKind.ABORT, "x", "y")) is None


class TestCampaign:
    def _campaign(self, budget_ns=4_000_000, seed=1):
        from repro.execution import ClosureXExecutor
        from repro.sim_os import Kernel
        from repro.targets import get_target

        spec = get_target("libbpf")
        executor = ClosureXExecutor(spec.build_closurex(), spec.image_bytes,
                                    Kernel())
        return Campaign(
            executor, spec.seeds,
            CampaignConfig(budget_ns=budget_ns, seed=seed),
        )

    def test_respects_budget(self):
        campaign = self._campaign(budget_ns=3_000_000)
        result = campaign.run()
        assert result.elapsed_ns >= 3_000_000
        assert result.elapsed_ns < 3_000_000 * 3  # some overshoot allowed

    def test_grows_corpus_and_coverage(self):
        result = self._campaign().run()
        assert result.corpus_size >= 3          # at least the seeds
        assert result.edges_found > 10
        assert result.execs > 50

    def test_timeline_monotonic(self):
        result = self._campaign().run()
        execs = [p.execs for p in result.timeline]
        assert execs == sorted(execs)

    def test_deterministic_given_seed(self):
        first = self._campaign(seed=5).run()
        second = self._campaign(seed=5).run()
        assert first.execs == second.execs
        assert first.edges_found == second.edges_found

    def test_different_seeds_differ(self):
        first = self._campaign(seed=1).run()
        second = self._campaign(seed=2).run()
        assert (first.execs, first.corpus_size) != (second.execs, second.corpus_size)

    def test_extrapolation(self):
        result = self._campaign().run()
        doubled = result.extrapolate_execs(result.elapsed_ns * 2)
        assert doubled == pytest.approx(result.execs * 2)
