"""Unit tests for the virtual filesystem and FILE-handle table."""

import pytest

from repro.vm.errors import CrashSite, TrapKind, VMTrap
from repro.vm.filesystem import FDTable, VirtualFS

SITE = CrashSite("f", "b")


@pytest.fixture
def fs():
    vfs = VirtualFS()
    vfs.write_file("/data", b"hello world")
    return vfs


@pytest.fixture
def table(fs):
    return FDTable(fs)


class TestVirtualFS:
    def test_write_read_roundtrip(self, fs):
        fs.write_file("/x", b"abc")
        assert fs.read_file("/x") == b"abc"
        assert fs.exists("/x")

    def test_missing_file(self, fs):
        assert fs.read_file("/nope") is None
        assert not fs.exists("/nope")

    def test_clone_is_independent(self, fs):
        clone = fs.clone()
        clone.write_file("/data", b"changed")
        assert fs.read_file("/data") == b"hello world"

    def test_remove(self, fs):
        fs.remove("/data")
        assert not fs.exists("/data")


class TestOpenClose:
    def test_fopen_read(self, table):
        handle = table.fopen("/data", "r", SITE)
        assert handle != 0
        assert table.open_handle_count() == 1

    def test_fopen_missing_returns_null(self, table):
        assert table.fopen("/nope", "r", SITE) == 0
        assert table.open_failures == 1

    def test_fopen_write_creates(self, table):
        handle = table.fopen("/new", "w", SITE)
        file = table.get(handle, SITE)
        table.fwrite(file, b"out")
        table.fclose(handle, SITE)
        assert table.fs.read_file("/new") == b"out"

    def test_fclose_removes_handle(self, table):
        handle = table.fopen("/data", "r", SITE)
        table.fclose(handle, SITE)
        assert table.open_handle_count() == 0

    def test_stdio_on_closed_handle_traps(self, table):
        handle = table.fopen("/data", "r", SITE)
        table.fclose(handle, SITE)
        with pytest.raises(VMTrap) as info:
            table.get(handle, SITE)
        assert info.value.kind is TrapKind.INVALID_READ

    def test_stdio_on_null_traps(self, table):
        with pytest.raises(VMTrap) as info:
            table.get(0, SITE)
        assert info.value.kind is TrapKind.NULL_DEREF

    def test_descriptor_limit(self, fs):
        table = FDTable(fs, max_open=4)
        for _ in range(4):
            table.fopen("/data", "r", SITE)
        with pytest.raises(VMTrap) as info:
            table.fopen("/data", "r", SITE)
        assert info.value.kind is TrapKind.FD_EXHAUSTED

    def test_handles_are_not_memory_addresses(self, table):
        handle = table.fopen("/data", "r", SITE)
        assert table.is_handle(handle)


class TestReadSeek:
    def test_fread_advances(self, table):
        handle = table.fopen("/data", "r", SITE)
        file = table.get(handle, SITE)
        assert table.fread(file, 5) == b"hello"
        assert table.fread(file, 6) == b" world"

    def test_eof_flag(self, table):
        handle = table.fopen("/data", "r", SITE)
        file = table.get(handle, SITE)
        table.fread(file, 100)
        assert file.eof

    def test_fseek_set_cur_end(self, table):
        handle = table.fopen("/data", "r", SITE)
        file = table.get(handle, SITE)
        assert table.fseek(file, 6, 0) == 0
        assert table.fread(file, 5) == b"world"
        table.fseek(file, -5, 1)
        assert table.fread(file, 5) == b"world"
        table.fseek(file, -5, 2)
        assert table.fread(file, 5) == b"world"

    def test_fseek_invalid(self, table):
        handle = table.fopen("/data", "r", SITE)
        file = table.get(handle, SITE)
        assert table.fseek(file, -1, 0) == -1
        assert table.fseek(file, 0, 9) == -1

    def test_rewind_clears_eof(self, table):
        handle = table.fopen("/data", "r", SITE)
        file = table.get(handle, SITE)
        table.fread(file, 100)
        table.fseek(file, 0, 0)
        assert not file.eof
        assert file.position == 0

    def test_close_all(self, table):
        for _ in range(3):
            table.fopen("/data", "r", SITE)
        write_handle = table.fopen("/out", "w", SITE)
        table.fwrite(table.get(write_handle, SITE), b"flushed")
        assert table.close_all() == 4
        assert table.open_handle_count() == 0
        assert table.fs.read_file("/out") == b"flushed"
