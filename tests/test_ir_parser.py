"""Tests for the textual IR parser, including full round-trips of every
benchmark target: parse(print(module)) must reproduce a module that
prints identically and behaves identically."""

import pytest

from repro.ir import Module, print_module, verify_module
from repro.ir.parser import IRParseError, parse_module
from repro.minic import compile_c
from repro.targets import get_target, target_names
from repro.vm import VM

SIMPLE = """
int table[4];
const char MAGIC[3] = "hi";
int counter = 7;

int helper(int x) {
    if (x > 2) { return x * 2; }
    return x;
}

int main(int argc, char **argv) {
    counter += helper(argc);
    table[1] = counter;
    char *p = (char*)malloc(8);
    free(p);
    return table[1];
}
"""


def roundtrip(module: Module) -> Module:
    text = print_module(module)
    parsed = parse_module(text)
    verify_module(parsed)
    return parsed


class TestRoundTrip:
    def test_text_is_stable(self):
        module = compile_c(SIMPLE, "rt")
        first = print_module(module)
        second = print_module(parse_module(first))
        assert first == second

    def test_behaviour_preserved(self):
        module = compile_c(SIMPLE, "rt")
        parsed = roundtrip(module)

        def run(m):
            vm = VM(m)
            vm.load()
            argc, argv = vm.setup_argv(["rt", "x"])
            return vm.run_function(m.get_function("main"), [argc, argv])

        assert run(module) == run(parsed)

    def test_globals_preserved(self):
        module = compile_c(SIMPLE, "rt")
        parsed = roundtrip(module)
        assert set(parsed.globals) == set(module.globals)
        for name in module.globals:
            original = module.globals[name]
            clone = parsed.globals[name]
            assert clone.is_constant == original.is_constant
            assert clone.section == original.section
            assert clone.initial_bytes() == original.initial_bytes()

    def test_module_name_preserved(self):
        module = compile_c(SIMPLE, "some-name")
        assert roundtrip(module).name == "some-name"

    @pytest.mark.parametrize("name", sorted(target_names()))
    def test_all_targets_roundtrip(self, name):
        """The strongest structural test: every benchmark target's
        instrumented build survives print -> parse -> print exactly."""
        module = get_target(name).build_closurex()
        first = print_module(module)
        parsed = parse_module(first)
        verify_module(parsed)
        assert print_module(parsed) == first


class TestStructRoundTrip:
    SOURCE = """
    struct Node { int value; struct Node *next; char tag[4]; };
    struct Node pool[2];

    int main(int argc, char **argv) {
        pool[0].value = 5;
        pool[0].next = &pool[1];
        pool[1].value = 37;
        return pool[0].next->value + pool[0].value;
    }
    """

    def test_struct_types_roundtrip(self):
        module = compile_c(self.SOURCE, "structs")
        parsed = roundtrip(module)
        struct = parsed.get_struct("Node")
        assert struct.size() == module.get_struct("Node").size()

    def test_struct_behaviour(self):
        parsed = roundtrip(compile_c(self.SOURCE, "structs"))
        vm = VM(parsed)
        vm.load()
        argc, argv = vm.setup_argv(["s"])
        assert vm.run_function(parsed.get_function("main"), [argc, argv]) == 42


class TestParserErrors:
    def test_unknown_instruction(self):
        text = (
            "define i32 @f() {\n"
            "entry:\n"
            "  %x = frobnicate i32 1\n"
            "  ret i32 0\n"
            "}\n"
        )
        with pytest.raises(IRParseError, match="unknown instruction"):
            parse_module(text)

    def test_unknown_value(self):
        text = (
            "define i32 @f() {\n"
            "entry:\n"
            "  ret i32 %missing\n"
            "}\n"
        )
        with pytest.raises(IRParseError, match="unknown value"):
            parse_module(text)

    def test_unterminated_body(self):
        text = "define i32 @f() {\nentry:\n  ret i32 0\n"
        with pytest.raises(IRParseError, match="unterminated"):
            parse_module(text)

    def test_unknown_struct_type(self):
        text = "@g = global %nope zeroinitializer\n"
        with pytest.raises(IRParseError):
            parse_module(text)


class TestHandWrittenIR:
    def test_minimal_module(self):
        text = (
            "define i32 @main(i32 %x) {\n"
            "entry:\n"
            "  %doubled = add i32 %x, %x\n"
            "  %big = icmp sgt i32 %doubled, 10\n"
            "  br i1 %big, label %yes, label %no\n"
            "yes:\n"
            "  ret i32 1\n"
            "no:\n"
            "  ret i32 0\n"
            "}\n"
        )
        module = parse_module(text)
        verify_module(module)
        vm = VM(module)
        vm.load()
        assert vm.run_function(module.get_function("main"), [20]) == 1
        assert vm.run_function(module.get_function("main"), [2]) == 0

    def test_phi_parses(self):
        text = (
            "define i32 @f(i32 %x) {\n"
            "entry:\n"
            "  %c = icmp eq i32 %x, 0\n"
            "  br i1 %c, label %a, label %b\n"
            "a:\n"
            "  br label %merge\n"
            "b:\n"
            "  br label %merge\n"
            "merge:\n"
            "  %r = phi i32 [ 10, %a ], [ 20, %b ]\n"
            "  ret i32 %r\n"
            "}\n"
        )
        module = parse_module(text)
        verify_module(module)
        vm = VM(module)
        vm.load()
        assert vm.run_function(module.get_function("f"), [0]) == 10
        assert vm.run_function(module.get_function("f"), [5]) == 20

    def test_switch_parses(self):
        text = (
            "define i32 @f(i32 %x) {\n"
            "entry:\n"
            "  switch i32 %x, label %d [ i32 1, label %one i32 2, label %two ]\n"
            "one:\n"
            "  ret i32 100\n"
            "two:\n"
            "  ret i32 200\n"
            "d:\n"
            "  ret i32 0\n"
            "}\n"
        )
        module = parse_module(text)
        vm = VM(module)
        vm.load()
        assert vm.run_function(module.get_function("f"), [2]) == 200
        assert vm.run_function(module.get_function("f"), [9]) == 0
