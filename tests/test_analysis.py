"""Static analysis engine: dataflow, dominators, pollution, lint.

Covers the `repro.analysis` package plus the CFG cache and strict-SSA
verifier it leans on, and the end-to-end acceptance property: the
pollution-aware build of a proven-clean target runs faster in virtual
time than the blind full instrumentation while producing identical
behaviour.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    Liveness,
    PollutionAnalyzer,
    Severity,
    alloca_slots,
    analyze_pollution,
    def_use_chains,
    lint_module,
    live_values,
    reaching_stores,
    stores_reaching,
    summarise_module,
    unused_definitions,
)
from repro.ir import cfg, parse_module, print_module, verify_module
from repro.ir.instructions import Br, Call, Load, Ret, Store
from repro.ir.module import BasicBlock
from repro.ir.values import ConstantInt
from repro.ir.types import I32, FunctionType
from repro.ir.verifier import VerificationError
from repro.minic import compile_c
from repro.passes import PassManager, closurex_passes
from repro.runtime.harness import ClosureXHarness, HarnessConfig
from repro.targets import all_targets, get_target, target_names

# ---------------------------------------------------------------------------
# CFG cache + dominators
# ---------------------------------------------------------------------------

DIAMOND = r"""
int pick(int a, int b) {
    int r;
    if (a > b) { r = a; } else { r = b; }
    return r + a;
}

int main(int argc, char **argv) {
    return pick(argc, 3);
}
"""


def _function(source: str, name: str):
    module = compile_c(source, "t")
    return module, module.get_function(name)


def test_cfg_results_are_cached_until_mutation():
    _module, function = _function(DIAMOND, "pick")
    first = cfg.predecessors(function)
    assert cfg.predecessors(function) is first
    assert cfg.topological_order(function) is cfg.topological_order(function)
    # Any block mutation bumps the epoch and drops the cache.
    entry = function.entry_block
    entry.insert(0, Call(_module.declare_function("dbg", FunctionType(I32, [])), []))
    assert cfg.predecessors(function) is not first


def test_cfg_invalidate_is_explicit_for_in_place_retargeting():
    _module, function = _function(DIAMOND, "pick")
    epoch = function.cfg_epoch
    function.invalidate_cfg()
    assert function.cfg_epoch == epoch + 1


def test_dominator_tree_diamond():
    _module, function = _function(DIAMOND, "pick")
    tree = cfg.dominator_tree(function)
    blocks = {b.name: b for b in function.blocks}
    entry = function.entry_block
    join = blocks[max(blocks, key=lambda n: len(blocks[n].instructions) if "if.end" in n else -1)]
    for block in function.blocks:
        assert tree.dominates(entry, block)
        assert tree.dominates(block, block)
    # Neither branch arm dominates the join block.
    arms = [b for b in function.blocks
            if b is not entry and tree.immediate_dominator(b) is entry]
    join_blocks = [b for b in arms if len(cfg.predecessors(function)[b]) > 1]
    for join_block in join_blocks:
        for arm in arms:
            if arm is not join_block:
                assert not tree.dominates(arm, join_block)


def test_dominance_frontiers_join_point():
    _module, function = _function(DIAMOND, "pick")
    frontiers = cfg.dominance_frontiers(function)
    preds = cfg.predecessors(function)
    join = next(b for b in function.blocks if len(preds[b]) > 1)
    for pred in preds[join]:
        if pred is not function.entry_block:
            assert join in frontiers[pred]


# ---------------------------------------------------------------------------
# dataflow: liveness + reaching definitions
# ---------------------------------------------------------------------------


def test_liveness_across_branches():
    _module, function = _function(DIAMOND, "pick")
    solution = live_values(function)
    assert solution.iterations > 0
    # The alloca slot for `r` is live into the join block (loaded there).
    preds = cfg.predecessors(function)
    join = next(b for b in function.blocks if len(preds[b]) > 1)
    slots = alloca_slots(function)
    r_slot = next(s for s in slots if any(
        isinstance(u.user, Load) and u.user.parent is join for u in s.uses
    ))
    assert r_slot in solution.at_entry(join)


def test_reaching_definitions_kill_and_merge():
    _module, function = _function(DIAMOND, "pick")
    solution = reaching_stores(function)
    preds = cfg.predecessors(function)
    join = next(b for b in function.blocks if len(preds[b]) > 1)
    load = next(i for i in join.instructions if isinstance(i, Load))
    defs = stores_reaching(load, solution)
    # Both arms' stores to `r` merge at the join-block load.
    blocks = {d.parent for d in defs}
    assert len(defs) == 2 and join not in blocks


def test_def_use_chains_and_unused_defs():
    module = compile_c(DIAMOND, "t")
    function = module.get_function("pick")
    chains = def_use_chains(function)
    for inst, uses in chains.items():
        assert len(uses) == inst.num_uses or any(
            use.user not in chains for use in inst.uses
        )
    assert unused_definitions(function) == []


# ---------------------------------------------------------------------------
# strict SSA verifier
# ---------------------------------------------------------------------------


def test_strict_ssa_rejects_non_dominating_def():
    module = parse_module("""
; ModuleID = 'bad'
define i32 @f(i32 %a) {
entry:
  %c = icmp ne i32 %a, 0
  br i1 %c, label %left, label %right
left:
  %x = add i32 %a, 1
  br label %join
right:
  br label %join
join:
  %y = add i32 %x, 1
  ret i32 %y
}
""")
    verify_module(module)  # structurally fine (layout order is respected)
    with pytest.raises(VerificationError, match="not dominated"):
        verify_module(module, strict_ssa=True)


def test_strict_ssa_checks_phi_on_incoming_edge():
    module = parse_module("""
; ModuleID = 'phi'
define i32 @f(i32 %a) {
entry:
  %c = icmp ne i32 %a, 0
  br i1 %c, label %left, label %right
left:
  %x = add i32 %a, 1
  br label %join
right:
  %z = add i32 %a, 2
  br label %join
join:
  %p = phi i32 [ %x, %left ], [ %z, %right ]
  ret i32 %p
}
""")
    verify_module(module, strict_ssa=True)  # well-formed: no error
    # Swap the phi's incoming blocks: each value now claims to arrive
    # from the arm that does NOT define it.
    function = module.get_function("f")
    blocks = {b.name: b for b in function.blocks}
    phi = blocks["join"].instructions[0]
    phi.incoming_blocks[0], phi.incoming_blocks[1] = (
        phi.incoming_blocks[1], phi.incoming_blocks[0]
    )
    with pytest.raises(VerificationError, match="phi"):
        verify_module(module, strict_ssa=True)


def test_pass_manager_enforces_strict_ssa_by_default():
    assert PassManager([]).strict_ssa is True


# ---------------------------------------------------------------------------
# interprocedural summaries + pollution classifier
# ---------------------------------------------------------------------------

PARAM_WRITE = r"""
int counter;

void bump(int *p, int by) { *p = *p + by; }

int main(int argc, char **argv) {
    bump(&counter, argc);
    return counter;
}
"""


def test_param_mediated_global_write_is_attributed():
    module = compile_c(PARAM_WRITE, "t")
    _graph, summaries = summarise_module(module)
    assert 0 in summaries["bump"].stores_params
    assert "counter" in summaries["main"].modified_globals


def test_pollution_clean_module_proves_all_dimensions():
    module = compile_c(
        "int main(int argc, char **argv) { return argc * 2; }", "pure"
    )
    report = analyze_pollution(module)
    assert set(report.clean_dimensions()) == {"heap", "file", "global", "exit"}
    assert report.skip_passes() == {
        "HeapPass", "FilePass", "GlobalPass", "ExitPass"
    }
    assert report.trusted_globals and not report.modified_globals


def test_pollution_unknown_extern_dirties_everything():
    module = compile_c(PARAM_WRITE, "t")
    mystery = module.declare_function("mystery", FunctionType(I32, []))
    main = module.get_function("main")
    main.entry_block.insert(0, Call(mystery, []))
    report = analyze_pollution(module)
    assert report.clean_dimensions() == ()
    assert not report.trusted_globals


def test_pollution_recursion_reaches_fixpoint():
    source = r"""
    int depth;
    int walk(int n) {
        if (n <= 0) { return 0; }
        depth = depth + 1;
        return walk(n - 1) + 1;
    }
    int main(int argc, char **argv) { return walk(argc); }
    """
    report = analyze_pollution(compile_c(source, "t"))
    assert report.is_clean("heap") and report.is_clean("file")
    assert not report.is_clean("global")
    assert report.modified_globals == frozenset({"depth"})


def test_pollution_analysis_reports_timing_telemetry():
    from repro.telemetry.metrics import MetricsRegistry
    from repro.telemetry.tracer import RingBufferSink, Tracer

    module = compile_c(PARAM_WRITE, "t")
    metrics = MetricsRegistry()
    sink = RingBufferSink()
    tracer = Tracer(sink=sink)
    report = PollutionAnalyzer(module, metrics=metrics, tracer=tracer).run()
    assert report.analysis_wall_ns > 0
    assert metrics.counter("analysis.pollution_runs").value == 1
    assert metrics.histogram("analysis.pollution_wall_ns").count == 1
    events = [e for e in sink.events if e.name == "analysis.pollution"]
    assert len(events) == 1 and events[0].attrs["module"] == "t"


# ---------------------------------------------------------------------------
# linter
# ---------------------------------------------------------------------------


def test_linter_flags_dead_block_and_ignored_alloc():
    module = compile_c(
        r"""
        int main(int argc, char **argv) {
            malloc(16);
            return 0;
        }
        """,
        "leaky",
    )
    function = module.get_function("main")
    dead = BasicBlock("orphan")
    function.append_block(dead)
    dead.append(Ret(ConstantInt(I32, 0)))
    diagnostics = lint_module(module)
    rules = {d.rule for d in diagnostics}
    assert "dead-block" in rules and "ignored-result" in rules
    assert any(d.severity is Severity.ERROR and d.rule == "ignored-result"
               for d in diagnostics)


def test_linter_flags_unknown_extern():
    module = compile_c("int main(int argc, char **argv) { return 0; }", "t")
    ghost = module.declare_function("ghost_fn", FunctionType(I32, []))
    module.get_function("main").entry_block.insert(0, Call(ghost, []))
    diagnostics = lint_module(module)
    assert any(d.rule == "unknown-extern" and d.severity is Severity.ERROR
               for d in diagnostics)


def test_linter_flags_undeclared_global_store():
    module = compile_c(
        r"""
        int known;
        int main(int argc, char **argv) { known = argc; return known; }
        """,
        "t",
    )
    # Clean except for the dead-store warning on the unused argv slot.
    assert [d for d in lint_module(module)
            if d.severity is Severity.ERROR] == []
    # Detach the global from the symbol table, keeping the store.
    rogue = module.globals.pop("known")
    assert rogue is not None
    diagnostics = lint_module(module)
    assert any(d.rule == "undeclared-global" for d in diagnostics)


# ---------------------------------------------------------------------------
# every built-in target: round-trip + strict verify + lint
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", target_names())
def test_target_roundtrip_verify_lint(name):
    spec = get_target(name)
    module = spec.compile()

    # parser -> printer -> parser round-trip is a fixpoint
    text = print_module(module)
    reparsed = parse_module(text)
    assert print_module(reparsed) == text

    # strict SSA holds for codegen output and the full ClosureX build
    verify_module(module, strict_ssa=True)
    instrumented = spec.build_closurex()
    verify_module(instrumented, strict_ssa=True)

    # the linter reports no error-severity diagnostics on either
    for candidate in (module, instrumented):
        errors = [d for d in lint_module(candidate)
                  if d.severity is Severity.ERROR]
        assert errors == [], [e.describe() for e in errors]


@pytest.mark.parametrize("name", target_names())
def test_target_pollution_report_is_conservative(name):
    spec = get_target(name)
    report = spec.analyze()
    # Every dirty verdict must carry at least one reason.
    for dimension in report.dirty_dimensions():
        assert report.finding(dimension).reasons
    assert "main" in report.reachable_functions
    assert report.describe().startswith("pollution report")


# ---------------------------------------------------------------------------
# acceptance: analysis-guided build of md4c
# ---------------------------------------------------------------------------


def test_md4c_is_provably_heap_clean():
    report = get_target("md4c").analyze()
    assert report.is_clean("heap")
    assert "HeapPass" in report.skip_passes()
    assert report.trusted_globals


def test_analyzed_build_skips_heap_pass_and_matches_behaviour():
    spec = get_target("md4c")
    module, report = spec.build_analyzed()
    # HeapPass elided: no closurex_malloc declarations were introduced.
    assert not module.has_function("closurex_malloc")
    verify_module(module, strict_ssa=True)

    full = spec.build_closurex()
    harness_full = ClosureXHarness(full)
    harness_full.boot()
    harness_fast = ClosureXHarness(
        module, config=HarnessConfig(pollution=report)
    )
    harness_fast.boot()

    for seed in spec.seeds:
        result_full = harness_full.run_test_case(seed)
        result_fast = harness_fast.run_test_case(seed)
        # Identical observable behaviour (dataflow + control flow)...
        assert result_fast.status == result_full.status
        assert result_fast.return_code == result_full.return_code
        assert harness_fast.vm.coverage_map == harness_full.vm.coverage_map
        # ...at a strictly lower restore price.
        assert result_fast.restore.restore_ns < result_full.restore.restore_ns


def test_skip_set_does_not_perturb_edge_ids():
    spec = get_target("md4c")
    full = spec.build_closurex()
    skipped = spec.build_closurex(skip={"HeapPass"})

    def guard_ids(module):
        ids = []
        for function in module.defined_functions():
            for inst in function.instructions():
                if isinstance(inst, Call) and inst.callee.name == "__cov_guard":
                    ids.append(inst.args[0].value)
        return ids

    assert guard_ids(full) == guard_ids(skipped)
