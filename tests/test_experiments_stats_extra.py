"""Extra coverage for experiment-layer plumbing not exercised by the
slow campaign tests: result rendering, Table 7 row math, and the
campaign-runner registry."""

import pytest

from repro.experiments import (
    MECHANISMS,
    Table5Result,
    Table5Row,
    Table7Result,
    Table7Row,
    build_executor,
)
from repro.execution import (
    ClosureXExecutor,
    ForkServerExecutor,
    FreshProcessExecutor,
    NaivePersistentExecutor,
)
from repro.sim_os import Kernel


class TestBuildExecutor:
    def test_all_mechanisms_constructible(self):
        expected = {
            "closurex": ClosureXExecutor,
            "forkserver": ForkServerExecutor,
            "persistent": NaivePersistentExecutor,
            "fresh": FreshProcessExecutor,
        }
        for mechanism in MECHANISMS:
            executor = build_executor("giftext", mechanism, Kernel())
            assert isinstance(executor, expected[mechanism])
            assert executor.mechanism == mechanism

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ValueError):
            build_executor("giftext", "qemu", Kernel())


class TestTable5Rendering:
    def test_render_contains_rows_and_average(self):
        result = Table5Result(
            rows=[
                Table5Row("alpha", 2e9, 1e9, 2.0, 0.01),
                Table5Row("beta", 9e9, 3e9, 3.0, 0.20),
            ],
            average_speedup=2.5,
        )
        text = result.render()
        assert "alpha" in text and "beta" in text
        assert "2.00" in text and "3.00" in text
        assert "2.50" in text  # average row
        assert "2.00B" in text  # count formatting


class TestTable7RowMath:
    def _row(self, cx, fk, trials=5):
        return Table7Row(
            benchmark="t", bug_id="b", bug_type="Bug",
            closurex_times=cx, aflpp_times=fk, trials=trials,
        )

    def test_cell_formats(self):
        row = self._row([1.0, 3.0], [])
        assert row.cell("closurex") == "2.000 (2)"
        assert row.cell("aflpp") == "- (0/5)"

    def test_aggregate_speedup_uses_shared_bugs_only(self):
        result = Table7Result(
            rows=[
                self._row([1.0], [2.0]),       # 2x
                self._row([1.0], []),          # excluded (not shared)
                self._row([2.0], [8.0]),       # 4x
            ],
            trials=5,
        )
        assert result.aggregate_speedup() == pytest.approx(3.0)

    def test_aggregate_speedup_none_when_no_overlap(self):
        result = Table7Result(rows=[self._row([1.0], [])], trials=5)
        assert result.aggregate_speedup() is None

    def test_finding_counts(self):
        result = Table7Result(
            rows=[self._row([1.0, 2.0], [3.0]), self._row([], [1.0, 1.0])],
            trials=5,
        )
        assert result.finding_counts() == (2, 3)
