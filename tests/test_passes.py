"""Unit tests for the ClosureX passes and pass infrastructure."""

import pytest

from repro.ir import Call, verify_module
from repro.minic import compile_c
from repro.passes import (
    CLOSURE_GLOBAL_SECTION,
    COV_GUARD,
    EXIT_HOOK,
    HEAP_WRAPPERS,
    PASS_TABLE,
    CoveragePass,
    ExitPass,
    FilePass,
    GlobalPass,
    HeapPass,
    PassManager,
    RenameMainPass,
    TARGET_MAIN,
    baseline_passes,
    closurex_passes,
    persistent_passes,
)

SOURCE = r"""
int counter;
int table[8];
const char MAGIC[4] = "abc";

int helper(char *path) {
    char *f = fopen(path, "r");
    if (!f) { exit(1); }
    char *buf = (char*)malloc(64);
    long n = fread(buf, 1, 64, f);
    if (n < 2) { exit(2); }
    buf = (char*)realloc(buf, 128);
    counter += (int)n;
    fclose(f);
    free(buf);
    return (int)n;
}

int main(int argc, char **argv) {
    char *extra = (char*)calloc(2, 8);
    free(extra);
    return helper(argv[1]);
}
"""


def fresh_module():
    return compile_c(SOURCE, "passes-test")


def count_calls_to(module, name):
    if not module.has_function(name):
        return 0
    return sum(
        1
        for func in module.defined_functions()
        for inst in func.instructions()
        if isinstance(inst, Call) and inst.callee.name == name
    )


class TestRenameMainPass:
    def test_renames(self):
        module = fresh_module()
        result = RenameMainPass().run(module)
        assert result.changed
        assert module.has_function(TARGET_MAIN)
        assert not module.has_function("main")
        verify_module(module)

    def test_noop_without_main(self):
        module = fresh_module()
        RenameMainPass().run(module)
        result = RenameMainPass().run(module)
        assert not result.changed


class TestExitPass:
    def test_reroutes_exit_calls(self):
        module = fresh_module()
        assert count_calls_to(module, "exit") == 2
        result = ExitPass().run(module)
        assert result.details["exit_calls_rerouted"] == 2
        assert count_calls_to(module, "exit") == 0
        assert count_calls_to(module, EXIT_HOOK) == 2
        verify_module(module)

    def test_abort_untouched_by_default(self):
        module = compile_c(
            "int main(int a, char **v) { abort(); return 0; }", "t"
        )
        ExitPass().run(module)
        assert count_calls_to(module, "abort") == 1

    def test_abort_hooked_when_requested(self):
        module = compile_c(
            "int main(int a, char **v) { abort(); return 0; }", "t"
        )
        ExitPass(hook_abort=True).run(module)
        assert count_calls_to(module, "abort") == 0


class TestHeapPass:
    def test_reroutes_all_malloc_family(self):
        module = fresh_module()
        result = HeapPass().run(module)
        assert result.details["malloc_calls_rerouted"] == 1
        assert result.details["calloc_calls_rerouted"] == 1
        assert result.details["realloc_calls_rerouted"] == 1
        assert result.details["free_calls_rerouted"] == 2
        for original, wrapper in HEAP_WRAPPERS.items():
            assert count_calls_to(module, original) == 0
        assert count_calls_to(module, "closurex_malloc") == 1
        verify_module(module)

    def test_custom_allocator_extension(self):
        source = """
        char *xmalloc(long n) { return (char*)malloc(n); }
        int main(int a, char **v) { char *p = xmalloc(8); free(p); return 0; }
        """
        module = compile_c(source, "t")
        HeapPass(extra_allocators={}).run(module)
        # xmalloc is *defined* here, so its internal malloc is rerouted,
        # but xmalloc itself is not (it is target code, not an allocator
        # declaration).
        assert count_calls_to(module, "xmalloc") == 1

    def test_unknown_semantic_rejected(self):
        with pytest.raises(ValueError):
            HeapPass(extra_allocators={"x": "mmap"})


class TestFilePass:
    def test_reroutes_fopen_fclose(self):
        module = fresh_module()
        result = FilePass().run(module)
        assert result.details["fopen_calls_rerouted"] == 1
        assert result.details["fclose_calls_rerouted"] == 1
        assert count_calls_to(module, "closurex_fopen_hook") == 1
        verify_module(module)


class TestGlobalPass:
    def test_moves_writable_globals(self):
        module = fresh_module()
        result = GlobalPass().run(module)
        assert result.details["globals_relocated"] >= 2
        assert module.get_global("counter").section == CLOSURE_GLOBAL_SECTION
        assert module.get_global("table").section == CLOSURE_GLOBAL_SECTION

    def test_constants_stay_in_rodata(self):
        module = fresh_module()
        GlobalPass().run(module)
        assert module.get_global("MAGIC").section == ".rodata"
        # string literals are constants too
        for name, var in module.globals.items():
            if var.is_constant:
                assert var.section != CLOSURE_GLOBAL_SECTION

    def test_idempotent(self):
        module = fresh_module()
        GlobalPass().run(module)
        second = GlobalPass().run(module)
        assert not second.changed


class TestCoveragePass:
    def test_every_block_instrumented(self):
        module = fresh_module()
        CoveragePass(seed=1).run(module)
        guard = module.get_function(COV_GUARD)
        for func in module.defined_functions():
            for block in func.blocks:
                calls = [
                    inst for inst in block.instructions
                    if isinstance(inst, Call) and inst.callee is guard
                ]
                assert len(calls) == 1
        verify_module(module)

    def test_idempotent(self):
        module = fresh_module()
        first = CoveragePass(seed=1).run(module)
        second = CoveragePass(seed=1).run(module)
        assert first.changed
        assert not second.changed

    def test_deterministic_ids_for_same_seed(self):
        def guard_args(module):
            guard = module.get_function(COV_GUARD)
            return [
                inst.args[0].value
                for func in module.defined_functions()
                for inst in func.instructions()
                if isinstance(inst, Call) and inst.callee is guard
            ]

        module_a = fresh_module()
        CoveragePass(seed=99).run(module_a)
        module_b = fresh_module()
        CoveragePass(seed=99).run(module_b)
        assert guard_args(module_a) == guard_args(module_b)

    def test_baseline_and_closurex_share_ids(self):
        """RenameMain must not perturb coverage id assignment."""
        module_a = fresh_module()
        PassManager(baseline_passes(5)).run(module_a)
        module_b = fresh_module()
        PassManager(closurex_passes(5)).run(module_b)

        def ids(module):
            guard = module.get_function(COV_GUARD)
            return [
                inst.args[0].value
                for func in module.defined_functions()
                for inst in func.instructions()
                if isinstance(inst, Call) and inst.callee is guard
            ]

        assert ids(module_a) == ids(module_b)


class TestPipelines:
    def test_closurex_pipeline_runs_all_passes(self):
        module = fresh_module()
        results = PassManager(closurex_passes(1)).run(module)
        names = [r.pass_name for r in results]
        assert names == [
            "RenameMainPass", "ExitPass", "HeapPass", "FilePass",
            "GlobalPass", "CoveragePass",
        ]
        verify_module(module)

    def test_skip_drops_passes(self):
        module = fresh_module()
        results = PassManager(closurex_passes(1, skip={"HeapPass"})).run(module)
        assert "HeapPass" not in [r.pass_name for r in results]
        assert count_calls_to(module, "malloc") == 1

    def test_persistent_pipeline(self):
        module = fresh_module()
        PassManager(persistent_passes(1)).run(module)
        assert module.has_function(TARGET_MAIN)
        assert count_calls_to(module, "exit") == 2  # NOT hooked

    def test_pass_table_matches_paper(self):
        assert set(PASS_TABLE) == {
            "RenameMainPass", "HeapPass", "FilePass", "GlobalPass", "ExitPass"
        }

    def test_pass_manager_result_lookup(self):
        module = fresh_module()
        manager = PassManager(closurex_passes(1))
        manager.run(module)
        assert manager.result_for("GlobalPass").changed
        with pytest.raises(KeyError):
            manager.result_for("NoSuchPass")
