"""Unit tests for the address space and fault classification."""

import pytest

from repro.vm.errors import CrashSite, TrapKind, VMTrap
from repro.vm.memory import AddressSpace, RED_ZONE

SITE = CrashSite("test_fn", "test_block")


@pytest.fixture
def space():
    return AddressSpace()


class TestMapping:
    def test_map_and_rw(self, space):
        region = space.map_region(space.heap_segment, 64, True, "heap", "a")
        space.write(region.base, b"hello", SITE)
        assert space.read(region.base, 5, SITE) == b"hello"

    def test_regions_do_not_overlap(self, space):
        regions = [
            space.map_region(space.heap_segment, 32, True, "heap", str(i))
            for i in range(16)
        ]
        spans = sorted((r.base, r.limit) for r in regions)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start

    def test_red_zone_between_regions(self, space):
        first = space.map_region(space.heap_segment, 32, True, "heap", "a")
        second = space.map_region(space.heap_segment, 32, True, "heap", "b")
        assert second.base - first.limit >= RED_ZONE

    def test_find_region(self, space):
        region = space.map_region(space.heap_segment, 16, True, "heap", "a")
        assert space.find_region(region.base) is region
        assert space.find_region(region.base + 15) is region
        assert space.find_region(region.limit) is None

    def test_unmap_removes(self, space):
        region = space.map_region(space.heap_segment, 16, True, "heap", "a")
        space.unmap(region)
        assert space.find_region(region.base) is None
        assert space.find_dead_region(region.base) is region

    def test_double_unmap_rejected(self, space):
        region = space.map_region(space.heap_segment, 16, True, "heap", "a")
        space.unmap(region)
        with pytest.raises(ValueError):
            space.unmap(region)

    def test_footprint(self, space):
        space.map_region(space.heap_segment, 100, True, "heap", "a")
        space.map_region(space.global_segment, 28, True, "global", "b")
        assert space.footprint_bytes() == 128
        assert space.region_count() == 2


class TestFaultClassification:
    def test_null_deref(self, space):
        with pytest.raises(VMTrap) as info:
            space.read(0, 4, SITE)
        assert info.value.kind is TrapKind.NULL_DEREF

    def test_null_page(self, space):
        with pytest.raises(VMTrap) as info:
            space.write(24, b"x", SITE)  # struct-field offset off NULL
        assert info.value.kind is TrapKind.NULL_DEREF

    def test_wild_access_is_unaddressable(self, space):
        with pytest.raises(VMTrap) as info:
            space.read(0x5555_5555, 4, SITE)
        assert info.value.kind is TrapKind.UNADDRESSABLE

    def test_use_after_free(self, space):
        region = space.map_region(space.heap_segment, 16, True, "heap", "a")
        space.unmap(region)
        with pytest.raises(VMTrap) as info:
            space.read(region.base, 1, SITE)
        assert info.value.kind is TrapKind.USE_AFTER_FREE

    def test_overrun_starting_inside_heap_region(self, space):
        region = space.map_region(space.heap_segment, 16, True, "heap", "a")
        with pytest.raises(VMTrap) as info:
            space.write(region.base + 14, b"abcd", SITE)
        assert info.value.kind is TrapKind.INVALID_WRITE
        with pytest.raises(VMTrap) as info:
            space.read(region.base + 14, 4, SITE)
        assert info.value.kind is TrapKind.INVALID_READ

    def test_access_in_red_zone_is_overrun(self, space):
        region = space.map_region(space.heap_segment, 16, True, "heap", "a")
        with pytest.raises(VMTrap) as info:
            space.read(region.limit + 2, 1, SITE)
        assert info.value.kind is TrapKind.INVALID_READ

    def test_global_overrun_is_array_oob(self, space):
        region = space.map_region(space.global_segment, 64, True, "global", "arr")
        with pytest.raises(VMTrap) as info:
            space.write(region.limit, b"\x01", SITE)
        assert info.value.kind is TrapKind.ARRAY_OOB

    def test_write_to_readonly_region(self, space):
        region = space.map_region(space.global_segment, 8, False, "global", "ro")
        with pytest.raises(VMTrap) as info:
            space.write(region.base, b"x", SITE)
        assert info.value.kind is TrapKind.INVALID_WRITE
        # reads are fine
        assert space.read(region.base, 8, SITE) == bytes(8)

    def test_trap_site_captured(self, space):
        with pytest.raises(VMTrap) as info:
            space.read(0, 1, SITE)
        assert info.value.site.function == "test_fn"
        assert info.value.site.block == "test_block"


class TestHelpers:
    def test_int_roundtrip(self, space):
        region = space.map_region(space.heap_segment, 16, True, "heap", "a")
        space.write_int(region.base, 0xDEADBEEF, 8, SITE)
        assert space.read_int(region.base, 8, SITE) == 0xDEADBEEF

    def test_int_write_wraps(self, space):
        region = space.map_region(space.heap_segment, 16, True, "heap", "a")
        space.write_int(region.base, -1, 4, SITE)
        assert space.read_int(region.base, 4, SITE) == 0xFFFFFFFF

    def test_cstring(self, space):
        region = space.map_region(space.heap_segment, 16, True, "heap", "a")
        space.write(region.base, b"hi\x00junk", SITE)
        assert space.read_cstring(region.base, SITE) == b"hi"

    def test_unterminated_cstring_traps_at_region_end(self, space):
        region = space.map_region(space.heap_segment, 8, True, "heap", "a")
        space.write(region.base, b"x" * 8, SITE)
        with pytest.raises(VMTrap):
            space.read_cstring(region.base, SITE)

    def test_bytes_written_accounting(self, space):
        region = space.map_region(space.heap_segment, 64, True, "heap", "a")
        before = space.bytes_written
        space.write(region.base, b"12345678", SITE)
        assert space.bytes_written - before == 8

    def test_dead_region_memory_bounded(self, space):
        for i in range(AddressSpace.DEAD_REGION_MEMORY + 50):
            region = space.map_region(space.heap_segment, 8, True, "heap", str(i))
            space.unmap(region)
        assert len(space._dead) == AddressSpace.DEAD_REGION_MEMORY

    def test_forget_dead_regions(self, space):
        region = space.map_region(space.heap_segment, 8, True, "heap", "a")
        space.unmap(region)
        space.forget_dead_regions()
        with pytest.raises(VMTrap) as info:
            space.read(region.base, 1, SITE)
        assert info.value.kind is not TrapKind.USE_AFTER_FREE
