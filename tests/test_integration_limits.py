"""Integration tests for resource limits flowing through the stack:
hang detection, heap budgets, FD limits, and harness config plumbing."""

import pytest

from repro.execution import ClosureXExecutor, ForkServerExecutor
from repro.minic import compile_c
from repro.passes import PassManager, baseline_passes, closurex_passes
from repro.runtime import ClosureXHarness, HarnessConfig, IterationStatus
from repro.sim_os import Kernel
from repro.vm import TrapKind

LOOPY_SOURCE = r"""
int main(int argc, char **argv) {
    char buf[8];
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    long n = fread(buf, 1, 8, f);
    fclose(f);
    if (n > 0 && buf[0] == 'H') {
        long x = 1;
        while (x) { x++; }          /* hang */
    }
    if (n > 0 && buf[0] == 'B') {
        long total = 0;
        while (1) {
            char *p = (char*)malloc(65536);   /* heap bomb */
            p[0] = 1;
            total++;
        }
    }
    return 0;
}
"""


def closurex_module():
    module = compile_c(LOOPY_SOURCE, "limits")
    PassManager(closurex_passes(2)).run(module)
    return module


class TestHangDetection:
    def test_harness_reports_hang(self):
        harness = ClosureXHarness(
            closurex_module(), config=HarnessConfig(instruction_limit=30_000)
        )
        harness.boot()
        result = harness.run_test_case(b"H")
        assert result.status is IterationStatus.HANG
        assert not result.status.survivable

    def test_executor_respawns_after_hang(self):
        executor = ClosureXExecutor(
            closurex_module(), 100_000, Kernel(),
            config=HarnessConfig(instruction_limit=30_000),
        )
        executor.boot()
        executor.exec_instruction_limit = 30_000
        result = executor.run(b"H")
        assert result.is_hang
        assert executor.stats.respawns == 1
        after = executor.run(b"ok")
        assert after.status.survivable

    def test_forkserver_hang(self):
        module = compile_c(LOOPY_SOURCE, "limits")
        PassManager(baseline_passes(2)).run(module)
        executor = ForkServerExecutor(module, 100_000, Kernel())
        executor.boot()
        executor.exec_instruction_limit = 30_000
        result = executor.run(b"H")
        assert result.is_hang


class TestHeapBudget:
    def test_heap_bomb_becomes_oom_crash(self):
        harness = ClosureXHarness(
            closurex_module(),
            config=HarnessConfig(heap_budget=1 << 20, instruction_limit=10_000_000),
        )
        harness.boot()
        result = harness.run_test_case(b"B")
        assert result.status is IterationStatus.CRASH
        assert result.trap.kind is TrapKind.OUT_OF_MEMORY

    def test_budget_not_consumed_across_iterations(self):
        """Restoration must return budget: 50 iterations of moderate
        allocation should never OOM under ClosureX."""
        source = r"""
        int main(int argc, char **argv) {
            char *p = (char*)malloc(200000);
            p[0] = 1;
            return 0;                      /* leaks 200KB per run */
        }
        """
        module = compile_c(source, "leaky")
        PassManager(closurex_passes(2)).run(module)
        harness = ClosureXHarness(
            module, config=HarnessConfig(heap_budget=1 << 20)
        )
        harness.boot()
        for _ in range(50):
            result = harness.run_test_case(b"x")
            assert result.status is IterationStatus.OK


class TestFDLimits:
    def test_fd_limit_flows_into_harness(self):
        source = r"""
        int main(int argc, char **argv) {
            char *f = fopen(argv[1], "r");
            return f ? 0 : 1;              /* leaks the handle */
        }
        """
        module = compile_c(source, "fdleak")
        PassManager(closurex_passes(2)).run(module)
        harness = ClosureXHarness(
            module, config=HarnessConfig(max_open_files=8)
        )
        harness.boot()
        # 30 iterations with a 8-FD limit: only the FilePass sweep
        # keeps this alive.
        for _ in range(30):
            result = harness.run_test_case(b"x")
            assert result.status is IterationStatus.OK
        assert harness.fd_tracker.total_swept == 30

    def test_without_sweep_the_same_limit_kills(self):
        source = r"""
        int main(int argc, char **argv) {
            char *f = fopen(argv[1], "r");
            return f ? 0 : 1;
        }
        """
        module = compile_c(source, "fdleak")
        PassManager(closurex_passes(2, skip={"FilePass"})).run(module)
        harness = ClosureXHarness(
            module, config=HarnessConfig(max_open_files=8)
        )
        harness.boot()
        statuses = []
        for _ in range(12):
            statuses.append(harness.run_test_case(b"x").status)
        assert IterationStatus.CRASH in statuses  # FD_EXHAUSTED false crash
