"""Tests for the experiment harness (tiny budgets: structure + shape)."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    clear_campaign_cache,
    edge_universe,
    format_count,
    format_table,
    mann_whitney_p,
    run_fd_rewind_ablation,
    run_global_pass_figure,
    run_motivation,
    run_pass_ablation,
    run_restore_lifecycle,
    run_spectrum,
    run_table5,
    run_table6,
    run_table7,
    run_timeline,
)

TINY = ExperimentConfig(
    budget_ns=4_000_000, trials=2, targets=["giftext", "libbpf"]
)


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_campaign_cache()
    yield
    clear_campaign_cache()


class TestStatsHelpers:
    def test_mann_whitney_distinguishes(self):
        p = mann_whitney_p([1, 2, 3, 4, 5], [10, 11, 12, 13, 14])
        assert p < 0.05

    def test_mann_whitney_degenerate(self):
        assert mann_whitney_p([], [1.0]) == 1.0
        assert mann_whitney_p([5.0, 5.0], [5.0, 5.0]) == 1.0

    def test_format_count(self):
        assert format_count(379_000_000) == "379M"
        assert format_count(1_500_000_000) == "1.50B"
        assert format_count(2_500) == "2K"
        assert format_count(12) == "12"

    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])


class TestTable5:
    def test_structure_and_shape(self):
        result = run_table5(TINY)
        assert [row.benchmark for row in result.rows] == TINY.targets
        for row in result.rows:
            assert row.closurex_execs_24h > row.aflpp_execs_24h
            assert row.speedup > 1.5
            assert len(row.closurex_trials) == TINY.trials
        assert result.average_speedup > 1.5
        rendered = result.render()
        assert "Speedup" in rendered and "Average" in rendered


class TestTable6:
    def test_structure(self):
        result = run_table6(TINY)
        for row in result.rows:
            assert 0 < row.closurex_coverage <= 100
            assert 0 < row.aflpp_coverage <= 100
        assert "% Improvement" in result.render()

    def test_edge_universe_positive(self):
        assert edge_universe("giftext") > 50


class TestTable7:
    def test_finds_bugs_in_both_mechanisms(self):
        config = ExperimentConfig(budget_ns=12_000_000, trials=2,
                                  targets=["libbpf"])
        result = run_table7(config, targets=("libbpf",))
        assert len(result.rows) == 3  # libbpf's three planted bugs
        found_by_closurex = [r for r in result.rows if r.closurex_times]
        assert found_by_closurex, "ClosureX found no libbpf bugs"
        rendered = result.render()
        assert "Null Ptr Deref." in rendered

    def test_row_cells(self):
        config = ExperimentConfig(budget_ns=6_000_000, trials=1,
                                  targets=["libbpf"])
        result = run_table7(config, targets=("libbpf",))
        for row in result.rows:
            cell = row.cell("closurex")
            assert "(" in cell and ")" in cell


class TestSpectrum:
    def test_ordering(self):
        spectrum = run_spectrum("giftext", iterations=10)
        assert spectrum.ordering_correct(), spectrum.render()
        by_name = {p.mechanism: p for p in spectrum.points}
        assert by_name["fresh"].management_share > 0.8
        assert by_name["closurex"].management_share < 0.2


class TestPassFigures:
    def test_global_pass_figure(self):
        figure = run_global_pass_figure("giftext")
        assert figure.relocated
        assert figure.section_bytes > 0
        assert figure.kept_constant  # SIG87/SIG89 stay out

    def test_restore_lifecycle(self):
        figure = run_restore_lifecycle("bsdtar")
        assert figure.restored_section_bytes > 0
        assert figure.clean_after_restore
        assert figure.dirty_global_bytes > 0


class TestMotivation:
    def test_all_three_pathologies(self):
        report = run_motivation()
        assert report.fresh_crash
        assert report.persistent_missed_crash
        assert report.persistent_false_crashes
        assert not report.false_crash_reproducible_fresh
        assert report.closurex_crash
        assert report.demonstrates_incorrectness
        assert "false crashes" in report.describe()


class TestAblation:
    def test_pass_ablation_breaks_predictably(self):
        result = run_pass_ablation("bsdtar")
        assert result.row_for("").fully_clean
        assert not result.row_for("ExitPass").survives_exit
        assert not result.row_for("HeapPass").heap_clean
        assert not result.row_for("FilePass").fds_clean
        assert not result.row_for("GlobalPass").globals_clean

    def test_fd_rewind_ablation(self):
        result = run_fd_rewind_ablation("freetype", iterations=5)
        # freetype leaks its FILE on the table-count exit path only, so
        # most iterations close the handle in-target; the ablation also
        # covers targets with init handles — assert the accounting adds up.
        assert result.restore_ns_with >= 0
        assert result.restore_ns_without >= 0


class TestTimeline:
    def test_series_for_both_mechanisms(self):
        figure = run_timeline("giftext", TINY)
        assert {s.mechanism for s in figure.series} == {"closurex", "forkserver"}
        for series in figure.series:
            assert series.points


class TestConfig:
    def test_trial_seed_stable(self):
        config = ExperimentConfig()
        assert config.trial_seed("a", "m", 0) == config.trial_seed("a", "m", 0)
        assert config.trial_seed("a", "m", 0) != config.trial_seed("a", "m", 1)
        assert config.trial_seed("a", "m", 0) != config.trial_seed("b", "m", 0)

    def test_env_targets_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_TARGETS", "giftext, nope")
        with pytest.raises(ValueError, match="nope"):
            ExperimentConfig()

    def test_env_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_BUDGET_MS", "7")
        assert ExperimentConfig().budget_ns == 7_000_000
