"""Unit tests for the interpreter engine and libc natives."""

import pytest

from repro.ir import FunctionType, I32, IRBuilder, Module, int_type
from repro.minic import compile_c
from repro.vm import (
    COVERAGE_MAP_SIZE,
    ExecutionLimitExceeded,
    ProcessExit,
    TrapKind,
    VM,
    VMTrap,
)


def make_vm(source: str, files: dict[str, bytes] | None = None) -> tuple[VM, Module]:
    module = compile_c(source, "t")
    vm = VM(module)
    vm.load()
    for path, data in (files or {}).items():
        vm.fs.write_file(path, data)
    return vm, module


def run(source: str, files=None, argv=None):
    vm, module = make_vm(source, files)
    argc, argv_addr = vm.setup_argv(argv or ["t"])
    return vm.run_function(module.get_function("main"), [argc, argv_addr]), vm


class TestEngine:
    def test_phi_nodes_execute(self):
        module = Module("m")
        func = module.add_function("f", FunctionType(I32, [I32]))
        func.ensure_args(["x"])
        entry = func.append_block("entry")
        left = func.append_block("left")
        right = func.append_block("right")
        merge = func.append_block("merge")
        b = IRBuilder(entry)
        cond = b.icmp("ne", func.args[0], b.i32(0))
        b.cond_br(cond, left, right)
        IRBuilder(left).br(merge)
        IRBuilder(right).br(merge)
        mb = IRBuilder(merge)
        phi = mb.phi(int_type(32))
        phi.add_incoming(mb.i32(100), left)
        phi.add_incoming(mb.i32(200), right)
        mb.ret(phi)
        vm = VM(module)
        vm.load()
        assert vm.run_function(func, [1]) == 100
        assert vm.run_function(func, [0]) == 200

    def test_instruction_limit_raises(self):
        vm, module = make_vm(
            "int main(int argc, char **argv) { while (1) { argc++; } return 0; }"
        )
        vm.instruction_limit = 5000
        argc, argv = vm.setup_argv(["t"])
        with pytest.raises(ExecutionLimitExceeded):
            vm.run_function(module.get_function("main"), [argc, argv])

    def test_call_depth_limit(self):
        source = """
        int rec(int n) { return rec(n + 1); }
        int main(int argc, char **argv) { return rec(0); }
        """
        with pytest.raises(VMTrap) as info:
            run(source)
        assert info.value.kind is TrapKind.STACK_OVERFLOW

    def test_cost_accumulates(self):
        _result, vm = run("int main(int argc, char **argv) { return argc; }")
        assert vm.cost > 0
        assert vm.instructions_executed > 0

    def test_stack_frames_freed_after_return(self):
        _result, vm = run(
            "int helper() { int local[32]; local[0] = 1; return local[0]; }"
            "int main(int argc, char **argv) { return helper(); }"
        )
        assert vm.stack_region_count() == 0

    def test_unresolved_external_traps(self):
        module = Module("m")
        ext = module.declare_function("mystery", FunctionType(I32, []))
        func = module.add_function("main", FunctionType(I32, []))
        builder = IRBuilder(func.append_block("entry"))
        builder.ret(builder.call(ext, []))
        vm = VM(module)
        vm.load()
        with pytest.raises(VMTrap, match="unresolved"):
            vm.run_function(func, [])

    def test_double_load_rejected(self):
        vm, _ = make_vm("int main(int argc, char **argv) { return 0; }")
        with pytest.raises(RuntimeError):
            vm.load()


class TestArgv:
    def test_argv_strings_reachable(self):
        result, _vm = run(
            "int main(int argc, char **argv) {"
            " return argc * 10 + (int)strlen(argv[2]); }",
            argv=["prog", "a", "four"],
        )
        assert result == 34

    def test_set_argv_input_repoints(self):
        vm, module = make_vm(
            "int main(int argc, char **argv) { return (int)strlen(argv[1]); }"
        )
        argc, argv = vm.setup_argv(["t", "/old"])
        vm.set_argv_input(argv, 1, "/much/longer/path")
        assert vm.run_function(module.get_function("main"), [argc, argv]) == 17


class TestCoverage:
    def test_cov_guard_updates_map(self):
        vm, _ = make_vm("int main(int argc, char **argv) { return 0; }")
        assert sum(vm.coverage_map) == 0
        vm.cov_guard(1234)
        vm.cov_guard(77)
        assert sum(1 for b in vm.coverage_map if b) == 2

    def test_hitcounts_saturate(self):
        vm, _ = make_vm("int main(int argc, char **argv) { return 0; }")
        for _ in range(300):
            vm.prev_loc = 0
            vm.cov_guard(5)
        index = 5 & (COVERAGE_MAP_SIZE - 1)
        assert vm.coverage_map[index] == 0xFF

    def test_reset_coverage(self):
        vm, _ = make_vm("int main(int argc, char **argv) { return 0; }")
        vm.cov_guard(1)
        vm.reset_coverage()
        assert sum(vm.coverage_map) == 0
        assert vm.prev_loc == 0

    def test_edge_trace_records_when_enabled(self):
        vm, _ = make_vm("int main(int argc, char **argv) { return 0; }")
        vm.trace_edges = True
        vm.cov_guard(9)
        assert vm.edge_trace


class TestAddressRecycling:
    def test_heap_rewind_requires_empty(self):
        vm, _ = make_vm("int main(int argc, char **argv) { return 0; }")
        address = vm.heap.malloc(16, vm.site)
        with pytest.raises(RuntimeError):
            vm.reset_heap_addresses()
        vm.heap.free(address, vm.site)
        vm.reset_heap_addresses()
        assert vm.heap.malloc(16, vm.site) == address

    def test_heap_rewind_to_mark(self):
        vm, _ = make_vm("int main(int argc, char **argv) { return 0; }")
        kept = vm.heap.malloc(8, vm.site)
        mark = vm.memory.heap_segment.cursor
        temp = vm.heap.malloc(8, vm.site)
        vm.heap.free(temp, vm.site)
        vm.reset_heap_addresses(mark)
        assert vm.heap.malloc(8, vm.site) == temp  # address reused
        assert vm.heap.chunk_size(kept) == 8       # init chunk untouched

    def test_stack_rewind_requires_no_frames(self):
        vm, _ = make_vm("int main(int argc, char **argv) { return 0; }")
        vm.memory.map_region(vm.memory.stack_segment, 8, True, "stack", "x")
        with pytest.raises(RuntimeError):
            vm.reset_stack_addresses()


class TestLibcNatives:
    def test_string_functions(self):
        result, _ = run(
            "int main(int argc, char **argv) {"
            ' char buf[16];'
            ' strcpy(buf, "abc");'
            ' return (int)strlen(buf) * 100'
            '      + (strcmp(buf, "abc") == 0 ? 10 : 0)'
            '      + (strncmp(buf, "abX", 2) == 0 ? 1 : 0); }'
        )
        assert result == 311

    def test_strchr(self):
        result, _ = run(
            "int main(int argc, char **argv) {"
            ' char s[8] = "hello";'
            " char *p = strchr(s, 'l');"
            " return p ? (int)(p - s) : -1; }"
        )
        assert result == 2

    def test_strchr_missing_returns_null(self):
        result, _ = run(
            "int main(int argc, char **argv) {"
            ' char s[8] = "hello";'
            " return strchr(s, 'z') == NULL ? 1 : 0; }"
        )
        assert result == 1

    def test_atoi(self):
        result, _ = run(
            "int main(int argc, char **argv) {"
            ' char s[8] = "  -42x";'
            " return atoi(s) + 100; }"
        )
        assert result == 58

    def test_memset_memcmp(self):
        result, _ = run(
            "int main(int argc, char **argv) {"
            " char a[8]; char b[8];"
            " memset(a, 7, 8); memset(b, 7, 8);"
            " return memcmp(a, b, 8) == 0 ? 1 : 0; }"
        )
        assert result == 1

    def test_memcpy_negative_traps(self):
        with pytest.raises(VMTrap) as info:
            run(
                "int main(int argc, char **argv) {"
                " char a[8]; char b[8]; long n = -1;"
                " memcpy(a, b, n); return 0; }"
            )
        assert info.value.kind is TrapKind.NEGATIVE_MEMCPY

    def test_abort_traps(self):
        with pytest.raises(VMTrap) as info:
            run("int main(int argc, char **argv) { abort(); return 0; }")
        assert info.value.kind is TrapKind.ABORT

    def test_exit_raises_process_exit(self):
        with pytest.raises(ProcessExit) as info:
            run("int main(int argc, char **argv) { exit(7); return 0; }")
        assert info.value.code == 7

    def test_rand_deterministic_after_srand(self):
        source = (
            "int main(int argc, char **argv) {"
            " srand(42); int a = rand();"
            " srand(42); int b = rand();"
            " return a == b ? 1 : 0; }"
        )
        assert run(source)[0] == 1

    def test_time_differs_between_processes(self):
        source = "int main(int argc, char **argv) { return (int)(time() & 0xffff); }"
        first, _ = run(source)
        second, _ = run(source)
        assert first != second

    def test_fgetc_and_feof(self):
        result, _ = run(
            "int main(int argc, char **argv) {"
            ' char *f = fopen(argv[1], "r");'
            " int total = 0; int c;"
            " while ((c = fgetc(f)) != EOF) { total += c; }"
            " int hit_eof = feof(f);"
            " fclose(f);"
            " return total + hit_eof; }",
            files={"/in": b"\x01\x02\x03"},
            argv=["t", "/in"],
        )
        assert result == 7

    def test_ftell_and_fseek(self):
        result, _ = run(
            "int main(int argc, char **argv) {"
            ' char *f = fopen(argv[1], "r");'
            " char buf[4];"
            " fread(buf, 1, 4, f);"
            " long pos = ftell(f);"
            " fseek(f, 0, SEEK_SET);"
            " rewind(f);"
            " return (int)pos * 10 + (int)ftell(f); }",
            files={"/in": b"abcdef"},
            argv=["t", "/in"],
        )
        assert result == 40

    def test_puts_records_output(self):
        _result, vm = run(
            'int main(int argc, char **argv) { puts("hello"); return 0; }'
        )
        assert vm.output == ["hello"]
