"""Execute every documented example so the docs cannot rot.

Each script under ``examples/`` is both documentation (the README and
docs/ link to them as the canonical snippets) and a program; this
module runs each one in a subprocess exactly as the README tells a
user to, and asserts it exits cleanly.  A doc snippet that stops
working therefore fails CI instead of silently misleading readers.

``reproduce_paper.py`` is exercised by the benchmark suite (it drives
the same experiment runners) and is exempted here for runtime.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"

#: script -> argv tail (sized down where the script takes a budget).
RUNNABLE = {
    "quickstart.py": [],
    "parallel_fuzz.py": [],
    "observability.py": [],
    "supervised_fuzz.py": [],
    "integrity_check.py": [],
    "custom_target.py": [],
    "persistent_pathologies.py": [],
    "pass_playground.py": [],
    "fuzz_gpmf.py": ["8"],        # 8 virtual ms instead of the default 120
    "run_experiment.py": [],
    "fuzz_service.py": [],
    "corpus_store.py": [],
    "i2s_fuzz.py": [],
}

EXEMPT = {"reproduce_paper.py"}


def _run(script: str, args: list[str]) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=600, env=env,
    )


def test_every_example_is_covered_here():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(RUNNABLE) | EXEMPT, (
        "examples/ and tests/test_docs_examples.py disagree; new example "
        "scripts must be added to RUNNABLE (or explicitly exempted)"
    )


@pytest.mark.parametrize("script", sorted(RUNNABLE))
def test_example_runs_clean(script):
    result = _run(script, RUNNABLE[script])
    assert result.returncode == 0, (
        f"{script} exited {result.returncode}\n"
        f"--- stdout ---\n{result.stdout[-2000:]}\n"
        f"--- stderr ---\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} printed nothing"


def test_readme_quickstart_cli_digest_is_stable():
    """The README's headline command prints a reproducible digest."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    argv = [sys.executable, "-m", "repro.parallel", "--target", "md4c",
            "--workers", "2", "--seed", "7",
            "--budget-ms", "4", "--sync-ms", "2"]
    first = subprocess.run(argv, capture_output=True, text=True,
                           timeout=600, env=env, cwd=REPO)
    assert first.returncode == 0, first.stderr
    digest = [line for line in first.stdout.splitlines()
              if line.startswith("digest:")]
    assert digest, first.stdout
