"""Tests for the fifteen planted bugs (the paper's Table 7 0-days).

Each bug must (a) trigger on its crafted crash input with exactly the
manifest's trap kind and crash-site function, and (b) NOT trigger on
the target's seeds — it has to be *found*, not handed over.
"""

import pytest

from repro.targets import get_target
from tests.helpers import all_crash_inputs, run_fresh

CASES = [
    (target_name, bug_id, data)
    for target_name, inputs in all_crash_inputs().items()
    for bug_id, data in inputs.items()
]


@pytest.mark.parametrize(
    "target_name,bug_id,data", CASES,
    ids=[bug_id for _t, bug_id, _d in CASES],
)
class TestPlantedBugs:
    def test_crash_input_triggers_manifest_bug(self, target_name, bug_id, data):
        spec = get_target(target_name)
        bug = next(b for b in spec.bugs if b.bug_id == bug_id)
        result = run_fresh(spec, data)
        assert result.is_crash, f"{bug_id}: no crash ({result.status})"
        assert bug.matches(result.trap.identity()), (
            f"{bug_id}: expected {bug.trap_kind.value}@{bug.function}, got "
            f"{result.trap.kind.value}@{result.trap.site.function}"
        )

    def test_bug_reproduces_deterministically(self, target_name, bug_id, data):
        spec = get_target(target_name)
        first = run_fresh(spec, data)
        second = run_fresh(spec, data)
        assert first.trap.identity() == second.trap.identity()

    def test_crash_also_caught_under_closurex(self, target_name, bug_id, data):
        """No missed crashes: the instrumented persistent build catches
        exactly what a fresh process catches."""
        from repro.execution import ClosureXExecutor
        from repro.sim_os import Kernel

        spec = get_target(target_name)
        executor = ClosureXExecutor(spec.build_closurex(), spec.image_bytes,
                                    Kernel())
        executor.boot()
        # pollute with seeds first, then hit the bug
        for seed in spec.seeds:
            executor.run(seed)
        result = executor.run(data)
        bug = next(b for b in spec.bugs if b.bug_id == bug_id)
        assert result.is_crash
        assert bug.matches(result.trap.identity())


class TestBugTypesMatchTable7:
    def test_labels(self):
        labels = {
            (spec.name, bug.table7_label)
            for spec in (get_target(n) for n in
                         ("c-blosc2", "gpmf-parser", "libbpf", "md4c"))
            for bug in spec.bugs
        }
        assert ("c-blosc2", "Null Ptr Deref.") in labels
        assert ("gpmf-parser", "Division by Zero") in labels
        assert ("gpmf-parser", "Unaddressable Access") in labels
        assert ("gpmf-parser", "Invalid Write") in labels
        assert ("gpmf-parser", "Invalid Read") in labels
        assert ("libbpf", "Null Ptr Deref.") in labels
        assert ("md4c", "Memcpy with negative size") in labels
        assert ("md4c", "Array out of bounds access") in labels

    def test_distinct_crash_sites_per_target(self):
        """Crash dedup relies on distinct site functions per bug."""
        for name in ("c-blosc2", "gpmf-parser", "libbpf", "md4c"):
            spec = get_target(name)
            functions = [bug.function for bug in spec.bugs]
            assert len(functions) == len(set(functions))
