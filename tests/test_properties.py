"""Property-based tests (hypothesis) over the core data structures.

These check the invariants the rest of the system silently relies on:
integer semantics, struct layout, the allocator, the address space,
coverage classification, mutator bounds, and — most valuable — that
MiniC constant expressions evaluate identically in the Python constant
folder and in the compiled-and-interpreted program.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fuzzing.coverage import classify
from repro.fuzzing.mutators import HavocMutator
from repro.ir.types import IntType, StructType, int_type
from repro.vm.errors import CrashSite, VMTrap
from repro.vm.heap import Heap
from repro.vm.memory import AddressSpace
from repro.vm.interpreter import COVERAGE_MAP_SIZE

SITE = CrashSite("prop", "prop")

int_widths = st.sampled_from([8, 16, 32, 64])


class TestIntSemantics:
    @given(int_widths, st.integers())
    def test_wrap_is_idempotent(self, bits, value):
        type_ = int_type(bits)
        assert type_.wrap(type_.wrap(value)) == type_.wrap(value)

    @given(int_widths, st.integers())
    def test_wrap_range(self, bits, value):
        type_ = int_type(bits)
        assert 0 <= type_.wrap(value) <= type_.unsigned_max

    @given(int_widths, st.integers())
    def test_signed_roundtrip(self, bits, value):
        type_ = int_type(bits)
        wrapped = type_.wrap(value)
        assert type_.wrap(type_.to_signed(wrapped)) == wrapped

    @given(int_widths, st.integers())
    def test_signed_range(self, bits, value):
        type_ = int_type(bits)
        signed = type_.to_signed(type_.wrap(value))
        assert type_.signed_min <= signed <= type_.signed_max


class TestStructLayout:
    field_types = st.sampled_from([int_type(8), int_type(16), int_type(32),
                                   int_type(64)])

    @given(st.lists(field_types, min_size=1, max_size=10))
    def test_fields_do_not_overlap_and_are_aligned(self, types):
        struct = StructType("p", [(f"f{i}", t) for i, t in enumerate(types)])
        previous_end = 0
        for i, field_type in enumerate(types):
            offset = struct.field_offset(i)
            assert offset >= previous_end
            assert offset % field_type.alignment() == 0
            previous_end = offset + field_type.size()
        assert struct.size() >= previous_end
        assert struct.size() % struct.alignment() == 0


class TestHeapInvariants:
    @given(st.lists(st.tuples(st.booleans(), st.integers(1, 512)),
                    min_size=1, max_size=60))
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_random_alloc_free_sequences(self, operations):
        heap = Heap(AddressSpace(), budget_bytes=1 << 22)
        live: list[int] = []
        for do_free, size in operations:
            if do_free and live:
                heap.free(live.pop(), SITE)
            else:
                address = heap.malloc(size, SITE)
                assert address != 0
                live.append(address)
        # live accounting matches
        assert heap.live_chunk_count() == len(live)
        # all live chunks remain readable at their full size
        for address in live:
            size = heap.chunk_size(address)
            assert size is not None
            heap.space.read(address, size, SITE)
        # and all distinct
        assert len(set(live)) == len(live)

    @given(st.lists(st.integers(1, 128), min_size=2, max_size=40))
    @settings(deadline=None)
    def test_chunks_never_overlap(self, sizes):
        heap = Heap(AddressSpace(), budget_bytes=1 << 22)
        spans = []
        for size in sizes:
            address = heap.malloc(size, SITE)
            spans.append((address, address + size))
        spans.sort()
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            assert end_a <= start_b


class TestCoverageClassification:
    @given(st.binary(min_size=1, max_size=256))
    @settings(max_examples=50, deadline=None)
    def test_classify_preserves_zeroness(self, raw):
        classified = classify(raw)
        for i in range(len(raw)):
            assert (classified[i] == 0) == (raw[i] == 0)

    @given(st.integers(0, 255))
    def test_buckets_are_powers_of_two(self, count):
        value = int(classify(bytes([count]) + bytes(COVERAGE_MAP_SIZE - 1))[0])
        if count == 0:
            assert value == 0
        else:
            assert value in (1, 2, 4, 8, 16, 32, 64, 128)


class TestMutatorBounds:
    @given(st.binary(min_size=0, max_size=300), st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_havoc_respects_max_size(self, data, seed):
        havoc = HavocMutator(random.Random(seed), max_size=256)
        out = havoc.mutate(data)
        assert 1 <= len(out) <= 256

    @given(st.binary(min_size=1, max_size=100), st.binary(min_size=1, max_size=100),
           st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_splice_bounded(self, first, second, seed):
        havoc = HavocMutator(random.Random(seed), max_size=256)
        assert len(havoc.splice(first, second)) <= 256


class TestConstExprConformance:
    """MiniC differential testing: the parser's constant folder and the
    compiled program must agree on every constant expression."""

    @st.composite
    def const_expr(draw, depth=0):
        if depth > 3 or draw(st.booleans()):
            return str(draw(st.integers(0, 1000)))
        op = draw(st.sampled_from(["+", "-", "*", "|", "&", "^"]))
        lhs = draw(TestConstExprConformance.const_expr(depth + 1))
        rhs = draw(TestConstExprConformance.const_expr(depth + 1))
        return f"({lhs} {op} {rhs})"

    @given(const_expr())
    @settings(max_examples=40, deadline=None)
    def test_folder_matches_interpreter(self, expr):
        from repro.minic import compile_c
        from repro.minic.parser import parse, fold_const
        from repro.vm import VM

        unit = parse(f"void f() {{ {expr}; }}")
        folded = fold_const(unit.functions[0].body.statements[0].expr)
        assert folded is not None

        module = compile_c(
            f"long main(int argc, char **argv) {{ return {expr}; }}", "prop"
        )
        vm = VM(module)
        vm.load()
        argc, argv = vm.setup_argv(["p"])
        result = vm.run_function(module.get_function("main"), [argc, argv])
        # The program computes in i32 (wrapping); the folder in unbounded
        # ints.  All ops used (+ - * & | ^) commute with mod 2^32, so the
        # results must agree modulo 2^32.
        assert result % (1 << 32) == folded % (1 << 32)


class TestAddressSpaceInvariants:
    @given(st.lists(st.integers(1, 256), min_size=1, max_size=30))
    @settings(deadline=None)
    def test_lookup_finds_exactly_the_owner(self, sizes):
        space = AddressSpace()
        regions = [
            space.map_region(space.heap_segment, size, True, "heap", str(i))
            for i, size in enumerate(sizes)
        ]
        for region in regions:
            assert space.find_region(region.base) is region
            assert space.find_region(region.limit - 1) is region
