"""Optimizer suite: IR mutation primitives, transforms, validation.

Covers the layers bottom-up: the def-use/CFG mutation primitives the
transforms rely on (operand removal re-indexing, epoch-bumping
terminator setters, block removal), the individual transforms on small
MiniC programs, the translation-validation machinery (observation
equality, structural self-check, checkpoint rollback), the rejection
path via a deliberately broken transform, and a print -> parse ->
optimize -> verify round trip over every built-in target.
"""

from __future__ import annotations

import pytest

from repro.analysis import Severity, dead_slot_stores, lint_module
from repro.analysis.opt import (
    REJECTED,
    VALIDATED,
    ModuleCheckpoint,
    OptContext,
    Optimizer,
    PromoteSlots,
    Transform,
    TransformResult,
    fold_binop,
    fold_cast,
    fold_icmp,
    observe,
    optimize_module,
    structural_errors,
)
from repro.ir import cfg
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Call,
    CondBr,
    Load,
    Phi,
    Ret,
    Store,
)
from repro.ir.module import BasicBlock
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.ir.types import int_type
from repro.ir.values import ConstantInt
from repro.ir.verifier import verify_module
from repro.minic import compile_c
from repro.targets import get_target, target_names

I32 = int_type(32)


def _instructions(function):
    return list(function.instructions())


def _only(module, kind):
    found = [i for f in module.defined_functions()
             for i in f.instructions() if isinstance(i, kind)]
    assert found, f"no {kind.__name__} in module"
    return found


# ---------------------------------------------------------------------------
# def-use / CFG mutation primitives
# ---------------------------------------------------------------------------


def test_remove_operand_reindexes_later_uses():
    x = BinOp("add", ConstantInt(I32, 1), ConstantInt(I32, 2), "x")
    b1, b2, b3 = BasicBlock("b1"), BasicBlock("b2"), BasicBlock("b3")
    phi = Phi(I32, "p")
    phi.add_incoming(x, b1)
    phi.add_incoming(ConstantInt(I32, 7), b2)
    phi.add_incoming(x, b3)

    removed = phi.remove_incoming(b1)
    assert removed == 1
    assert phi.incoming_blocks == [b2, b3]
    # The surviving use of x shifted from slot 2 to slot 1, and its
    # recorded index must agree with the operand list.
    uses = [u for u in x.uses if u.user is phi]
    assert len(uses) == 1
    assert uses[0].index == 1
    assert phi.get_operand(uses[0].index) is x


def test_remove_incoming_drops_every_arm_for_block():
    b1, b2 = BasicBlock("b1"), BasicBlock("b2")
    phi = Phi(I32, "p")
    phi.add_incoming(ConstantInt(I32, 1), b1)
    phi.add_incoming(ConstantInt(I32, 2), b1)
    phi.add_incoming(ConstantInt(I32, 3), b2)
    assert phi.remove_incoming(b1) == 2
    assert phi.incoming_blocks == [b2]
    assert phi.num_operands == 1


def test_remove_block_refuses_entry_and_bumps_epoch():
    module = compile_c(
        "int main(int argc, char **argv) {"
        " if (argc > 1) { return 1; } return 0; }",
        "t",
    )
    function = module.get_function("main")
    with pytest.raises(ValueError):
        function.remove_block(function.entry_block)
    victim = function.blocks[-1]
    epoch = function.cfg_epoch
    function.remove_block(victim)
    assert function.cfg_epoch > epoch
    assert victim.parent is None
    assert victim not in function.blocks


def test_branch_retarget_invalidates_cached_dominators():
    # Regression: retargeting a terminator in place must not leave the
    # cached dominator tree describing the old CFG.
    module = compile_c(
        "int main(int argc, char **argv) {"
        " int x = 0;"
        " if (argc > 1) { x = 1; } else { x = 2; }"
        " return x; }",
        "t",
    )
    function = module.get_function("main")
    condbr = next(i for i in function.instructions()
                  if isinstance(i, CondBr))
    stale_tree = cfg.dominator_tree(function)
    assert cfg.dominator_tree(function) is stale_tree  # cache hit
    epoch = function.cfg_epoch
    dropped = condbr.if_true
    condbr.if_true = condbr.if_false
    for phi in [i for i in function.instructions() if isinstance(i, Phi)]:
        phi.remove_incoming(dropped)
    assert function.cfg_epoch > epoch
    fresh_tree = cfg.dominator_tree(function)
    assert fresh_tree is not stale_tree
    # The dropped arm of the diamond no longer dominates anything and
    # is absent from the recomputed reachable set.
    assert dropped not in cfg.reachable_blocks(function)


def test_block_removal_invalidates_cached_dominators():
    module = compile_c(
        "int main(int argc, char **argv) {"
        " if (argc > 1) { return 1; } return 0; }",
        "t",
    )
    function = module.get_function("main")
    orphan = function.append_block("orphan")
    orphan.append(Ret(ConstantInt(I32, 0)))
    stale = cfg.dominator_tree(function)
    function.remove_block(orphan)
    assert cfg.dominator_tree(function) is not stale


# ---------------------------------------------------------------------------
# constant folding mirrors VM semantics
# ---------------------------------------------------------------------------


def test_fold_binop_matches_vm_wrapping():
    assert fold_binop("add", I32, 2**32 - 1, 1) == 0
    assert fold_binop("sub", I32, 0, 1) == 2**32 - 1
    assert fold_binop("shl", I32, 1, 32) == 0       # over-shift reads 0
    assert fold_binop("ashr", I32, 2**31, 40) == 2**32 - 1
    assert fold_binop("sdiv", I32, 2**32 - 7, 2) == 2**32 - 3  # -7/2 = -3
    assert fold_binop("srem", I32, 2**32 - 7, 2) == 2**32 - 1  # -7%2 = -1


def test_fold_binop_refuses_division_by_zero():
    # The VM traps here; folding would erase the crash site.
    assert fold_binop("udiv", I32, 1, 0) is None
    assert fold_binop("srem", I32, 1, 0) is None


def test_fold_icmp_is_signedness_aware():
    minus_one = 2**32 - 1
    assert fold_icmp("slt", I32, minus_one, 0) == 1
    assert fold_icmp("ult", I32, minus_one, 0) == 0
    assert fold_icmp("eq", I32, 5, 5) == 1


def test_fold_cast_handles_sext_and_refuses_pointers():
    i8, i64 = int_type(8), int_type(64)
    assert fold_cast("sext", i8, i64, 0xFF) == 2**64 - 1
    assert fold_cast("trunc", i64, i8, 0x1FF) == 0xFF
    assert fold_cast("inttoptr", i64, i64, 4) is None


# ---------------------------------------------------------------------------
# transforms on small programs
# ---------------------------------------------------------------------------


def _optimized(source: str, seeds: tuple[bytes, ...] = (b"",)):
    module = compile_c(source, "t")
    report = optimize_module(module, seeds=seeds)
    verify_module(module, strict_ssa=True)
    assert report.rejected == 0, [o.errors for o in report.outcomes]
    return module, report


def test_mem2reg_promotes_entry_slots():
    module, report = _optimized(
        "int main(int argc, char **argv) {"
        " int a = argc; int b = a + 1; return b; }"
    )
    assert not _instructions(module.get_function("main")) or not any(
        isinstance(i, (Alloca, Load, Store))
        for i in module.get_function("main").instructions()
    )
    promoted = [o for o in report.outcomes
                if o.transform == "mem2reg" and o.verdict == VALIDATED]
    assert promoted and promoted[0].details["slots_promoted"] >= 2


def test_mem2reg_never_stored_slot_reads_zero():
    # VM stack regions are zero-filled: the promoted value on the
    # never-stored path must be the constant 0, observed bit-identically.
    source = (
        "int main(int argc, char **argv) {"
        " int x;"
        " if (argc > 9) { x = 7; }"
        " return x + 1; }"
    )
    module, _report = _optimized(source)
    baseline = compile_c(source, "t")
    assert observe(module, b"").matches(observe(baseline, b""))


def test_sccp_folds_constant_branches():
    module, report = _optimized(
        "int main(int argc, char **argv) {"
        " int flag = 1;"
        " if (flag) { return 3; }"
        " return 4; }"
    )
    assert not any(isinstance(i, CondBr)
                   for i in module.get_function("main").instructions())
    sccp = [o for o in report.outcomes
            if o.transform == "sccp" and o.verdict == VALIDATED]
    assert sccp


def test_dce_keeps_potential_traps():
    # The unused sdiv by argc may divide by zero -> it is part of the
    # observable crash surface and must survive DCE.
    source = (
        "int main(int argc, char **argv) {"
        " int unused = 10 / argc;"
        " int dead = argc + 41;"
        " return 0; }"
    )
    module, _report = _optimized(source)
    insts = _instructions(module.get_function("main"))
    assert any(isinstance(i, BinOp) and i.op == "sdiv" for i in insts)
    assert not any(isinstance(i, BinOp) and i.op == "add" for i in insts)


def test_rle_forwards_global_loads_across_calls():
    # print_int does not write memory, so the second load of @counter
    # is redundant; the store in bump() must kill availability.
    source = (
        "int counter;"
        "void bump(void) { counter = counter + 1; }"
        "int main(int argc, char **argv) {"
        " counter = argc;"
        " print_int(counter + counter);"
        " bump();"
        " return counter; }"
    )
    module, report = _optimized(source)
    baseline = compile_c(source, "t")
    assert observe(module, b"").matches(observe(baseline, b""))
    rle = [o for o in report.outcomes
           if o.transform == "rle" and o.verdict == VALIDATED]
    assert rle and rle[0].details["loads_eliminated"] >= 1


def test_optimizer_reduces_dynamic_instructions():
    source = (
        "int main(int argc, char **argv) {"
        " int sum = 0;"
        " for (int i = 0; i < 50; i++) { sum = sum + i; }"
        " return sum & 255; }"
    )
    baseline = compile_c(source, "t")
    module, _report = _optimized(source)
    before = observe(baseline, b"")
    after = observe(module, b"")
    assert after.matches(before)
    assert after.instructions < before.instructions


# ---------------------------------------------------------------------------
# validation machinery
# ---------------------------------------------------------------------------


def test_observe_is_deterministic():
    spec = get_target("md4c")
    module = spec.build_closurex()
    seed = spec.seeds[0]
    assert observe(module, seed).matches(observe(module, seed))
    # and a fresh build of the same target observes identically
    assert observe(spec.build_closurex(), seed).matches(
        observe(module, seed))


def test_structural_check_catches_dangling_use():
    module = compile_c(
        "int main(int argc, char **argv) { int x = argc + 1;"
        " return x + 2; }",
        "t",
    )
    assert structural_errors(module) == []
    function = module.get_function("main")
    add = next(i for i in function.instructions()
               if isinstance(i, BinOp))
    # Detach without dropping operands: its operands now hold use edges
    # from an erased instruction.
    add.parent.remove_instruction(add)
    assert any("erased instruction" in e or "detached" in e
               for e in structural_errors(module))


def test_checkpoint_restores_bit_identical_text():
    module = compile_c(
        "int g; int main(int argc, char **argv) { g = argc; return g; }",
        "t",
    )
    checkpoint = ModuleCheckpoint(module)
    before = print_module(module)
    optimize_module(module, seeds=())
    assert print_module(module) != before  # the optimizer did something
    checkpoint.restore()
    assert print_module(module) == before
    verify_module(module, strict_ssa=True)


class _BreakReturns(Transform):
    """Deliberately wrong: rewrites every `ret` constant to 123."""

    name = "break-returns"

    def run_on_function(self, function, ctx, result):
        from repro.ir.instructions import Ret

        for inst in function.instructions():
            if (isinstance(inst, Ret) and inst.num_operands
                    and isinstance(inst.get_operand(0), ConstantInt)
                    and inst.get_operand(0).value != 123):
                inst.set_operand(0, ConstantInt(inst.get_operand(0).type,
                                                123))
                result.note("returns_broken")


def test_broken_transform_is_rejected_and_rolled_back():
    module = compile_c(
        "int main(int argc, char **argv) { return 5; }", "t"
    )
    before = print_module(module)
    optimizer = Optimizer(module, seeds=(b"",),
                          transforms=[_BreakReturns()], max_rounds=1)
    report = optimizer.run()
    assert report.rejected == 1 and report.applied == 0
    outcome = report.outcomes[0]
    assert outcome.verdict == REJECTED
    assert any("replay" in e and "return code" in e
               for e in outcome.errors), outcome.errors
    # the structured report still carries what the transform claimed
    assert outcome.details.get("returns_broken") == 1
    # and the module text is exactly what it was before the transform
    assert print_module(module) == before


def test_transform_exception_is_rejected_and_rolled_back():
    class _Explodes(Transform):
        name = "explodes"

        def run_on_function(self, function, ctx, result):
            for inst in list(function.instructions()):
                inst.erase_from_parent()  # half-destroy the function
            raise RuntimeError("boom")

    module = compile_c(
        "int main(int argc, char **argv) { return 1; }", "t"
    )
    before = print_module(module)
    report = Optimizer(module, seeds=(b"",), transforms=[_Explodes()],
                       max_rounds=1).run()
    assert report.rejected == 1
    assert "boom" in report.outcomes[0].errors[0]
    assert print_module(module) == before


def test_optimizer_emits_telemetry_family():
    from repro.telemetry import MetricsRegistry
    from repro.telemetry.tracer import Tracer

    class _Sink:
        def __init__(self):
            self.events = []

        def emit(self, event):
            self.events.append(event)

    metrics = MetricsRegistry()
    sink = _Sink()
    module = compile_c(
        "int main(int argc, char **argv) { int a = argc; return a + 1; }",
        "t",
    )
    optimize_module(module, seeds=(b"",), metrics=metrics,
                    tracer=Tracer(sink=sink))
    counters = metrics.counter_values("analysis.opt.")
    assert counters["analysis.opt.runs"] == 1
    assert counters["analysis.opt.rounds"] >= 1
    assert counters["analysis.opt.transforms_applied"] >= 1
    assert counters["analysis.opt.replays"] >= 1
    names = {e.name for e in sink.events}
    assert "analysis.opt.run" in names
    assert "analysis.opt.transform" in names


# ---------------------------------------------------------------------------
# dead-store analysis + lint rule
# ---------------------------------------------------------------------------


def test_dead_slot_stores_finds_overwritten_store():
    module = compile_c(
        "int main(int argc, char **argv) {"
        " int x = 1;"      # dead: overwritten before any load
        " x = argc;"
        " return x; }",
        "t",
    )
    function = module.get_function("main")
    dead = dead_slot_stores(function)
    assert len(dead) >= 1
    assert all(isinstance(s, Store) for s in dead)
    stored = {s.value.value for s in dead
              if isinstance(s.value, ConstantInt)}
    assert 1 in stored


def test_lint_reports_dead_store_warning():
    module = compile_c(
        "int main(int argc, char **argv) {"
        " int x = 1;"
        " x = argc;"
        " return x; }",
        "t",
    )
    diagnostics = [d for d in lint_module(module) if d.rule == "dead-store"]
    assert diagnostics
    assert all(d.severity is Severity.WARNING for d in diagnostics)
    assert diagnostics[0].function == "main"


def test_lint_does_not_flag_observed_stores():
    module = compile_c(
        "int main(int argc, char **argv) {"
        " int x = argc;"
        " if (argv) { x = x + 1; }"
        " return x; }",
        "t",
    )
    assert [d for d in lint_module(module) if d.rule == "dead-store"] == []


# ---------------------------------------------------------------------------
# print -> parse -> optimize -> verify round trip, all targets
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", target_names())
def test_roundtrip_optimize_verify(name):
    spec = get_target(name)
    module = parse_module(print_module(spec.build_closurex()))
    report = optimize_module(
        module,
        seeds=tuple(spec.seeds[:2]),
        extra_allocators=spec.extra_allocators,
    )
    assert report.rejected == 0, [
        o.errors for o in report.outcomes if o.verdict == REJECTED
    ]
    assert report.applied > 0
    assert report.instructions_after < report.instructions_before
    verify_module(module, strict_ssa=True)
    # the optimized module itself survives a print/parse round trip
    reparsed = parse_module(print_module(module))
    assert print_module(reparsed) == print_module(module)
