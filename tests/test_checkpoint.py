"""Tests for crash-safe campaign checkpoint/resume.

The golden test is the tentpole's acceptance criterion: kill a campaign
mid-run, resume from its last checkpoint with a freshly built executor,
and the continuation must be bit-identical to a run that was never
interrupted — same execs, same corpus, same crashes, same timeline,
same final virtual clock.
"""

import os

import pytest

from repro.execution import (
    ClosureXExecutor,
    ForkServerExecutor,
    SupervisedExecutor,
)
from repro.chaos import FaultInjector, FaultPlan
from repro.fuzzing import (
    Campaign,
    CampaignConfig,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.fuzzing.checkpoint import CHECKPOINT_MAGIC
from repro.integrity import EscalationPolicy, IntegritySentinel
from repro.minic import compile_c
from repro.passes import PassManager, baseline_passes, closurex_passes
from repro.sim_os import Kernel

SOURCE = r"""
int main(int argc, char **argv) {
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    char buf[16];
    long n = fread(buf, 1, 16, f);
    if (n < 1) { exit(2); }
    char *scratch = (char*)malloc(16);
    scratch[0] = buf[0];
    if (buf[0] == 'X' && n > 4) {
        int *p = NULL;
        *p = 1;
    }
    fclose(f);
    free(scratch);
    return (int)n;
}
"""

IMAGE = 400_000
BUDGET_NS = 40_000_000


def _module():
    module = compile_c(SOURCE, "ckpt-test")
    PassManager(baseline_passes(11)).run(module)
    return module


def _executor():
    return ForkServerExecutor(_module(), IMAGE, Kernel())


def _campaign(config):
    return Campaign(_executor(), seeds=[b"hello", b"Xseed"], config=config)


def _fingerprint(campaign, result):
    """Everything 'bit-identical' means for a finished campaign."""
    return {
        "execs": result.execs,
        "elapsed_ns": result.elapsed_ns,
        "edges": result.edges_found,
        "unique_crashes": result.unique_crashes,
        "total_crashes": result.total_crashes,
        "corpus": [
            (e.data, e.coverage_signature, e.favored, e.times_selected)
            for e in campaign.corpus.entries
        ],
        "crash_identities": [r.identity for r in result.crash_reports],
        "timeline": [
            (p.ns, p.execs, p.edges, p.unique_crashes)
            for p in result.timeline
        ],
        "clock_ns": campaign.clock.now_ns,
        "rng": campaign.rng.getstate(),
    }


class TestCheckpointFile:
    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        path = str(tmp_path / "ckpt" / "campaign.ckpt")
        campaign = _campaign(CampaignConfig(budget_ns=1, seed=1))
        save_checkpoint(campaign, path)
        assert os.path.exists(path)
        assert not os.path.exists(path + ".tmp")
        state = load_checkpoint(path)
        assert state["mechanism"] == "forkserver"
        assert state["seed"] == 1

    def test_overwrite_keeps_file_valid(self, tmp_path):
        path = str(tmp_path / "c.ckpt")
        campaign = _campaign(CampaignConfig(budget_ns=1, seed=1))
        save_checkpoint(campaign, path)
        campaign.execs = 99
        save_checkpoint(campaign, path)
        assert load_checkpoint(path)["execs"] == 99

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path / "nope.ckpt"))

    def test_garbage_raises(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"not a checkpoint at all")
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))

    def test_truncated_raises(self, tmp_path):
        good = tmp_path / "good.ckpt"
        campaign = _campaign(CampaignConfig(budget_ns=1, seed=1))
        save_checkpoint(campaign, str(good))
        bad = tmp_path / "bad.ckpt"
        bad.write_bytes(good.read_bytes()[: len(CHECKPOINT_MAGIC) + 10])
        with pytest.raises(CheckpointError):
            load_checkpoint(str(bad))

    def test_crc_detects_silent_corruption(self, tmp_path):
        """One flipped bit anywhere in the payload fails the CRC —
        bit rot never surfaces as a subtly wrong resume."""
        path = tmp_path / "c.ckpt"
        campaign = _campaign(CampaignConfig(budget_ns=1, seed=1))
        save_checkpoint(campaign, str(path))
        payload = bytearray(path.read_bytes())
        payload[len(payload) // 2] ^= 0x01
        path.write_bytes(bytes(payload))
        with pytest.raises(CheckpointError, match="CRC"):
            load_checkpoint(str(path))

    def test_rotation_keeps_previous_generation(self, tmp_path):
        path = str(tmp_path / "c.ckpt")
        campaign = _campaign(CampaignConfig(budget_ns=1, seed=1))
        campaign.execs = 1
        save_checkpoint(campaign, path)
        campaign.execs = 2
        save_checkpoint(campaign, path)
        assert load_checkpoint(path)["execs"] == 2
        assert os.path.exists(path + ".1")

    def test_load_falls_back_to_older_generation(self, tmp_path):
        path = str(tmp_path / "c.ckpt")
        campaign = _campaign(CampaignConfig(budget_ns=1, seed=1))
        campaign.execs = 1
        save_checkpoint(campaign, path)
        campaign.execs = 2
        save_checkpoint(campaign, path)
        # The newest generation is corrupted on disk; one checkpoint
        # interval of progress is lost, never the campaign.
        with open(path, "r+b") as handle:
            handle.write(b"garbage!")
        assert load_checkpoint(path)["execs"] == 1

    def test_keep_bounds_generations_on_disk(self, tmp_path):
        path = str(tmp_path / "c.ckpt")
        campaign = _campaign(CampaignConfig(budget_ns=1, seed=1))
        for _ in range(4):
            save_checkpoint(campaign, path, keep=2)
        assert os.path.exists(path)
        assert os.path.exists(path + ".1")
        assert not os.path.exists(path + ".2")

    def test_all_generations_corrupt_raises(self, tmp_path):
        path = str(tmp_path / "c.ckpt")
        campaign = _campaign(CampaignConfig(budget_ns=1, seed=1))
        save_checkpoint(campaign, path)
        save_checkpoint(campaign, path)
        for candidate in (path, path + ".1"):
            with open(candidate, "r+b") as handle:
                handle.write(b"garbage!")
        with pytest.raises(CheckpointError, match="no loadable checkpoint"):
            load_checkpoint(path)

    def test_all_generations_crc_corrupt_names_every_path(self, tmp_path):
        """Corruption *past* the magic (valid header, bad body) on
        every generation must surface as one clean CheckpointError
        that names each generation tried — never a raw pickle or
        CRC-arithmetic exception."""
        path = str(tmp_path / "c.ckpt")
        campaign = _campaign(CampaignConfig(budget_ns=1, seed=1))
        save_checkpoint(campaign, path)
        save_checkpoint(campaign, path)
        for candidate in (path, path + ".1"):
            with open(candidate, "r+b") as handle:
                handle.seek(len(CHECKPOINT_MAGIC) + 4 + 10)
                handle.write(b"\xff\xff\xff\xff")
        with pytest.raises(CheckpointError) as info:
            load_checkpoint(path)
        message = str(info.value)
        assert "no loadable checkpoint generation" in message
        assert path in message and (path + ".1") in message
        assert "CRC" in message

    def test_framed_non_dict_payload_is_clean_error(self, tmp_path):
        """A file with valid magic + CRC framing whose pickle payload
        is not a state dict is corruption, reported as CheckpointError
        (naming the path), not an AttributeError downstream."""
        import pickle
        import zlib as _zlib
        path = str(tmp_path / "c.ckpt")
        body = pickle.dumps(["not", "a", "state", "dict"])
        with open(path, "wb") as handle:
            handle.write(
                CHECKPOINT_MAGIC
                + _zlib.crc32(body).to_bytes(4, "little")
                + body
            )
        with pytest.raises(CheckpointError) as info:
            load_checkpoint(path)
        message = str(info.value)
        assert "not a state dict" in message and path in message

    def test_mixed_corruption_falls_back_then_reports_all(self, tmp_path):
        """One CRC-torn generation plus one wrong-shape generation:
        fallback consults both, and the final error lists both
        failure reasons."""
        import pickle
        import zlib as _zlib
        path = str(tmp_path / "c.ckpt")
        campaign = _campaign(CampaignConfig(budget_ns=1, seed=1))
        save_checkpoint(campaign, path)
        save_checkpoint(campaign, path)
        with open(path, "r+b") as handle:   # newest: torn body
            size = os.path.getsize(path)
            handle.truncate(size // 2)
        body = pickle.dumps(42)             # older: framed non-dict
        with open(path + ".1", "wb") as handle:
            handle.write(
                CHECKPOINT_MAGIC
                + _zlib.crc32(body).to_bytes(4, "little")
                + body
            )
        with pytest.raises(CheckpointError) as info:
            load_checkpoint(path)
        message = str(info.value)
        assert path in message and (path + ".1") in message
        assert "not a state dict" in message

    def test_mechanism_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "c.ckpt")
        campaign = _campaign(CampaignConfig(budget_ns=1, seed=1))
        save_checkpoint(campaign, path)
        from repro.execution import FreshProcessExecutor
        wrong = FreshProcessExecutor(_module(), IMAGE, Kernel())
        with pytest.raises(CheckpointError):
            Campaign.resume(path, wrong)


class TestResume:
    def test_resume_is_bit_identical(self, tmp_path):
        """The golden test: uninterrupted vs killed-and-resumed."""
        uninterrupted = _campaign(
            CampaignConfig(budget_ns=BUDGET_NS, seed=7)
        )
        golden = _fingerprint(uninterrupted, uninterrupted.run())

        path = str(tmp_path / "campaign.ckpt")
        halted = _campaign(
            CampaignConfig(
                budget_ns=BUDGET_NS, seed=7,
                checkpoint_path=path,
                checkpoint_interval_ns=4_000_000,
                halt_at_ns=BUDGET_NS * 6 // 10,   # "the process dies here"
            )
        )
        halted.run()
        assert os.path.exists(path)

        resumed = Campaign.resume(path, _executor())
        replay = _fingerprint(resumed, resumed.run())
        assert replay == golden

    def test_resume_continues_not_restarts(self, tmp_path):
        path = str(tmp_path / "campaign.ckpt")
        halted = _campaign(
            CampaignConfig(
                budget_ns=BUDGET_NS, seed=3,
                checkpoint_path=path,
                checkpoint_interval_ns=4_000_000,
                halt_at_ns=BUDGET_NS // 2,
            )
        )
        halted.run()
        execs_at_checkpoint = load_checkpoint(path)["execs"]
        assert execs_at_checkpoint > 0

        resumed = Campaign.resume(path, _executor())
        result = resumed.run()
        # The continuation picks up the counter, it does not reset it.
        assert result.execs > execs_at_checkpoint
        assert result.elapsed_ns >= BUDGET_NS

    def test_periodic_checkpoints_written_during_run(self, tmp_path):
        path = str(tmp_path / "campaign.ckpt")
        campaign = _campaign(
            CampaignConfig(
                budget_ns=20_000_000, seed=5,
                checkpoint_path=path,
                checkpoint_interval_ns=2_000_000,
            )
        )
        campaign.run()
        state = load_checkpoint(path)
        # The last periodic checkpoint predates the end of the run.
        assert 0 < state["clock_ns"] <= campaign.clock.now_ns
        assert state["execs"] <= campaign.execs

    def test_supervised_checkpoint_restores_chaos_state(self, tmp_path):
        """A supervised executor's quarantine, supervision counters and
        injector occurrence counters all travel with the checkpoint."""
        path = str(tmp_path / "sup.ckpt")
        kernel = Kernel()
        inner = ForkServerExecutor(_module(), IMAGE, kernel)
        injector = FaultInjector(
            FaultPlan.generate(9, 6), clock=kernel.clock
        )
        executor = SupervisedExecutor(inner, injector=injector)
        config = CampaignConfig(
            budget_ns=20_000_000, seed=9,
            checkpoint_path=path, checkpoint_interval_ns=2_000_000,
        )
        campaign = Campaign(executor, seeds=[b"hello"], config=config)
        campaign.run()
        state = load_checkpoint(path)

        kernel2 = Kernel()
        inner2 = ForkServerExecutor(_module(), IMAGE, kernel2)
        injector2 = FaultInjector(
            FaultPlan.generate(9, 6), clock=kernel2.clock
        )
        executor2 = SupervisedExecutor(inner2, injector=injector2)
        resumed = Campaign.resume(path, executor2)
        resumed.run()
        # The injector resumed from the checkpointed occurrence
        # counters rather than from zero.
        for site, count in state["executor_state"]["injector"]["counters"].items():
            assert injector2.counters.get(site, 0) >= count


def _sentinel_campaign(config):
    module = compile_c(SOURCE, "ckpt-sentinel")
    PassManager(closurex_passes(11)).run(module)
    sentinel = IntegritySentinel(EscalationPolicy(digest_every=4,
                                                  shadow_every=0))
    inner = ClosureXExecutor(module, IMAGE, Kernel(), sentinel=sentinel)
    executor = SupervisedExecutor(inner)
    return Campaign(executor, seeds=[b"hello", b"Xseed"], config=config)


class TestIntegrityInCheckpoint:
    def test_campaign_config_wires_checkpoint_keep(self, tmp_path):
        path = str(tmp_path / "c.ckpt")
        campaign = _campaign(
            CampaignConfig(
                budget_ns=20_000_000, seed=5,
                checkpoint_path=path,
                checkpoint_interval_ns=2_000_000,
                checkpoint_keep=3,
            )
        )
        campaign.run()
        assert os.path.exists(path)
        assert os.path.exists(path + ".1")
        assert not os.path.exists(path + ".3")

    def test_sentinel_summary_rides_in_checkpoint(self, tmp_path):
        path = str(tmp_path / "s.ckpt")
        campaign = _sentinel_campaign(
            CampaignConfig(
                budget_ns=20_000_000, seed=5,
                checkpoint_path=path, checkpoint_interval_ns=2_000_000,
            )
        )
        campaign.run()
        state = load_checkpoint(path)
        summary = state["integrity"]
        assert summary is not None
        assert summary["leaks"] == 0 and summary["quarantined"] == 0
        # The full sentinel state travels inside executor_state.
        assert state["executor_state"]["inner"]["sentinel"] is not None

    def test_checkpoint_without_sentinel_has_null_summary(self, tmp_path):
        path = str(tmp_path / "n.ckpt")
        campaign = _campaign(CampaignConfig(budget_ns=1, seed=1))
        save_checkpoint(campaign, path)
        assert load_checkpoint(path)["integrity"] is None
