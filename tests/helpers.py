"""Shared test helpers: run inputs under executors, craft crash inputs."""

from __future__ import annotations

import struct

from repro.execution import FreshProcessExecutor
from repro.execution.common import ExecResult
from repro.sim_os import Kernel
from repro.targets.framework import TargetSpec


def run_fresh(spec: TargetSpec, data: bytes) -> ExecResult:
    """Execute *data* against *spec* in a fresh process."""
    module = spec.build_baseline()
    executor = FreshProcessExecutor(module, spec.image_bytes, Kernel())
    return executor.run(data)


def run_fresh_module(module, image_bytes: int, data: bytes) -> ExecResult:
    executor = FreshProcessExecutor(module, image_bytes, Kernel())
    return executor.run(data)


# ---------------------------------------------------------------------------
# crafted crash inputs, one per planted bug
# ---------------------------------------------------------------------------


def gpmf_crash_inputs() -> dict[str, bytes]:
    from repro.targets.gpmf_parser import klv, _stream

    scal_zero = klv(b"SCAL", b"l", 4, 1, struct.pack(">I", 0))
    tick = klv(b"TICK", b"L", 4, 1, struct.pack(">I", 1000))
    tock_equal = klv(b"TOCK", b"L", 4, 1, struct.pack(">I", 1000))
    gps5_wild = klv(b"GPS5", b"l", 4, 2, struct.pack(">HH", 900, 0) + bytes(4))
    dvid_back = klv(b"DVID", b"L", 4, 1, struct.pack(">HH", 30, 0))
    accl_narrow = klv(b"ACCL", b"s", 2, 3, bytes(6))
    mtrx_short = klv(b"MTRX", b"f", 4, 2, bytes(8))
    return {
        "gpmf-1": _stream(scal_zero),
        "gpmf-2": _stream(tick, tock_equal),
        "gpmf-3": _stream(gps5_wild),
        "gpmf-4": _stream(dvid_back),
        "gpmf-5": _stream(accl_narrow),
        "gpmf-6": _stream(mtrx_short),
    }


def libbpf_crash_inputs() -> dict[str, bytes]:
    from repro.targets.libbpf import _elf, SHT_PROGBITS, SHT_REL, SHT_SYMTAB, SHT_STRTAB

    prog = bytes(16)
    rel = struct.pack("<II", 0, (1 << 8) | 1)
    symtab = bytes(32)
    # bug 1: REL section present, no SYMTAB anywhere (the PROGBITS
    # section uses entsize 0 so symbol resolution is not attempted first).
    rel_no_symtab = _elf([(SHT_PROGBITS, 1, prog, 0, 0),
                          (SHT_REL, 20, rel, 1, 8)])
    # bug 2: PROGBITS(entsize 8) + SYMTAB, but no STRTAB.
    no_strtab = _elf([(SHT_PROGBITS, 1, prog, 0, 8),
                      (SHT_SYMTAB, 6, symtab, 2, 16)])
    # bug 3: maps section whose payload sits at the end of the file so
    # the off-by-one def read walks past input_len.
    maps_payload = struct.pack("<IIII", 2, 4, 8, 16)
    maps_at_end = _elf([(6, 26, maps_payload, 0, 16)])
    # move the maps section's offset to point at the file tail
    maps_at_end = bytearray(maps_at_end)
    sh_off = len(maps_at_end) - 40
    file_len = len(maps_at_end)
    maps_at_end[sh_off + 16:sh_off + 20] = struct.pack("<I", file_len - 20)
    return {
        "libbpf-1": rel_no_symtab,
        "libbpf-2": no_strtab,
        "libbpf-3": bytes(maps_at_end),
    }


def blosc2_crash_inputs() -> dict[str, bytes]:
    from repro.targets.c_blosc2 import make_frame

    zero_offset = bytearray(make_frame([b"payload0123456"]))
    zero_offset[32:36] = struct.pack("<I", 0)           # chunk offset -> 0
    bad_codec = make_frame([b"0123456789abcdef"], codec=9)
    bad_filter = make_frame([b"0123456789abcdef"], codec=1, filters=0x07)
    bad_trailer = bytearray(make_frame([b"0123456789abcdef"], flags=0x10))
    bad_trailer[8:12] = struct.pack("<I", 8)            # frame_len < 32
    return {
        "blosc2-1": bytes(zero_offset),
        "blosc2-2": bad_codec,
        "blosc2-3": bad_filter,
        "blosc2-4": bytes(bad_trailer),
    }


def md4c_crash_inputs() -> dict[str, bytes]:
    return {
        "md4c-1": b"###\n",
        "md4c-2": b"para [33] text\n",
    }


def all_crash_inputs() -> dict[str, dict[str, bytes]]:
    """target name -> {bug id -> crashing input}."""
    return {
        "gpmf-parser": gpmf_crash_inputs(),
        "libbpf": libbpf_crash_inputs(),
        "c-blosc2": blosc2_crash_inputs(),
        "md4c": md4c_crash_inputs(),
    }
