"""Unit tests for the MiniIR type system."""

import pytest

from repro.ir.types import (
    ArrayType,
    FunctionType,
    I1,
    I8,
    I16,
    I32,
    I64,
    IntType,
    PointerType,
    StructType,
    VOID,
    VoidType,
    int_type,
    pointer_type,
)


class TestIntType:
    def test_valid_widths(self):
        for bits in (1, 8, 16, 32, 64):
            assert IntType(bits).bits == bits

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(13)

    def test_sizes(self):
        assert I1.size() == 1
        assert I8.size() == 1
        assert I16.size() == 2
        assert I32.size() == 4
        assert I64.size() == 8

    def test_interning(self):
        assert int_type(32) is int_type(32)
        assert int_type(32) == IntType(32)

    def test_wrap_masks_to_width(self):
        assert I8.wrap(256) == 0
        assert I8.wrap(-1) == 255
        assert I32.wrap(1 << 35) == 0
        assert I16.wrap(0x1FFFF) == 0xFFFF

    def test_to_signed(self):
        assert I8.to_signed(255) == -1
        assert I8.to_signed(127) == 127
        assert I32.to_signed(0x80000000) == -(1 << 31)
        assert I64.to_signed(2**64 - 1) == -1

    def test_signed_bounds(self):
        assert I8.signed_min == -128
        assert I8.signed_max == 127
        assert I8.unsigned_max == 255
        assert I1.signed_max == 1

    def test_equality_and_hash(self):
        assert int_type(16) == IntType(16)
        assert hash(int_type(16)) == hash(IntType(16))
        assert int_type(16) != int_type(32)


class TestVoidType:
    def test_singleton(self):
        assert VoidType() is VOID

    def test_has_no_size(self):
        with pytest.raises(TypeError):
            VOID.size()

    def test_is_void(self):
        assert VOID.is_void
        assert not I32.is_void


class TestPointerType:
    def test_size_is_8(self):
        assert pointer_type(I32).size() == 8

    def test_void_pointee_becomes_i8(self):
        assert PointerType(VOID).pointee == I8

    def test_equality_by_pointee(self):
        assert pointer_type(I32) == PointerType(I32)
        assert pointer_type(I32) != pointer_type(I64)

    def test_str(self):
        assert str(pointer_type(I8)) == "i8*"
        assert str(pointer_type(pointer_type(I8))) == "i8**"


class TestArrayType:
    def test_size(self):
        assert ArrayType(I32, 10).size() == 40
        assert ArrayType(I8, 0).size() == 0

    def test_alignment_follows_element(self):
        assert ArrayType(I64, 3).alignment() == 8
        assert ArrayType(I8, 100).alignment() == 1

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ArrayType(I8, -1)

    def test_nested_arrays(self):
        inner = ArrayType(I16, 4)
        outer = ArrayType(inner, 3)
        assert outer.size() == 24


class TestStructType:
    def test_c_layout_with_padding(self):
        struct = StructType("s", [("a", I8), ("b", I32), ("c", I8)])
        assert struct.field_offset(0) == 0
        assert struct.field_offset(1) == 4   # padded to i32 alignment
        assert struct.field_offset(2) == 8
        assert struct.size() == 12           # rounded up to align 4

    def test_empty_struct(self):
        assert StructType("e", []).size() == 0

    def test_field_index_lookup(self):
        struct = StructType("s", [("x", I32), ("y", I64)])
        assert struct.field_index("y") == 1
        with pytest.raises(KeyError):
            struct.field_index("z")

    def test_field_type(self):
        struct = StructType("s", [("x", I32), ("y", I64)])
        assert struct.field_type(1) == I64

    def test_pointer_fields_align_to_8(self):
        struct = StructType("s", [("tag", I8), ("next", pointer_type(I8))])
        assert struct.field_offset(1) == 8
        assert struct.size() == 16

    def test_equality_is_nominal(self):
        a = StructType("same", [("x", I32)])
        b = StructType("same", [("y", I64)])
        assert a == b  # nominal typing, as for LLVM named structs


class TestFunctionType:
    def test_str(self):
        ft = FunctionType(I32, [I64, pointer_type(I8)])
        assert str(ft) == "i32 (i64, i8*)"

    def test_vararg_marker(self):
        ft = FunctionType(VOID, [I32], vararg=True)
        assert "..." in str(ft)

    def test_no_size(self):
        with pytest.raises(TypeError):
            FunctionType(VOID, []).size()

    def test_equality(self):
        assert FunctionType(I32, [I64]) == FunctionType(I32, [I64])
        assert FunctionType(I32, [I64]) != FunctionType(I32, [I32])
