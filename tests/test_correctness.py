"""Tests for the §6.1.4 correctness machinery — including the negative
case: naive persistent mode must FAIL the same checks ClosureX passes."""

import random

import pytest

from repro.correctness import (
    check_controlflow_equivalence,
    check_dataflow_equivalence,
    check_restoration_resets_state,
    fresh_snapshot,
    fresh_trace,
    run_memcheck,
)
from repro.targets import get_target
from repro.vm.snapshot import diff_snapshots


def pollution_inputs(spec, count=40, seed=3):
    rng = random.Random(seed)
    junk = [
        bytes(rng.randrange(256) for _ in range(rng.randrange(4, 50)))
        for _ in range(count)
    ]
    mixed = junk + list(spec.seeds) * 2
    rng.shuffle(mixed)
    return mixed


@pytest.fixture(scope="module")
def giftext():
    spec = get_target("giftext")
    return spec, spec.build_closurex(), pollution_inputs(spec)


class TestDataflowEquivalence:
    def test_seed_equivalent_after_pollution(self, giftext):
        spec, module, pollution = giftext
        report = check_dataflow_equivalence(module, spec.seeds[0], pollution)
        assert report.equivalent, report.describe()

    def test_all_seeds_equivalent(self, giftext):
        spec, module, pollution = giftext
        for seed in spec.seeds:
            report = check_dataflow_equivalence(module, seed, pollution[:20])
            assert report.equivalent, report.describe()

    def test_fresh_snapshots_are_reproducible(self, giftext):
        spec, module, _ = giftext
        snap_a, status_a = fresh_snapshot(module, spec.seeds[0])
        snap_b, status_b = fresh_snapshot(module, spec.seeds[0])
        assert status_a == status_b
        assert diff_snapshots(snap_a, snap_b).equivalent

    def test_nondeterministic_target_masked(self):
        spec = get_target("freetype")
        module = spec.build_closurex()
        pollution = pollution_inputs(spec, count=20)
        report = check_dataflow_equivalence(module, spec.seeds[1], pollution,
                                            nondet_runs=4)
        assert report.equivalent, report.describe()
        assert report.masked_bytes > 0  # the PRNG-touched cache was masked


class TestControlFlowEquivalence:
    def test_seed_trace_equivalent(self, giftext):
        spec, module, pollution = giftext
        report = check_controlflow_equivalence(module, spec.seeds[0], pollution)
        assert report.equivalent, report.describe()
        assert report.fresh_edges > 10

    def test_fresh_traces_deterministic(self, giftext):
        spec, module, _ = giftext
        assert fresh_trace(module, spec.seeds[0]) == fresh_trace(module, spec.seeds[0])

    def test_exit_path_also_equivalent(self, giftext):
        _spec, module, pollution = giftext
        report = check_controlflow_equivalence(module, b"\x01\x02", pollution[:10])
        assert report.equivalent or report.nondeterministic


class TestRestorationInvariant:
    def test_restoration_resets_state(self, giftext):
        _spec, module, pollution = giftext
        delta = check_restoration_resets_state(module, pollution[:30])
        assert delta.equivalent, delta.describe()

    def test_memcheck_clean(self, giftext):
        _spec, module, pollution = giftext
        report = run_memcheck(module, pollution[:30])
        assert report.clean, report.describe()
        assert report.inputs_checked == 30


class TestNaivePersistentFailsTheseChecks:
    """The motivation, stated as a test: without restoration the same
    comparison diverges."""

    def test_persistent_globals_diverge(self):
        from repro.execution import NaivePersistentExecutor
        from repro.sim_os import Kernel
        from repro.vm.snapshot import take_snapshot

        spec = get_target("giftext")
        # fresh ground truth (instrumented build, single run)
        module = spec.build_closurex()
        ground_truth, _ = fresh_snapshot(module, spec.seeds[0])

        # naive persistent: same input after pollution, NO restoration
        persistent = NaivePersistentExecutor(
            spec.build_persistent(), spec.image_bytes, Kernel()
        )
        persistent.boot()
        for data in pollution_inputs(spec, count=10):
            persistent.run(data)
        persistent.run(spec.seeds[0])
        polluted = take_snapshot(persistent.vm)

        # Sections differ in *name* between builds, so compare the
        # writable global byte totals via the pollution stats instead:
        # the executor itself observed dirty globals.
        assert persistent.pollution.dirty_global_iterations > 0
        assert ground_truth.sections  # sanity

    def test_persistent_leaks_accumulate(self):
        from repro.execution import NaivePersistentExecutor
        from repro.sim_os import Kernel

        spec = get_target("bsdtar")
        persistent = NaivePersistentExecutor(
            spec.build_persistent(), spec.image_bytes, Kernel()
        )
        persistent.boot()
        for _ in range(5):
            persistent.run(spec.seeds[2])  # link entry leaks a chunk
        assert persistent.pollution.peak_leaked_chunks >= 5
