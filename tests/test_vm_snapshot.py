"""Unit tests for program snapshots, diffing, and nondeterminism masks."""

from repro.minic import compile_c
from repro.vm import VM, NondetMask, build_nondet_mask, diff_snapshots, take_snapshot

SOURCE = """
int counter;
int table[4];
const int K = 9;

int main(int argc, char **argv) {
    counter++;
    table[counter & 3] = counter;
    char *p = (char*)malloc(8);
    p[0] = (char)counter;
    return counter;
}
"""


def fresh_vm():
    module = compile_c(SOURCE, "snap")
    vm = VM(module)
    vm.load()
    return vm, module


def run_once(vm, module):
    argc, argv = vm.setup_argv(["snap"])
    vm.run_function(module.get_function("main"), [argc, argv])


class TestSnapshotCapture:
    def test_readonly_sections_excluded(self):
        vm, _ = fresh_vm()
        snapshot = take_snapshot(vm)
        assert ".rodata" not in snapshot.sections
        assert any(s in snapshot.sections for s in (".data", ".bss"))

    def test_heap_chunks_captured(self):
        vm, module = fresh_vm()
        run_once(vm, module)
        snapshot = take_snapshot(vm)
        assert snapshot.heap_chunk_count == 1
        assert snapshot.heap_chunks[0].size == 8
        assert snapshot.live_heap_bytes == 8

    def test_layouts_cover_sections(self):
        vm, _ = fresh_vm()
        snapshot = take_snapshot(vm)
        for name, data in snapshot.sections.items():
            layout = snapshot.layouts[name]
            assert sum(size for _, _, size in layout) == len(data)

    def test_variable_extent(self):
        vm, _ = fresh_vm()
        snapshot = take_snapshot(vm)
        section = next(
            name for name, layout in snapshot.layouts.items()
            if any(tag == "table" for tag, _, _ in layout)
        )
        start, size = next(
            (off, size) for tag, off, size in snapshot.layouts[section]
            if tag == "table"
        )
        assert snapshot.variable_extent(section, start + 5) == (start, size)
        assert size == 16


class TestDiff:
    def test_identical_vms_equivalent(self):
        vm_a, mod_a = fresh_vm()
        vm_b, mod_b = fresh_vm()
        run_once(vm_a, mod_a)
        run_once(vm_b, mod_b)
        delta = diff_snapshots(take_snapshot(vm_a), take_snapshot(vm_b))
        assert delta.equivalent
        assert delta.describe() == "equivalent"

    def test_global_difference_detected(self):
        vm_a, mod_a = fresh_vm()
        vm_b, mod_b = fresh_vm()
        run_once(vm_a, mod_a)
        run_once(vm_b, mod_b)
        run_once(vm_b, mod_b)  # counter now differs
        delta = diff_snapshots(take_snapshot(vm_a), take_snapshot(vm_b))
        assert not delta.equivalent
        assert delta.section_diffs

    def test_heap_difference_detected(self):
        vm_a, mod_a = fresh_vm()
        vm_b, mod_b = fresh_vm()
        run_once(vm_a, mod_a)
        run_once(vm_b, mod_b)
        vm_b.heap.malloc(4, vm_b.site)
        delta = diff_snapshots(take_snapshot(vm_a), take_snapshot(vm_b))
        assert delta.heap_diff

    def test_open_file_difference_detected(self):
        vm_a, _ = fresh_vm()
        vm_b, _ = fresh_vm()
        vm_b.fs.write_file("/x", b"1")
        vm_b.fd_table.fopen("/x", "r", vm_b.site)
        delta = diff_snapshots(take_snapshot(vm_a), take_snapshot(vm_b))
        assert delta.file_diff

    def test_rand_difference_detected_and_maskable(self):
        vm_a, _ = fresh_vm()
        vm_b, _ = fresh_vm()
        vm_b.rand_state = 999
        delta = diff_snapshots(take_snapshot(vm_a), take_snapshot(vm_b))
        assert delta.rand_diff
        mask = NondetMask()
        mask.ignore_rand = True
        masked = diff_snapshots(take_snapshot(vm_a), take_snapshot(vm_b), mask)
        assert masked.equivalent


class TestMaskBuilding:
    def _snapshots_with_counter_diff(self):
        vm_a, mod_a = fresh_vm()
        vm_b, mod_b = fresh_vm()
        run_once(vm_a, mod_a)
        run_once(vm_b, mod_b)
        run_once(vm_b, mod_b)
        return take_snapshot(vm_a), take_snapshot(vm_b)

    def test_byte_mask_covers_differing_bytes(self):
        snap_a, snap_b = self._snapshots_with_counter_diff()
        mask = build_nondet_mask([snap_a, snap_b], granularity="byte")
        assert mask.masked_byte_count > 0
        assert diff_snapshots(snap_a, snap_b, mask).section_diffs == {}

    def test_variable_mask_widens_to_whole_variable(self):
        snap_a, snap_b = self._snapshots_with_counter_diff()
        byte_mask = build_nondet_mask([snap_a, snap_b], granularity="byte")
        var_mask = build_nondet_mask([snap_a, snap_b], granularity="variable")
        assert var_mask.masked_byte_count >= byte_mask.masked_byte_count

    def test_single_snapshot_gives_empty_mask(self):
        snap_a, _ = self._snapshots_with_counter_diff()
        assert build_nondet_mask([snap_a]).masked_byte_count == 0

    def test_mask_merge(self):
        snap_a, snap_b = self._snapshots_with_counter_diff()
        mask_a = build_nondet_mask([snap_a, snap_b], granularity="byte")
        mask_b = NondetMask()
        mask_b.ignore_rand = True
        mask_b.merge(mask_a)
        assert mask_b.ignore_rand
        assert mask_b.masked_byte_count == mask_a.masked_byte_count

    def test_unknown_granularity_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            build_nondet_mask([], granularity="lines")
