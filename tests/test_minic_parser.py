"""Unit tests for the MiniC parser and constant folder."""

import pytest

from repro.minic import ast
from repro.minic.errors import ParseError
from repro.minic.parser import fold_const, parse


class TestTopLevel:
    def test_global_declarations(self):
        unit = parse("int a; long b = 5; const char MAGIC[4] = \"GIF\";")
        assert [g.name for g in unit.globals] == ["a", "b", "MAGIC"]
        assert unit.globals[2].const
        assert isinstance(unit.globals[2].type, ast.ArrayOf)

    def test_multi_declarator_globals(self):
        unit = parse("int a, b, c;")
        assert [g.name for g in unit.globals] == ["a", "b", "c"]

    def test_struct_declaration(self):
        unit = parse("struct P { int x; int y; char name[8]; };")
        struct = unit.structs[0]
        assert struct.name == "P"
        assert [f[0] for f in struct.fields] == ["x", "y", "name"]

    def test_function_definition_and_declaration(self):
        unit = parse("int f(int a, char *b); int g(void) { return 0; }")
        assert unit.functions[0].body is None
        assert unit.functions[1].body is not None
        assert unit.functions[1].params == []

    def test_array_param_decays(self):
        unit = parse("int f(char buf[16]) { return 0; }")
        assert isinstance(unit.functions[0].params[0].type, ast.PointerTo)

    def test_aggregate_initializer_rejected(self):
        with pytest.raises(ParseError, match="aggregate"):
            parse("int a[2] = {1, 2};")


class TestStatements:
    def _body(self, code):
        return parse(f"void f() {{ {code} }}").functions[0].body.statements

    def test_if_else_chain(self):
        (stmt,) = self._body("if (1) return; else if (2) return; else return;")
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.else_body, ast.If)

    def test_while_and_do_while(self):
        stmts = self._body("while (1) break; do continue; while (0);")
        assert isinstance(stmts[0], ast.While)
        assert isinstance(stmts[1], ast.DoWhile)

    def test_for_with_decl(self):
        (stmt,) = self._body("for (int i = 0; i < 4; i++) { }")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.VarDecl)
        assert stmt.cond is not None and stmt.step is not None

    def test_for_empty_clauses(self):
        (stmt,) = self._body("for (;;) break;")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_switch_cases_and_default(self):
        (stmt,) = self._body(
            "switch (x) { case 1: case 2: break; default: break; }"
        )
        assert isinstance(stmt, ast.Switch)
        assert stmt.cases[0].values == [1, 2]
        assert stmt.cases[1].values == []

    def test_multi_var_decl_becomes_group(self):
        (stmt,) = self._body("int a = 1, b = 2;")
        assert isinstance(stmt, ast.DeclGroup)
        assert len(stmt.decls) == 2


class TestExpressions:
    def _expr(self, code):
        stmts = parse(f"void f() {{ {code}; }}").functions[0].body.statements
        return stmts[0].expr

    def test_precedence(self):
        expr = self._expr("a + b * c")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.rhs, ast.Binary) and expr.rhs.op == "*"

    def test_shift_binds_looser_than_add(self):
        expr = self._expr("a << b + c")
        assert expr.op == "<<"

    def test_assignment_right_associative(self):
        expr = self._expr("a = b = 1")
        assert isinstance(expr, ast.Assign)
        assert isinstance(expr.value, ast.Assign)

    def test_compound_assignment(self):
        expr = self._expr("a += 2")
        assert isinstance(expr, ast.Assign) and expr.op == "+"

    def test_ternary(self):
        expr = self._expr("a ? b : c")
        assert isinstance(expr, ast.Ternary)

    def test_cast_vs_parenthesised_expr(self):
        cast = self._expr("(int)x")
        assert isinstance(cast, ast.CastExpr)
        paren = self._expr("(x)")
        assert isinstance(paren, ast.Ident)

    def test_postfix_chain(self):
        expr = self._expr("a.b[1]->c")
        assert isinstance(expr, ast.Member) and expr.arrow
        assert isinstance(expr.base, ast.Index)
        assert isinstance(expr.base.base, ast.Member)

    def test_call_with_args(self):
        expr = self._expr("f(1, g(2), x)")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 3

    def test_sizeof(self):
        expr = self._expr("sizeof(long)")
        assert isinstance(expr, ast.SizeOf)

    def test_unary_operators(self):
        for op in ("-", "!", "~", "*", "&", "++", "--"):
            expr = self._expr(f"{op}x")
            assert isinstance(expr, ast.Unary) and expr.op == op

    def test_postincrement(self):
        expr = self._expr("x++")
        assert isinstance(expr, ast.Postfix)

    def test_error_reports_location(self):
        with pytest.raises(ParseError):
            parse("void f() { int ; }")


class TestConstantFolding:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("1 + 2 * 3", 7),
            ("(1 << 4) | 1", 17),
            ("~0 & 0xff", 255),
            ("-5 + 2", -3),
            ("!0", 1),
            ("100 / 7", 14),
        ],
    )
    def test_folds(self, source, expected):
        unit = parse(f"int g[{source}];")
        spec = unit.globals[0].type
        assert isinstance(spec, ast.ArrayOf)
        assert spec.count == expected

    def test_non_constant_rejected_in_array_size(self):
        with pytest.raises(ParseError, match="constant"):
            parse("int g[x];")

    def test_fold_const_returns_none_for_ident(self):
        unit = parse("void f() { x; }")
        expr = unit.functions[0].body.statements[0].expr
        assert fold_const(expr) is None
