"""Unit tests for the MiniC tokenizer."""

import pytest

from repro.minic.errors import LexError
from repro.minic.lexer import Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifiers_and_keywords(self):
        tokens = tokenize("int foo_bar2 while")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[1].kind is TokenKind.IDENT
        assert tokens[1].text == "foo_bar2"
        assert tokens[2].is_keyword("while")

    def test_punctuator_maximal_munch(self):
        assert texts("a >>= b >> c > d") == ["a", ">>=", "b", ">>", "c", ">", "d"]
        assert texts("x->y") == ["x", "->", "y"]
        assert texts("i++ + ++j") == ["i", "++", "+", "++", "j"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].location.line, tokens[0].location.column) == (1, 1)
        assert (tokens[1].location.line, tokens[1].location.column) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("int $x;")


class TestNumbers:
    def test_decimal(self):
        assert tokenize("12345")[0].value == 12345

    def test_hex(self):
        assert tokenize("0xDEADbeef")[0].value == 0xDEADBEEF

    def test_suffixes_ignored(self):
        assert tokenize("7UL")[0].value == 7
        assert tokenize("0x10L")[0].value == 16

    def test_malformed_hex(self):
        with pytest.raises(LexError):
            tokenize("0x")


class TestCharLiterals:
    def test_plain(self):
        assert tokenize("'A'")[0].value == 65

    def test_escapes(self):
        assert tokenize(r"'\n'")[0].value == 10
        assert tokenize(r"'\0'")[0].value == 0
        assert tokenize(r"'\\'")[0].value == 92
        assert tokenize(r"'\x7f'")[0].value == 0x7F

    def test_unterminated(self):
        with pytest.raises(LexError):
            tokenize("'ab'")

    def test_unknown_escape(self):
        with pytest.raises(LexError):
            tokenize(r"'\q'")


class TestStringLiterals:
    def test_plain(self):
        assert tokenize('"hello"')[0].string == b"hello"

    def test_escapes(self):
        assert tokenize(r'"a\tb\x41"')[0].string == b"a\tbA"

    def test_adjacent_concatenation(self):
        assert tokenize('"foo" "bar"')[0].string == b"foobar"

    def test_unterminated(self):
        with pytest.raises(LexError):
            tokenize('"oops')


class TestTriviaAndConstants:
    def test_line_comments(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comments(self):
        assert texts("a /* x\n y */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_predefined_constants(self):
        tokens = tokenize("NULL EOF SEEK_END")
        assert tokens[0].kind is TokenKind.INT_LIT and tokens[0].value == 0
        assert tokens[1].value == -1
        assert tokens[2].value == 2

    def test_is_punct_helper(self):
        token = tokenize(";")[0]
        assert token.is_punct(";")
        assert not token.is_punct(",")
        assert not token.is_keyword(";")
