"""Tests for the telemetry layer: metrics registry, tracer + sinks,
campaign integration, AFL-style reporting, and the VM profiler."""

import os

import pytest

from repro.execution import ClosureXExecutor, NaivePersistentExecutor
from repro.fuzzing import Campaign, CampaignConfig
from repro.passes import PassManager, closurex_passes
from repro.sim_os import Kernel, VirtualClock
from repro.targets import get_target
from repro.telemetry import (
    NULL_TELEMETRY,
    NULL_TRACER,
    CampaignReporter,
    JSONLSink,
    MetricsRegistry,
    NullSink,
    ProfileReport,
    RingBufferSink,
    TelemetryConfig,
    TraceEvent,
    Tracer,
    build_telemetry,
    read_jsonl,
)


def _campaign(telemetry: TelemetryConfig | None = None,
              budget_ns: int = 3_000_000, seed: int = 1,
              mechanism: str = "closurex") -> Campaign:
    spec = get_target("giftext")
    kernel = Kernel()
    if mechanism == "closurex":
        executor = ClosureXExecutor(
            spec.build_closurex(), spec.image_bytes, kernel)
    else:
        executor = NaivePersistentExecutor(
            spec.build_persistent(), spec.image_bytes, kernel)
    config = CampaignConfig(budget_ns=budget_ns, seed=seed)
    if telemetry is not None:
        config.telemetry = telemetry
    return Campaign(executor, spec.seeds, config)


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        counter = registry.counter("execs")
        counter.inc()
        counter.inc(4)
        assert registry.counter("execs") is counter
        assert registry.counter("execs").value == 5

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("corpus").set(3)
        registry.gauge("corpus").set(7)
        assert registry.gauge("corpus").value == 7

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("ns", bounds=(10, 100))
        for value in (1, 10, 11, 100, 5000):
            histogram.observe(value)
        # <=10 | <=100 | +inf
        assert histogram.buckets == [2, 2, 1]
        assert histogram.count == 5
        assert histogram.total == 5122
        assert histogram.mean == pytest.approx(1024.4)

    def test_snapshot_is_point_in_time(self):
        """Snapshot semantics: later updates never mutate a snapshot."""
        registry = MetricsRegistry()
        registry.counter("execs").inc(2)
        registry.histogram("ns", bounds=(10,)).observe(3)
        snap = registry.snapshot()
        registry.counter("execs").inc(100)
        registry.histogram("ns", bounds=(10,)).observe(99)
        assert snap["counters"]["execs"] == 2
        assert snap["histograms"]["ns"]["count"] == 1
        assert snap["histograms"]["ns"]["buckets"] == [1, 0]
        assert registry.snapshot()["counters"]["execs"] == 102

    def test_null_metrics_absorbs_everything(self):
        null = NULL_TELEMETRY.metrics
        null.counter("x").inc()
        null.gauge("y").set(9)
        null.histogram("z").observe(1)
        assert null.enabled is False
        assert null.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


# ---------------------------------------------------------------------------
# tracer + sinks
# ---------------------------------------------------------------------------


class TestTracer:
    def test_events_stamped_with_virtual_time(self):
        clock = VirtualClock()
        sink = RingBufferSink()
        tracer = Tracer(clock, sink)
        clock.advance(123)
        tracer.event("tick", detail="a")
        clock.advance(77)
        tracer.event("tock")
        times = [e.ns for e in sink.events]
        assert times == [123, 200]
        assert sink.events[0].attrs == {"detail": "a"}

    def test_span_captures_start_and_duration(self):
        clock = VirtualClock()
        sink = RingBufferSink()
        tracer = Tracer(clock, sink)
        clock.advance(50)
        with tracer.span("stage.trim", entry=3):
            clock.advance(400)
        (event,) = sink.events
        assert event.kind == "span"
        assert event.ns == 50
        assert event.dur_ns == 400
        assert event.attrs["entry"] == 3

    def test_ring_buffer_caps_capacity(self):
        sink = RingBufferSink(capacity=4)
        tracer = Tracer(VirtualClock(), sink)
        for i in range(10):
            tracer.event("e", i=i)
        assert len(sink.events) == 4
        assert sink.emitted == 10
        assert [e.attrs["i"] for e in sink.events] == [6, 7, 8, 9]

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JSONLSink(path)
        clock = VirtualClock()
        tracer = Tracer(clock, sink)
        tracer.event("boot", mechanism="closurex")
        clock.advance(10)
        tracer.span_at("exec", 2, 9, status="ok", instructions=41)
        tracer.close()
        events = read_jsonl(path)
        assert events == [
            TraceEvent("boot", 0, "event", 0, {"mechanism": "closurex"}),
            TraceEvent("exec", 2, "span", 7,
                       {"status": "ok", "instructions": 41}),
        ]

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.event("anything", x=1)
        with NULL_TRACER.span("nothing"):
            pass
        NULL_TRACER.span_at("nope", 0, 10)
        assert isinstance(NULL_TRACER.sink, NullSink)


class TestBuildTelemetry:
    def test_disabled_resolves_to_shared_null(self):
        assert build_telemetry(TelemetryConfig(), VirtualClock()) is NULL_TELEMETRY
        assert build_telemetry(None) is NULL_TELEMETRY

    def test_jsonl_requires_path(self):
        with pytest.raises(ValueError):
            build_telemetry(TelemetryConfig(enabled=True, sink="jsonl"))

    def test_unknown_sink_rejected(self):
        with pytest.raises(ValueError):
            build_telemetry(TelemetryConfig(enabled=True, sink="kafka"))


# ---------------------------------------------------------------------------
# kernel + pass-manager instrumentation
# ---------------------------------------------------------------------------


class TestKernelTracing:
    def test_lifecycle_spans_cover_charged_time(self):
        sink = RingBufferSink()
        kernel = Kernel()
        kernel.tracer = Tracer(kernel.clock, sink)
        parent = kernel.spawn("prog", 100_000)
        child = kernel.fork(parent, 1 << 20)
        kernel.reap(child, 0)
        names = [e.name for e in sink.events]
        assert names == ["kernel.spawn", "kernel.fork", "kernel.teardown"]
        spawn, fork, teardown = sink.events
        assert spawn.dur_ns == kernel.stats.spawn_ns
        assert fork.dur_ns == kernel.stats.fork_ns
        assert teardown.dur_ns == kernel.stats.teardown_ns
        assert fork.attrs == {"pid": child.pid, "parent_pid": parent.pid}
        # Spans tile the virtual timeline: each starts where charged.
        assert spawn.ns == 0
        assert spawn.ns + spawn.dur_ns == fork.ns

    def test_untraced_kernel_defaults_to_null(self):
        assert Kernel().tracer is NULL_TRACER


class TestPassTracing:
    def test_per_pass_events_with_rewrite_counts(self):
        sink = RingBufferSink()
        spec = get_target("giftext")
        module = spec.compile()
        manager = PassManager(closurex_passes(coverage_seed=1),
                              tracer=Tracer(sink=sink))
        manager.run(module)
        events = [e for e in sink.events if e.name == "pass.run"]
        assert len(events) == len(manager.passes)
        by_pass = {e.attrs["pass_name"]: e for e in events}
        assert "GlobalPass" in by_pass
        global_event = by_pass["GlobalPass"]
        assert global_event.attrs["changed"] is True
        assert global_event.attrs["wall_ns"] > 0
        assert any(k.startswith("rewrites.") for k in global_event.attrs)


# ---------------------------------------------------------------------------
# campaign integration
# ---------------------------------------------------------------------------


class TestCampaignTelemetry:
    def test_disabled_default_emits_nothing(self, monkeypatch):
        """With telemetry off (the default), no sink sees any event."""
        emitted = []
        monkeypatch.setattr(
            NullSink, "emit", lambda self, event: emitted.append(event)
        )
        campaign = _campaign()
        assert campaign.telemetry is NULL_TELEMETRY
        result = campaign.run()
        assert result.execs > 0
        assert emitted == []
        assert campaign.reporter is None
        assert campaign.executor.kernel.tracer is NULL_TRACER

    def test_exec_span_count_matches_execs(self):
        campaign = _campaign(TelemetryConfig(enabled=True, sink="memory"))
        result = campaign.run()
        sink = campaign.telemetry.tracer.sink
        exec_spans = [e for e in sink.events if e.name == "exec"]
        assert len(exec_spans) == result.execs
        assert all(e.kind == "span" for e in exec_spans)
        assert all(e.attrs["mechanism"] == "closurex" for e in exec_spans)

    def test_jsonl_trace_round_trip_matches_execs(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        campaign = _campaign(
            TelemetryConfig(enabled=True, sink="jsonl", jsonl_path=path)
        )
        result = campaign.run()
        events = read_jsonl(path)
        assert sum(1 for e in events if e.name == "exec") == result.execs
        # Events are emitted at completion, so end times never go
        # backwards on the virtual timeline (starts may interleave).
        ends = [e.ns + e.dur_ns for e in events]
        assert ends == sorted(ends)

    def test_metrics_reflect_campaign_counts(self):
        campaign = _campaign(TelemetryConfig(enabled=True, sink="memory"))
        result = campaign.run()
        snap = campaign.telemetry.metrics.snapshot()
        assert snap["counters"]["exec.total"] == result.execs
        assert snap["histograms"]["exec.instructions"]["count"] == result.execs
        status_total = sum(
            v for k, v in snap["counters"].items()
            if k.startswith("exec.status.")
        )
        assert status_total == result.execs

    def test_persistent_exec_spans_carry_pollution(self):
        campaign = _campaign(
            TelemetryConfig(enabled=True, sink="memory"),
            mechanism="persistent",
        )
        campaign.run()
        sink = campaign.telemetry.tracer.sink
        exec_spans = [e for e in sink.events if e.name == "exec"]
        assert exec_spans
        assert all("leaked_chunks" in e.attrs for e in exec_spans)
        assert all("dirty_globals" in e.attrs for e in exec_spans)


class TestReporter:
    def _reported_campaign(self, tmp_path, seed=1):
        out_dir = str(tmp_path / f"out{seed}")
        campaign = _campaign(
            TelemetryConfig(enabled=True, sink="memory",
                            report_dir=out_dir,
                            report_interval_ns=500_000),
            seed=seed,
        )
        result = campaign.run()
        return campaign, result, out_dir

    def test_fuzzer_stats_snapshot_is_valid(self, tmp_path):
        campaign, result, out_dir = self._reported_campaign(tmp_path)
        stats_path = os.path.join(out_dir, "fuzzer_stats")
        assert os.path.exists(stats_path)
        stats = {}
        with open(stats_path) as handle:
            for line in handle:
                key, _, value = line.partition(":")
                stats[key.strip()] = value.strip()
        assert int(stats["execs_done"]) == result.execs
        assert int(stats["edges_found"]) == result.edges_found
        assert int(stats["corpus_count"]) == result.corpus_size
        assert int(stats["unique_crashes"]) == result.unique_crashes
        assert stats["target_mode"] == "closurex"
        assert float(stats["execs_per_sec"]) > 0

    def test_plot_data_monotone_virtual_time(self, tmp_path):
        campaign, result, out_dir = self._reported_campaign(tmp_path)
        with open(os.path.join(out_dir, "plot_data")) as handle:
            lines = handle.read().splitlines()
        assert lines[0].startswith("# relative_time")
        rows = [line.split(", ") for line in lines[1:]]
        assert len(rows) >= 2            # periodic + final flush
        times = [float(row[0]) for row in rows]
        assert times == sorted(times)
        execs = [int(row[11]) for row in rows]
        assert execs == sorted(execs)
        assert execs[-1] == result.execs

    def test_deterministic_across_identical_runs(self, tmp_path):
        """Virtual-clock stamping makes reports bit-identical (golden)."""
        _, _, dir_a = self._reported_campaign(tmp_path / "a")
        _, _, dir_b = self._reported_campaign(tmp_path / "b")
        for name in ("fuzzer_stats", "plot_data"):
            with open(os.path.join(dir_a, name)) as fa, \
                 open(os.path.join(dir_b, name)) as fb:
                assert fa.read() == fb.read(), name

    def test_render_status_one_screen(self, tmp_path):
        campaign, result, _ = self._reported_campaign(tmp_path)
        status = campaign.reporter.render_status()
        assert "repro-fuzz [closurex]" in status
        assert f"execs done : {result.execs}" in status
        assert len(status.splitlines()) <= 20

    def test_reporter_without_dir_writes_nothing(self, tmp_path):
        campaign = _campaign(TelemetryConfig(enabled=True, sink="memory"))
        result = campaign.run()
        assert campaign.reporter is not None
        assert campaign.reporter.out_dir is None
        assert campaign.reporter.plot_rows      # still collected in memory
        assert list(tmp_path.iterdir()) == []


class TestProfileReport:
    def test_counts_accumulate_when_enabled(self):
        campaign = _campaign(
            TelemetryConfig(enabled=True, sink="null", profile_vm=True)
        )
        result = campaign.run()
        executor = campaign.executor
        report = ProfileReport.from_executor(executor)
        assert report.total_instructions > 0
        assert report.total_libc_calls > 0
        hotspots = report.hotspots(top=5)
        assert len(hotspots) == 5
        assert hotspots[0].est_ns >= hotspots[-1].est_ns
        assert abs(sum(h.share for h in report.hotspots()) - 1.0) < 1e-9
        rendered = report.render(top=3)
        assert "hot spot" in rendered and hotspots[0].name in rendered

    def test_profiling_off_by_default(self):
        campaign = _campaign(TelemetryConfig(enabled=True, sink="null"))
        campaign.run()
        assert campaign.executor.opcode_counts == {}
        assert campaign.executor.libc_counts == {}
        report = ProfileReport.from_executor(campaign.executor)
        assert "no samples" in report.render()


class TestReporterCollect:
    def test_collect_matches_campaign_state_midway(self):
        campaign = _campaign(TelemetryConfig(enabled=True, sink="memory"))
        campaign.run()
        reporter = CampaignReporter(campaign)
        stats = reporter.collect()
        assert stats["execs_done"] == campaign.execs
        assert stats["corpus_count"] == len(campaign.corpus)
        assert stats["map_density"].endswith("%")
