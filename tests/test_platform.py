"""End-to-end tests for the experiment platform (spec / store /
scheduler / report).

The expensive properties — bit-reproducible store and report digests,
checkpoint resume equivalence — run on a deliberately tiny matrix
(1 target x 2 arms x 1-2 trials, 2 virtual ms) so the whole file stays
in tier-1 time.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.platform import (
    Arm,
    ExperimentSpec,
    Measurer,
    ReportError,
    ReportGenerator,
    ResultsStore,
    SpecError,
    StoreError,
    TrialScheduler,
)
from repro.experiments.platform.spec import MS


def tiny_spec(**overrides) -> ExperimentSpec:
    kwargs = dict(
        name="tiny",
        targets=["giftext"],
        mechanisms=["closurex", "forkserver"],
        trials=2,
        budget_ns=2 * MS,
        measure_every_ns=1 * MS,
        base_seed=7,
    )
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


class TestSpec:
    def test_enumeration_shape_and_order(self):
        spec = tiny_spec()
        trials = spec.enumerate_trials()
        assert len(trials) == 1 * 2 * 2
        assert [t.trial_id for t in trials] == [
            "giftext--closurex--default--t0",
            "giftext--closurex--default--t1",
            "giftext--forkserver--default--t0",
            "giftext--forkserver--default--t1",
        ]

    def test_seed_paired_across_arms(self):
        spec = tiny_spec()
        by_arm = {}
        for trial in spec.enumerate_trials():
            by_arm.setdefault(trial.arm.label, []).append(trial.seed)
        assert by_arm["closurex"] == by_arm["forkserver"]
        # ...but distinct across trial indices.
        assert len(set(by_arm["closurex"])) == 2

    def test_variants_multiply_arms(self):
        spec = tiny_spec(
            variants={"default": {}, "hot": {"havoc_base_energy": 96}},
        )
        labels = [arm.label for arm in spec.arms]
        assert labels == [
            "closurex", "closurex@hot", "forkserver", "forkserver@hot",
        ]
        hot = next(a for a in spec.arms if a.variant == "hot")
        trial = next(
            t for t in spec.enumerate_trials() if t.arm == hot
        )
        assert trial.campaign_config().havoc_base_energy == 96

    def test_digest_is_stable_and_content_sensitive(self):
        assert tiny_spec().digest() == tiny_spec().digest()
        assert tiny_spec().digest() != tiny_spec(base_seed=8).digest()

    def test_round_trip_through_dict(self):
        spec = tiny_spec()
        clone = ExperimentSpec.from_dict(
            json.loads(spec.canonical_json())
        )
        assert clone.digest() == spec.digest()

    @pytest.mark.parametrize("overrides", [
        {"targets": []},
        {"mechanisms": []},
        {"mechanisms": ["qemu"]},
        {"trials": 0},
        {"budget_ns": 0},
        {"n_workers": 0},
        {"variants": {"bad": {"checkpoint_path": "/tmp/x"}}},
    ])
    def test_invalid_specs_rejected(self, overrides):
        with pytest.raises(SpecError):
            tiny_spec(**overrides)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(SpecError):
            ExperimentSpec.from_dict({"name": "x", "bogus": 1})


class TestStore:
    def test_append_read_round_trip(self, tmp_path):
        store = ResultsStore(str(tmp_path / "store"))
        store.append("t1", {"kind": "sample", "k": 1, "clock_ns": 5})
        store.append("t1", {"kind": "final", "execs": 10})
        records = store.read("t1")
        assert [r["kind"] for r in records] == ["sample", "final"]
        assert store.completed("t1")
        assert not store.completed("t2")
        assert store.trial_ids() == ["t1"]

    def test_torn_tail_is_dropped(self, tmp_path):
        store = ResultsStore(str(tmp_path / "store"))
        store.append("t1", {"kind": "sample", "k": 1})
        with open(store.trial_path("t1"), "a", encoding="utf-8") as fh:
            fh.write('{"kind": "sam')  # simulated torn write
        records = store.read("t1")
        assert len(records) == 1 and records[0]["k"] == 1

    def test_truncate_after_realigns_stream(self, tmp_path):
        store = ResultsStore(str(tmp_path / "store"))
        for k, clock in [(1, 10), (2, 20), (3, 30)]:
            store.append("t1", {"kind": "sample", "k": k, "clock_ns": clock})
        store.append("t1", {"kind": "final", "clock_ns": 30})
        kept = store.truncate_after("t1", 20)
        assert kept == 2
        assert [r["k"] for r in store.read("t1")] == [1, 2]

    def test_fsync_every_batches_barriers_but_always_flushes(self, tmp_path):
        """Satellite: ``fsync_every=N`` batches the expensive disk
        barrier; every record is still *flushed* (visible to a reader)
        immediately, and a ``final`` record forces the barrier."""
        store = ResultsStore(str(tmp_path / "store"), fsync_every=3)
        store.append("t1", {"kind": "sample", "k": 1, "clock_ns": 1})
        store.append("t1", {"kind": "sample", "k": 2, "clock_ns": 2})
        # Records are readable before any barrier fired.
        assert [r["k"] for r in store.read("t1")] == [1, 2]
        assert store._unsynced["t1"] == 2
        store.append("t1", {"kind": "sample", "k": 3, "clock_ns": 3})
        assert store._unsynced["t1"] == 0     # cadence barrier fired
        store.append("t1", {"kind": "sample", "k": 4, "clock_ns": 4})
        store.append("t1", {"kind": "final", "execs": 4})
        assert store._unsynced["t1"] == 0     # final forces the barrier
        assert store.completed("t1")

    def test_fsync_every_validation_and_default(self, tmp_path):
        with pytest.raises(ValueError):
            ResultsStore(str(tmp_path / "bad"), fsync_every=0)
        # Default preserves the original guarantee: barrier per record.
        store = ResultsStore(str(tmp_path / "store"))
        store.append("t1", {"kind": "sample", "k": 1})
        assert store._unsynced["t1"] == 0

    def test_sync_forces_pending_barrier(self, tmp_path):
        store = ResultsStore(str(tmp_path / "store"), fsync_every=10)
        store.append("t1", {"kind": "sample", "k": 1})
        assert store._unsynced["t1"] == 1
        store.sync("t1")
        assert store._unsynced["t1"] == 0
        store.sync("t1")                      # no-op when clean
        store.sync("missing")                 # unknown trial: no-op

    def test_torn_tail_after_batched_writes_resumes_cleanly(self, tmp_path):
        """Satellite acceptance: a torn tail after a run of batched
        (flushed-not-yet-fsynced) appends drops only the torn line; the
        valid prefix stays consistent and truncate_after realigns it
        exactly as with per-record fsync."""
        store = ResultsStore(str(tmp_path / "store"), fsync_every=4)
        for k in range(1, 6):
            store.append(
                "t1", {"kind": "sample", "k": k, "clock_ns": k * 10}
            )
        with open(store.trial_path("t1"), "a", encoding="utf-8") as fh:
            fh.write('{"kind": "sample", "k": 6, "clo')   # torn write
        assert [r["k"] for r in store.read("t1")] == [1, 2, 3, 4, 5]
        kept = store.truncate_after("t1", 30)
        assert kept == 3
        assert not store._unsynced.get("t1")   # batch state realigned
        # The stream keeps working after the realign.
        store.append("t1", {"kind": "sample", "k": 7, "clock_ns": 40})
        assert [r["k"] for r in store.read("t1")] == [1, 2, 3, 7]

    def test_reset_trial_clears_batch_state(self, tmp_path):
        store = ResultsStore(str(tmp_path / "store"), fsync_every=5)
        store.append("t1", {"kind": "sample", "k": 1})
        assert store._unsynced["t1"] == 1
        store.reset_trial("t1")
        assert "t1" not in store._unsynced
        assert store.read("t1") == []

    def test_bind_spec_rejects_mismatch(self, tmp_path):
        store = ResultsStore(str(tmp_path / "store"))
        store.bind_spec(tiny_spec())
        store.bind_spec(tiny_spec())  # idempotent
        with pytest.raises(StoreError):
            store.bind_spec(tiny_spec(base_seed=8))

    def test_digest_covers_spec_and_streams(self, tmp_path):
        store = ResultsStore(str(tmp_path / "store"))
        store.bind_spec(tiny_spec())
        before = store.digest()
        store.append("t1", {"kind": "sample", "k": 1})
        assert store.digest() != before


@pytest.fixture(scope="module")
def completed_run(tmp_path_factory):
    """One fully scheduled tiny experiment, shared across tests."""
    spec = tiny_spec()
    store = ResultsStore(str(tmp_path_factory.mktemp("run") / "store"))
    finals = TrialScheduler(spec, store, max_live=3).run()
    return spec, store, finals


class TestSchedulerAndDeterminism:
    def test_finals_cover_the_matrix(self, completed_run):
        spec, store, finals = completed_run
        assert len(finals) == len(spec.enumerate_trials())
        for final in finals:
            assert final["kind"] == "final"
            assert final["execs"] > 0
        assert all(
            store.completed(t.trial_id)
            for t in spec.enumerate_trials()
        )

    def test_rerun_is_bit_identical(self, completed_run, tmp_path):
        spec, store, _ = completed_run
        other = ResultsStore(str(tmp_path / "store"))
        TrialScheduler(spec, other, max_live=1).run()
        assert other.digest() == store.digest()

    def test_second_run_skips_completed_trials(self, completed_run):
        spec, store, finals = completed_run
        log: list[str] = []
        again = TrialScheduler(spec, store, log=log.append).run()
        assert again == finals
        assert all(line.startswith("skip ") for line in log)

    def test_checkpoint_resume_matches_uninterrupted(
        self, completed_run, tmp_path
    ):
        spec, store, _ = completed_run
        partial = ResultsStore(str(tmp_path / "store"))
        partial.bind_spec(spec)
        # Run the first trial for a single interval (sample +
        # checkpoint), as if the platform was killed mid-trial...
        trial = spec.enumerate_trials()[0]
        measurer = Measurer(partial)
        campaign, k = measurer.open_campaign(trial)
        campaign.start()
        pause = campaign.run_start_ns + k * trial.measure_every_ns
        campaign.step_until(pause)
        partial.append(
            trial.trial_id,
            measurer.sample_campaign(trial, k, campaign),
        )
        campaign.checkpoint()
        assert partial.read(trial.trial_id)  # half-finished on disk
        # ...then let the scheduler resume and finish everything.
        TrialScheduler(spec, partial).run()
        assert partial.digest() == store.digest()

    def test_report_digest_reproducible(self, completed_run, tmp_path):
        spec, store, _ = completed_run
        report_a, digest_a = ReportGenerator(store).write()
        other = ResultsStore(str(tmp_path / "store"))
        TrialScheduler(spec, other).run()
        _, digest_b = ReportGenerator(other).write()
        assert digest_a == digest_b
        assert os.path.exists(os.path.join(store.root, "report.json"))
        assert os.path.exists(os.path.join(store.root, "report.md"))


class TestReport:
    def test_structure_and_ranking(self, completed_run):
        _, store, _ = completed_run
        generator = ReportGenerator(store)
        report = generator.build()
        target = report["targets"]["giftext"]
        assert set(target["ranking"]) == {"closurex", "forkserver"}
        # One pairwise row per ranked pair.
        assert len(target["pairwise"]) == 1
        pair = target["pairwise"][0]
        assert {"a", "b", "p_value", "a12", "magnitude",
                "median_diff"} <= set(pair)
        assert 0.0 <= pair["p_value"] <= 1.0
        assert 0.0 <= pair["a12"] <= 1.0
        # Ranking is by median final edges, descending.
        arms = target["arms"]
        ranked_edges = [
            arms[label]["median_edges"] for label in target["ranking"]
        ]
        assert ranked_edges == sorted(ranked_edges, reverse=True)

    def test_curves_on_shared_grid(self, completed_run):
        spec, store, _ = completed_run
        report = ReportGenerator(store).build()
        for label, curve in report["curves"]["giftext"].items():
            assert curve["t_ns"] == [1 * MS, 2 * MS]
            assert len(curve["median_edges"]) == 2
            assert len(curve["per_trial_edges"]) == spec.trials
            # Coverage growth is monotone in virtual time.
            assert curve["median_edges"] == sorted(curve["median_edges"])

    def test_markdown_renders_key_sections(self, completed_run):
        _, store, _ = completed_run
        generator = ReportGenerator(store)
        text = generator.to_markdown(generator.build())
        assert "## Overall ranking" in text
        assert "## giftext" in text
        assert "closurex vs forkserver" in text or (
            "forkserver vs closurex" in text
        )
        assert "Mann-Whitney" in text

    def test_incomplete_store_is_rejected(self, tmp_path):
        store = ResultsStore(str(tmp_path / "store"))
        store.bind_spec(tiny_spec())
        with pytest.raises(ReportError):
            ReportGenerator(store).build()

    def test_missing_spec_is_rejected(self, tmp_path):
        store = ResultsStore(str(tmp_path / "store"))
        with pytest.raises(ReportError):
            ReportGenerator(store)


class TestParallelTrials:
    def test_multi_worker_trial_completes_and_reproduces(self, tmp_path):
        spec = tiny_spec(
            name="tiny-parallel",
            mechanisms=["closurex"],
            trials=1,
            n_workers=2,
        )
        store_a = ResultsStore(str(tmp_path / "a"))
        finals = TrialScheduler(spec, store_a).run()
        assert len(finals) == 1
        assert finals[0]["kind"] == "final"
        assert finals[0]["execs"] > 0
        records = store_a.read(spec.enumerate_trials()[0].trial_id)
        assert any(r["kind"] == "sample" for r in records)
        store_b = ResultsStore(str(tmp_path / "b"))
        TrialScheduler(spec, store_b).run()
        assert store_b.digest() == store_a.digest()


class TestArmLabels:
    def test_default_variant_label_is_bare_mechanism(self):
        assert Arm("closurex").label == "closurex"
        assert Arm("closurex", "hot").label == "closurex@hot"
