"""Wall-clock benchmark harness for the MiniVM execution mechanisms.

Everything else in the repo measures *virtual* time; this tool answers
the orthogonal question "how fast does the simulation itself run on
this machine?"  It drives each (target, mechanism) pair through the
real executor stack for a fixed number of executions, times it with
``time.perf_counter``, and writes ``BENCH_wallclock.json`` at the repo
root::

    PYTHONPATH=src python tools/bench.py
    PYTHONPATH=src python tools/bench.py --targets md4c --execs 500

The JSON records host metadata plus, per cell: wall seconds, real
execs/second, and the mean virtual ns consumed per exec — so regressions
in simulator throughput (as opposed to simulated throughput) show up in
code review.  Numbers are machine-dependent by design; only the schema
is stable.
"""

from __future__ import annotations

import argparse
import itertools
import json
import pathlib
import platform
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.experiments.campaign_runner import build_executor  # noqa: E402
from repro.sim_os import Kernel  # noqa: E402
from repro.targets import get_target, target_names  # noqa: E402

DEFAULT_TARGETS = ("md4c", "giftext", "zlib")
DEFAULT_MECHANISMS = ("closurex", "forkserver", "persistent", "fresh")


def measure_cell(target: str, mechanism: str, execs: int,
                 warmup: int = 5, optimized: bool = False,
                 i2s: bool = False) -> dict:
    """Time *execs* real executions of *target* under *mechanism*.

    Inputs cycle through the target's seed corpus so the measurement
    exercises the same paths a campaign's early iterations would.
    With ``optimized=True`` the module is first run through the
    validated IR optimizer, so the optimized-vs-baseline delta lands
    in the artifact.  With ``i2s=True`` a compare observer is attached
    and armed for every execution — the wall-clock tax the
    input-to-state stage pays per probe exec (the disarmed observer is
    a single attribute check per compare; see docs/mutation.md).
    Returns the schema cell stored in ``BENCH_wallclock.json``.
    """
    spec = get_target(target)
    executor = build_executor(target, mechanism, Kernel(),
                              optimize=optimized)
    observer = None
    if i2s:
        from repro.fuzzing.i2s import CmpObserver
        observer = CmpObserver()
        executor.attach_cmp_observer(observer)
    inputs = itertools.cycle(spec.seeds)
    for _ in range(warmup):
        executor.run(next(inputs))
    virtual_ns = 0
    instructions = 0
    start = time.perf_counter()
    for _ in range(execs):
        if observer is not None:
            observer.begin()
        result = executor.run(next(inputs))
        if observer is not None:
            observer.take()
        virtual_ns += result.ns
        instructions += result.instructions
    wall_s = time.perf_counter() - start
    executor.shutdown()
    return {
        "target": target,
        "mechanism": mechanism,
        "optimized": optimized,
        "i2s": i2s,
        "execs": execs,
        "wall_s": round(wall_s, 6),
        "execs_per_s": round(execs / wall_s, 2) if wall_s > 0 else 0.0,
        "virtual_ns_per_exec": round(virtual_ns / execs, 1),
        "instructions_per_exec": round(instructions / execs, 1),
    }


def run_bench(targets, mechanisms, execs: int) -> dict:
    """Measure every (target, mechanism) cell; returns the full report.

    Each target additionally gets an optimized ``closurex`` cell and
    an I2S (armed compare observer) ``closurex`` cell (when
    ``closurex`` is among the mechanisms), so the artifact always
    carries the optimizer's throughput delta and the observation tax
    next to their shared baseline.
    """
    cells = []
    for target in targets:
        variants = [(m, False, False) for m in mechanisms]
        if "closurex" in mechanisms:
            variants.append(("closurex", True, False))
            variants.append(("closurex", False, True))
        for mechanism, optimized, i2s in variants:
            cell = measure_cell(target, mechanism, execs,
                                optimized=optimized, i2s=i2s)
            cells.append(cell)
            label = mechanism + ("+opt" if optimized else "") \
                + ("+i2s" if i2s else "")
            print(
                f"{target:12s} {label:12s} "
                f"{cell['execs_per_s']:>10.1f} execs/s  "
                f"({cell['wall_s']:.3f}s wall, "
                f"{cell['instructions_per_exec']:.0f} insts/exec)"
            )
    return {
        "schema": "repro-bench-wallclock/3",
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "execs_per_cell": execs,
        "cells": cells,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/bench.py",
        description="Measure real wall-clock MiniVM throughput and "
                    "write BENCH_wallclock.json at the repo root.",
    )
    parser.add_argument("--targets",
                        default=",".join(DEFAULT_TARGETS),
                        help="comma-separated targets "
                             f"(default: {','.join(DEFAULT_TARGETS)})")
    parser.add_argument("--mechanisms",
                        default=",".join(DEFAULT_MECHANISMS),
                        help="comma-separated mechanisms "
                             f"(default: {','.join(DEFAULT_MECHANISMS)})")
    parser.add_argument("--execs", type=int, default=300,
                        help="executions timed per cell (default: 300)")
    parser.add_argument("--out", default=None,
                        help="output path (default: BENCH_wallclock.json "
                             "at the repo root)")
    args = parser.parse_args(argv)

    targets = [t.strip() for t in args.targets.split(",") if t.strip()]
    unknown = set(targets) - set(target_names())
    if unknown:
        parser.error(f"unknown targets: {sorted(unknown)}")
    mechanisms = [m.strip() for m in args.mechanisms.split(",")
                  if m.strip()]

    report = run_bench(targets, mechanisms, args.execs)
    out = pathlib.Path(
        args.out
        or pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_wallclock.json"
    )
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
