#!/usr/bin/env python3
"""Docstring lint gate for the public API surface.

Walks every module under ``src/repro`` with the ``ast`` module (no
imports, so it is fast and side-effect-free) and fails when a *public*
module or class lacks a docstring.  Public means: the module's path
has no underscore-prefixed component except ``__init__``/``__main__``,
and the class name has no leading underscore.

The repository treats docstrings as the first line of documentation —
docs/architecture.md points readers at module docstrings for detail —
so a missing one is a docs regression and CI fails on it.

Usage:
    python tools/doccheck.py            # report + exit 1 on violations
    python tools/doccheck.py --list     # machine-readable one-per-line
"""

from __future__ import annotations

import ast
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"


def is_public_module(path: pathlib.Path) -> bool:
    return all(
        not part.startswith("_") or part in ("__init__.py", "__main__.py")
        for part in path.relative_to(SRC.parent).parts
    )


def iter_violations():
    """Yield ``(path, lineno, kind, name)`` for every missing docstring."""
    for path in sorted(SRC.rglob("*.py")):
        if not is_public_module(path):
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        relative = path.relative_to(REPO)
        if ast.get_docstring(tree) is None:
            yield relative, 1, "module", ".".join(
                path.relative_to(SRC.parent).with_suffix("").parts
            )
        for node in ast.walk(tree):
            if (isinstance(node, ast.ClassDef)
                    and not node.name.startswith("_")
                    and ast.get_docstring(node) is None):
                yield relative, node.lineno, "class", node.name


def main(argv: list[str]) -> int:
    violations = list(iter_violations())
    if "--list" in argv:
        for path, lineno, kind, name in violations:
            print(f"{path}:{lineno}:{kind}:{name}")
        return 1 if violations else 0
    if violations:
        print(f"doccheck: {len(violations)} public name(s) missing "
              f"docstrings:\n")
        for path, lineno, kind, name in violations:
            print(f"  {path}:{lineno}: {kind} {name}")
        print("\nEvery public module and class under src/repro must carry "
              "a docstring\n(see docs/architecture.md for the bar these "
              "are held to).")
        return 1
    print("doccheck: all public modules and classes are documented")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
