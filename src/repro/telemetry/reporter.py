"""AFL-compatible campaign reporting: ``fuzzer_stats``, ``plot_data``,
and a one-screen status view.

AFL's on-disk stats protocol is the lingua franca of fuzzing-campaign
tooling (afl-plot, FuzzBench's runners, casr-afl all parse it), so the
reporter materialises the same two files — with every time quantity in
**virtual** seconds, because that is the clock the whole simulator runs
on.  ``fuzzer_stats`` is rewritten in place at each update;
``plot_data`` is an append-only time series whose ``relative_time``
column is monotonically increasing by construction (the virtual clock
never goes backwards).

The reporter is driven by the campaign loop at a configurable virtual
interval (``TelemetryConfig.report_interval_ns``); it holds no wall
clocks and performs no I/O unless a ``report_dir`` was configured, so
runs stay bit-for-bit reproducible.
"""

from __future__ import annotations

import os

from repro.vm.interpreter import COVERAGE_MAP_SIZE

PLOT_HEADER = (
    "# relative_time, cycles_done, cur_item, corpus_count, pending_total, "
    "pending_favs, map_size, unique_crashes, unique_hangs, max_depth, "
    "execs_per_sec, total_execs, edges_found"
)


def write_stats_files(out_dir: str, stats: dict[str, object],
                      plot_rows: list[str], plot_header: str) -> None:
    """Materialise one AFL-style ``fuzzer_stats`` + ``plot_data`` pair.

    Shared by the per-campaign :class:`CampaignReporter` and the
    parallel orchestrator's merged reporter, so every stats directory
    in the tree — single campaign, per-worker shard, or aggregate —
    speaks the same on-disk dialect.
    """
    os.makedirs(out_dir, exist_ok=True)
    width = max(len(k) for k in stats)
    lines = [f"{key.ljust(width)} : {value}" for key, value in stats.items()]
    with open(os.path.join(out_dir, "fuzzer_stats"), "w",
              encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    with open(os.path.join(out_dir, "plot_data"), "w",
              encoding="utf-8") as handle:
        handle.write(plot_header + "\n")
        handle.write("\n".join(plot_rows) + "\n")


class CampaignReporter:
    """Periodic AFL-style stats materialisation for one campaign."""

    def __init__(self, campaign, out_dir: str | None = None,
                 interval_ns: int = 5_000_000):
        self.campaign = campaign
        self.out_dir = out_dir
        self.interval_ns = max(1, interval_ns)
        self.start_ns = campaign.clock.now_ns
        self.updates = 0
        self.plot_rows: list[str] = []
        self._next_ns = self.start_ns
        if out_dir is not None:
            os.makedirs(out_dir, exist_ok=True)

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------

    def collect(self) -> dict[str, object]:
        """One consistent snapshot of the campaign, AFL key names."""
        campaign = self.campaign
        executor = campaign.executor
        entries = campaign.corpus.entries
        elapsed_ns = campaign.clock.now_ns - self.start_ns
        execs = campaign.execs
        pending = sum(1 for e in entries if e.times_selected == 0)
        pending_favs = sum(
            1 for e in entries if e.favored and e.times_selected == 0
        )
        edges = campaign.virgin.edges_found()
        pollution = getattr(executor, "pollution", None)
        if pollution is not None and execs:
            stability = 100.0 * (
                1.0 - pollution.dirty_global_iterations / execs
            )
        else:
            stability = 100.0
        supervision = getattr(executor, "supervision", None)
        stats = {
            "start_time": f"{self.start_ns / 1e9:.6f}",
            "last_update": f"{campaign.clock.now_ns / 1e9:.6f}",
            "run_time": f"{elapsed_ns / 1e9:.6f}",
            "fuzzer_pid": 0,
            "cycles_done": min(
                (e.times_selected for e in entries), default=0
            ),
            "cur_item": campaign.current_entry_id,
            "execs_done": execs,
            "execs_per_sec": (
                f"{execs / (elapsed_ns / 1e9):.2f}" if elapsed_ns else "0.00"
            ),
            "corpus_count": len(entries),
            "corpus_favored": campaign.corpus.favored_count(),
            "pending_total": pending,
            "pending_favs": pending_favs,
            "max_depth": max((e.depth for e in entries), default=0),
            "unique_crashes": campaign.triage.unique_count,
            "total_crashes": campaign.triage.total_crashes,
            "unique_hangs": campaign.triage.unique_hang_count,
            "total_hangs": campaign.triage.total_hangs,
            "respawns": executor.stats.respawns,
            "edges_found": edges,
            "map_density": f"{100.0 * edges / COVERAGE_MAP_SIZE:.2f}%",
            "stability": f"{stability:.2f}%",
            "target_mode": executor.mechanism,
            "shard_id": getattr(campaign.config, "shard_id", 0),
            "command_line": f"repro-fuzz --mechanism {executor.mechanism}",
        }
        if supervision is not None:
            stats["recoveries"] = supervision.recoveries
            stats["retries"] = supervision.retries
            stats["quarantined"] = supervision.quarantined_inputs
            stats["degradations"] = supervision.degradations
        return stats

    # ------------------------------------------------------------------
    # periodic update protocol (virtual-time driven)
    # ------------------------------------------------------------------

    def maybe_update(self) -> bool:
        if self.campaign.clock.now_ns < self._next_ns:
            return False
        self.update()
        return True

    def update(self) -> None:
        stats = self.collect()
        self.plot_rows.append(self._plot_row(stats))
        self.updates += 1
        self._next_ns = self.campaign.clock.now_ns + self.interval_ns
        if self.out_dir is not None:
            self._write_files(stats)

    def finalize(self) -> None:
        """Final snapshot at campaign end (always emitted)."""
        self.update()

    def _plot_row(self, stats: dict[str, object]) -> str:
        return (
            f"{stats['run_time']}, {stats['cycles_done']}, "
            f"{stats['cur_item']}, {stats['corpus_count']}, "
            f"{stats['pending_total']}, {stats['pending_favs']}, "
            f"{stats['map_density']}, {stats['unique_crashes']}, "
            f"{stats['unique_hangs']}, {stats['max_depth']}, "
            f"{stats['execs_per_sec']}, {stats['execs_done']}, "
            f"{stats['edges_found']}"
        )

    def _write_files(self, stats: dict[str, object]) -> None:
        write_stats_files(self.out_dir, stats, self.plot_rows, PLOT_HEADER)

    # ------------------------------------------------------------------
    # one-screen status UI
    # ------------------------------------------------------------------

    def render_status(self) -> str:
        """afl-fuzz-flavoured single-screen text summary."""
        stats = self.collect()
        title = f" repro-fuzz [{stats['target_mode']}] "
        rule = "+" + title.center(62, "-") + "+"
        rows = [
            ("run time (virtual)", f"{stats['run_time']} s",
             "execs done", f"{stats['execs_done']}"),
            ("exec speed", f"{stats['execs_per_sec']}/vs",
             "cycles done", f"{stats['cycles_done']}"),
            ("corpus count", f"{stats['corpus_count']} "
             f"({stats['corpus_favored']} favored)",
             "pending favs", f"{stats['pending_favs']}"),
            ("edges found", f"{stats['edges_found']} "
             f"({stats['map_density']} of map)",
             "max depth", f"{stats['max_depth']}"),
            ("unique crashes", f"{stats['unique_crashes']}",
             "hangs", f"{stats['unique_hangs']}"),
            ("respawns", f"{stats['respawns']}",
             "stability", f"{stats['stability']}"),
        ]
        lines = [rule]
        for left_key, left_val, right_key, right_val in rows:
            left = f"{left_key} : {left_val}".ljust(38)
            right = f"{right_key} : {right_val}"
            lines.append(f"| {(left + right).ljust(60)} |")
        lines.append("+" + "-" * 62 + "+")
        return "\n".join(lines)
