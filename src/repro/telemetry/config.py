"""Telemetry wiring: one config dataclass, one facade object.

:class:`TelemetryConfig` is what user-facing configs embed (see
``CampaignConfig.telemetry``); :func:`build_telemetry` turns it into a
live :class:`Telemetry` facade bound to a virtual clock.  The disabled
default resolves to the shared :data:`NULL_TELEMETRY`, whose tracer and
metrics are no-ops — so every layer can hold a telemetry reference
unconditionally and the tier-1 fast path never pays for observability
it didn't ask for.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.telemetry.metrics import NULL_METRICS, MetricsRegistry
from repro.telemetry.tracer import (
    NULL_TRACER,
    JSONLSink,
    NullSink,
    RingBufferSink,
    Tracer,
)


@dataclass
class TelemetryConfig:
    """Tunables for one campaign's observability."""

    enabled: bool = False
    sink: str = "null"                  # "null" | "memory" | "jsonl"
    jsonl_path: str | None = None       # required when sink == "jsonl"
    ring_capacity: int = 65536          # memory sink depth
    profile_vm: bool = False            # per-opcode / per-libc-call counts
    report_dir: str | None = None       # where fuzzer_stats/plot_data land
    report_interval_ns: int = 5_000_000  # virtual ns between reporter updates


class Telemetry:
    """Facade bundling the metrics registry and the tracer."""

    def __init__(self, metrics: MetricsRegistry, tracer: Tracer,
                 config: TelemetryConfig):
        self.metrics = metrics
        self.tracer = tracer
        self.config = config

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    def flush(self) -> None:
        self.tracer.flush()

    def close(self) -> None:
        self.tracer.close()


NULL_TELEMETRY = Telemetry(NULL_METRICS, NULL_TRACER, TelemetryConfig())


class WallClock:
    """Monotonic wall-clock with the virtual clock's ``now_ns`` shape.

    Campaigns are virtual-clock-native, but the serving layer
    (``repro.service``) is a wall-clock entity — its trace events
    (job accepted, worker respawned, drain started) happen in real
    time, across many independent virtual timelines.  This shim lets
    the service reuse the same :class:`Telemetry` stack by quacking
    like a kernel clock.
    """

    @property
    def now_ns(self) -> int:
        return time.monotonic_ns()


def build_telemetry(config: TelemetryConfig | None, clock=None) -> Telemetry:
    """Materialise a telemetry stack for *config* (shared null when off)."""
    if config is None or not config.enabled:
        return NULL_TELEMETRY
    if config.sink == "jsonl":
        if config.jsonl_path is None:
            raise ValueError("sink='jsonl' requires jsonl_path")
        sink = JSONLSink(config.jsonl_path)
    elif config.sink == "memory":
        sink = RingBufferSink(config.ring_capacity)
    elif config.sink == "null":
        sink = NullSink()
    else:
        raise ValueError(f"unknown trace sink {config.sink!r}")
    return Telemetry(MetricsRegistry(), Tracer(clock, sink), config)
