"""Structured event tracer stamped in *virtual* nanoseconds.

Everything in this repo runs against :class:`~repro.sim_os.kernel.
VirtualClock`, so wall time is meaningless for ordering or attributing
work — a fresh-process spawn "takes" hundreds of microseconds of
simulated time in a few real microseconds.  The tracer therefore stamps
every event with the clock's ``now_ns``, which makes traces exactly
reproducible across machines and directly comparable with the
campaign's virtual-time budget.

Sinks are pluggable:

- :class:`NullSink` — the zero-overhead default; nothing is recorded.
- :class:`RingBufferSink` — last-N events in memory, for tests and the
  status UI.
- :class:`JSONLSink` — one JSON object per line, the interchange format
  FuzzBench-style offline analysis expects.

The module-level :data:`NULL_TRACER` is shared by every component whose
telemetry was never enabled; hot paths guard emission with
``tracer.enabled`` so the disabled cost is one attribute read.
"""

from __future__ import annotations

import json
import os
from collections import deque
from dataclasses import dataclass, field


@dataclass
class TraceEvent:
    """One span or point event on the virtual timeline."""

    name: str
    ns: int                     # virtual timestamp (span start for spans)
    kind: str = "event"         # "event" | "span"
    dur_ns: int = 0             # span duration (0 for point events)
    attrs: dict = field(default_factory=dict)

    def to_json(self) -> str:
        record = {"name": self.name, "ns": self.ns, "kind": self.kind}
        if self.kind == "span":
            record["dur_ns"] = self.dur_ns
        if self.attrs:
            record["attrs"] = self.attrs
        return json.dumps(record, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        record = json.loads(line)
        return cls(
            name=record["name"],
            ns=record["ns"],
            kind=record.get("kind", "event"),
            dur_ns=record.get("dur_ns", 0),
            attrs=record.get("attrs", {}),
        )


class NullSink:
    """Drops everything; the default when tracing is disabled."""

    def emit(self, event: TraceEvent) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class RingBufferSink(NullSink):
    """Keeps the most recent *capacity* events in memory."""

    def __init__(self, capacity: int = 65536):
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)
        self.emitted += 1


class JSONLSink(NullSink):
    """Appends one JSON object per event to *path*."""

    def __init__(self, path: str):
        self.path = path
        self.emitted = 0
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._file = open(path, "w", encoding="utf-8")

    def emit(self, event: TraceEvent) -> None:
        self._file.write(event.to_json() + "\n")
        self.emitted += 1

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


def read_jsonl(path: str) -> list[TraceEvent]:
    """Load a JSONL trace back into events (offline analysis helper)."""
    with open(path, encoding="utf-8") as handle:
        return [TraceEvent.from_json(line) for line in handle if line.strip()]


class _ZeroClock:
    """Stand-in clock for tracers used outside a simulated kernel
    (e.g. compile-time pass timing, where only wall attrs matter)."""

    now_ns = 0


class _Span:
    """Reusable context manager emitting a span on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        self._start_ns = self._tracer.clock.now_ns
        return self

    def __exit__(self, *exc) -> None:
        self._tracer.span_at(
            self._name, self._start_ns, self._tracer.clock.now_ns,
            **self._attrs,
        )


class Tracer:
    """Emits virtual-time-stamped events into one sink."""

    enabled = True

    def __init__(self, clock=None, sink: NullSink | None = None):
        self.clock = clock if clock is not None else _ZeroClock()
        self.sink = sink if sink is not None else RingBufferSink()

    def event(self, name: str, **attrs) -> None:
        self.sink.emit(TraceEvent(name, self.clock.now_ns, "event", 0, attrs))

    def span_at(self, name: str, start_ns: int, end_ns: int, **attrs) -> None:
        self.sink.emit(
            TraceEvent(name, start_ns, "span", end_ns - start_ns, attrs)
        )

    def span(self, name: str, **attrs) -> _Span:
        """``with tracer.span("stage.trim", entry=3): ...`` — start/end
        stamped from the virtual clock."""
        return _Span(self, name, attrs)

    def flush(self) -> None:
        self.sink.flush()

    def close(self) -> None:
        self.sink.close()


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        pass


_NULL_SPAN = _NullSpan()


class _NullTracer(Tracer):
    """Disabled tracer: every operation is a no-op."""

    enabled = False

    def __init__(self):
        super().__init__(_ZeroClock(), NullSink())

    def event(self, name: str, **attrs) -> None:
        pass

    def span_at(self, name: str, start_ns: int, end_ns: int, **attrs) -> None:
        pass

    def span(self, name: str, **attrs):
        return _NULL_SPAN


NULL_TRACER = _NullTracer()
