"""Hot-spot profiling over MiniVM opcode / libc-call histograms.

When ``TelemetryConfig.profile_vm`` is on, every VM an executor creates
shares the executor's opcode and libc count dictionaries, so the counts
survive process respawns and accumulate across an entire campaign.
:class:`ProfileReport` folds them against the interpreter's per-opcode
and per-native cost tables into a sorted table of estimated virtual-ns
hot spots — the baseline any future MiniVM dispatch-loop optimisation
should be measured against.
"""

from __future__ import annotations

from dataclasses import dataclass


def _cost_tables() -> tuple[dict[str, int], dict[str, int]]:
    # Deferred import: profile is loaded by repro.telemetry.__init__,
    # which the interpreter's collaborators import in turn.
    from repro.vm.interpreter import _INST_COST
    from repro.vm.libc import NATIVE_BASE_COST

    opcode_ns = {cls.__name__: ns for cls, ns in _INST_COST.items()}
    return opcode_ns, dict(NATIVE_BASE_COST)


@dataclass
class HotSpot:
    """One row of the profile: an opcode or native routine."""

    name: str
    kind: str            # "opcode" | "libc"
    count: int
    est_ns: int          # count * per-unit cost from the VM cost tables
    share: float = 0.0   # fraction of the profile's total est_ns


class ProfileReport:
    """Sorted hot-spot aggregation of opcode and libc-call counts."""

    DEFAULT_OPCODE_NS = 2
    DEFAULT_NATIVE_NS = 20

    def __init__(self, opcode_counts: dict[str, int],
                 libc_counts: dict[str, int]):
        self.opcode_counts = dict(opcode_counts)
        self.libc_counts = dict(libc_counts)

    @classmethod
    def from_executor(cls, executor) -> "ProfileReport":
        return cls(executor.opcode_counts, executor.libc_counts)

    @property
    def total_instructions(self) -> int:
        return sum(self.opcode_counts.values())

    @property
    def total_libc_calls(self) -> int:
        return sum(self.libc_counts.values())

    def hotspots(self, top: int | None = None) -> list[HotSpot]:
        opcode_ns, native_ns = _cost_tables()
        rows = [
            HotSpot(name, "opcode", count,
                    count * opcode_ns.get(name, self.DEFAULT_OPCODE_NS))
            for name, count in self.opcode_counts.items()
        ]
        rows.extend(
            HotSpot(name, "libc", count,
                    count * native_ns.get(name, self.DEFAULT_NATIVE_NS))
            for name, count in self.libc_counts.items()
        )
        total = sum(r.est_ns for r in rows) or 1
        for row in rows:
            row.share = row.est_ns / total
        rows.sort(key=lambda r: (-r.est_ns, r.name))
        return rows[:top] if top is not None else rows

    def render(self, top: int = 10) -> str:
        rows = self.hotspots(top)
        if not rows:
            return "profile: no samples (enable TelemetryConfig.profile_vm)"
        headers = ["hot spot", "kind", "count", "est virtual ns", "share"]
        body = [
            [r.name, r.kind, f"{r.count:,}", f"{r.est_ns:,}",
             f"{100 * r.share:.1f}%"]
            for r in rows
        ]
        widths = [len(h) for h in headers]
        for line in body:
            for i, cell in enumerate(line):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: list[str]) -> str:
            return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

        lines = [
            f"VM profile: {self.total_instructions:,} instructions, "
            f"{self.total_libc_calls:,} libc calls",
            fmt(headers),
            fmt(["-" * w for w in widths]),
        ]
        lines.extend(fmt(line) for line in body)
        return "\n".join(lines)
