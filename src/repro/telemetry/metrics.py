"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Built to sit inside the MiniVM dispatch loop and the campaign hot path:
instruments are plain objects with ``__slots__``, updates are attribute
increments or a bisect into a pre-computed bucket list, there are no
locks (the whole simulator is single-threaded), and readers get an
isolated point-in-time copy via :meth:`MetricsRegistry.snapshot` so a
dashboard or test can never observe a half-updated series.

A :data:`NULL_METRICS` registry is the disabled default: every
instrument it hands out is a shared no-op object, so code can be
written unconditionally (``metrics.counter("execs").inc()``) and still
cost nothing when telemetry is off — though hot paths should prefer
guarding on ``metrics.enabled``.
"""

from __future__ import annotations

from bisect import bisect_right

#: Default histogram bucket upper bounds (values land in the first
#: bucket whose bound is >= value; the last bucket is +inf).  Spans the
#: ranges we histogram by default: per-exec instruction counts and
#: per-exec virtual ns.
DEFAULT_BOUNDS = (
    10, 100, 1_000, 10_000, 100_000,
    1_000_000, 10_000_000, 100_000_000,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram; bucket ``i`` counts values ``<= bounds[i]``
    (the final bucket is unbounded)."""

    __slots__ = ("name", "bounds", "buckets", "count", "total")

    def __init__(self, name: str, bounds: tuple[int, ...] = DEFAULT_BOUNDS):
        self.name = name
        self.bounds = tuple(sorted(bounds))
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0

    def observe(self, value: int) -> None:
        self.buckets[bisect_right(self.bounds, value - 1)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for disabled telemetry."""

    __slots__ = ()
    name = "<null>"
    value = 0
    count = 0
    total = 0
    mean = 0.0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: int) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Name-keyed instrument store with get-or-create semantics."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str,
                  bounds: tuple[int, ...] = DEFAULT_BOUNDS) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, bounds)
        return histogram

    def counter_values(self, prefix: str = "") -> dict[str, int]:
        """Name-sorted ``{name: value}`` for counters under *prefix*.

        The experiment platform's measurer embeds these into trial
        snapshots (restore/integrity/exec counters ride along with the
        coverage samples); sorting keeps the serialised form canonical
        so results-store digests are reproducible.
        """
        return {
            name: counter.value
            for name, counter in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def snapshot(self) -> dict:
        """Point-in-time copy; later updates never mutate the result."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {
                n: {
                    "bounds": h.bounds,
                    "buckets": list(h.buckets),
                    "count": h.count,
                    "total": h.total,
                }
                for n, h in self._histograms.items()
            },
        }


class _NullMetrics(MetricsRegistry):
    """Disabled registry: hands out the shared no-op instrument."""

    enabled = False

    def counter_values(self, prefix: str = "") -> dict[str, int]:
        return {}

    def counter(self, name: str):
        return _NULL_INSTRUMENT

    def gauge(self, name: str):
        return _NULL_INSTRUMENT

    def histogram(self, name: str, bounds: tuple[int, ...] = DEFAULT_BOUNDS):
        return _NULL_INSTRUMENT


NULL_METRICS = _NullMetrics()
