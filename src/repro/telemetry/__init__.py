"""Observability for the whole stack: metrics, tracing, campaign stats.

Everything here is **virtual-clock-native**: events and rates are
stamped in the simulated kernel's nanoseconds, never wall time, so
traces are deterministic and directly comparable with the experiments'
virtual budgets.  The disabled default (:data:`NULL_TELEMETRY`,
:data:`NULL_TRACER`, :data:`NULL_METRICS`) is shared, allocation-free,
and drops everything, keeping the uninstrumented fast path unchanged.

- :mod:`repro.telemetry.metrics` — counters / gauges / histograms.
- :mod:`repro.telemetry.tracer` — spans + events, pluggable sinks.
- :mod:`repro.telemetry.reporter` — AFL ``fuzzer_stats`` / ``plot_data``.
- :mod:`repro.telemetry.profile` — VM opcode/libc hot-spot tables.
"""

from repro.telemetry.config import (
    NULL_TELEMETRY,
    Telemetry,
    TelemetryConfig,
    WallClock,
    build_telemetry,
)
from repro.telemetry.metrics import (
    DEFAULT_BOUNDS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.profile import HotSpot, ProfileReport
from repro.telemetry.reporter import (
    PLOT_HEADER,
    CampaignReporter,
    write_stats_files,
)
from repro.telemetry.tracer import (
    NULL_TRACER,
    JSONLSink,
    NullSink,
    RingBufferSink,
    TraceEvent,
    Tracer,
    read_jsonl,
)

__all__ = [
    "NULL_TELEMETRY", "Telemetry", "TelemetryConfig", "WallClock",
    "build_telemetry",
    "DEFAULT_BOUNDS", "NULL_METRICS", "Counter", "Gauge", "Histogram",
    "MetricsRegistry",
    "HotSpot", "ProfileReport",
    "PLOT_HEADER", "CampaignReporter", "write_stats_files",
    "NULL_TRACER", "JSONLSink", "NullSink", "RingBufferSink",
    "TraceEvent", "Tracer", "read_jsonl",
]
