"""MiniC -> MiniIR code generator.

Lowering follows the clang ``-O0`` playbook: every local lives in an
``alloca`` slot, expressions load/store through those slots, and
control flow is emitted as explicit basic blocks — no SSA construction
is attempted.  This keeps the generated IR trivially correct and makes
the ClosureX passes operate on realistic-looking unoptimised IR.

Deviations from ISO C (documented, deliberate):

- ``char`` is unsigned (as with ``-funsigned-char``); format parsers
  overwhelmingly want byte semantics.
- Pointer globals cannot be initialised with addresses; initialise in
  code (there is no relocation machinery in the MiniVM loader).
- Aggregate initialisers are not supported.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.builder import IRBuilder
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import (
    ArrayType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
    VOID,
    int_type,
    pointer_type,
)
from repro.ir.values import (
    ConstantData,
    ConstantInt,
    ConstantNull,
    Value,
)
from repro.minic import ast
from repro.minic.errors import SemanticError
from repro.minic.parser import fold_const, parse
from repro.vm.libc import LIBC_SIGNATURES

_SCALARS: dict[str, tuple[int, bool]] = {
    # name -> (bits, default signedness)
    "char": (8, False),   # unsigned char semantics
    "short": (16, True),
    "int": (32, True),
    "long": (64, True),
}


@dataclass(frozen=True)
class CType:
    """An IR type plus the C-level signedness MiniIR doesn't carry."""

    ir: Type
    signed: bool = True

    @property
    def is_int(self) -> bool:
        return isinstance(self.ir, IntType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self.ir, PointerType)

    @property
    def is_array(self) -> bool:
        return isinstance(self.ir, ArrayType)


I32_C = CType(int_type(32), True)
I64_C = CType(int_type(64), True)
BOOL_C = CType(int_type(32), True)


@dataclass
class RValue:
    """A computed expression value."""

    value: Value
    ctype: CType


@dataclass
class LValue:
    """An addressable location: pointer value + element type."""

    address: Value
    ctype: CType


@dataclass
class _LoopContext:
    break_block: BasicBlock
    continue_block: BasicBlock | None


class _Materialised(ast.Expr):
    """Wraps an already-computed :class:`RValue` so it can re-enter the
    expression emitter (compound assignment evaluates its operands once
    and then reuses them as a synthetic binary expression)."""

    def __init__(self, value: RValue):
        super().__init__(None)  # type: ignore[arg-type]
        self.rvalue = value


class CodeGenerator:
    """Lowers one translation unit into a fresh MiniIR module."""

    def __init__(self, unit: ast.TranslationUnit, module_name: str):
        self.unit = unit
        self.module = Module(module_name)
        self.builder = IRBuilder()
        self.globals: dict[str, CType] = {}
        self.locals: list[dict[str, LValue]] = []
        self.functions: dict[str, tuple[CType, list[CType]]] = {}
        self.loop_stack: list[_LoopContext] = []
        self.current_return: CType | None = None
        self._string_counter = 0

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------

    def generate(self) -> Module:
        for name, signature in LIBC_SIGNATURES.items():
            self.module.declare_function(name, signature)
            self.functions[name] = (
                CType(signature.return_type),
                [CType(p) for p in signature.params],
            )
        for struct in self.unit.structs:
            self._declare_struct(struct)
        for decl in self.unit.globals:
            self._emit_global(decl)
        # Two passes over functions so forward references work.
        for func in self.unit.functions:
            self._declare_function(func)
        for func in self.unit.functions:
            if func.body is not None:
                self._emit_function(func)
        return self.module

    # ------------------------------------------------------------------
    # types
    # ------------------------------------------------------------------

    def resolve(self, spec: ast.TypeSpec, location=None) -> CType:
        if isinstance(spec, ast.NamedType):
            if spec.name == "void":
                return CType(VOID)
            bits, signed = _SCALARS[spec.name]
            if spec.unsigned:
                signed = False
            return CType(int_type(bits), signed)
        if isinstance(spec, ast.PointerTo):
            inner = self.resolve(spec.inner, location)
            return CType(pointer_type(inner.ir), False)
        if isinstance(spec, ast.ArrayOf):
            inner = self.resolve(spec.inner, location)
            return CType(ArrayType(inner.ir, spec.count), inner.signed)
        if isinstance(spec, ast.StructRef):
            if spec.name not in self.module.structs:
                raise SemanticError(f"unknown struct {spec.name!r}", location)
            return CType(self.module.get_struct(spec.name))
        raise SemanticError(f"unsupported type {spec!r}", location)

    def _declare_struct(self, decl: ast.StructDecl) -> None:
        # Register the name first so fields may point to the struct
        # itself (struct Node { struct Node *next; }).
        struct = self.module.add_struct(StructType(decl.name, []))
        fields = []
        for fname, fspec in decl.fields:
            fields.append((fname, self.resolve(fspec, decl.location).ir))
        struct.set_fields(fields)

    # ------------------------------------------------------------------
    # globals
    # ------------------------------------------------------------------

    def _emit_global(self, decl: ast.GlobalDecl) -> None:
        ctype = self.resolve(decl.type, decl.location)
        initializer = None
        if decl.init is not None:
            if isinstance(decl.init, ast.StringLit):
                if not isinstance(ctype.ir, ArrayType) or ctype.ir.element != int_type(8):
                    raise SemanticError(
                        "string initialiser requires a char array", decl.location
                    )
                data = decl.init.data
                if len(data) + 1 > ctype.ir.size():
                    raise SemanticError("string initialiser too long", decl.location)
                initializer = ConstantData(
                    ctype.ir, data + bytes(ctype.ir.size() - len(data))
                )
            else:
                value = fold_const(decl.init)
                if value is None:
                    raise SemanticError(
                        "global initialiser must be a constant", decl.location
                    )
                if not isinstance(ctype.ir, IntType):
                    raise SemanticError(
                        "non-integer global initialiser unsupported", decl.location
                    )
                initializer = ConstantInt(ctype.ir, value)
        self.module.add_global(decl.name, ctype.ir, initializer, is_constant=decl.const)
        self.globals[decl.name] = ctype

    def _intern_string(self, data: bytes) -> Value:
        """Materialise a string literal as a const global; return i8*."""
        self._string_counter += 1
        name = f".str{self._string_counter}"
        array = ArrayType(int_type(8), len(data) + 1)
        var = self.module.add_global(
            name, array, ConstantData(array, data + b"\x00"), is_constant=True
        )
        return self.builder.gep(var, [self.builder.i64(0), self.builder.i64(0)])

    # ------------------------------------------------------------------
    # functions
    # ------------------------------------------------------------------

    def _declare_function(self, func: ast.FuncDecl) -> None:
        ret = self.resolve(func.return_type, func.location)
        params = [self.resolve(p.type, func.location) for p in func.params]
        signature = FunctionType(ret.ir, [p.ir for p in params])
        if func.name in self.functions:
            if self.module.has_function(func.name):
                existing = self.module.get_function(func.name)
                if existing.function_type != signature:
                    raise SemanticError(
                        f"conflicting declaration of {func.name}", func.location
                    )
        else:
            self.module.add_function(func.name, signature)
            self.functions[func.name] = (ret, params)

    def _emit_function(self, func: ast.FuncDecl) -> None:
        function = self.module.get_function(func.name)
        if not function.is_declaration:
            raise SemanticError(f"redefinition of {func.name}", func.location)
        function.ensure_args([p.name for p in func.params])
        entry = function.append_block("entry")
        self.builder.position_at_end(entry)
        self.current_return, param_types = self.functions[func.name]
        self.locals = [{}]
        for arg, param, ctype in zip(function.args, func.params, param_types):
            slot = self.builder.alloca(ctype.ir, name=f"{param.name}.addr")
            self.builder.store(arg, slot)
            self.locals[-1][param.name] = LValue(slot, ctype)
        self._emit_block(func.body)
        self._terminate_function()
        self.locals = []

    def _terminate_function(self) -> None:
        block = self.builder.block
        if block is not None and not block.is_terminated:
            ret = self.current_return
            if ret is None or ret.ir.is_void:
                self.builder.ret()
            elif isinstance(ret.ir, IntType):
                self.builder.ret(ConstantInt(ret.ir, 0))
            else:
                self.builder.ret(ConstantNull(ret.ir))  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _emit_block(self, block: ast.Block) -> None:
        self.locals.append({})
        for stmt in block.statements:
            self._emit_statement(stmt)
            if self.builder.block is not None and self.builder.block.is_terminated:
                break  # dead code after return/break/continue is dropped
        self.locals.pop()

    def _emit_statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._emit_block(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._emit_expr(stmt.expr)
        elif isinstance(stmt, ast.VarDecl):
            self._emit_var_decl(stmt)
        elif isinstance(stmt, ast.DeclGroup):
            for decl in stmt.decls:
                self._emit_var_decl(decl)
        elif isinstance(stmt, ast.If):
            self._emit_if(stmt)
        elif isinstance(stmt, ast.While):
            self._emit_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._emit_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._emit_for(stmt)
        elif isinstance(stmt, ast.Switch):
            self._emit_switch(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise SemanticError("break outside loop/switch", stmt.location)
            self.builder.br(self.loop_stack[-1].break_block)
        elif isinstance(stmt, ast.Continue):
            target = next(
                (c.continue_block for c in reversed(self.loop_stack)
                 if c.continue_block is not None),
                None,
            )
            if target is None:
                raise SemanticError("continue outside loop", stmt.location)
            self.builder.br(target)
        elif isinstance(stmt, ast.Return):
            self._emit_return(stmt)
        else:  # pragma: no cover - AST is closed
            raise SemanticError(f"unsupported statement {stmt!r}", stmt.location)

    def _entry_alloca(self, ir_type, hint: str):
        """Place an alloca in the function's entry block (clang -O0
        style): entry dominates everything, and locals declared inside
        loops must not re-allocate per iteration."""
        from repro.ir.instructions import Alloca

        function = self.builder.function
        inst = Alloca(ir_type, 1)
        inst.set_name(function.next_value_name(hint or "slot"))
        function.entry_block.insert(0, inst)
        return inst

    def _emit_var_decl(self, stmt: ast.VarDecl) -> None:
        ctype = self.resolve(stmt.type, stmt.location)
        slot = self._entry_alloca(ctype.ir, stmt.name)
        self.locals[-1][stmt.name] = LValue(slot, ctype)
        if stmt.init is None:
            return
        if isinstance(stmt.init, ast.StringLit) and isinstance(ctype.ir, ArrayType):
            # char buf[N] = "..." — copy the literal into the array.
            literal = self._intern_string_bytes_global(stmt.init.data, ctype.ir.count,
                                                       stmt.location)
            dst = self.builder.gep(slot, [self.builder.i64(0), self.builder.i64(0)])
            memcpy = self.module.get_function("memcpy")
            self.builder.call(memcpy, [dst, literal, self.builder.i64(ctype.ir.count)])
            return
        value = self._emit_expr(stmt.init)
        self.builder.store(self._convert(value, ctype, stmt.location).value, slot)

    def _intern_string_bytes_global(self, data: bytes, count: int, location) -> Value:
        if len(data) + 1 > count:
            raise SemanticError("string initialiser too long", location)
        self._string_counter += 1
        name = f".str{self._string_counter}"
        array = ArrayType(int_type(8), count)
        var = self.module.add_global(
            name, array, ConstantData(array, data + bytes(count - len(data))),
            is_constant=True,
        )
        return self.builder.gep(var, [self.builder.i64(0), self.builder.i64(0)])

    def _emit_if(self, stmt: ast.If) -> None:
        cond = self._emit_condition(stmt.cond)
        then_block = self.builder.append_block("if.then")
        merge_block = self.builder.append_block("if.end")
        else_block = merge_block
        if stmt.else_body is not None:
            else_block = self.builder.append_block("if.else")
        self.builder.cond_br(cond, then_block, else_block)

        self.builder.position_at_end(then_block)
        self._emit_statement(stmt.then_body)
        if not self.builder.block.is_terminated:
            self.builder.br(merge_block)

        if stmt.else_body is not None:
            self.builder.position_at_end(else_block)
            self._emit_statement(stmt.else_body)
            if not self.builder.block.is_terminated:
                self.builder.br(merge_block)

        self.builder.position_at_end(merge_block)

    def _emit_while(self, stmt: ast.While) -> None:
        cond_block = self.builder.append_block("while.cond")
        body_block = self.builder.append_block("while.body")
        end_block = self.builder.append_block("while.end")
        self.builder.br(cond_block)
        self.builder.position_at_end(cond_block)
        cond = self._emit_condition(stmt.cond)
        self.builder.cond_br(cond, body_block, end_block)
        self.builder.position_at_end(body_block)
        self.loop_stack.append(_LoopContext(end_block, cond_block))
        self._emit_statement(stmt.body)
        self.loop_stack.pop()
        if not self.builder.block.is_terminated:
            self.builder.br(cond_block)
        self.builder.position_at_end(end_block)

    def _emit_do_while(self, stmt: ast.DoWhile) -> None:
        body_block = self.builder.append_block("do.body")
        cond_block = self.builder.append_block("do.cond")
        end_block = self.builder.append_block("do.end")
        self.builder.br(body_block)
        self.builder.position_at_end(body_block)
        self.loop_stack.append(_LoopContext(end_block, cond_block))
        self._emit_statement(stmt.body)
        self.loop_stack.pop()
        if not self.builder.block.is_terminated:
            self.builder.br(cond_block)
        self.builder.position_at_end(cond_block)
        cond = self._emit_condition(stmt.cond)
        self.builder.cond_br(cond, body_block, end_block)
        self.builder.position_at_end(end_block)

    def _emit_for(self, stmt: ast.For) -> None:
        self.locals.append({})
        if stmt.init is not None:
            self._emit_statement(stmt.init)
        cond_block = self.builder.append_block("for.cond")
        body_block = self.builder.append_block("for.body")
        step_block = self.builder.append_block("for.step")
        end_block = self.builder.append_block("for.end")
        self.builder.br(cond_block)
        self.builder.position_at_end(cond_block)
        if stmt.cond is not None:
            cond = self._emit_condition(stmt.cond)
            self.builder.cond_br(cond, body_block, end_block)
        else:
            self.builder.br(body_block)
        self.builder.position_at_end(body_block)
        self.loop_stack.append(_LoopContext(end_block, step_block))
        self._emit_statement(stmt.body)
        self.loop_stack.pop()
        if not self.builder.block.is_terminated:
            self.builder.br(step_block)
        self.builder.position_at_end(step_block)
        if stmt.step is not None:
            self._emit_expr(stmt.step)
        self.builder.br(cond_block)
        self.builder.position_at_end(end_block)
        self.locals.pop()

    def _emit_switch(self, stmt: ast.Switch) -> None:
        value = self._rvalue_int(self._emit_expr(stmt.value), stmt.location)
        end_block = self.builder.append_block("switch.end")
        case_blocks = [
            self.builder.append_block(f"switch.case{i}")
            for i in range(len(stmt.cases))
        ]
        default_block = end_block
        switch = self.builder.switch(value.value, default_block)
        assert isinstance(value.ctype.ir, IntType)
        for case, block in zip(stmt.cases, case_blocks):
            if not case.values:
                switch.default = block
            for case_value in case.values:
                switch.add_case(case_value, block)
        self.loop_stack.append(_LoopContext(end_block, None))
        for i, (case, block) in enumerate(zip(stmt.cases, case_blocks)):
            self.builder.position_at_end(block)
            for sub in case.body:
                self._emit_statement(sub)
                if self.builder.block.is_terminated:
                    break
            if not self.builder.block.is_terminated:
                # C fallthrough into the next case (or the end).
                next_block = case_blocks[i + 1] if i + 1 < len(case_blocks) else end_block
                self.builder.br(next_block)
        self.loop_stack.pop()
        self.builder.position_at_end(end_block)

    def _emit_return(self, stmt: ast.Return) -> None:
        ret = self.current_return
        if stmt.value is None:
            if ret is not None and not ret.ir.is_void:
                raise SemanticError("return without a value", stmt.location)
            self.builder.ret()
            return
        value = self._emit_expr(stmt.value)
        assert ret is not None
        self.builder.ret(self._convert(value, ret, stmt.location).value)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _emit_expr(self, expr: ast.Expr) -> RValue:
        if isinstance(expr, _Materialised):
            return expr.rvalue
        if isinstance(expr, ast.IntLit):
            value = expr.value
            if -(1 << 31) <= value < (1 << 31):
                ctype = CType(int_type(32), True)
            elif value < (1 << 32):
                # Hex-style literals that don't fit in int are unsigned,
                # as in C — they must zero-extend when widened.
                ctype = CType(int_type(32), False)
            elif -(1 << 63) <= value < (1 << 63):
                ctype = CType(int_type(64), True)
            else:
                ctype = CType(int_type(64), False)
            assert isinstance(ctype.ir, IntType)
            return RValue(ConstantInt(ctype.ir, value), ctype)
        if isinstance(expr, ast.StringLit):
            return RValue(self._intern_string(expr.data), CType(pointer_type(int_type(8)), False))
        if isinstance(expr, ast.Ident):
            return self._load_lvalue(self._emit_lvalue(expr))
        if isinstance(expr, (ast.Index, ast.Member)):
            return self._load_lvalue(self._emit_lvalue(expr))
        if isinstance(expr, ast.Unary):
            return self._emit_unary(expr)
        if isinstance(expr, ast.Postfix):
            return self._emit_incdec(expr.operand, expr.op, prefix=False,
                                     location=expr.location)
        if isinstance(expr, ast.Binary):
            return self._emit_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._emit_assign(expr)
        if isinstance(expr, ast.Ternary):
            return self._emit_ternary(expr)
        if isinstance(expr, ast.Call):
            return self._emit_call(expr)
        if isinstance(expr, ast.CastExpr):
            return self._emit_cast(expr)
        if isinstance(expr, ast.SizeOf):
            ctype = self.resolve(expr.target, expr.location)
            return RValue(self.builder.i64(ctype.ir.size()), I64_C)
        raise SemanticError(f"unsupported expression {expr!r}", expr.location)

    # -- lvalues --------------------------------------------------------

    def _emit_lvalue(self, expr: ast.Expr) -> LValue:
        if isinstance(expr, ast.Ident):
            for scope in reversed(self.locals):
                if expr.name in scope:
                    return scope[expr.name]
            if expr.name in self.globals:
                return LValue(self.module.get_global(expr.name), self.globals[expr.name])
            raise SemanticError(f"undeclared identifier {expr.name!r}", expr.location)
        if isinstance(expr, ast.Index):
            base = self._emit_lvalue_or_pointer(expr.base)
            index = self._rvalue_int(self._emit_expr(expr.index), expr.location)
            index64 = self.builder.resize_int(index.value, int_type(64),
                                              index.ctype.signed)
            if base.ctype.is_array:
                array = base.ctype.ir
                assert isinstance(array, ArrayType)
                address = self.builder.gep(base.address, [self.builder.i64(0), index64])
                return LValue(address, CType(array.element, base.ctype.signed))
            pointer = base.ctype.ir
            assert isinstance(pointer, PointerType)
            address = self.builder.gep(base.address, [index64])
            return LValue(address, self._pointee_ctype(pointer))
        if isinstance(expr, ast.Member):
            if expr.arrow:
                base_value = self._emit_expr(expr.base)
                if not base_value.ctype.is_pointer:
                    raise SemanticError("-> requires a pointer", expr.location)
                pointer = base_value.ctype.ir
                assert isinstance(pointer, PointerType)
                struct = pointer.pointee
                base_address = base_value.value
            else:
                base_lvalue = self._emit_lvalue(expr.base)
                struct = base_lvalue.ctype.ir
                base_address = base_lvalue.address
            if not isinstance(struct, StructType):
                raise SemanticError("member access on non-struct", expr.location)
            field_index = struct.field_index(expr.name)
            address = self.builder.struct_gep(base_address, field_index)
            return LValue(address, self._field_ctype(struct, field_index))
        if isinstance(expr, ast.Unary) and expr.op == "*":
            value = self._emit_expr(expr.operand)
            if not value.ctype.is_pointer:
                raise SemanticError("cannot dereference non-pointer", expr.location)
            pointer = value.ctype.ir
            assert isinstance(pointer, PointerType)
            return LValue(value.value, self._pointee_ctype(pointer))
        raise SemanticError("expression is not assignable", expr.location)

    def _emit_lvalue_or_pointer(self, expr: ast.Expr) -> LValue:
        """For indexing: lvalue if addressable, else materialise pointer rvalue."""
        try:
            lvalue = self._emit_lvalue(expr)
        except SemanticError:
            value = self._emit_expr(expr)
            if not value.ctype.is_pointer:
                raise
            # Wrap: address holds the pointer value itself; mark with
            # pointer ctype so Index treats it as pointer arithmetic.
            return LValue(value.value, value.ctype)
        if lvalue.ctype.is_pointer:
            # Indexing through a pointer variable: load the pointer first.
            loaded = self.builder.load(lvalue.address)
            return LValue(loaded, lvalue.ctype)
        return lvalue

    def _pointee_ctype(self, pointer: PointerType) -> CType:
        pointee = pointer.pointee
        if isinstance(pointee, IntType):
            # Default signedness rule: bytes unsigned, wider ints signed.
            return CType(pointee, pointee.bits > 8)
        return CType(pointee, False)

    def _field_ctype(self, struct: StructType, index: int) -> CType:
        ftype = struct.field_type(index)
        if isinstance(ftype, IntType):
            return CType(ftype, ftype.bits > 8)
        return CType(ftype, False)

    def _load_lvalue(self, lvalue: LValue) -> RValue:
        if lvalue.ctype.is_array:
            # Array-to-pointer decay.
            array = lvalue.ctype.ir
            assert isinstance(array, ArrayType)
            address = self.builder.gep(
                lvalue.address, [self.builder.i64(0), self.builder.i64(0)]
            )
            return RValue(address, CType(pointer_type(array.element), False))
        if isinstance(lvalue.ctype.ir, StructType):
            raise SemanticError("whole-struct loads are unsupported; use fields", None)
        return RValue(self.builder.load(lvalue.address), lvalue.ctype)

    # -- conversions ------------------------------------------------------

    def _convert(self, value: RValue, target: CType, location) -> RValue:
        if value.ctype.ir == target.ir:
            return RValue(value.value, target)
        if value.ctype.is_int and target.is_int:
            assert isinstance(target.ir, IntType)
            converted = self.builder.resize_int(
                value.value, target.ir, value.ctype.signed
            )
            return RValue(converted, target)
        if value.ctype.is_pointer and target.is_pointer:
            return RValue(self.builder.bitcast(value.value, target.ir), target)
        if value.ctype.is_int and target.is_pointer:
            if isinstance(value.value, ConstantInt) and value.value.value == 0:
                assert isinstance(target.ir, PointerType)
                return RValue(ConstantNull(target.ir), target)
            widened = self.builder.resize_int(value.value, int_type(64),
                                              value.ctype.signed)
            return RValue(self.builder.inttoptr(widened, target.ir), target)
        if value.ctype.is_pointer and target.is_int:
            assert isinstance(target.ir, IntType)
            as_int = self.builder.ptrtoint(value.value, int_type(64))
            return RValue(
                self.builder.resize_int(as_int, target.ir, False), target
            )
        raise SemanticError(
            f"cannot convert {value.ctype.ir} to {target.ir}", location
        )

    def _rvalue_int(self, value: RValue, location) -> RValue:
        if not value.ctype.is_int:
            raise SemanticError(f"expected integer, got {value.ctype.ir}", location)
        return value

    def _promote_pair(self, lhs: RValue, rhs: RValue, location) -> tuple[RValue, RValue, CType]:
        """Usual arithmetic conversions (promote to >= i32, widest wins)."""
        if not (lhs.ctype.is_int and rhs.ctype.is_int):
            raise SemanticError("integer operands required", location)
        assert isinstance(lhs.ctype.ir, IntType) and isinstance(rhs.ctype.ir, IntType)
        bits = max(32, lhs.ctype.ir.bits, rhs.ctype.ir.bits)
        signed = lhs.ctype.signed and rhs.ctype.signed
        target = CType(int_type(bits), signed)
        return (
            self._convert(lhs, target, location),
            self._convert(rhs, target, location),
            target,
        )

    def _emit_condition(self, expr: ast.Expr) -> Value:
        """Evaluate *expr* and produce an i1 truth value."""
        value = self._emit_expr(expr)
        return self._to_bool(value)

    def _to_bool(self, value: RValue) -> Value:
        if value.ctype.is_pointer:
            assert isinstance(value.ctype.ir, PointerType)
            return self.builder.icmp("ne", value.value, ConstantNull(value.ctype.ir))
        assert isinstance(value.ctype.ir, IntType)
        if value.ctype.ir.bits == 1:
            return value.value
        zero = ConstantInt(value.ctype.ir, 0)
        return self.builder.icmp("ne", value.value, zero)

    # -- operators ------------------------------------------------------

    def _emit_unary(self, expr: ast.Unary) -> RValue:
        if expr.op == "*":
            return self._load_lvalue(self._emit_lvalue(expr))
        if expr.op == "&":
            lvalue = self._emit_lvalue(expr.operand)
            if lvalue.ctype.is_array:
                array = lvalue.ctype.ir
                assert isinstance(array, ArrayType)
                address = self.builder.gep(
                    lvalue.address, [self.builder.i64(0), self.builder.i64(0)]
                )
                return RValue(address, CType(pointer_type(array.element), False))
            return RValue(lvalue.address, CType(pointer_type(lvalue.ctype.ir), False))
        if expr.op in ("++", "--"):
            return self._emit_incdec(expr.operand, expr.op, prefix=True,
                                     location=expr.location)
        value = self._emit_expr(expr.operand)
        if expr.op == "!":
            truth = self._to_bool(value)
            inverted = self.builder.xor(truth, self.builder.i1(1))
            return RValue(self.builder.zext(inverted, int_type(32)), BOOL_C)
        value = self._rvalue_int(value, expr.location)
        promoted = self._convert(
            value,
            CType(int_type(max(32, value.ctype.ir.bits)), value.ctype.signed),  # type: ignore[union-attr]
            expr.location,
        )
        assert isinstance(promoted.ctype.ir, IntType)
        if expr.op == "-":
            zero = ConstantInt(promoted.ctype.ir, 0)
            return RValue(self.builder.sub(zero, promoted.value), promoted.ctype)
        if expr.op == "~":
            ones = ConstantInt(promoted.ctype.ir, -1)
            return RValue(self.builder.xor(promoted.value, ones), promoted.ctype)
        raise SemanticError(f"unsupported unary op {expr.op}", expr.location)

    def _emit_incdec(self, target: ast.Expr, op: str, prefix: bool, location) -> RValue:
        lvalue = self._emit_lvalue(target)
        old = self._load_lvalue(lvalue)
        if lvalue.ctype.is_pointer:
            step = self.builder.i64(1 if op == "++" else -1)
            new = self.builder.gep(old.value, [step])
        else:
            assert isinstance(lvalue.ctype.ir, IntType)
            one = ConstantInt(lvalue.ctype.ir, 1)
            if op == "++":
                new = self.builder.add(old.value, one)
            else:
                new = self.builder.sub(old.value, one)
        self.builder.store(new, lvalue.address)
        return RValue(new if prefix else old.value, lvalue.ctype)

    _UNSIGNED_OPS = {"/": "udiv", "%": "urem", ">>": "lshr"}
    _SIGNED_OPS = {"/": "sdiv", "%": "srem", ">>": "ashr"}
    _PLAIN_OPS = {"+": "add", "-": "sub", "*": "mul", "&": "and", "|": "or",
                  "^": "xor", "<<": "shl"}
    _CMP_OPS = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}

    def _emit_binary(self, expr: ast.Binary) -> RValue:
        op = expr.op
        if op == ",":
            self._emit_expr(expr.lhs)
            return self._emit_expr(expr.rhs)
        if op in ("&&", "||"):
            return self._emit_logical(expr)
        lhs = self._emit_expr(expr.lhs)
        rhs = self._emit_expr(expr.rhs)
        if op in self._CMP_OPS:
            return self._emit_comparison(op, lhs, rhs, expr.location)
        # Pointer arithmetic.
        if lhs.ctype.is_pointer and op in ("+", "-") and rhs.ctype.is_int:
            offset = self.builder.resize_int(rhs.value, int_type(64), rhs.ctype.signed)
            if op == "-":
                offset = self.builder.sub(self.builder.i64(0), offset)
            return RValue(self.builder.gep(lhs.value, [offset]), lhs.ctype)
        if lhs.ctype.is_pointer and rhs.ctype.is_pointer and op == "-":
            left = self.builder.ptrtoint(lhs.value, int_type(64))
            right = self.builder.ptrtoint(rhs.value, int_type(64))
            diff = self.builder.sub(left, right)
            assert isinstance(lhs.ctype.ir, PointerType)
            size = lhs.ctype.ir.pointee.size()
            if size > 1:
                diff = self.builder.sdiv(diff, self.builder.i64(size))
            return RValue(diff, I64_C)
        left, right, target = self._promote_pair(lhs, rhs, expr.location)
        if op in self._PLAIN_OPS:
            ir_op = self._PLAIN_OPS[op]
        elif target.signed:
            ir_op = self._SIGNED_OPS[op]
        else:
            ir_op = self._UNSIGNED_OPS[op]
        return RValue(self.builder.binop(ir_op, left.value, right.value), target)

    def _emit_comparison(self, op: str, lhs: RValue, rhs: RValue, location) -> RValue:
        base = self._CMP_OPS[op]
        if lhs.ctype.is_pointer or rhs.ctype.is_pointer:
            pointer_side = lhs if lhs.ctype.is_pointer else rhs
            lhs = self._convert(lhs, pointer_side.ctype, location)
            rhs = self._convert(rhs, pointer_side.ctype, location)
            predicate = base if base in ("eq", "ne") else "u" + base
        else:
            left, right, target = self._promote_pair(lhs, rhs, location)
            lhs, rhs = left, right
            if base in ("eq", "ne"):
                predicate = base
            else:
                predicate = ("s" if target.signed else "u") + base
        result = self.builder.icmp(predicate, lhs.value, rhs.value)
        return RValue(self.builder.zext(result, int_type(32)), BOOL_C)

    def _emit_logical(self, expr: ast.Binary) -> RValue:
        """Short-circuit && / || via a result slot (clang -O0 style)."""
        slot = self._entry_alloca(int_type(32), "sc")
        rhs_block = self.builder.append_block("sc.rhs")
        end_block = self.builder.append_block("sc.end")
        lhs = self._emit_condition(expr.lhs)
        lhs32 = self.builder.zext(lhs, int_type(32))
        self.builder.store(lhs32, slot)
        if expr.op == "&&":
            self.builder.cond_br(lhs, rhs_block, end_block)
        else:
            self.builder.cond_br(lhs, end_block, rhs_block)
        self.builder.position_at_end(rhs_block)
        rhs = self._emit_condition(expr.rhs)
        self.builder.store(self.builder.zext(rhs, int_type(32)), slot)
        self.builder.br(end_block)
        self.builder.position_at_end(end_block)
        return RValue(self.builder.load(slot), BOOL_C)

    def _emit_assign(self, expr: ast.Assign) -> RValue:
        lvalue = self._emit_lvalue(expr.target)
        if expr.op:
            current = self._load_lvalue(lvalue)
            combined = ast.Binary(expr.location, expr.op, _Materialised(current),
                                  _Materialised(self._emit_expr(expr.value)))
            value = self._emit_binary(combined)
        else:
            value = self._emit_expr(expr.value)
        converted = self._convert(value, lvalue.ctype, expr.location)
        self.builder.store(converted.value, lvalue.address)
        return converted

    def _emit_ternary(self, expr: ast.Ternary) -> RValue:
        cond = self._emit_condition(expr.cond)
        true_block = self.builder.append_block("tern.true")
        false_block = self.builder.append_block("tern.false")
        end_block = self.builder.append_block("tern.end")
        self.builder.cond_br(cond, true_block, false_block)

        self.builder.position_at_end(true_block)
        true_value = self._emit_expr(expr.if_true)
        slot_type = true_value.ctype
        slot = self._entry_alloca(slot_type.ir, "tern")
        self.builder.store(true_value.value, slot)
        self.builder.br(end_block)

        self.builder.position_at_end(false_block)
        false_value = self._emit_expr(expr.if_false)
        false_converted = self._convert(false_value, slot_type, expr.location)
        self.builder.store(false_converted.value, slot)
        self.builder.br(end_block)

        self.builder.position_at_end(end_block)
        return RValue(self.builder.load(slot), slot_type)

    def _emit_call(self, expr: ast.Call) -> RValue:
        if expr.name not in self.functions:
            raise SemanticError(f"call to undeclared function {expr.name!r}",
                                expr.location)
        ret, params = self.functions[expr.name]
        function = self.module.get_function(expr.name)
        if len(expr.args) != len(params):
            raise SemanticError(
                f"{expr.name} expects {len(params)} arguments, got {len(expr.args)}",
                expr.location,
            )
        args = []
        for arg_expr, param in zip(expr.args, params):
            value = self._emit_expr(arg_expr)
            args.append(self._convert(value, param, expr.location).value)
        result = self.builder.call(function, args)
        return RValue(result, ret)

    def _emit_cast(self, expr: ast.CastExpr) -> RValue:
        target = self.resolve(expr.target, expr.location)
        value = self._emit_expr(expr.operand)
        if target.ir.is_void:
            return RValue(self.builder.i32(0), I32_C)
        return self._convert(value, target, expr.location)


def compile_c(source: str, module_name: str = "module") -> Module:
    """Compile MiniC *source* into a verified MiniIR module."""
    from repro.ir.verifier import verify_module

    unit = parse(source)
    module = CodeGenerator(unit, module_name).generate()
    verify_module(module)
    return module
