"""Abstract syntax tree for MiniC."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.minic.errors import SourceLocation


# ---------------------------------------------------------------------------
# type specifiers (resolved to MiniIR types during codegen)
# ---------------------------------------------------------------------------


class TypeSpec:
    """Base class for syntactic type references."""


@dataclass
class NamedType(TypeSpec):
    """A builtin scalar type: void, char, short, int, long (+unsigned)."""

    name: str
    unsigned: bool = False

    def __str__(self) -> str:
        return f"unsigned {self.name}" if self.unsigned else self.name


@dataclass
class StructRef(TypeSpec):
    """``struct Name``."""

    name: str

    def __str__(self) -> str:
        return f"struct {self.name}"


@dataclass
class PointerTo(TypeSpec):
    inner: TypeSpec

    def __str__(self) -> str:
        return f"{self.inner}*"


@dataclass
class ArrayOf(TypeSpec):
    inner: TypeSpec
    count: int

    def __str__(self) -> str:
        return f"{self.inner}[{self.count}]"


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    location: SourceLocation


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class StringLit(Expr):
    data: bytes


@dataclass
class Ident(Expr):
    name: str


@dataclass
class Unary(Expr):
    """Prefix operators: - ! ~ * & ++ --"""

    op: str
    operand: Expr


@dataclass
class Postfix(Expr):
    """Postfix ++ / --."""

    op: str
    operand: Expr


@dataclass
class Binary(Expr):
    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class Assign(Expr):
    """``target op= value`` where op may be empty (plain assignment)."""

    op: str
    target: Expr
    value: Expr


@dataclass
class Ternary(Expr):
    cond: Expr
    if_true: Expr
    if_false: Expr


@dataclass
class Call(Expr):
    name: str
    args: list[Expr]


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class Member(Expr):
    """``base.name`` or ``base->name``."""

    base: Expr
    name: str
    arrow: bool


@dataclass
class CastExpr(Expr):
    target: TypeSpec
    operand: Expr


@dataclass
class SizeOf(Expr):
    target: TypeSpec


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    location: SourceLocation


@dataclass
class Block(Stmt):
    statements: list[Stmt]


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class VarDecl(Stmt):
    name: str
    type: TypeSpec
    init: Expr | None


@dataclass
class DeclGroup(Stmt):
    """Several declarators from one statement (``int a, b;``) — unlike
    a Block, it does not open a scope."""

    decls: list[VarDecl]


@dataclass
class If(Stmt):
    cond: Expr
    then_body: Stmt
    else_body: Stmt | None


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class DoWhile(Stmt):
    body: Stmt
    cond: Expr


@dataclass
class For(Stmt):
    init: Stmt | None
    cond: Expr | None
    step: Expr | None
    body: Stmt


@dataclass
class SwitchCase:
    values: list[int]      # empty list == default
    body: list[Stmt]


@dataclass
class Switch(Stmt):
    value: Expr
    cases: list[SwitchCase]


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Expr | None


# ---------------------------------------------------------------------------
# top-level declarations
# ---------------------------------------------------------------------------


@dataclass
class StructDecl:
    name: str
    fields: list[tuple[str, TypeSpec]]
    location: SourceLocation


@dataclass
class GlobalDecl:
    name: str
    type: TypeSpec
    init: Expr | None
    const: bool
    location: SourceLocation


@dataclass
class Param:
    name: str
    type: TypeSpec


@dataclass
class FuncDecl:
    name: str
    return_type: TypeSpec
    params: list[Param]
    body: Block | None
    location: SourceLocation


@dataclass
class TranslationUnit:
    structs: list[StructDecl] = field(default_factory=list)
    globals: list[GlobalDecl] = field(default_factory=list)
    functions: list[FuncDecl] = field(default_factory=list)
