"""Abstract syntax tree for MiniC."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.minic.errors import SourceLocation


# ---------------------------------------------------------------------------
# type specifiers (resolved to MiniIR types during codegen)
# ---------------------------------------------------------------------------


class TypeSpec:
    """Base class for syntactic type references."""


@dataclass
class NamedType(TypeSpec):
    """A builtin scalar type: void, char, short, int, long (+unsigned)."""

    name: str
    unsigned: bool = False

    def __str__(self) -> str:
        return f"unsigned {self.name}" if self.unsigned else self.name


@dataclass
class StructRef(TypeSpec):
    """``struct Name``."""

    name: str

    def __str__(self) -> str:
        return f"struct {self.name}"


@dataclass
class PointerTo(TypeSpec):
    """``inner*``."""

    inner: TypeSpec

    def __str__(self) -> str:
        return f"{self.inner}*"


@dataclass
class ArrayOf(TypeSpec):
    """``inner[count]`` (sized arrays only)."""

    inner: TypeSpec
    count: int

    def __str__(self) -> str:
        return f"{self.inner}[{self.count}]"


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expression nodes (carries the source location)."""

    location: SourceLocation


@dataclass
class IntLit(Expr):
    """Integer or character literal, already folded to an int."""

    value: int


@dataclass
class StringLit(Expr):
    """String literal, NUL-terminated bytes."""

    data: bytes


@dataclass
class Ident(Expr):
    """A name reference (variable, global, or enum-like constant)."""

    name: str


@dataclass
class Unary(Expr):
    """Prefix operators: - ! ~ * & ++ --"""

    op: str
    operand: Expr


@dataclass
class Postfix(Expr):
    """Postfix ++ / --."""

    op: str
    operand: Expr


@dataclass
class Binary(Expr):
    """Infix arithmetic/comparison/logical/bitwise operator."""

    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class Assign(Expr):
    """``target op= value`` where op may be empty (plain assignment)."""

    op: str
    target: Expr
    value: Expr


@dataclass
class Ternary(Expr):
    """``cond ? if_true : if_false``."""

    cond: Expr
    if_true: Expr
    if_false: Expr


@dataclass
class Call(Expr):
    """Function call by name (MiniC has no function pointers)."""

    name: str
    args: list[Expr]


@dataclass
class Index(Expr):
    """``base[index]`` subscript."""

    base: Expr
    index: Expr


@dataclass
class Member(Expr):
    """``base.name`` or ``base->name``."""

    base: Expr
    name: str
    arrow: bool


@dataclass
class CastExpr(Expr):
    """``(type)operand`` explicit cast."""

    target: TypeSpec
    operand: Expr


@dataclass
class SizeOf(Expr):
    """``sizeof(type)``, folded to a constant during codegen."""

    target: TypeSpec


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for statement nodes (carries the source location)."""

    location: SourceLocation


@dataclass
class Block(Stmt):
    """``{ ... }`` — a statement list opening a new scope."""

    statements: list[Stmt]


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for its side effects."""

    expr: Expr


@dataclass
class VarDecl(Stmt):
    """One local variable declarator, with optional initialiser."""

    name: str
    type: TypeSpec
    init: Expr | None


@dataclass
class DeclGroup(Stmt):
    """Several declarators from one statement (``int a, b;``) — unlike
    a Block, it does not open a scope."""

    decls: list[VarDecl]


@dataclass
class If(Stmt):
    """``if`` / ``else``."""

    cond: Expr
    then_body: Stmt
    else_body: Stmt | None


@dataclass
class While(Stmt):
    """``while`` loop."""

    cond: Expr
    body: Stmt


@dataclass
class DoWhile(Stmt):
    """``do ... while`` loop (body runs at least once)."""

    body: Stmt
    cond: Expr


@dataclass
class For(Stmt):
    """``for`` loop; any of init/cond/step may be absent."""

    init: Stmt | None
    cond: Expr | None
    step: Expr | None
    body: Stmt


@dataclass
class SwitchCase:
    """One ``case`` group; an empty value list is ``default``."""

    values: list[int]      # empty list == default
    body: list[Stmt]


@dataclass
class Switch(Stmt):
    """``switch`` over an integer expression."""

    value: Expr
    cases: list[SwitchCase]


@dataclass
class Break(Stmt):
    """``break`` out of the innermost loop or switch."""


@dataclass
class Continue(Stmt):
    """``continue`` to the innermost loop's next iteration."""


@dataclass
class Return(Stmt):
    """``return``, with optional value."""

    value: Expr | None


# ---------------------------------------------------------------------------
# top-level declarations
# ---------------------------------------------------------------------------


@dataclass
class StructDecl:
    """Top-level ``struct`` definition."""

    name: str
    fields: list[tuple[str, TypeSpec]]
    location: SourceLocation


@dataclass
class GlobalDecl:
    """Top-level global variable, with optional initialiser."""

    name: str
    type: TypeSpec
    init: Expr | None
    const: bool
    location: SourceLocation


@dataclass
class Param:
    """One formal parameter of a function."""

    name: str
    type: TypeSpec


@dataclass
class FuncDecl:
    """Function definition (or declaration when *body* is None)."""

    name: str
    return_type: TypeSpec
    params: list[Param]
    body: Block | None
    location: SourceLocation


@dataclass
class TranslationUnit:
    """A whole parsed source file: structs, globals, functions."""

    structs: list[StructDecl] = field(default_factory=list)
    globals: list[GlobalDecl] = field(default_factory=list)
    functions: list[FuncDecl] = field(default_factory=list)
