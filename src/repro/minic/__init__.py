"""MiniC: the C-subset front-end used to author benchmark targets.

The ten fuzzing targets (`repro.targets`) are written in MiniC source,
compiled by :func:`compile_c` into MiniIR modules, instrumented by the
ClosureX / baseline pass pipelines, and executed in the MiniVM — the
same build flow the paper uses with clang/LLVM on real C programs.
"""

from repro.minic.codegen import CodeGenerator, compile_c
from repro.minic.errors import LexError, MiniCError, ParseError, SemanticError
from repro.minic.lexer import Token, TokenKind, tokenize
from repro.minic.parser import parse

__all__ = [
    "CodeGenerator",
    "compile_c",
    "LexError",
    "MiniCError",
    "ParseError",
    "SemanticError",
    "Token",
    "TokenKind",
    "tokenize",
    "parse",
]
