"""Diagnostics for the MiniC front-end."""

from __future__ import annotations


class SourceLocation:
    """Line/column position inside a MiniC source string."""

    __slots__ = ("line", "column")

    def __init__(self, line: int, column: int):
        self.line = line
        self.column = column

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"

    def __repr__(self) -> str:
        return f"<SourceLocation {self}>"


class MiniCError(Exception):
    """Base class for all front-end diagnostics."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location
        self.bare_message = message
        prefix = f"{location}: " if location is not None else ""
        super().__init__(f"{prefix}{message}")


class LexError(MiniCError):
    """Invalid character or malformed literal."""


class ParseError(MiniCError):
    """Syntax error."""


class SemanticError(MiniCError):
    """Type error or use of an undeclared symbol."""
