"""Recursive-descent parser for MiniC.

Grammar (informal):

    unit        := (struct-decl | global-decl | func-decl)*
    struct-decl := 'struct' IDENT '{' (type declarator ';')* '}' ';'
    func-decl   := type IDENT '(' params ')' (block | ';')
    global-decl := ['const'|'static'] type declarator ['=' init] ';'

Expressions use precedence climbing with the usual C precedence table.
Array sizes and case labels must be integer constant expressions (a
small constant folder handles arithmetic on literals).
"""

from __future__ import annotations

from repro.minic import ast
from repro.minic.errors import ParseError
from repro.minic.lexer import Token, TokenKind, tokenize

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

_TYPE_KEYWORDS = {"void", "char", "short", "int", "long", "unsigned", "struct"}


class Parser:
    """Recursive-descent parser: token stream → TranslationUnit."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers --------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def accept(self, text: str) -> Token | None:
        token = self.peek()
        if token.is_punct(text) or token.is_keyword(text):
            return self.next()
        return None

    def expect(self, text: str) -> Token:
        token = self.accept(text)
        if token is None:
            actual = self.peek()
            raise ParseError(f"expected {text!r}, found {actual.text!r}", actual.location)
        return token

    def expect_ident(self) -> Token:
        token = self.peek()
        if token.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {token.text!r}", token.location)
        return self.next()

    def at_eof(self) -> bool:
        return self.peek().kind is TokenKind.EOF

    # -- types ----------------------------------------------------------

    def looks_like_type(self) -> bool:
        token = self.peek()
        return token.kind is TokenKind.KEYWORD and token.text in _TYPE_KEYWORDS

    def parse_base_type(self) -> ast.TypeSpec:
        token = self.peek()
        if token.is_keyword("struct"):
            self.next()
            name = self.expect_ident()
            return ast.StructRef(name.text)
        unsigned = False
        if token.is_keyword("unsigned"):
            self.next()
            unsigned = True
            token = self.peek()
        if token.kind is TokenKind.KEYWORD and token.text in (
            "void", "char", "short", "int", "long"
        ):
            self.next()
            # 'long long' and 'unsigned long long' collapse to long.
            if token.text == "long" and self.peek().is_keyword("long"):
                self.next()
            return ast.NamedType(token.text, unsigned)
        if unsigned:
            # bare 'unsigned' means 'unsigned int'
            return ast.NamedType("int", True)
        raise ParseError(f"expected type, found {token.text!r}", token.location)

    def parse_pointers(self, base: ast.TypeSpec) -> ast.TypeSpec:
        while self.accept("*"):
            base = ast.PointerTo(base)
        return base

    def parse_array_suffix(self, base: ast.TypeSpec) -> ast.TypeSpec:
        """Parse trailing ``[N]([M]...)`` dimensions (outermost first)."""
        dims: list[int] = []
        while self.accept("["):
            dims.append(self.parse_const_int())
            self.expect("]")
        for dim in reversed(dims):
            base = ast.ArrayOf(base, dim)
        return base

    def parse_const_int(self) -> int:
        expr = self.parse_ternary()
        value = fold_const(expr)
        if value is None:
            raise ParseError("expected integer constant expression", expr.location)
        return value

    # -- top level --------------------------------------------------------

    def parse_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while not self.at_eof():
            token = self.peek()
            if token.is_keyword("struct") and self.peek(2).is_punct("{"):
                unit.structs.append(self.parse_struct_decl())
                continue
            const = False
            while True:
                if self.accept("static"):
                    continue
                if self.accept("const"):
                    const = True
                    continue
                break
            base = self.parse_base_type()
            base = self.parse_pointers(base)
            name = self.expect_ident()
            if self.peek().is_punct("("):
                unit.functions.append(self.parse_function(base, name))
            else:
                unit.globals.extend(self.parse_globals(base, name, const))
        return unit

    def parse_struct_decl(self) -> ast.StructDecl:
        start = self.expect("struct")
        name = self.expect_ident()
        self.expect("{")
        fields: list[tuple[str, ast.TypeSpec]] = []
        while not self.accept("}"):
            base = self.parse_base_type()
            while True:
                ftype = self.parse_pointers(base)
                fname = self.expect_ident()
                ftype = self.parse_array_suffix(ftype)
                fields.append((fname.text, ftype))
                if not self.accept(","):
                    break
            self.expect(";")
        self.expect(";")
        return ast.StructDecl(name.text, fields, start.location)

    def parse_globals(
        self, base: ast.TypeSpec, first_name: Token, const: bool
    ) -> list[ast.GlobalDecl]:
        decls: list[ast.GlobalDecl] = []
        name = first_name
        while True:
            gtype = self.parse_array_suffix(base)
            init: ast.Expr | None = None
            if self.accept("="):
                init = self.parse_global_init()
            decls.append(ast.GlobalDecl(name.text, gtype, init, const, name.location))
            if not self.accept(","):
                break
            inner = self.parse_pointers(base)
            name = self.expect_ident()
            base = inner
        self.expect(";")
        return decls

    def parse_global_init(self) -> ast.Expr:
        token = self.peek()
        if token.kind is TokenKind.STRING_LIT:
            self.next()
            return ast.StringLit(token.location, token.string)
        if token.is_punct("{"):
            raise ParseError(
                "aggregate initializers are not supported; initialise in code",
                token.location,
            )
        return self.parse_ternary()

    def parse_function(self, return_type: ast.TypeSpec, name: Token) -> ast.FuncDecl:
        self.expect("(")
        params: list[ast.Param] = []
        if not self.peek().is_punct(")"):
            if self.peek().is_keyword("void") and self.peek(1).is_punct(")"):
                self.next()
            else:
                while True:
                    base = self.parse_base_type()
                    ptype = self.parse_pointers(base)
                    pname = self.expect_ident()
                    ptype = self.parse_array_suffix(ptype)
                    if isinstance(ptype, ast.ArrayOf):
                        # Array parameters decay to pointers, as in C.
                        ptype = ast.PointerTo(ptype.inner)
                    params.append(ast.Param(pname.text, ptype))
                    if not self.accept(","):
                        break
        self.expect(")")
        if self.accept(";"):
            return ast.FuncDecl(name.text, return_type, params, None, name.location)
        body = self.parse_block()
        return ast.FuncDecl(name.text, return_type, params, body, name.location)

    # -- statements ---------------------------------------------------------

    def parse_block(self) -> ast.Block:
        start = self.expect("{")
        statements: list[ast.Stmt] = []
        while not self.accept("}"):
            statements.append(self.parse_statement())
        return ast.Block(start.location, statements)

    def parse_statement(self) -> ast.Stmt:
        token = self.peek()
        if token.is_punct("{"):
            return self.parse_block()
        if token.is_keyword("if"):
            return self.parse_if()
        if token.is_keyword("while"):
            return self.parse_while()
        if token.is_keyword("do"):
            return self.parse_do_while()
        if token.is_keyword("for"):
            return self.parse_for()
        if token.is_keyword("switch"):
            return self.parse_switch()
        if token.is_keyword("break"):
            self.next()
            self.expect(";")
            return ast.Break(token.location)
        if token.is_keyword("continue"):
            self.next()
            self.expect(";")
            return ast.Continue(token.location)
        if token.is_keyword("return"):
            self.next()
            value = None if self.peek().is_punct(";") else self.parse_expr()
            self.expect(";")
            return ast.Return(token.location, value)
        if self.looks_like_type() or token.is_keyword("const"):
            return self.parse_var_decl()
        expr = self.parse_expr()
        self.expect(";")
        return ast.ExprStmt(token.location, expr)

    def parse_var_decl(self) -> ast.Stmt:
        start = self.peek()
        self.accept("const")
        base = self.parse_base_type()
        decls: list[ast.Stmt] = []
        while True:
            vtype = self.parse_pointers(base)
            name = self.expect_ident()
            vtype = self.parse_array_suffix(vtype)
            init: ast.Expr | None = None
            if self.accept("="):
                token = self.peek()
                if token.kind is TokenKind.STRING_LIT:
                    self.next()
                    init = ast.StringLit(token.location, token.string)
                else:
                    init = self.parse_assignment()
            decls.append(ast.VarDecl(name.location, name.text, vtype, init))
            if not self.accept(","):
                break
        self.expect(";")
        if len(decls) == 1:
            return decls[0]
        return ast.DeclGroup(start.location, decls)

    def parse_if(self) -> ast.If:
        start = self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then_body = self.parse_statement()
        else_body = self.parse_statement() if self.accept("else") else None
        return ast.If(start.location, cond, then_body, else_body)

    def parse_while(self) -> ast.While:
        start = self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        return ast.While(start.location, cond, self.parse_statement())

    def parse_do_while(self) -> ast.DoWhile:
        start = self.expect("do")
        body = self.parse_statement()
        self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        self.expect(";")
        return ast.DoWhile(start.location, body, cond)

    def parse_for(self) -> ast.For:
        start = self.expect("for")
        self.expect("(")
        init: ast.Stmt | None = None
        if not self.peek().is_punct(";"):
            if self.looks_like_type():
                init = self.parse_var_decl()  # consumes the ';'
            else:
                expr = self.parse_expr()
                self.expect(";")
                init = ast.ExprStmt(start.location, expr)
        else:
            self.expect(";")
        cond = None if self.peek().is_punct(";") else self.parse_expr()
        self.expect(";")
        step = None if self.peek().is_punct(")") else self.parse_expr()
        self.expect(")")
        return ast.For(start.location, init, cond, step, self.parse_statement())

    def parse_switch(self) -> ast.Switch:
        start = self.expect("switch")
        self.expect("(")
        value = self.parse_expr()
        self.expect(")")
        self.expect("{")
        cases: list[ast.SwitchCase] = []
        current: ast.SwitchCase | None = None
        while not self.accept("}"):
            if self.accept("case"):
                case_value = self.parse_const_int()
                self.expect(":")
                if current is None or current.body:
                    current = ast.SwitchCase([case_value], [])
                    cases.append(current)
                else:
                    current.values.append(case_value)
                continue
            if self.accept("default"):
                self.expect(":")
                current = ast.SwitchCase([], [])
                cases.append(current)
                continue
            if current is None:
                raise ParseError("statement before first case label",
                                 self.peek().location)
            current.body.append(self.parse_statement())
        return ast.Switch(start.location, value, cases)

    # -- expressions ----------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        expr = self.parse_assignment()
        while self.accept(","):
            rhs = self.parse_assignment()
            expr = ast.Binary(rhs.location, ",", expr, rhs)
        return expr

    def parse_assignment(self) -> ast.Expr:
        target = self.parse_ternary()
        token = self.peek()
        if token.kind is TokenKind.PUNCT and token.text in _ASSIGN_OPS:
            self.next()
            value = self.parse_assignment()
            op = token.text[:-1]  # '' for plain '='
            return ast.Assign(token.location, op, target, value)
        return target

    def parse_ternary(self) -> ast.Expr:
        cond = self.parse_binary(1)
        if self.accept("?"):
            if_true = self.parse_assignment()
            self.expect(":")
            if_false = self.parse_ternary()
            return ast.Ternary(cond.location, cond, if_true, if_false)
        return cond

    def parse_binary(self, min_precedence: int) -> ast.Expr:
        lhs = self.parse_unary()
        while True:
            token = self.peek()
            if token.kind is not TokenKind.PUNCT:
                return lhs
            precedence = _PRECEDENCE.get(token.text, 0)
            if precedence < min_precedence:
                return lhs
            self.next()
            rhs = self.parse_binary(precedence + 1)
            lhs = ast.Binary(token.location, token.text, lhs, rhs)

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind is TokenKind.PUNCT and token.text in ("-", "!", "~", "*", "&"):
            self.next()
            return ast.Unary(token.location, token.text, self.parse_unary())
        if token.is_punct("++") or token.is_punct("--"):
            self.next()
            return ast.Unary(token.location, token.text, self.parse_unary())
        if token.is_keyword("sizeof"):
            self.next()
            self.expect("(")
            spec = self.parse_pointers(self.parse_base_type())
            self.expect(")")
            return ast.SizeOf(token.location, spec)
        if token.is_punct("(") and self._is_cast():
            self.next()
            spec = self.parse_pointers(self.parse_base_type())
            self.expect(")")
            return ast.CastExpr(token.location, spec, self.parse_unary())
        return self.parse_postfix()

    def _is_cast(self) -> bool:
        """Disambiguate ``(type)expr`` from a parenthesised expression."""
        next_token = self.peek(1)
        return next_token.kind is TokenKind.KEYWORD and next_token.text in _TYPE_KEYWORDS

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            token = self.peek()
            if token.is_punct("["):
                self.next()
                index = self.parse_expr()
                self.expect("]")
                expr = ast.Index(token.location, expr, index)
            elif token.is_punct("."):
                self.next()
                name = self.expect_ident()
                expr = ast.Member(token.location, expr, name.text, False)
            elif token.is_punct("->"):
                self.next()
                name = self.expect_ident()
                expr = ast.Member(token.location, expr, name.text, True)
            elif token.is_punct("++") or token.is_punct("--"):
                self.next()
                expr = ast.Postfix(token.location, token.text, expr)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind is TokenKind.INT_LIT or token.kind is TokenKind.CHAR_LIT:
            self.next()
            return ast.IntLit(token.location, token.value)
        if token.kind is TokenKind.STRING_LIT:
            self.next()
            return ast.StringLit(token.location, token.string)
        if token.is_punct("("):
            self.next()
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if token.kind is TokenKind.IDENT:
            self.next()
            if self.peek().is_punct("("):
                self.next()
                args: list[ast.Expr] = []
                if not self.peek().is_punct(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept(","):
                            break
                self.expect(")")
                return ast.Call(token.location, token.text, args)
            return ast.Ident(token.location, token.text)
        raise ParseError(f"unexpected token {token.text!r}", token.location)


def fold_const(expr: ast.Expr) -> int | None:
    """Evaluate an integer constant expression, or None if not constant."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.Unary):
        inner = fold_const(expr.operand)
        if inner is None:
            return None
        if expr.op == "-":
            return -inner
        if expr.op == "~":
            return ~inner
        if expr.op == "!":
            return 0 if inner else 1
        return None
    if isinstance(expr, ast.Binary):
        lhs = fold_const(expr.lhs)
        rhs = fold_const(expr.rhs)
        if lhs is None or rhs is None:
            return None
        try:
            return {
                "+": lambda: lhs + rhs,
                "-": lambda: lhs - rhs,
                "*": lambda: lhs * rhs,
                "/": lambda: lhs // rhs if rhs else None,
                "%": lambda: lhs % rhs if rhs else None,
                "<<": lambda: lhs << rhs,
                ">>": lambda: lhs >> rhs,
                "&": lambda: lhs & rhs,
                "|": lambda: lhs | rhs,
                "^": lambda: lhs ^ rhs,
            }[expr.op]()
        except KeyError:
            return None
    return None


def parse(source: str) -> ast.TranslationUnit:
    """Parse MiniC source into a translation unit."""
    return Parser(tokenize(source)).parse_unit()
