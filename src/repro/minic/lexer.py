"""Tokenizer for MiniC.

MiniC is the C subset used to author the benchmark targets: enough of
the language that realistic format parsers read like ordinary C, small
enough that the whole front-end stays reviewable.

A tiny object-like "macro" table substitutes the handful of constants
real C code would get from headers (``NULL``, ``EOF``, ``SEEK_SET``...).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.minic.errors import LexError, SourceLocation


class TokenKind(enum.Enum):
    """Lexical token categories."""

    IDENT = "ident"
    KEYWORD = "keyword"
    INT_LIT = "int"
    CHAR_LIT = "char"
    STRING_LIT = "string"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "void", "char", "short", "int", "long", "unsigned",
        "struct", "const", "static",
        "if", "else", "while", "for", "do", "break", "continue", "return",
        "sizeof", "switch", "case", "default", "goto",
    }
)

# Multi-character punctuators, longest first so maximal munch works.
PUNCTUATORS = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
]

#: Header-style constants available in every MiniC translation unit.
PREDEFINED_CONSTANTS: dict[str, int] = {
    "NULL": 0,
    "EOF": -1,
    "SEEK_SET": 0,
    "SEEK_CUR": 1,
    "SEEK_END": 2,
}

_ESCAPES = {
    "n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34,
    "a": 7, "b": 8, "f": 12, "v": 11,
}


@dataclass
class Token:
    """One lexed token with its source location."""

    kind: TokenKind
    text: str
    location: SourceLocation
    value: int = 0          # for INT_LIT / CHAR_LIT
    string: bytes = b""     # for STRING_LIT

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __repr__(self) -> str:
        return f"<Token {self.kind.value} {self.text!r} @{self.location}>"


class Lexer:
    """Single-pass tokenizer with line/column tracking."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def _location(self) -> SourceLocation:
        return SourceLocation(self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def tokens(self) -> list[Token]:
        out: list[Token] = []
        while True:
            token = self._next_token()
            out.append(token)
            if token.kind is TokenKind.EOF:
                return out

    def _next_token(self) -> Token:
        self._skip_trivia()
        location = self._location()
        ch = self._peek()
        if not ch:
            return Token(TokenKind.EOF, "", location)
        if ch.isalpha() or ch == "_":
            return self._lex_word(location)
        if ch.isdigit():
            return self._lex_number(location)
        if ch == "'":
            return self._lex_char(location)
        if ch == '"':
            return self._lex_string(location)
        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, location)
        raise LexError(f"unexpected character {ch!r}", location)

    def _skip_trivia(self) -> None:
        while True:
            ch = self._peek()
            if ch and ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._peek() and not (self._peek() == "*" and self._peek(1) == "/"):
                    self._advance()
                if not self._peek():
                    raise LexError("unterminated block comment", self._location())
                self._advance(2)
            else:
                return

    def _lex_word(self, location: SourceLocation) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start:self.pos]
        if text in KEYWORDS:
            return Token(TokenKind.KEYWORD, text, location)
        if text in PREDEFINED_CONSTANTS:
            return Token(TokenKind.INT_LIT, text, location,
                         value=PREDEFINED_CONSTANTS[text])
        return Token(TokenKind.IDENT, text, location)

    def _lex_number(self, location: SourceLocation) -> Token:
        start = self.pos
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self.source[start:self.pos]
            if len(text) <= 2:
                raise LexError("malformed hex literal", location)
            value = int(text, 16)
        else:
            while self._peek().isdigit():
                self._advance()
            text = self.source[start:self.pos]
            value = int(text, 10)
        # Optional integer suffixes, accepted and ignored (L/U/UL...).
        while self._peek() and self._peek() in "uUlL":
            self._advance()
            text = self.source[start:self.pos]
        return Token(TokenKind.INT_LIT, text, location, value=value)

    def _lex_char(self, location: SourceLocation) -> Token:
        self._advance()  # opening quote
        ch = self._peek()
        if not ch:
            raise LexError("unterminated character literal", location)
        if ch == "\\":
            self._advance()
            escape = self._peek()
            if escape == "x":
                self._advance()
                digits = ""
                while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                    digits += self._peek()
                    self._advance()
                if not digits:
                    raise LexError("malformed hex escape", location)
                value = int(digits, 16) & 0xFF
            else:
                if escape not in _ESCAPES:
                    raise LexError(f"unknown escape \\{escape}", location)
                value = _ESCAPES[escape]
                self._advance()
        else:
            value = ord(ch)
            self._advance()
        if self._peek() != "'":
            raise LexError("unterminated character literal", location)
        self._advance()
        return Token(TokenKind.CHAR_LIT, f"'{ch}'", location, value=value)

    def _lex_string(self, location: SourceLocation) -> Token:
        self._advance()  # opening quote
        data = bytearray()
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise LexError("unterminated string literal", location)
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                self._advance()
                escape = self._peek()
                if escape == "x":
                    self._advance()
                    digits = ""
                    while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                        digits += self._peek()
                        self._advance()
                    if not digits:
                        raise LexError("malformed hex escape", location)
                    data.append(int(digits, 16) & 0xFF)
                    continue
                if escape not in _ESCAPES:
                    raise LexError(f"unknown escape \\{escape}", location)
                data.append(_ESCAPES[escape])
                self._advance()
            else:
                data.append(ord(ch) & 0xFF)
                self._advance()
        # Adjacent string literals concatenate, as in C.
        save_pos, save_line, save_col = self.pos, self.line, self.column
        self._skip_trivia()
        if self._peek() == '"':
            nested = self._lex_string(self._location())
            data.extend(nested.string)
        else:
            self.pos, self.line, self.column = save_pos, save_line, save_col
        return Token(TokenKind.STRING_LIT, "<string>", location, string=bytes(data))


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*, returning a token list ending with EOF."""
    return Lexer(source).tokens()
