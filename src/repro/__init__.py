"""repro: Python reproduction of ClosureX (ASPLOS '25).

ClosureX is a compiler-supported execution mechanism for *correct
persistent fuzzing*: a set of IR transformation passes plus a runtime
harness that make a target program naturally restartable, so an entire
fuzzing campaign runs in one process with per-test-case state
restoration.

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.ir` — MiniIR, the LLVM-flavoured compiler IR.
- :mod:`repro.minic` — a small C-like front-end used to author targets.
- :mod:`repro.vm` — the MiniVM interpreter and process-state model.
- :mod:`repro.sim_os` — simulated kernel: processes, fork, cost model.
- :mod:`repro.passes` — the ClosureX passes and pass manager.
- :mod:`repro.runtime` — the ClosureX harness (paper Listing 1).
- :mod:`repro.execution` — fresh / forkserver / persistent / ClosureX executors.
- :mod:`repro.fuzzing` — AFL++-style coverage-guided fuzzer.
- :mod:`repro.targets` — the ten benchmark targets with planted bugs.
- :mod:`repro.correctness` — dataflow/control-flow equivalence checking.
- :mod:`repro.experiments` — Table 5/6/7 and figure reproduction.
"""

__version__ = "1.0.0"
