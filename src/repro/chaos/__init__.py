"""Chaos plane: deterministic fault injection for robustness testing.

``repro.chaos`` lets a campaign rehearse every infrastructure failure a
production fuzzing platform must survive — spawn/fork EAGAIN, dropped
forkserver pipes, malloc squeezes, corpus I/O errors, coverage-shm
corruption, wedged targets — on a fixed, seed-replayable schedule.  The
supervision layer (:mod:`repro.execution.supervised`) is the consumer
that turns these injections into recoveries.
"""

from repro.chaos.faults import InjectedFault
from repro.chaos.plan import (
    FaultInjector,
    FaultPlan,
    FaultRecord,
    FaultSite,
    FaultSpec,
)

__all__ = [
    "FaultInjector", "FaultPlan", "FaultRecord", "FaultSite", "FaultSpec",
    "InjectedFault",
]
