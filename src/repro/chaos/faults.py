"""Fault taxonomy for the chaos plane.

An :class:`InjectedFault` models a *transient infrastructure failure* —
the kind a production fuzzing platform shrugs off: ``fork()`` returning
``EAGAIN`` under pid pressure, a forkserver pipe dropping mid-handshake,
``malloc`` failing under memory squeeze, an I/O error from the corpus
disk, a corrupted coverage shm segment.  It deliberately does **not**
subclass :class:`repro.vm.errors.VMError`: the executors' trap
classification must never mistake an infrastructure fault for target
behaviour, so injected faults propagate *through* the execution layer
untouched and are handled only by the supervision layer
(:class:`repro.execution.supervised.SupervisedExecutor`).
"""

from __future__ import annotations


class InjectedFault(Exception):
    """One transient infrastructure failure fired by a fault plan."""

    def __init__(self, site: str, detail: str = "", occurrence: int = 0):
        self.site = site
        self.detail = detail
        self.occurrence = occurrence
        super().__init__(
            f"injected {site} fault"
            + (f" ({detail})" if detail else "")
            + f" at occurrence {occurrence}"
        )

    def __reduce__(self):
        return (InjectedFault, (self.site, self.detail, self.occurrence))
