"""Deterministic, seed-driven fault injection: plans and the injector.

The chaos plane is *occurrence-indexed*, not time-indexed: a
:class:`FaultSpec` says "the Nth time site S is exercised, fail once".
Because every poll site sits on a deterministic code path (kernel spawn
and fork, forkserver pipe handshakes, libc ``malloc``/``fopen``/
``fread``, the supervisor's wedge/shm checks), a plan replays
identically for a given campaign seed — injected faults land at the
same virtual nanosecond on every run, which is what makes the chaos
suite and the checkpoint/resume golden tests assertable.

Layering: the lower layers (``sim_os``, ``vm``) never import this
module.  They hold an optional duck-typed ``faults`` object and call
``faults.poll("site")``; the injector returns an exception instance to
raise (or ``None``), so all fault *construction* stays here.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.chaos.faults import InjectedFault
from repro.telemetry import NULL_TELEMETRY, Telemetry


class FaultSite(enum.Enum):
    """Where the chaos plane can inject a failure."""

    SPAWN = "spawn"        # kernel.spawn -> transient EAGAIN
    FORK = "fork"          # kernel.fork -> transient EAGAIN
    PIPE = "pipe"          # forkserver ctl/status pipe drop mid-handshake
    MALLOC = "malloc"      # transient malloc NULL / heap-budget squeeze
    FOPEN = "fopen"        # I/O error opening the test-case file
    FREAD = "fread"        # I/O error reading the test-case file
    SHM = "shm"            # coverage shared-memory corruption
    WEDGE = "wedge"        # wedge the target (instruction-budget hang)
    RESTORE = "restore"    # ClosureX state restoration failure
    # Dimension-targeted restore sabotage (the integrity sentinel's
    # proving ground): each corrupts exactly one ClosureX state
    # dimension *silently* — no exception is raised, the restore simply
    # does the wrong thing, exactly like a pass regression would.
    SKIP_HEAP_SWEEP = "skip-heap-sweep"      # leaked chunks survive
    LEAK_FD = "leak-fd"                      # leaked FILE handles survive
    DIRTY_GLOBAL_BYTE = "dirty-global-byte"  # restore writes a wrong byte
    SKIP_CTX_REWIND = "skip-ctx-rewind"      # stack/argv context drifts
    # Service-plane sites (repro.service): fired at the serving layer,
    # never inside a campaign's virtual timeline — a service fault may
    # cost wall-clock time and retries but must leave every job's
    # virtual-clock trajectory (and therefore its digest) untouched.
    JOB_QUEUE_DROP = "queue-drop"            # dispatch lost from the queue
    WORKER_WEDGE = "worker-wedge"            # campaign worker stops stepping
    CKPT_TORN = "ckpt-torn"                  # checkpoint write torn mid-job
    CLOCK_OVERRUN = "clock-overrun"          # job overruns its budget slice
    # Disk-fault sites (repro.store): polled inside the durable-storage
    # primitives (``atomic_write`` / ``AppendLog``), so every store —
    # checkpoints, journals, result streams, corpus objects — inherits
    # them through one seam.  TORN_WRITE and LOST_RENAME model power
    # cuts (the injected fault propagates as the simulated process
    # death, leaving torn temp files exactly as a real crash would);
    # ENOSPC and EIO_FSYNC surface as the real ``OSError`` errno a
    # caller would see; BIT_FLIP is silent — the write "succeeds" and
    # only CRC/digest verification catches it later.
    TORN_WRITE = "torn-write"                # power cut mid-write
    ENOSPC = "enospc"                        # disk full mid-write
    EIO_FSYNC = "eio-fsync"                  # fsync barrier fails with EIO
    LOST_RENAME = "lost-rename"              # crash inside the rename window
    BIT_FLIP = "bit-flip"                    # silent single-bit rot


#: Human-readable errno-style details per site (purely descriptive).
_DEFAULT_DETAIL = {
    FaultSite.SPAWN: "EAGAIN",
    FaultSite.FORK: "EAGAIN",
    FaultSite.PIPE: "EPIPE",
    FaultSite.MALLOC: "ENOMEM",
    FaultSite.FOPEN: "EIO",
    FaultSite.FREAD: "EIO",
    FaultSite.SHM: "shm-corrupt",
    FaultSite.WEDGE: "wedged",
    FaultSite.RESTORE: "restore-failed",
    FaultSite.SKIP_HEAP_SWEEP: "heap-sweep-skipped",
    FaultSite.LEAK_FD: "fd-sweep-skipped",
    FaultSite.DIRTY_GLOBAL_BYTE: "global-byte-corrupted",
    FaultSite.SKIP_CTX_REWIND: "ctx-rewind-skipped",
    FaultSite.JOB_QUEUE_DROP: "dispatch-lost",
    FaultSite.WORKER_WEDGE: "worker-wedged",
    FaultSite.CKPT_TORN: "checkpoint-torn",
    FaultSite.CLOCK_OVERRUN: "budget-overrun",
    FaultSite.TORN_WRITE: "torn-write",
    FaultSite.ENOSPC: "ENOSPC",
    FaultSite.EIO_FSYNC: "EIO",
    FaultSite.LOST_RENAME: "rename-lost",
    FaultSite.BIT_FLIP: "bit-flipped",
}


@dataclass(frozen=True)
class FaultSpec:
    """Fire one fault the *occurrence*-th time *site* is polled (0-based)."""

    site: FaultSite
    occurrence: int
    detail: str = ""

    def resolved_detail(self) -> str:
        return self.detail or _DEFAULT_DETAIL[self.site]


@dataclass
class FaultRecord:
    """One fault that actually fired, stamped in virtual time."""

    site: FaultSite
    occurrence: int
    detail: str
    at_ns: int


@dataclass
class FaultPlan:
    """An immutable-ish schedule of faults for one campaign."""

    specs: list[FaultSpec] = field(default_factory=list)

    #: Sites a seed-generated plan draws from by default.  RESTORE is
    #: excluded (it drives the degradation ladder and is opt-in); SHM
    #: and WEDGE are included because every mechanism survives them.
    DEFAULT_SITES = (
        FaultSite.SPAWN, FaultSite.FORK, FaultSite.PIPE,
        FaultSite.MALLOC, FaultSite.FOPEN, FaultSite.FREAD,
        FaultSite.SHM, FaultSite.WEDGE,
    )

    #: Silent restore-sabotage sites the integrity sentinel exists to
    #: catch.  Opt-in like RESTORE: they only make sense against a
    #: ClosureX harness, and without a sentinel they corrupt results
    #: instead of raising (that is the point).
    SENTINEL_SITES = (
        FaultSite.SKIP_HEAP_SWEEP, FaultSite.LEAK_FD,
        FaultSite.DIRTY_GLOBAL_BYTE, FaultSite.SKIP_CTX_REWIND,
    )

    #: Service-plane sites (see :class:`FaultSite`): polled by
    #: ``repro.service``'s scheduler, worker pool, and recovery layer.
    #: Opt-in like the sentinel sites — they are meaningless without a
    #: serving layer to inject into.
    SERVICE_SITES = (
        FaultSite.JOB_QUEUE_DROP, FaultSite.WORKER_WEDGE,
        FaultSite.CKPT_TORN, FaultSite.CLOCK_OVERRUN,
    )

    #: Disk-fault sites (see :class:`FaultSite`): polled inside
    #: ``repro.store``'s I/O primitives.  Opt-in — arm them with
    #: :func:`repro.store.install_disk_faults` / ``disk_chaos`` so every
    #: store in the process inherits the plan through the one I/O seam.
    DISK_SITES = (
        FaultSite.TORN_WRITE, FaultSite.ENOSPC, FaultSite.EIO_FSYNC,
        FaultSite.LOST_RENAME, FaultSite.BIT_FLIP,
    )

    @classmethod
    def generate(
        cls,
        seed: int,
        n_faults: int,
        sites: tuple[FaultSite, ...] | None = None,
        max_occurrence: int = 64,
    ) -> "FaultPlan":
        """Deterministically draw *n_faults* distinct (site, occurrence)
        pairs from ``random.Random(seed)``."""
        rng = random.Random(seed)
        sites = sites if sites is not None else cls.DEFAULT_SITES
        chosen: set[tuple[FaultSite, int]] = set()
        while len(chosen) < n_faults:
            chosen.add(
                (rng.choice(sites), rng.randrange(max_occurrence))
            )
        specs = [
            FaultSpec(site, occurrence)
            for site, occurrence in sorted(
                chosen, key=lambda c: (c[0].value, c[1])
            )
        ]
        return cls(specs)

    def __len__(self) -> int:
        return len(self.specs)


class FaultInjector:
    """Runtime half of the chaos plane: counts polls, fires specs.

    One injector is shared by every layer of one campaign (kernel, VM,
    supervisor).  ``poll`` is the single entry point: it advances the
    site's occurrence counter and, if a spec is armed for exactly this
    occurrence, consumes it and returns the :class:`InjectedFault` the
    caller should raise (callers that model the fault differently — the
    supervisor's wedge/shm sites — interpret the return themselves).
    """

    def __init__(self, plan: FaultPlan | None = None, clock=None):
        self.plan = plan if plan is not None else FaultPlan()
        self.clock = clock
        self.telemetry: Telemetry = NULL_TELEMETRY
        self.counters: dict[str, int] = {}
        self.armed: dict[tuple[str, int], FaultSpec] = {
            (spec.site.value, spec.occurrence): spec for spec in self.plan.specs
        }
        self.fired: list[FaultRecord] = []

    def attach(self, telemetry: Telemetry, clock=None) -> None:
        self.telemetry = telemetry
        if clock is not None:
            self.clock = clock

    # ------------------------------------------------------------------

    def poll(self, site: str | FaultSite) -> InjectedFault | None:
        """One exercise of *site*; returns the fault to raise, if armed."""
        name = site.value if isinstance(site, FaultSite) else site
        occurrence = self.counters.get(name, 0)
        self.counters[name] = occurrence + 1
        spec = self.armed.pop((name, occurrence), None)
        if spec is None:
            return None
        now_ns = self.clock.now_ns if self.clock is not None else 0
        detail = spec.resolved_detail()
        self.fired.append(FaultRecord(spec.site, occurrence, detail, now_ns))
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(f"chaos.injected.{name}").inc()
            if self.telemetry.tracer.enabled:
                self.telemetry.tracer.event(
                    "chaos.inject", site=name,
                    occurrence=occurrence, detail=detail,
                )
        return InjectedFault(name, detail, occurrence)

    # ------------------------------------------------------------------

    @property
    def fired_count(self) -> int:
        return len(self.fired)

    @property
    def pending_count(self) -> int:
        return len(self.armed)

    def snapshot_state(self) -> dict:
        """Checkpointable state (counters + what is still armed)."""
        return {
            "counters": dict(self.counters),
            "armed": dict(self.armed),
            "fired": list(self.fired),
        }

    def restore_state(self, state: dict) -> None:
        self.counters = dict(state["counters"])
        self.armed = dict(state["armed"])
        self.fired = list(state["fired"])
