"""Byte-addressable memory model for the MiniVM.

The address space is divided into fixed segments (globals, heap, stack,
FILE handles).  Every allocation is a :class:`MemoryRegion` with its own
bounds; loads and stores are checked against region bounds and
permissions, which is what turns the targets' planted bugs into traps
(null dereference, unaddressable access, out-of-bounds read/write,
use-after-free).

Address lookup uses bisection over the sorted region bases.  Freed
regions are remembered in a bounded FIFO so the memcheck layer can
distinguish *use-after-free* from plain *unaddressable* accesses —
the same distinction Valgrind draws in the paper's §6.1.4 validation.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict

from repro.vm.errors import CrashSite, TrapKind, VMTrap


class Segment:
    """A contiguous slice of the address space with bump allocation."""

    def __init__(self, name: str, base: int, size: int):
        self.name = name
        self.base = base
        self.size = size
        self.cursor = base

    @property
    def limit(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.limit

    def reserve(self, size: int, align: int = 16) -> int:
        """Reserve *size* bytes; returns the base address."""
        start = (self.cursor + align - 1) // align * align
        if start + size > self.limit:
            raise MemoryError(f"segment {self.name} exhausted")
        self.cursor = start + size
        return start

    def reset(self) -> None:
        self.cursor = self.base


GLOBAL_BASE = 0x0000_1000_0000
HEAP_BASE = 0x0000_2000_0000
STACK_BASE = 0x0000_7000_0000
HANDLE_BASE = 0x0000_F000_0000

GLOBAL_SIZE = 0x1000_0000
HEAP_SIZE = 0x4000_0000
STACK_SIZE = 0x0800_0000
# Gap of unmapped space between consecutive regions, so off-by-N
# pointer arithmetic lands in unaddressable memory instead of a
# neighbouring allocation (a software red zone).
RED_ZONE = 16


class MemoryRegion:
    """One live or dead allocation."""

    __slots__ = ("base", "size", "data", "writable", "kind", "tag", "alive")

    def __init__(self, base: int, size: int, writable: bool, kind: str, tag: str = ""):
        self.base = base
        self.size = size
        self.data = bytearray(size)
        self.writable = writable
        self.kind = kind          # "global" | "heap" | "stack"
        self.tag = tag            # symbol name / allocation site
        self.alive = True

    @property
    def limit(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.limit

    def __repr__(self) -> str:
        state = "live" if self.alive else "dead"
        return f"<Region {self.kind} {self.tag!r} @0x{self.base:x}+{self.size} {state}>"


class AddressSpace:
    """All mapped memory of one simulated process."""

    DEAD_REGION_MEMORY = 256  # how many freed regions we remember

    def __init__(self) -> None:
        self.global_segment = Segment("global", GLOBAL_BASE, GLOBAL_SIZE)
        self.heap_segment = Segment("heap", HEAP_BASE, HEAP_SIZE)
        self.stack_segment = Segment("stack", STACK_BASE, STACK_SIZE)
        self._bases: list[int] = []
        self._regions: dict[int, MemoryRegion] = {}
        self._dead: OrderedDict[int, MemoryRegion] = OrderedDict()
        self.bytes_written = 0  # drives copy-on-write cost accounting

    # -- mapping ------------------------------------------------------

    def map_region(self, segment: Segment, size: int, writable: bool,
                   kind: str, tag: str = "") -> MemoryRegion:
        base = segment.reserve(max(size, 1) + RED_ZONE)
        region = MemoryRegion(base, size, writable, kind, tag)
        index = bisect.bisect_left(self._bases, base)
        self._bases.insert(index, base)
        self._regions[base] = region
        return region

    def unmap(self, region: MemoryRegion) -> None:
        if not region.alive:
            raise ValueError("double unmap")
        region.alive = False
        index = bisect.bisect_left(self._bases, region.base)
        del self._bases[index]
        del self._regions[region.base]
        self._dead[region.base] = region
        while len(self._dead) > self.DEAD_REGION_MEMORY:
            self._dead.popitem(last=False)

    def forget_dead_regions(self) -> None:
        """Drop the freed-region memory (called when cursors rewind,
        since recycled addresses would otherwise shadow-match old
        regions)."""
        self._dead.clear()

    # -- lookup -------------------------------------------------------

    def find_region(self, address: int) -> MemoryRegion | None:
        """Live region containing *address*, or ``None``."""
        index = bisect.bisect_right(self._bases, address) - 1
        if index < 0:
            return None
        region = self._regions[self._bases[index]]
        return region if region.contains(address) else None

    def find_dead_region(self, address: int) -> MemoryRegion | None:
        """Freed region that used to contain *address*, or ``None``."""
        for region in reversed(self._dead.values()):
            if region.contains(address):
                return region
        return None

    def live_regions(self, kind: str | None = None) -> list[MemoryRegion]:
        regions = list(self._regions.values())
        if kind is not None:
            regions = [r for r in regions if r.kind == kind]
        return regions

    # -- checked access -----------------------------------------------

    def _fault(self, address: int, size: int, write: bool, site: CrashSite) -> VMTrap:
        mode = "write" if write else "read"
        if address == 0 or 0 < address < 4096:
            return VMTrap(TrapKind.NULL_DEREF,
                          f"{mode} of {size} bytes at null page address 0x{address:x}", site)
        dead = self.find_dead_region(address)
        if dead is not None:
            return VMTrap(TrapKind.USE_AFTER_FREE,
                          f"{mode} at 0x{address:x} inside freed {dead.kind} "
                          f"region {dead.tag!r}", site)
        live = self.find_region(address)
        if live is None:
            # An access just past a region's end (inside its red zone)
            # is an overrun of that region, Valgrind-style ("N bytes
            # after a block of ..."); anything further out is a wild
            # unaddressable access.
            index = bisect.bisect_right(self._bases, address) - 1
            if index >= 0:
                candidate = self._regions[self._bases[index]]
                if address < candidate.limit + RED_ZONE:
                    live = candidate
        if live is not None:
            if live.kind == "global":
                kind = TrapKind.ARRAY_OOB
            elif write:
                kind = TrapKind.INVALID_WRITE
            else:
                kind = TrapKind.INVALID_READ
            return VMTrap(kind,
                          f"{mode} of {size} bytes at 0x{address:x} overruns "
                          f"{live.kind} region {live.tag!r} "
                          f"(0x{live.base:x}+{live.size})", site)
        return VMTrap(TrapKind.UNADDRESSABLE,
                      f"{mode} of {size} bytes at unmapped address 0x{address:x}", site)

    def check(self, address: int, size: int, write: bool, site: CrashSite) -> MemoryRegion:
        region = self.find_region(address)
        if region is None or address + size > region.limit:
            raise self._fault(address, size, write, site)
        if write and not region.writable:
            raise VMTrap(
                TrapKind.INVALID_WRITE,
                f"write to read-only {region.kind} region {region.tag!r} at 0x{address:x}",
                site,
            )
        return region

    def read(self, address: int, size: int, site: CrashSite) -> bytes:
        region = self.check(address, size, False, site)
        offset = address - region.base
        return bytes(region.data[offset:offset + size])

    def write(self, address: int, data: bytes, site: CrashSite) -> None:
        region = self.check(address, len(data), True, site)
        offset = address - region.base
        region.data[offset:offset + len(data)] = data
        self.bytes_written += len(data)

    def read_int(self, address: int, size: int, site: CrashSite) -> int:
        return int.from_bytes(self.read(address, size, site), "little")

    def write_int(self, address: int, value: int, size: int, site: CrashSite) -> None:
        self.write(address, (value & ((1 << (size * 8)) - 1)).to_bytes(size, "little"), site)

    def read_cstring(self, address: int, site: CrashSite, limit: int = 1 << 16) -> bytes:
        """Read a NUL-terminated string (without the terminator)."""
        out = bytearray()
        current = address
        while len(out) < limit:
            byte = self.read(current, 1, site)[0]
            if byte == 0:
                return bytes(out)
            out.append(byte)
            current += 1
        raise VMTrap(TrapKind.INVALID_READ, f"unterminated string at 0x{address:x}", site)

    # -- accounting ---------------------------------------------------

    def footprint_bytes(self) -> int:
        """Total live mapped bytes (drives fork/CoW cost modelling)."""
        return sum(r.size for r in self._regions.values())

    def region_count(self) -> int:
        return len(self._regions)
