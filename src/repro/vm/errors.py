"""Trap and termination taxonomy for the MiniVM.

The VM communicates target behaviour to the execution layer through
exceptions:

- :class:`VMTrap` — a crash (the fuzzer's signal of a bug).  The
  ``kind`` values mirror the bug types reported in the paper's Table 7
  (null-pointer dereference, division by zero, unaddressable access,
  invalid read/write, negative-size memcpy, out-of-bounds array
  access) plus memory-lifecycle faults surfaced by the memcheck layer.
- :class:`ProcessExit` — the target called ``exit()`` (not hooked); in
  a real process this tears the process down, so persistent executors
  must respawn.
- :class:`HarnessExit` — the target called ClosureX's ``exitHook``; the
  Python-level harness catches this, which models the
  ``setjmp``/``longjmp`` unwind of the paper's Listing 1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TrapKind(enum.Enum):
    """Crash classes; names chosen to match Table 7's bug-type labels."""

    NULL_DEREF = "Null Ptr Deref."
    DIV_BY_ZERO = "Division by Zero"
    UNADDRESSABLE = "Unaddressable Access"
    INVALID_READ = "Invalid Read"
    INVALID_WRITE = "Invalid Write"
    NEGATIVE_MEMCPY = "Memcpy with negative size"
    ARRAY_OOB = "Array out of bounds access"
    USE_AFTER_FREE = "Use After Free"
    DOUBLE_FREE = "Double Free"
    INVALID_FREE = "Invalid Free"
    OUT_OF_MEMORY = "Out of Memory"
    FD_EXHAUSTED = "File Descriptors Exhausted"
    STACK_OVERFLOW = "Stack Overflow"
    ABORT = "Abort"
    UNREACHABLE = "Unreachable Executed"
    ASSERT_FAIL = "Assertion Failure"


@dataclass(frozen=True)
class CrashSite:
    """Where a trap fired; the identity used for crash deduplication."""

    function: str
    block: str

    def __str__(self) -> str:
        return f"@{self.function}:%{self.block}"


class VMError(Exception):
    """Base class for all VM-raised exceptions."""


class VMTrap(VMError):
    """The target crashed."""

    def __init__(self, kind: TrapKind, message: str, site: object | None = None):
        self.kind = kind
        self.message = message
        # Normalise into an immutable CrashSite: callers may pass the
        # VM's shared mutable location holder, which keeps the hot path
        # allocation-free while faults still capture a stable site.
        if site is None:
            self.site = CrashSite("<unknown>", "<unknown>")
        else:
            self.site = CrashSite(site.function, site.block)
        super().__init__(f"{kind.value} at {self.site}: {message}")

    def identity(self) -> tuple[TrapKind, str, str]:
        """Deduplication key: same kind at the same site is one bug."""
        return (self.kind, self.site.function, self.site.block)

    def __reduce__(self):
        # Default exception pickling would replay __init__ with the
        # formatted message only; crash reports inside campaign
        # checkpoints need the real (kind, message, site) triple.
        return (VMTrap, (self.kind, self.message, self.site))


class ProcessExit(VMError):
    """Target invoked ``exit(code)`` — process-level termination."""

    def __init__(self, code: int):
        self.code = code
        super().__init__(f"exit({code})")


class HarnessExit(VMError):
    """Target invoked ClosureX's exitHook — longjmp back to the harness."""

    def __init__(self, code: int):
        self.code = code
        super().__init__(f"exitHook({code})")


class ExecutionLimitExceeded(VMError):
    """Instruction budget exhausted (hang detection, like AFL timeouts)."""

    def __init__(self, limit: int):
        self.limit = limit
        super().__init__(f"execution exceeded {limit} instructions")
