"""The MiniVM interpreter: executes MiniIR modules.

One :class:`VM` instance models one OS process executing one loaded
binary.  Loading lays global variables out into per-section memory
regions (``.rodata`` / ``.data`` / ``.bss`` / ``closure_global_section``),
exactly the contract ClosureX's GlobalPass and harness rely on.

Execution is a recursive-descent interpretation of the in-memory IR.
All values are Python ints in unsigned representation; pointers are
addresses in the VM's address space.  Every executed instruction
charges virtual nanoseconds to the VM clock, which is what the
simulated-OS cost model and the throughput experiments (Table 5) are
built on.
"""

from __future__ import annotations

import itertools

from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    GetElementPtr,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import ArrayType, IntType, PointerType, StructType
from repro.ir.values import (
    ConstantData,
    ConstantInt,
    ConstantNull,
    GlobalVariable,
    UndefValue,
    Value,
)
from repro.vm.errors import (
    ExecutionLimitExceeded,
    TrapKind,
    VMTrap,
)
from repro.vm.filesystem import FDTable, VirtualFS
from repro.vm.heap import Heap
from repro.vm.libc import NATIVE_BASE_COST, NATIVES, NativeFn
from repro.vm.memory import AddressSpace, MemoryRegion

COVERAGE_MAP_SIZE = 1 << 16

# Per-opcode virtual-ns costs.  One MiniIR instruction stands for the
# short native sequence clang -O0 emits for it (address computation,
# load/op/store, occasional cache miss), hence several ns each; the
# ratios follow real hardware (ALU < memory < call).
_INST_COST = {
    BinOp: 6, ICmp: 6, Cast: 4, Select: 7, Phi: 5,
    Br: 4, CondBr: 7, Switch: 10, Ret: 6,
    Load: 12, Store: 12, GetElementPtr: 6, Alloca: 10,
    Call: 22, Unreachable: 0,
}

_U64_MASK = (1 << 64) - 1

# Per-process "boot time" sequence: each VM (process) observes a
# different time(), reproducing the natural cross-process
# non-determinism real programs get from time-seeded PRNGs.
_BOOT_SEQUENCE = itertools.count(1_700_000_000)


class _MutableSite:
    """Allocation-free current-location holder (frozen on trap)."""

    __slots__ = ("function", "block")

    def __init__(self) -> None:
        self.function = "<start>"
        self.block = "<start>"


class VM:
    """One simulated process: loaded module + memory + libc state."""

    MAX_CALL_DEPTH = 192

    def __init__(
        self,
        module: Module,
        fs: VirtualFS | None = None,
        heap_budget: int = 64 << 20,
        max_open_files: int | None = None,
        extra_natives: dict[str, NativeFn] | None = None,
        opcode_counts: dict[str, int] | None = None,
        libc_counts: dict[str, int] | None = None,
        faults=None,
        cmp_observer=None,
    ):
        self.module = module
        # Optional chaos hook (``faults.poll(site)`` -> exception | None)
        # consulted by the malloc/fopen/fread natives; None keeps those
        # paths at one attribute check.
        self.faults = faults
        self.memory = AddressSpace()
        self.heap = Heap(self.memory, heap_budget)
        self.fs = fs if fs is not None else VirtualFS()
        self.fd_table = FDTable(self.fs, max_open_files)
        self.natives: dict[str, NativeFn] = dict(NATIVES)
        if extra_natives:
            self.natives.update(extra_natives)

        # Optional telemetry: caller-owned per-opcode / per-libc-call
        # count dicts (shared across VMs so profiles survive respawns).
        # None keeps the dispatch loop on its uninstrumented path.
        self.opcode_counts = opcode_counts
        self.libc_counts = libc_counts
        # Optional input-to-state tap (``repro.fuzzing.i2s.CmpObserver``):
        # icmp/switch dispatch reports concrete operand pairs when the
        # observer is attached *and* armed.  None (or a disarmed
        # observer) keeps compares on the uninstrumented path — the
        # same null-object contract as the telemetry count dicts.
        self.cmp_observer = cmp_observer

        self.cost = 0                       # virtual ns consumed
        self.instructions_executed = 0
        self.instruction_limit = 10_000_000
        self.rand_state = 1
        self.boot_time = next(_BOOT_SEQUENCE)
        self.output: list[str] = []
        self.site = _MutableSite()
        self._call_depth = 0

        # Coverage state (AFL-style shared map semantics).
        self.coverage_map = bytearray(COVERAGE_MAP_SIZE)
        self.prev_loc = 0
        self.trace_edges = False
        self.edge_trace: list[tuple[str, int]] = []

        # Global layout: symbol -> region, and section -> ordered regions.
        self.global_regions: dict[str, MemoryRegion] = {}
        self.sections: dict[str, list[MemoryRegion]] = {}
        self._loaded = False
        self.load_cost = 0

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------

    def load(self) -> None:
        """Lay out global variables into section-grouped memory regions."""
        if self._loaded:
            raise RuntimeError("module already loaded into this VM")
        by_section: dict[str, list[GlobalVariable]] = {}
        for var in self.module.globals.values():
            by_section.setdefault(var.section, []).append(var)
        for section in sorted(by_section):
            regions: list[MemoryRegion] = []
            for var in by_section[section]:
                size = var.value_type.size()
                region = self.memory.map_region(
                    self.memory.global_segment, size,
                    writable=not var.is_constant, kind="global", tag=var.name,
                )
                region.data[:] = var.initial_bytes()
                self.global_regions[var.name] = region
                regions.append(region)
                # Loading/initialising pages costs time — this is part of
                # what fresh-process execution pays on every test case.
                self.load_cost += 20 + size // 16
            self.sections[section] = regions
        self._loaded = True

    def global_addr(self, name: str) -> int:
        return self.global_regions[name].base

    def section_size(self, section: str) -> int:
        return sum(r.size for r in self.sections.get(section, []))

    def section_bytes(self, section: str) -> bytes:
        """Concatenated contents of a section (snapshot source)."""
        return b"".join(bytes(r.data) for r in self.sections.get(section, []))

    def restore_section(self, section: str, snapshot: bytes) -> int:
        """Write *snapshot* back over a section; returns bytes copied."""
        offset = 0
        for region in self.sections.get(section, []):
            region.data[:] = snapshot[offset:offset + region.size]
            offset += region.size
        return offset

    # ------------------------------------------------------------------
    # argv setup
    # ------------------------------------------------------------------

    def setup_argv(self, argv: list[str]) -> tuple[int, int]:
        """Materialise C-style ``argc``/``argv`` in memory.

        Returns ``(argc, argv_address)`` where ``argv_address`` points
        at an array of ``char*``.
        """
        pointers: list[int] = []
        for i, arg in enumerate(argv):
            data = arg.encode("latin-1") + b"\x00"
            region = self.memory.map_region(
                self.memory.global_segment, len(data), True, "global", f"argv[{i}]"
            )
            region.data[:] = data
            pointers.append(region.base)
        table = self.memory.map_region(
            self.memory.global_segment, 8 * (len(pointers) + 1), True, "global", "argv"
        )
        for i, ptr in enumerate(pointers):
            table.data[i * 8:(i + 1) * 8] = ptr.to_bytes(8, "little")
        return len(argv), table.base

    def set_argv_input(self, argv_address: int, index: int, path: str) -> None:
        """Repoint ``argv[index]`` at a new input path.

        This is the harness-side "replace the appropriate argv with the
        test case supplied by the fuzzer" step from the paper §4.2.1.
        """
        data = path.encode("latin-1") + b"\x00"
        region = self.memory.map_region(
            self.memory.global_segment, len(data), True, "global", f"argv[{index}]"
        )
        region.data[:] = data
        self.memory.write_int(argv_address + index * 8, region.base, 8, self.site)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def charge(self, ns: int) -> None:
        self.cost += ns

    def record_output(self, text: str) -> None:
        if len(self.output) < 4096:
            self.output.append(text)

    def reset_coverage(self) -> None:
        self.coverage_map = bytearray(COVERAGE_MAP_SIZE)
        self.prev_loc = 0

    def cov_guard(self, cur_loc: int) -> None:
        """AFL-style edge coverage update (called by instrumented code)."""
        index = (cur_loc ^ self.prev_loc) & (COVERAGE_MAP_SIZE - 1)
        value = self.coverage_map[index]
        self.coverage_map[index] = (value + 1) & 0xFF if value != 0xFF else 0xFF
        self.prev_loc = (cur_loc >> 1) & (COVERAGE_MAP_SIZE - 1)
        if self.trace_edges:
            self.edge_trace.append((self.site.function, index))

    def run_function(self, function: Function, args: list[int]) -> int | None:
        """Execute *function* with concrete integer arguments."""
        if function.is_declaration:
            return self._call_native(function.name, args)
        if self._call_depth >= self.MAX_CALL_DEPTH:
            raise VMTrap(TrapKind.STACK_OVERFLOW,
                         f"call depth exceeded {self.MAX_CALL_DEPTH}", self.site)
        self._call_depth += 1
        frame_regions: list[MemoryRegion] = []
        values: dict[Value, int] = {}
        for arg_obj, arg_val in zip(function.args, args):
            values[arg_obj] = arg_val
        self.site.function = function.name
        try:
            return self._exec_blocks(function, values, frame_regions)
        finally:
            self._call_depth -= 1
            for region in frame_regions:
                if region.alive:
                    self.memory.unmap(region)

    def _call_native(self, name: str, args: list[int]) -> int | None:
        native = self.natives.get(name)
        if native is None:
            raise VMTrap(
                TrapKind.ABORT,
                f"unresolved external function @{name} (link error)",
                self.site,
            )
        if self.libc_counts is not None:
            self.libc_counts[name] = self.libc_counts.get(name, 0) + 1
        self.cost += NATIVE_BASE_COST.get(name, 20)
        return native(self, args, self.site)

    def _exec_blocks(
        self,
        function: Function,
        values: dict[Value, int],
        frame_regions: list[MemoryRegion],
    ) -> int | None:
        block = function.entry_block
        prev_block: BasicBlock | None = None
        evaluate = self._evaluate
        limit = self.instruction_limit
        opcode_counts = self.opcode_counts

        while True:
            self.site.block = block.name
            instructions = block.instructions
            index = 0
            # Phi nodes are evaluated simultaneously on block entry.
            if instructions and isinstance(instructions[0], Phi):
                phi_values: list[tuple[Phi, int]] = []
                while index < len(instructions) and isinstance(instructions[index], Phi):
                    phi = instructions[index]
                    assert prev_block is not None
                    phi_values.append((phi, evaluate(phi.value_for_block(prev_block), values)))
                    index += 1
                for phi, value in phi_values:
                    values[phi] = value
                self.instructions_executed += index
                self.cost += 5 * index
                if opcode_counts is not None:
                    opcode_counts["Phi"] = opcode_counts.get("Phi", 0) + index

            next_block: BasicBlock | None = None
            while index < len(instructions):
                inst = instructions[index]
                index += 1
                self.instructions_executed += 1
                if self.instructions_executed > limit:
                    raise ExecutionLimitExceeded(limit)
                self.cost += _INST_COST.get(type(inst), 2)
                cls = type(inst)
                if opcode_counts is not None:
                    name = cls.__name__
                    opcode_counts[name] = opcode_counts.get(name, 0) + 1

                if cls is BinOp:
                    values[inst] = self._exec_binop(inst, values)
                elif cls is ICmp:
                    values[inst] = self._exec_icmp(inst, values)
                elif cls is Load:
                    ptr = evaluate(inst.ptr, values)
                    values[inst] = self.memory.read_int(ptr, inst.type.size(), self.site)
                elif cls is Store:
                    ptr = evaluate(inst.ptr, values)
                    value = evaluate(inst.value, values)
                    self.memory.write_int(ptr, value, inst.value.type.size(), self.site)
                elif cls is GetElementPtr:
                    values[inst] = self._exec_gep(inst, values)
                elif cls is Call:
                    result = self._exec_call(inst, values)
                    # Restore location clobbered by the callee.
                    self.site.function = function.name
                    self.site.block = block.name
                    if not inst.type.is_void:
                        values[inst] = result if result is not None else 0
                elif cls is Alloca:
                    region = self.memory.map_region(
                        self.memory.stack_segment,
                        inst.allocation_size(), True, "stack",
                        f"{function.name}.{inst.name}",
                    )
                    frame_regions.append(region)
                    values[inst] = region.base
                elif cls is Cast:
                    values[inst] = self._exec_cast(inst, values)
                elif cls is Select:
                    cond = evaluate(inst.cond, values)
                    values[inst] = evaluate(inst.if_true if cond else inst.if_false, values)
                elif cls is Br:
                    next_block = inst.target
                    break
                elif cls is CondBr:
                    cond = evaluate(inst.cond, values)
                    next_block = inst.if_true if cond else inst.if_false
                    break
                elif cls is Switch:
                    value = evaluate(inst.value, values)
                    observer = self.cmp_observer
                    if observer is not None and observer.active:
                        observer.observe_switch(self.site, inst, value)
                    next_block = inst.default
                    for case_value, case_block in inst.cases:
                        if case_value == value:
                            next_block = case_block
                            break
                    break
                elif cls is Ret:
                    if inst.value is None:
                        return None
                    return evaluate(inst.value, values)
                elif cls is Unreachable:
                    raise VMTrap(TrapKind.UNREACHABLE, "unreachable executed", self.site)
                else:  # pragma: no cover - instruction set is closed
                    raise VMTrap(TrapKind.ABORT, f"unknown instruction {inst}", self.site)

            if next_block is None:
                raise VMTrap(
                    TrapKind.UNREACHABLE,
                    f"block %{block.name} fell through without a terminator",
                    self.site,
                )
            prev_block, block = block, next_block

    # -- operand evaluation -------------------------------------------

    def _evaluate(self, value: Value, values: dict[Value, int]) -> int:
        cls = type(value)
        if cls is ConstantInt:
            return value.value
        if cls is ConstantNull:
            return 0
        if cls is GlobalVariable:
            return self.global_regions[value.name].base
        if cls is UndefValue:
            return 0
        if cls is ConstantData:
            raise VMTrap(TrapKind.ABORT, "constant data used as scalar", self.site)
        try:
            return values[value]
        except KeyError:
            raise VMTrap(
                TrapKind.ABORT, f"use of undefined value {value.ref()}", self.site
            ) from None

    # -- instruction semantics ------------------------------------------

    def _exec_binop(self, inst: BinOp, values: dict[Value, int]) -> int:
        type_ = inst.type
        assert isinstance(type_, IntType)
        lhs = self._evaluate(inst.lhs, values)
        rhs = self._evaluate(inst.rhs, values)
        op = inst.op
        if op == "add":
            return type_.wrap(lhs + rhs)
        if op == "sub":
            return type_.wrap(lhs - rhs)
        if op == "mul":
            return type_.wrap(lhs * rhs)
        if op == "and":
            return lhs & rhs
        if op == "or":
            return lhs | rhs
        if op == "xor":
            return lhs ^ rhs
        if op == "shl":
            return type_.wrap(lhs << rhs) if rhs < type_.bits else 0
        if op == "lshr":
            return (lhs >> rhs) if rhs < type_.bits else 0
        if op == "ashr":
            signed = type_.to_signed(lhs)
            return type_.wrap(signed >> min(rhs, type_.bits - 1))
        if rhs == 0:
            raise VMTrap(TrapKind.DIV_BY_ZERO, f"{op} by zero", self.site)
        if op in ("sdiv", "srem"):
            a, b = type_.to_signed(lhs), type_.to_signed(rhs)
            if op == "sdiv":
                quotient = abs(a) // abs(b)
                return type_.wrap(quotient if (a < 0) == (b < 0) else -quotient)
            remainder = abs(a) % abs(b)
            return type_.wrap(remainder if a >= 0 else -remainder)
        if op == "udiv":
            return lhs // rhs
        return lhs % rhs  # urem

    def _exec_icmp(self, inst: ICmp, values: dict[Value, int]) -> int:
        lhs = self._evaluate(inst.lhs, values)
        rhs = self._evaluate(inst.rhs, values)
        observer = self.cmp_observer
        if observer is not None and observer.active:
            observer.observe_icmp(self.site, inst, lhs, rhs)
        predicate = inst.predicate
        if predicate in ("slt", "sle", "sgt", "sge"):
            lhs_type = inst.lhs.type
            if isinstance(lhs_type, IntType):
                lhs = lhs_type.to_signed(lhs)
                rhs = lhs_type.to_signed(rhs)
        if predicate == "eq":
            return 1 if lhs == rhs else 0
        if predicate == "ne":
            return 1 if lhs != rhs else 0
        if predicate in ("slt", "ult"):
            return 1 if lhs < rhs else 0
        if predicate in ("sle", "ule"):
            return 1 if lhs <= rhs else 0
        if predicate in ("sgt", "ugt"):
            return 1 if lhs > rhs else 0
        return 1 if lhs >= rhs else 0

    def _exec_gep(self, inst: GetElementPtr, values: dict[Value, int]) -> int:
        address = self._evaluate(inst.base, values)
        base_type = inst.base.type
        assert isinstance(base_type, PointerType)
        indices = inst.indices
        first = self._evaluate(indices[0], values)
        first_type = indices[0].type
        if isinstance(first_type, IntType):
            first = first_type.to_signed(first)
        current = base_type.pointee
        address += first * current.size()
        for index_value in indices[1:]:
            if isinstance(current, ArrayType):
                idx = self._evaluate(index_value, values)
                idx_type = index_value.type
                if isinstance(idx_type, IntType):
                    idx = idx_type.to_signed(idx)
                address += idx * current.element.size()
                current = current.element
            elif isinstance(current, StructType):
                assert isinstance(index_value, ConstantInt)
                address += current.field_offset(index_value.value)
                current = current.field_type(index_value.value)
            else:  # pragma: no cover - rejected at construction
                raise VMTrap(TrapKind.ABORT, "malformed GEP", self.site)
        return address & _U64_MASK

    def _exec_call(self, inst: Call, values: dict[Value, int]) -> int | None:
        callee = inst.callee
        assert isinstance(callee, Function)
        args = [self._evaluate(a, values) for a in inst.args]
        return self.run_function(callee, args)

    def _exec_cast(self, inst: Cast, values: dict[Value, int]) -> int:
        value = self._evaluate(inst.value, values)
        op = inst.op
        if op in ("bitcast", "inttoptr"):
            return value
        if op == "ptrtoint":
            target = inst.type
            assert isinstance(target, IntType)
            return target.wrap(value)
        if op in ("trunc", "zext"):
            target = inst.type
            assert isinstance(target, IntType)
            return target.wrap(value)
        # sext
        source = inst.value.type
        target = inst.type
        assert isinstance(source, IntType) and isinstance(target, IntType)
        return target.wrap(source.to_signed(value))

    # ------------------------------------------------------------------
    # inspection / address recycling
    # ------------------------------------------------------------------

    def stack_region_count(self) -> int:
        return len(self.memory.live_regions("stack"))

    def reset_stack_addresses(self) -> None:
        """Rewind the stack segment's bump cursor.

        Real processes reuse the same stack addresses on every
        iteration of a loop (the stack pointer returns to its saved
        position); rewinding the cursor once all frames are gone keeps
        the simulated address assignment equally deterministic, which
        the correctness experiments rely on for bytewise snapshot
        comparison.
        """
        if self.memory.live_regions("stack"):
            raise RuntimeError("cannot rewind stack with live frames")
        self.memory.stack_segment.reset()
        self.memory.forget_dead_regions()

    def reset_heap_addresses(self, mark: int | None = None) -> None:
        """Rewind the heap segment's bump cursor to *mark* (or the base).

        Models a real allocator handing out the same addresses again
        after everything was freed.  Called by the ClosureX harness
        after its leak sweep; *mark* preserves initialisation-phase
        chunks.  Never valid for the naive persistent mode, whose
        leaked chunks keep the heap occupied — that address drift is
        part of the pollution ClosureX eliminates.
        """
        target = mark if mark is not None else self.memory.heap_segment.base
        for region in self.heap.live.values():
            if region.base >= target:
                raise RuntimeError(
                    f"cannot rewind heap past live chunk at 0x{region.base:x}"
                )
        self.memory.heap_segment.cursor = target
        self.memory.forget_dead_regions()
