"""MiniVM: interpreter and process-state model for MiniIR programs."""

from repro.vm.errors import (
    CrashSite,
    ExecutionLimitExceeded,
    HarnessExit,
    ProcessExit,
    TrapKind,
    VMError,
    VMTrap,
)
from repro.vm.filesystem import FDTable, OpenFile, VirtualFS
from repro.vm.heap import Heap, HeapStats
from repro.vm.interpreter import COVERAGE_MAP_SIZE, VM
from repro.vm.libc import LIBC_SIGNATURES, NATIVES, declare_libc
from repro.vm.memory import AddressSpace, MemoryRegion, Segment
from repro.vm.snapshot import (
    NondetMask,
    ProgramSnapshot,
    SnapshotDelta,
    build_nondet_mask,
    diff_snapshots,
    take_snapshot,
)

__all__ = [
    "CrashSite", "ExecutionLimitExceeded", "HarnessExit", "ProcessExit",
    "TrapKind", "VMError", "VMTrap",
    "FDTable", "OpenFile", "VirtualFS",
    "Heap", "HeapStats",
    "COVERAGE_MAP_SIZE", "VM",
    "LIBC_SIGNATURES", "NATIVES", "declare_libc",
    "AddressSpace", "MemoryRegion", "Segment",
    "NondetMask", "ProgramSnapshot", "SnapshotDelta",
    "build_nondet_mask", "diff_snapshots", "take_snapshot",
]
