"""Program-state snapshots and comparison for the MiniVM.

Two consumers:

1. The correctness experiments (paper §6.1.4): compare the observable
   program state after executing a test case under ClosureX against a
   fresh-process ground truth, with non-deterministic bytes masked out.
2. Diagnostics in tests — asserting that restoration really returns a
   process to its post-initialisation state.

A snapshot captures the *target's* state only: writable global
sections, the live heap-chunk set, open FILE handles, and the libc PRNG
state.  Harness-owned bookkeeping is deliberately excluded, matching
the paper's "excluding ClosureX's own memory" methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vm.interpreter import VM

#: Sections that hold immutable data and are skipped by snapshots.
READONLY_SECTIONS = frozenset({".rodata"})


@dataclass(frozen=True)
class HeapChunkState:
    """Structural identity of one live heap chunk."""

    address: int
    size: int
    contents: bytes


#: Per-section layout: (variable tag, offset within section, size).
SectionLayout = tuple[tuple[str, int, int], ...]


@dataclass
class ProgramSnapshot:
    """Observable target state at one point in time."""

    sections: dict[str, bytes]
    heap_chunks: tuple[HeapChunkState, ...]
    open_files: tuple[tuple[str, int], ...]   # (path, position) per handle
    rand_state: int
    live_heap_bytes: int = 0
    layouts: dict[str, SectionLayout] = field(default_factory=dict)

    @property
    def heap_chunk_count(self) -> int:
        return len(self.heap_chunks)

    def variable_extent(self, section: str, offset: int) -> tuple[int, int]:
        """(start, size) of the variable containing *offset*, or a
        1-byte extent if the layout is unknown."""
        for _tag, start, size in self.layouts.get(section, ()):
            if start <= offset < start + size:
                return start, size
        return offset, 1


@dataclass
class SnapshotDelta:
    """Difference between two snapshots (empty == equivalent)."""

    section_diffs: dict[str, list[int]] = field(default_factory=dict)
    heap_diff: str = ""
    file_diff: str = ""
    rand_diff: str = ""

    @property
    def equivalent(self) -> bool:
        return (
            not self.section_diffs
            and not self.heap_diff
            and not self.file_diff
            and not self.rand_diff
        )

    def describe(self) -> str:
        if self.equivalent:
            return "equivalent"
        parts = []
        for section, offsets in self.section_diffs.items():
            shown = ", ".join(str(o) for o in offsets[:8])
            more = "..." if len(offsets) > 8 else ""
            parts.append(f"section {section}: {len(offsets)} differing bytes "
                         f"at offsets [{shown}{more}]")
        for label, text in (("heap", self.heap_diff), ("files", self.file_diff),
                            ("prng", self.rand_diff)):
            if text:
                parts.append(f"{label}: {text}")
        return "; ".join(parts)


def take_snapshot(vm: VM) -> ProgramSnapshot:
    """Capture the target-visible state of *vm*."""
    sections = {
        name: vm.section_bytes(name)
        for name in sorted(vm.sections)
        if name not in READONLY_SECTIONS
    }
    chunks = tuple(
        HeapChunkState(region.base, region.size, bytes(region.data))
        for region in sorted(vm.heap.live.values(), key=lambda r: r.base)
    )
    files = tuple(
        sorted(
            (file.path, file.position)
            for file in vm.fd_table.open_files.values()
        )
    )
    layouts: dict[str, SectionLayout] = {}
    for name in sections:
        entries: list[tuple[str, int, int]] = []
        offset = 0
        for region in vm.sections.get(name, []):
            entries.append((region.tag, offset, region.size))
            offset += region.size
        layouts[name] = tuple(entries)
    return ProgramSnapshot(
        sections=sections,
        heap_chunks=chunks,
        open_files=files,
        rand_state=vm.rand_state,
        live_heap_bytes=vm.heap.live_bytes,
        layouts=layouts,
    )


def diff_snapshots(
    ground_truth: ProgramSnapshot,
    observed: ProgramSnapshot,
    mask: "NondetMask | None" = None,
) -> SnapshotDelta:
    """Compare two snapshots, ignoring bytes covered by *mask*."""
    delta = SnapshotDelta()
    for name, expected in ground_truth.sections.items():
        actual = observed.sections.get(name, b"")
        if expected == actual and len(expected) == len(actual):
            continue
        masked = mask.section_offsets(name) if mask is not None else frozenset()
        offsets = [
            i
            for i in range(max(len(expected), len(actual)))
            if i not in masked
            and (i >= len(expected) or i >= len(actual) or expected[i] != actual[i])
        ]
        if offsets:
            delta.section_diffs[name] = offsets

    expected_chunks = _chunk_multiset(ground_truth.heap_chunks)
    observed_chunks = _chunk_multiset(observed.heap_chunks)
    if expected_chunks != observed_chunks:
        delta.heap_diff = (
            f"live chunk sets differ: ground truth has "
            f"{ground_truth.heap_chunk_count} chunks "
            f"({ground_truth.live_heap_bytes} B), observed has "
            f"{observed.heap_chunk_count} chunks ({observed.live_heap_bytes} B)"
        )

    if ground_truth.open_files != observed.open_files:
        delta.file_diff = (
            f"open handles differ: {ground_truth.open_files!r} vs "
            f"{observed.open_files!r}"
        )

    if mask is None or not mask.ignore_rand:
        if ground_truth.rand_state != observed.rand_state:
            delta.rand_diff = (
                f"PRNG state {ground_truth.rand_state} vs {observed.rand_state}"
            )
    return delta


def _chunk_multiset(chunks: tuple[HeapChunkState, ...]) -> dict[tuple[int, int, bytes], int]:
    """Multiset keyed by (address, size, contents)."""
    out: dict[tuple[int, int, bytes], int] = {}
    for chunk in chunks:
        key = (chunk.address, chunk.size, chunk.contents)
        out[key] = out.get(key, 0) + 1
    return out


class NondetMask:
    """Bytes known to vary between identical fresh-process executions.

    Built by :func:`build_nondet_mask`: run the same input in N fresh
    processes and mark every byte that differs across runs.  This is
    the paper's §6.1.4 methodology for tolerating PRNG output and other
    natural non-determinism without weakening the equivalence claim.
    """

    def __init__(self) -> None:
        self._sections: dict[str, set[int]] = {}
        self.ignore_rand = False

    def add_section_offset(self, section: str, offset: int) -> None:
        self._sections.setdefault(section, set()).add(offset)

    def section_offsets(self, section: str) -> frozenset[int]:
        return frozenset(self._sections.get(section, ()))

    @property
    def masked_byte_count(self) -> int:
        return sum(len(s) for s in self._sections.values())

    def merge(self, other: "NondetMask") -> None:
        for section, offsets in other._sections.items():
            self._sections.setdefault(section, set()).update(offsets)
        self.ignore_rand = self.ignore_rand or other.ignore_rand


def build_nondet_mask(
    snapshots: list[ProgramSnapshot], granularity: str = "byte"
) -> NondetMask:
    """Derive a mask from repeated fresh-process snapshots of one input.

    ``granularity="byte"`` masks exactly the differing bytes (the
    paper's formulation); ``"variable"`` widens each differing byte to
    the whole global variable containing it, which converges with far
    fewer fresh runs when the non-determinism picks *which* element of
    an object to touch (e.g. a randomised cache slot).
    """
    if granularity not in ("byte", "variable"):
        raise ValueError(f"unknown mask granularity {granularity!r}")
    mask = NondetMask()
    if len(snapshots) < 2:
        return mask
    reference = snapshots[0]
    for other in snapshots[1:]:
        for name, expected in reference.sections.items():
            actual = other.sections.get(name, b"")
            for i in range(min(len(expected), len(actual))):
                if expected[i] != actual[i]:
                    if granularity == "variable":
                        start, size = reference.variable_extent(name, i)
                        for j in range(start, start + size):
                            mask.add_section_offset(name, j)
                    else:
                        mask.add_section_offset(name, i)
        if other.rand_state != reference.rand_state:
            mask.ignore_rand = True
    return mask
