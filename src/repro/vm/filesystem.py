"""In-VM filesystem and FILE-handle table.

The VM gives each simulated process a small virtual filesystem (path ->
bytes) and a stdio-like handle layer.  ``fopen`` returns a FILE* that is
an address in a dedicated handle segment — not real memory, so
dereferencing it traps, but null checks work naturally.

The kernel-style descriptor limit is enforced here: a persistent
process that opens the input file every iteration without closing it
runs out of descriptors after :attr:`FDTable.MAX_OPEN` opens — one of
the false-crash pathologies ClosureX's FilePass eliminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vm.errors import CrashSite, TrapKind, VMTrap
from repro.vm.memory import HANDLE_BASE


class VirtualFS:
    """Trivial path -> contents store shared by a process."""

    def __init__(self) -> None:
        self.files: dict[str, bytes] = {}

    def write_file(self, path: str, data: bytes) -> None:
        self.files[path] = bytes(data)

    def read_file(self, path: str) -> bytes | None:
        return self.files.get(path)

    def exists(self, path: str) -> bool:
        return path in self.files

    def remove(self, path: str) -> None:
        self.files.pop(path, None)

    def clone(self) -> "VirtualFS":
        other = VirtualFS()
        other.files = dict(self.files)
        return other


@dataclass
class OpenFile:
    """One open FILE handle."""

    handle: int
    path: str
    data: bytes
    mode: str
    position: int = 0
    eof: bool = False
    writes: bytearray = field(default_factory=bytearray)

    @property
    def readable(self) -> bool:
        return "r" in self.mode or "+" in self.mode

    @property
    def writable(self) -> bool:
        return any(m in self.mode for m in ("w", "a", "+"))

    def remaining(self) -> int:
        return max(0, len(self.data) - self.position)


class FDTable:
    """Per-process table of open FILE handles with an OS-style limit."""

    MAX_OPEN = 64
    HANDLE_STRIDE = 32

    def __init__(self, fs: VirtualFS, max_open: int | None = None):
        self.fs = fs
        self.max_open = max_open if max_open is not None else self.MAX_OPEN
        self.open_files: dict[int, OpenFile] = {}
        self._next_handle = HANDLE_BASE
        self.total_opens = 0
        self.open_failures = 0

    def is_handle(self, address: int) -> bool:
        return address >= HANDLE_BASE

    def fopen(self, path: str, mode: str, site: CrashSite) -> int:
        """Open *path*; returns a FILE* address, or 0 (NULL) on failure.

        Exhausting the descriptor table raises an
        :data:`TrapKind.FD_EXHAUSTED` trap: the OS would make ``fopen``
        fail, and fuzz targets virtually never handle that gracefully,
        so we surface it as the observable false crash directly.
        """
        self.total_opens += 1
        if len(self.open_files) >= self.max_open:
            raise VMTrap(
                TrapKind.FD_EXHAUSTED,
                f"process has {len(self.open_files)} open handles (limit {self.max_open})",
                site,
            )
        data = self.fs.read_file(path)
        if "r" in mode and data is None:
            self.open_failures += 1
            return 0
        if data is None or mode.startswith("w"):
            data = b""
        handle = self._next_handle
        self._next_handle += self.HANDLE_STRIDE
        self.open_files[handle] = OpenFile(handle, path, data, mode)
        return handle

    def get(self, handle: int, site: CrashSite) -> OpenFile:
        file = self.open_files.get(handle)
        if file is None:
            if handle == 0:
                raise VMTrap(TrapKind.NULL_DEREF, "stdio call on NULL FILE*", site)
            raise VMTrap(
                TrapKind.INVALID_READ,
                f"stdio call on invalid or closed FILE* 0x{handle:x}",
                site,
            )
        return file

    def fclose(self, handle: int, site: CrashSite) -> int:
        file = self.get(handle, site)
        if file.writable and file.writes:
            self.fs.write_file(file.path, bytes(file.writes))
        del self.open_files[handle]
        return 0

    def fread(self, file: OpenFile, size: int) -> bytes:
        chunk = file.data[file.position:file.position + size]
        file.position += len(chunk)
        if len(chunk) < size:
            file.eof = True
        return chunk

    def fwrite(self, file: OpenFile, data: bytes) -> int:
        file.writes.extend(data)
        return len(data)

    def fseek(self, file: OpenFile, offset: int, whence: int) -> int:
        if whence == 0:      # SEEK_SET
            target = offset
        elif whence == 1:    # SEEK_CUR
            target = file.position + offset
        elif whence == 2:    # SEEK_END
            target = len(file.data) + offset
        else:
            return -1
        if target < 0:
            return -1
        file.position = target
        file.eof = False
        return 0

    def open_handle_count(self) -> int:
        return len(self.open_files)

    def open_handles(self) -> list[int]:
        return list(self.open_files.keys())

    def close_all(self) -> int:
        """Force-close every handle; returns how many were closed."""
        count = len(self.open_files)
        for handle in list(self.open_files):
            file = self.open_files.pop(handle)
            if file.writable and file.writes:
                self.fs.write_file(file.path, bytes(file.writes))
        return count
