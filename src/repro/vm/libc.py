"""Native libc layer of the MiniVM.

Declared-but-undefined functions in a MiniIR module resolve here at
call time, exactly as dynamic linking would resolve libc symbols for a
real binary.  Each native is a Python callable
``fn(vm, args, site) -> int | None`` operating on the VM's memory,
heap, and FD table.

This module also owns the canonical libc *signatures*
(:data:`LIBC_SIGNATURES`) that front-ends use to declare functions,
and :func:`declare_libc` to import them into a module.

Notable modelling choices:

- ``exit`` raises :class:`ProcessExit`: in an uninstrumented persistent
  loop this kills the whole process (the paper's motivation for the
  ExitPass).  The ClosureX ExitPass retargets calls to
  ``closurex_exit_hook``, whose native raises :class:`HarnessExit` —
  the ``longjmp`` back into the harness loop.
- ``rand``/``srand`` implement a deterministic LCG whose state is part
  of process state; it is the source of "natural non-determinism" used
  by the correctness experiments (paper §6.1.4, freetype).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.ir.module import Module
from repro.ir.types import FunctionType, I8_PTR, I32, I64, VOID
from repro.vm.errors import (
    CrashSite,
    HarnessExit,
    ProcessExit,
    TrapKind,
    VMTrap,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.interpreter import VM

NativeFn = Callable[["VM", list[int], CrashSite], "int | None"]

FILE_PTR = I8_PTR  # FILE* is modelled as an opaque i8*


LIBC_SIGNATURES: dict[str, FunctionType] = {
    # memory management
    "malloc": FunctionType(I8_PTR, [I64]),
    "calloc": FunctionType(I8_PTR, [I64, I64]),
    "realloc": FunctionType(I8_PTR, [I8_PTR, I64]),
    "free": FunctionType(VOID, [I8_PTR]),
    # memory / string operations
    "memcpy": FunctionType(I8_PTR, [I8_PTR, I8_PTR, I64]),
    "memmove": FunctionType(I8_PTR, [I8_PTR, I8_PTR, I64]),
    "memset": FunctionType(I8_PTR, [I8_PTR, I32, I64]),
    "memcmp": FunctionType(I32, [I8_PTR, I8_PTR, I64]),
    "strlen": FunctionType(I64, [I8_PTR]),
    "strcmp": FunctionType(I32, [I8_PTR, I8_PTR]),
    "strncmp": FunctionType(I32, [I8_PTR, I8_PTR, I64]),
    "strcpy": FunctionType(I8_PTR, [I8_PTR, I8_PTR]),
    "strchr": FunctionType(I8_PTR, [I8_PTR, I32]),
    "atoi": FunctionType(I32, [I8_PTR]),
    # stdio
    "fopen": FunctionType(FILE_PTR, [I8_PTR, I8_PTR]),
    "fclose": FunctionType(I32, [FILE_PTR]),
    "fread": FunctionType(I64, [I8_PTR, I64, I64, FILE_PTR]),
    "fwrite": FunctionType(I64, [I8_PTR, I64, I64, FILE_PTR]),
    "fseek": FunctionType(I32, [FILE_PTR, I64, I32]),
    "ftell": FunctionType(I64, [FILE_PTR]),
    "fgetc": FunctionType(I32, [FILE_PTR]),
    "feof": FunctionType(I32, [FILE_PTR]),
    "rewind": FunctionType(VOID, [FILE_PTR]),
    # process control
    "exit": FunctionType(VOID, [I32]),
    "abort": FunctionType(VOID, []),
    # diagnostics (side-effect sinks)
    "puts": FunctionType(I32, [I8_PTR]),
    "print_int": FunctionType(VOID, [I64]),
    # prng / environment
    "rand": FunctionType(I32, []),
    "srand": FunctionType(VOID, [I32]),
    "time": FunctionType(I64, []),
}

# Per-call base costs in virtual nanoseconds, roughly scaled to the
# relative costs of the real routines.  Byte-proportional parts are
# charged inside the natives.
NATIVE_BASE_COST: dict[str, int] = {
    "malloc": 45,
    "calloc": 55,
    "realloc": 60,
    "free": 35,
    "memcpy": 10,
    "memmove": 12,
    "memset": 8,
    "memcmp": 8,
    "strlen": 6,
    "strcmp": 8,
    "strncmp": 8,
    "strcpy": 10,
    "strchr": 6,
    "atoi": 10,
    # stdio routines that hit the kernel cost syscall-scale time
    # (open ~1-2us, read/close under a microsecond on a warm cache).
    "fopen": 2_500,
    "fclose": 1_200,
    "fread": 1_200,
    "fwrite": 1_200,
    "fseek": 220,
    "ftell": 10,
    "fgetc": 8,
    "feof": 5,
    "rewind": 25,
    "exit": 20,
    "abort": 20,
    "puts": 40,
    "print_int": 20,
    "rand": 8,
    "srand": 5,
}


def declare_libc(module: Module, names: list[str] | None = None) -> None:
    """Declare the requested libc symbols (all of them by default)."""
    for name in names if names is not None else LIBC_SIGNATURES:
        module.declare_function(name, LIBC_SIGNATURES[name])


# ---------------------------------------------------------------------------
# native implementations
# ---------------------------------------------------------------------------


def _poll_fault(vm: "VM", fault_site: str) -> None:
    """Chaos hook: raise an injected transient failure if one is armed.

    The raised exception is *not* a VMError, so it escapes the
    executors' trap classification and reaches the supervision layer
    as an infrastructure fault, never as target behaviour.
    """
    if vm.faults is not None:
        fault = vm.faults.poll(fault_site)
        if fault is not None:
            raise fault


def _native_malloc(vm: "VM", args: list[int], site: CrashSite) -> int:
    _poll_fault(vm, "malloc")
    size = _as_signed64(args[0])
    return vm.heap.malloc(size, site)


def _native_calloc(vm: "VM", args: list[int], site: CrashSite) -> int:
    return vm.heap.calloc(_as_signed64(args[0]), _as_signed64(args[1]), site)


def _native_realloc(vm: "VM", args: list[int], site: CrashSite) -> int:
    return vm.heap.realloc(args[0], _as_signed64(args[1]), site)


def _native_free(vm: "VM", args: list[int], site: CrashSite) -> None:
    vm.heap.free(args[0], site)


def _native_memcpy(vm: "VM", args: list[int], site: CrashSite) -> int:
    dst, src, size = args[0], args[1], _as_signed64(args[2])
    if size < 0:
        raise VMTrap(TrapKind.NEGATIVE_MEMCPY, f"memcpy with size {size}", site)
    if size:
        vm.charge(size // 8)
        vm.memory.write(dst, vm.memory.read(src, size, site), site)
    return dst


def _native_memset(vm: "VM", args: list[int], site: CrashSite) -> int:
    dst, value, size = args[0], args[1] & 0xFF, _as_signed64(args[2])
    if size < 0:
        raise VMTrap(TrapKind.NEGATIVE_MEMCPY, f"memset with size {size}", site)
    if size:
        vm.charge(size // 8)
        vm.memory.write(dst, bytes([value]) * size, site)
    return dst


def _native_memcmp(vm: "VM", args: list[int], site: CrashSite) -> int:
    a = vm.memory.read(args[0], _as_signed64(args[2]), site)
    b = vm.memory.read(args[1], _as_signed64(args[2]), site)
    vm.charge(len(a) // 8)
    if a == b:
        return 0
    return 1 if a > b else 0xFFFFFFFF  # -1 as u32


def _native_strlen(vm: "VM", args: list[int], site: CrashSite) -> int:
    s = vm.memory.read_cstring(args[0], site)
    vm.charge(len(s) // 8)
    return len(s)


def _native_strcmp(vm: "VM", args: list[int], site: CrashSite) -> int:
    a = vm.memory.read_cstring(args[0], site)
    b = vm.memory.read_cstring(args[1], site)
    if a == b:
        return 0
    return 1 if a > b else 0xFFFFFFFF


def _native_strncmp(vm: "VM", args: list[int], site: CrashSite) -> int:
    n = _as_signed64(args[2])
    a = vm.memory.read_cstring(args[0], site)[:n]
    b = vm.memory.read_cstring(args[1], site)[:n]
    if a == b:
        return 0
    return 1 if a > b else 0xFFFFFFFF


def _native_strcpy(vm: "VM", args: list[int], site: CrashSite) -> int:
    s = vm.memory.read_cstring(args[1], site)
    vm.memory.write(args[0], s + b"\x00", site)
    return args[0]


def _native_strchr(vm: "VM", args: list[int], site: CrashSite) -> int:
    s = vm.memory.read_cstring(args[0], site)
    index = s.find(bytes([args[1] & 0xFF]))
    return args[0] + index if index >= 0 else 0


def _native_atoi(vm: "VM", args: list[int], site: CrashSite) -> int:
    s = vm.memory.read_cstring(args[0], site)
    digits = b""
    stripped = s.strip()
    for i, ch in enumerate(stripped):
        if i == 0 and ch in b"+-":
            digits += bytes([ch])
        elif chr(ch).isdigit():
            digits += bytes([ch])
        else:
            break
    try:
        return int(digits) & 0xFFFFFFFF
    except ValueError:
        return 0


def _native_fopen(vm: "VM", args: list[int], site: CrashSite) -> int:
    _poll_fault(vm, "fopen")
    path = vm.memory.read_cstring(args[0], site).decode("latin-1")
    mode = vm.memory.read_cstring(args[1], site).decode("latin-1")
    return vm.fd_table.fopen(path, mode, site)


def _native_fclose(vm: "VM", args: list[int], site: CrashSite) -> int:
    return vm.fd_table.fclose(args[0], site)


def _native_fread(vm: "VM", args: list[int], site: CrashSite) -> int:
    _poll_fault(vm, "fread")
    buf, size, count, handle = args
    file = vm.fd_table.get(handle, site)
    total = _as_signed64(size) * _as_signed64(count)
    if total < 0:
        raise VMTrap(TrapKind.NEGATIVE_MEMCPY, f"fread with size {total}", site)
    data = vm.fd_table.fread(file, total)
    if data:
        vm.charge(len(data) // 8)
        vm.memory.write(buf, data, site)
    return len(data) // _as_signed64(size) if size else 0


def _native_fwrite(vm: "VM", args: list[int], site: CrashSite) -> int:
    buf, size, count, handle = args
    file = vm.fd_table.get(handle, site)
    total = _as_signed64(size) * _as_signed64(count)
    data = vm.memory.read(buf, total, site) if total > 0 else b""
    vm.charge(len(data) // 8)
    return vm.fd_table.fwrite(file, data) // _as_signed64(size) if size else 0


def _native_fseek(vm: "VM", args: list[int], site: CrashSite) -> int:
    file = vm.fd_table.get(args[0], site)
    return vm.fd_table.fseek(file, _as_signed64(args[1]), args[2]) & 0xFFFFFFFF


def _native_ftell(vm: "VM", args: list[int], site: CrashSite) -> int:
    return vm.fd_table.get(args[0], site).position


def _native_fgetc(vm: "VM", args: list[int], site: CrashSite) -> int:
    file = vm.fd_table.get(args[0], site)
    data = vm.fd_table.fread(file, 1)
    return data[0] if data else 0xFFFFFFFF  # EOF == -1


def _native_feof(vm: "VM", args: list[int], site: CrashSite) -> int:
    return 1 if vm.fd_table.get(args[0], site).eof else 0


def _native_rewind(vm: "VM", args: list[int], site: CrashSite) -> None:
    vm.fd_table.fseek(vm.fd_table.get(args[0], site), 0, 0)


def _native_exit(vm: "VM", args: list[int], site: CrashSite) -> None:
    raise ProcessExit(args[0])


def _native_abort(vm: "VM", args: list[int], site: CrashSite) -> None:
    raise VMTrap(TrapKind.ABORT, "abort() called", site)


def _native_puts(vm: "VM", args: list[int], site: CrashSite) -> int:
    text = vm.memory.read_cstring(args[0], site)
    vm.record_output(text.decode("latin-1"))
    return 0


def _native_print_int(vm: "VM", args: list[int], site: CrashSite) -> None:
    vm.record_output(str(_as_signed64(args[0])))


def _native_rand(vm: "VM", args: list[int], site: CrashSite) -> int:
    vm.rand_state = (vm.rand_state * 1103515245 + 12345) & 0x7FFFFFFF
    return vm.rand_state


def _native_srand(vm: "VM", args: list[int], site: CrashSite) -> None:
    vm.rand_state = args[0] & 0x7FFFFFFF


def _native_time(vm: "VM", args: list[int], site: CrashSite) -> int:
    """Wall-clock stand-in: varies from process to process (it is the
    process boot sequence number), the classic source of seed
    non-determinism across fresh executions."""
    return vm.boot_time


def _native_closurex_exit_hook(vm: "VM", args: list[int], site: CrashSite) -> None:
    """ClosureX exitHook: ``longjmp`` back to the harness loop."""
    raise HarnessExit(args[0])


def _native_cov_guard(vm: "VM", args: list[int], site: CrashSite) -> None:
    """SanCov-style coverage guard injected by the CoveragePass."""
    vm.cov_guard(args[0])


def _as_signed64(value: int) -> int:
    value &= (1 << 64) - 1
    return value - (1 << 64) if value >= (1 << 63) else value


NATIVES: dict[str, NativeFn] = {
    "malloc": _native_malloc,
    "calloc": _native_calloc,
    "realloc": _native_realloc,
    "free": _native_free,
    "memcpy": _native_memcpy,
    "memmove": _native_memcpy,
    "memset": _native_memset,
    "memcmp": _native_memcmp,
    "strlen": _native_strlen,
    "strcmp": _native_strcmp,
    "strncmp": _native_strncmp,
    "strcpy": _native_strcpy,
    "strchr": _native_strchr,
    "atoi": _native_atoi,
    "fopen": _native_fopen,
    "fclose": _native_fclose,
    "fread": _native_fread,
    "fwrite": _native_fwrite,
    "fseek": _native_fseek,
    "ftell": _native_ftell,
    "fgetc": _native_fgetc,
    "feof": _native_feof,
    "rewind": _native_rewind,
    "exit": _native_exit,
    "abort": _native_abort,
    "puts": _native_puts,
    "print_int": _native_print_int,
    "rand": _native_rand,
    "srand": _native_srand,
    "time": _native_time,
    "closurex_exit_hook": _native_closurex_exit_hook,
    "__cov_guard": _native_cov_guard,
}

NATIVE_BASE_COST["closurex_exit_hook"] = 25
NATIVE_BASE_COST["__cov_guard"] = 2
