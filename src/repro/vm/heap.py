"""Heap allocator for the MiniVM.

Implements ``malloc`` / ``calloc`` / ``realloc`` / ``free`` semantics on
top of :class:`~repro.vm.memory.AddressSpace`, with full lifecycle
checking (double free, invalid free, use-after-free via the address
space's dead-region memory) and leak reporting.

The heap enforces a per-process budget: a persistent process that leaks
across test cases — exactly the failure mode the paper's §2 motivates —
will eventually raise :data:`TrapKind.OUT_OF_MEMORY`, producing the
"false crash" pathology that ClosureX's HeapPass prevents.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vm.errors import CrashSite, TrapKind, VMTrap
from repro.vm.memory import AddressSpace, MemoryRegion


@dataclass
class HeapStats:
    """Cumulative allocator statistics for one process lifetime."""

    allocations: int = 0
    frees: int = 0
    bytes_allocated: int = 0
    peak_live_bytes: int = 0


class Heap:
    """Checked heap allocator with leak accounting."""

    def __init__(self, space: AddressSpace, budget_bytes: int = 64 << 20):
        self.space = space
        self.budget_bytes = budget_bytes
        self.live: dict[int, MemoryRegion] = {}
        self.live_bytes = 0
        self.stats = HeapStats()

    def malloc(self, size: int, site: CrashSite, tag: str = "malloc") -> int:
        """Allocate *size* bytes; returns the chunk address (0 on size 0)."""
        if size < 0:
            raise VMTrap(TrapKind.OUT_OF_MEMORY, f"malloc with negative size {size}", site)
        if size == 0:
            return 0
        if self.live_bytes + size > self.budget_bytes:
            raise VMTrap(
                TrapKind.OUT_OF_MEMORY,
                f"heap budget exceeded: {self.live_bytes} live + {size} requested "
                f"> {self.budget_bytes}",
                site,
            )
        region = self.space.map_region(self.space.heap_segment, size, True, "heap", tag)
        self.live[region.base] = region
        self.live_bytes += size
        self.stats.allocations += 1
        self.stats.bytes_allocated += size
        self.stats.peak_live_bytes = max(self.stats.peak_live_bytes, self.live_bytes)
        return region.base

    def calloc(self, count: int, size: int, site: CrashSite) -> int:
        total = count * size
        if count < 0 or size < 0:
            raise VMTrap(TrapKind.OUT_OF_MEMORY, "calloc with negative size", site)
        return self.malloc(total, site, tag="calloc")  # regions start zeroed

    def realloc(self, address: int, size: int, site: CrashSite) -> int:
        if address == 0:
            return self.malloc(size, site, tag="realloc")
        old = self.live.get(address)
        if old is None:
            self._bad_free(address, site, verb="realloc")
        if size == 0:
            self.free(address, site)
            return 0
        new_address = self.malloc(size, site, tag="realloc")
        keep = min(old.size, size)
        new_region = self.live[new_address]
        new_region.data[:keep] = old.data[:keep]
        self.free(address, site)
        return new_address

    def free(self, address: int, site: CrashSite) -> None:
        if address == 0:
            return  # free(NULL) is a no-op, as in C
        region = self.live.pop(address, None)
        if region is None:
            self._bad_free(address, site, verb="free")
        self.live_bytes -= region.size
        self.stats.frees += 1
        self.space.unmap(region)

    def _bad_free(self, address: int, site: CrashSite, verb: str) -> None:
        dead = self.space.find_dead_region(address)
        if dead is not None and dead.kind == "heap" and dead.base == address:
            raise VMTrap(TrapKind.DOUBLE_FREE, f"{verb} of already-freed chunk 0x{address:x}", site)
        raise VMTrap(
            TrapKind.INVALID_FREE,
            f"{verb} of pointer 0x{address:x} that is not a live chunk base",
            site,
        )

    def chunk_size(self, address: int) -> int | None:
        region = self.live.get(address)
        return region.size if region is not None else None

    def leaked_chunks(self) -> list[MemoryRegion]:
        """Chunks still live — what ClosureX's chunk map sweeps."""
        return list(self.live.values())

    def live_chunk_count(self) -> int:
        return len(self.live)

    def snapshot_live_set(self) -> dict[int, bytes]:
        """Address -> contents of every live chunk (for state comparison)."""
        return {base: bytes(region.data) for base, region in self.live.items()}
