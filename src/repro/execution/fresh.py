"""Fresh-process execution: one new process per test case.

The slowest but trivially correct mechanism (paper §2): every test case
pays process creation, binary loading, and teardown.  Used as the
semantic ground truth by the correctness experiments and as the
left-most point of the mechanism-spectrum figure.
"""

from __future__ import annotations

from repro.execution.common import ExecResult, Executor, call_target
from repro.ir.module import Module
from repro.runtime.harness import DEFAULT_INPUT_PATH, IterationStatus
from repro.sim_os.kernel import Kernel
from repro.vm.filesystem import VirtualFS
from repro.vm.interpreter import VM


class FreshProcessExecutor(Executor):
    """``fork()+exec()`` of the target binary for every input."""

    mechanism = "fresh"

    def __init__(
        self,
        module: Module,
        image_bytes: int,
        kernel: Kernel,
        input_path: str = DEFAULT_INPUT_PATH,
        entry: str = "main",
    ):
        super().__init__(kernel)
        self.module = module
        self.image_bytes = image_bytes
        self.input_path = input_path
        self.entry = entry
        self.last_vm: VM | None = None

    def run(self, data: bytes) -> ExecResult:
        start_ns = self.clock.now_ns
        self.kernel.charge_dispatch()
        record = self.kernel.spawn(self.module.name, self.image_bytes)

        fs = VirtualFS()
        fs.write_file(self.input_path, data)
        vm = VM(self.module, fs=fs, **self.vm_kwargs())
        vm.load()
        vm.charge(vm.load_cost)
        vm.instruction_limit = self.exec_instruction_limit
        argc, argv = vm.setup_argv([self.module.name, self.input_path])
        entry_fn = self.module.get_function(self.entry)

        # exit() in a fresh process is just termination.
        status, return_code, trap = call_target(vm, entry_fn, [argc, argv])

        self.kernel.charge(vm.cost)
        self.kernel.reap(
            record, return_code,
            crashed=status is IterationStatus.CRASH, fresh=True,
        )
        self.last_vm = vm
        return self.finish_exec(
            status=status,
            return_code=return_code,
            trap=trap,
            coverage=vm.coverage_map,
            start_ns=start_ns,
            instructions=vm.instructions_executed,
        )
