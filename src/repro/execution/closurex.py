"""ClosureX execution: persistent speed with fresh-process correctness.

One resident process runs the ClosureX-instrumented target in the
harness loop (paper Listing 1); after every test case the harness
performs fine-grain restoration, so each iteration is semantically a
fresh execution.  Genuine crashes still kill the process — as they do
in reality — so the executor respawns the harness after a crash or
hang; those are rare enough that the amortised cost is negligible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.execution.common import ExecResult, Executor
from repro.integrity.faults import IntegrityFault
from repro.ir.module import Module
from repro.runtime.harness import ClosureXHarness, HarnessConfig
from repro.sim_os.kernel import Kernel, ProcessRecord
from repro.sim_os.pipes import ForkserverChannel
from repro.vm.filesystem import VirtualFS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (hints only)
    from repro.integrity.sentinel import IntegritySentinel


class ClosureXExecutor(Executor):
    """One persistent process with per-test-case state restoration."""

    mechanism = "closurex"

    def __init__(
        self,
        module: Module,
        image_bytes: int,
        kernel: Kernel,
        config: HarnessConfig | None = None,
        sentinel: "IntegritySentinel | None" = None,
    ):
        super().__init__(kernel)
        self.module = module
        self.image_bytes = image_bytes
        self.config = config if config is not None else HarnessConfig()
        self.fs = VirtualFS()
        self.harness: ClosureXHarness | None = None
        self.process: ProcessRecord | None = None
        self._parent: ProcessRecord | None = None
        self.channel = ForkserverChannel(kernel)
        self.last_restore = None
        # Optional state-integrity sentinel (repro.integrity): verifies
        # every restore against the pristine baseline and heals leaks.
        self.sentinel = sentinel

    def boot(self) -> None:
        # As in AFL++, the persistent target runs under a forkserver
        # parent, so post-crash restarts cost a fork, not a full spawn.
        self.channel.reset()
        self._parent = self.kernel.spawn(self.module.name, self.image_bytes)
        try:
            self.channel.handshake()
        except Exception:
            self.kernel.reap(self._parent, None, fresh=True)
            self._parent = None
            raise
        self.process = self.kernel.fork(self._parent, self.image_bytes)
        self._boot_harness()

    def _boot_harness(self, charge_load: bool = False) -> None:
        # The process image is inherited from the forkserver parent, so
        # per-(re)boot we charge only what the child itself runs.
        self.harness = ClosureXHarness(
            self.module,
            fs=self.fs,
            costs=self.kernel.costs,
            config=self.config,
            vm_counters=self.vm_kwargs(),
        )
        vm = self.harness.boot(charge_load=charge_load)
        self.kernel.charge(vm.cost)
        self._cost_mark = vm.cost
        if self.sentinel is not None:
            # (Re)capture the pristine baseline — every boot lands the
            # process in the same canonical state, so this is exact.
            self.sentinel.on_boot(self)

    def _respawn(self) -> None:
        """The persistent process died (crash/hang); the forkserver
        parent forks a replacement."""
        assert self.process is not None
        self.kernel.reap(self.process, None, crashed=True)
        self.process = self.kernel.fork(self._parent, self.image_bytes)
        self._boot_harness()
        self.stats.respawns += 1

    def run(self, data: bytes) -> ExecResult:
        if self.harness is None:
            self.boot()
        assert self.harness is not None and self.harness.vm is not None
        if self.sentinel is not None:
            # Known-divergent inputs replay their fresh-VM ground-truth
            # result instead of re-polluting the persistent process.
            replay = self.sentinel.check_quarantine(self, data)
            if replay is not None:
                self.stats.observe(replay)
                return replay
        start_ns = self.clock.now_ns
        self.kernel.charge_dispatch()
        self.harness.config.instruction_limit = self.exec_instruction_limit

        iteration = self.harness.run_test_case(data)
        vm = self.harness.vm
        self.kernel.charge(vm.cost - self._cost_mark)
        self._cost_mark = vm.cost
        coverage = vm.coverage_map
        self.last_restore = iteration.restore

        if self.faults is not None and iteration.restore is not None:
            # Chaos site: the fine-grain restoration itself failed.  The
            # persistent state can no longer be trusted, so the fault
            # escapes (uncounted) for the supervisor's degradation
            # ladder to handle: retry -> full respawn -> forkserver.
            fault = self.faults.poll("restore")
            if fault is not None:
                raise fault

        if self.sentinel is not None and iteration.restore is not None:
            try:
                self.sentinel.after_exec(self, data, iteration)
            except IntegrityFault:
                # In-place repair failed (or ground truth diverged):
                # the persistent process cannot be trusted.  Respawn it
                # now — the sentinel's next escalation rung — then let
                # the fault escape so the supervised ladder voids this
                # exec, retries the input, and can ultimately degrade
                # to forkserver mode.
                self._respawn()
                raise

        if not iteration.status.survivable:
            self._respawn()

        restore = iteration.restore
        return self.finish_exec(
            status=iteration.status,
            return_code=iteration.return_code,
            trap=iteration.trap,
            coverage=coverage,
            start_ns=start_ns,
            instructions=iteration.instructions,
            restore_ns=restore.restore_ns if restore is not None else 0,
            leaked_chunks=restore.leaked_chunks if restore is not None else 0,
        )

    def shutdown(self) -> None:
        if self.process is not None:
            self.kernel.reap(self.process, 0)
            self.process = None
        if self._parent is not None:
            self.kernel.reap(self._parent, 0, fresh=True)
            self._parent = None

    # -- checkpoint support ---------------------------------------------

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        if self.sentinel is not None:
            # Ledger + quarantine ride along so a resumed campaign
            # keeps every leak attribution and never re-executes a
            # known-divergent input.  The oracle baseline is excluded:
            # it is recaptured from the re-booted process.
            state["sentinel"] = self.sentinel.snapshot_state()
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        if self.sentinel is not None and state.get("sentinel") is not None:
            self.sentinel.restore_state(state["sentinel"])
