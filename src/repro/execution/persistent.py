"""Naive persistent execution: maximum speed, broken semantics.

The paper's motivating foil (§1-2): reuse one process for every test
case by looping back to the target's entry point, with *no* state
restoration.  Three pathologies emerge, all modelled here faithfully:

- **exit() kills the process** — the loop cannot continue, so the
  fuzzer must respawn the target, and fuzzed parsers call ``exit()``
  on malformed input constantly;
- **state pollution** — leaked heap chunks, dirtied globals, and
  leaked file handles persist into later test cases, producing missed
  crashes, false crashes (OOM / FD exhaustion), and order-dependent
  behaviour;
- **non-reproducibility** — a "crash" found this way may not reproduce
  in a fresh process.

The executor counts pollution events so the motivation experiment (E7)
can report them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.execution.common import ExecResult, Executor, call_target
from repro.ir.module import Module
from repro.passes.rename_main import TARGET_MAIN
from repro.runtime.harness import DEFAULT_INPUT_PATH, IterationStatus
from repro.sim_os.kernel import Kernel, ProcessRecord
from repro.vm.filesystem import VirtualFS
from repro.vm.interpreter import VM


@dataclass
class PollutionStats:
    """Residual-state accounting across the persistent lifetime."""

    peak_leaked_chunks: int = 0
    peak_leaked_bytes: int = 0
    peak_open_fds: int = 0
    dirty_global_iterations: int = 0


class NaivePersistentExecutor(Executor):
    """AFL++-persistent-mode-style loop with no restoration."""

    mechanism = "persistent"

    def __init__(
        self,
        module: Module,
        image_bytes: int,
        kernel: Kernel,
        input_path: str = DEFAULT_INPUT_PATH,
    ):
        super().__init__(kernel)
        if not module.has_function(TARGET_MAIN):
            raise ValueError(
                "persistent execution needs a renamed entry point; "
                "build the module with persistent_passes()"
            )
        self.module = module
        self.image_bytes = image_bytes
        self.input_path = input_path
        self.fs = VirtualFS()
        self.vm: VM | None = None
        self.process: ProcessRecord | None = None
        self._parent: ProcessRecord | None = None
        self.pollution = PollutionStats()
        self._argc = 0
        self._argv = 0
        self._baseline_globals: bytes = b""

    def boot(self) -> None:
        # Persistent targets run under a forkserver parent (as AFL++'s
        # persistent mode does), so restarts after exit()/crash cost a
        # fork rather than a full spawn.
        self._parent = self.kernel.spawn(self.module.name, self.image_bytes)
        self.process = self.kernel.fork(self._parent, self.image_bytes)
        self._build_vm(charge_load=False)

    def _build_vm(self, charge_load: bool) -> None:
        self.vm = VM(self.module, fs=self.fs, **self.vm_kwargs())
        self.vm.load()
        if charge_load:
            self.vm.charge(self.vm.load_cost)
        self._argc, self._argv = self.vm.setup_argv(
            [self.module.name, self.input_path]
        )
        self._baseline_globals = b"".join(
            self.vm.section_bytes(name)
            for name in sorted(self.vm.sections)
            if name != ".rodata"
        )

    def _respawn(self) -> None:
        """The persistent process died; the forkserver parent forks a
        replacement (the dominant cost of naive persistent mode on
        targets that exit() on malformed input)."""
        assert self.process is not None
        self.kernel.reap(self.process, None)
        self.process = self.kernel.fork(self._parent, self.image_bytes)
        self._build_vm(charge_load=False)
        self.stats.respawns += 1

    def run(self, data: bytes) -> ExecResult:
        if self.vm is None:
            self.boot()
        assert self.vm is not None
        vm = self.vm
        start_ns = self.clock.now_ns
        self.kernel.charge_dispatch()
        self.fs.write_file(self.input_path, data)
        vm.reset_coverage()
        vm.instruction_limit = vm.instructions_executed + self.exec_instruction_limit
        cost_before = vm.cost
        vm.charge(self.kernel.costs.loop_iteration_ns)
        target = self.module.get_function(TARGET_MAIN)

        instructions_before = vm.instructions_executed
        # A raw (unhooked) exit() kills the whole persistent process, so
        # it maps to PROCESS_EXIT rather than EXIT.
        status, return_code, trap = call_target(
            vm, target, [self._argc, self._argv],
            process_exit_status=IterationStatus.PROCESS_EXIT,
        )

        coverage = vm.coverage_map
        instructions = vm.instructions_executed - instructions_before
        residue = self._observe_pollution(vm)
        self.kernel.charge(vm.cost - cost_before)

        if not status.survivable:
            self._respawn()
        else:
            # The only cleanup a bare loop gets for free: the C stack
            # unwinds when target_main returns.
            vm.reset_stack_addresses()

        return self.finish_exec(
            status=status,
            return_code=return_code,
            trap=trap,
            coverage=coverage,
            start_ns=start_ns,
            instructions=instructions,
            **residue,
        )

    def _observe_pollution(self, vm: VM) -> dict[str, int]:
        """Update peak pollution stats; returns this iteration's residue
        (attached to the exec span as the paper's pollution evidence)."""
        stats = self.pollution
        leaked_chunks = vm.heap.live_chunk_count()
        leaked_bytes = vm.heap.live_bytes
        open_fds = vm.fd_table.open_handle_count()
        stats.peak_leaked_chunks = max(stats.peak_leaked_chunks, leaked_chunks)
        stats.peak_leaked_bytes = max(stats.peak_leaked_bytes, leaked_bytes)
        stats.peak_open_fds = max(stats.peak_open_fds, open_fds)
        current = b"".join(
            vm.section_bytes(name)
            for name in sorted(vm.sections)
            if name != ".rodata"
        )
        dirty = current != self._baseline_globals
        if dirty:
            stats.dirty_global_iterations += 1
        return {
            "leaked_chunks": leaked_chunks,
            "leaked_bytes": leaked_bytes,
            "open_fds": open_fds,
            "dirty_globals": int(dirty),
        }

    def shutdown(self) -> None:
        if self.process is not None:
            self.kernel.reap(self.process, 0)
            self.process = None
        if self._parent is not None:
            self.kernel.reap(self._parent, 0, fresh=True)
            self._parent = None
