"""Execution mechanisms: the paper's process-management spectrum."""

from repro.execution.closurex import ClosureXExecutor
from repro.execution.common import (
    DEFAULT_EXEC_INSTRUCTION_LIMIT,
    ExecResult,
    Executor,
    ExecutorStats,
    call_target,
    classify_trap,
)
from repro.execution.forkserver import ForkServerExecutor
from repro.execution.fresh import FreshProcessExecutor
from repro.execution.persistent import NaivePersistentExecutor, PollutionStats
from repro.execution.supervised import (
    RECOVERABLE_FAULTS,
    QuarantineRecord,
    SupervisedExecutor,
    SupervisionPolicy,
    SupervisionStats,
)

__all__ = [
    "ClosureXExecutor",
    "DEFAULT_EXEC_INSTRUCTION_LIMIT",
    "ExecResult",
    "Executor",
    "ExecutorStats",
    "ForkServerExecutor",
    "FreshProcessExecutor",
    "NaivePersistentExecutor",
    "PollutionStats",
    "QuarantineRecord",
    "RECOVERABLE_FAULTS",
    "SupervisedExecutor",
    "SupervisionPolicy",
    "SupervisionStats",
    "call_target",
    "classify_trap",
]
