"""Forkserver execution: AFL++'s baseline mechanism (paper §2, §5.3).

The fuzzer spawns the target *once*, pauses it at ``main``, and then
``fork()``\\ s a fresh copy-on-write child per test case.  Loading cost
is paid once; each test case pays fork + CoW page copies + child
teardown.  This is "the fastest correct process management mechanism"
that Table 5 benchmarks ClosureX against.
"""

from __future__ import annotations

from repro.execution.common import ExecResult, Executor, call_target
from repro.ir.module import Module
from repro.runtime.harness import DEFAULT_INPUT_PATH, IterationStatus
from repro.sim_os.kernel import Kernel, ProcessRecord
from repro.sim_os.pipes import ForkserverChannel
from repro.vm.filesystem import VirtualFS
from repro.vm.interpreter import VM


class ForkServerExecutor(Executor):
    """One resident parent; one CoW-forked child per test case."""

    mechanism = "forkserver"

    def __init__(
        self,
        module: Module,
        image_bytes: int,
        kernel: Kernel,
        input_path: str = DEFAULT_INPUT_PATH,
        entry: str = "main",
    ):
        super().__init__(kernel)
        self.module = module
        self.image_bytes = image_bytes
        self.input_path = input_path
        self.entry = entry
        self.fs = VirtualFS()
        self.parent: ProcessRecord | None = None
        self.channel = ForkserverChannel(kernel)
        self.footprint_bytes = 0
        self.last_vm: VM | None = None

    def boot(self) -> None:
        """Spawn the forkserver parent, park it at ``main``, and complete
        the control-pipe handshake (AFL's hello exchange)."""
        self.channel.reset()
        self.parent = self.kernel.spawn(self.module.name, self.image_bytes)
        parent_vm = VM(self.module, fs=self.fs)
        parent_vm.load()
        self.kernel.charge(parent_vm.load_cost)
        # The child's fork cost scales with the parent's mapped memory:
        # the binary image plus its loaded data segments.
        self.footprint_bytes = self.image_bytes + parent_vm.memory.footprint_bytes()
        try:
            self.channel.handshake()
        except Exception:
            # A dropped hello leaves no usable server behind: reap it so
            # a supervised retry starts from a clean slate.
            self.kernel.reap(self.parent, None, fresh=True)
            self.parent = None
            raise

    def run(self, data: bytes) -> ExecResult:
        if self.parent is None:
            self.boot()
        assert self.parent is not None
        start_ns = self.clock.now_ns
        self.kernel.charge_dispatch()
        child = self.kernel.fork(self.parent, self.footprint_bytes)
        try:
            self.channel.fork_roundtrip(child.pid)
        except Exception:
            # Pipe collapsed after the fork: the child is orphaned and
            # the server is unreachable — tear both down so the next
            # run() (or a supervised retry) re-boots from scratch.
            self.kernel.reap(child, None)
            self.kernel.reap(self.parent, None, fresh=True)
            self.parent = None
            raise

        self.fs.write_file(self.input_path, data)
        vm = VM(self.module, fs=self.fs, **self.vm_kwargs())
        vm.load()  # inherits the parent's image: no load cost charged
        vm.instruction_limit = self.exec_instruction_limit
        argc, argv = vm.setup_argv([self.module.name, self.input_path])
        entry_fn = self.module.get_function(self.entry)

        status, return_code, trap = call_target(vm, entry_fn, [argc, argv])

        self.kernel.charge(vm.cost)
        self.kernel.charge_cow(vm.memory.bytes_written)
        self.kernel.reap(
            child, return_code, crashed=status is IterationStatus.CRASH
        )
        self.last_vm = vm
        return self.finish_exec(
            status=status,
            return_code=return_code,
            trap=trap,
            coverage=vm.coverage_map,
            start_ns=start_ns,
            instructions=vm.instructions_executed,
        )

    def shutdown(self) -> None:
        if self.parent is not None:
            self.kernel.reap(self.parent, 0)
            self.parent = None
