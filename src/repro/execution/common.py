"""Shared executor interfaces.

An *executor* is one point on the paper's execution-mechanism spectrum:
given raw test-case bytes, run the target once and report what
happened, charging every kernel and runtime cost to a shared virtual
clock.  All four mechanisms present the same interface so the fuzzer is
mechanism-agnostic — exactly how AFL++ treats its forkserver vs
persistent modes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.harness import IterationStatus
from repro.sim_os.kernel import Kernel
from repro.vm.errors import VMTrap

#: Default per-test-case instruction budget (hang detection).
DEFAULT_EXEC_INSTRUCTION_LIMIT = 2_000_000


@dataclass
class ExecResult:
    """Outcome of executing one test case under some mechanism."""

    status: IterationStatus
    return_code: int | None
    trap: VMTrap | None
    coverage: bytearray            # live view of the AFL-style map
    ns: int                        # virtual time consumed, all-in
    instructions: int = 0

    @property
    def is_crash(self) -> bool:
        return self.status is IterationStatus.CRASH

    @property
    def is_hang(self) -> bool:
        return self.status is IterationStatus.HANG


@dataclass
class ExecutorStats:
    """Cumulative per-executor counters."""

    execs: int = 0
    crashes: int = 0
    hangs: int = 0
    clean_exits: int = 0
    normal_returns: int = 0
    respawns: int = 0
    total_ns: int = 0

    def observe(self, result: ExecResult) -> None:
        self.execs += 1
        self.total_ns += result.ns
        if result.status is IterationStatus.CRASH:
            self.crashes += 1
        elif result.status is IterationStatus.HANG:
            self.hangs += 1
        elif result.status is IterationStatus.OK:
            self.normal_returns += 1
        else:
            self.clean_exits += 1

    def execs_per_virtual_second(self) -> float:
        if self.total_ns == 0:
            return 0.0
        return self.execs / (self.total_ns / 1e9)


class Executor:
    """Base class for the four execution mechanisms."""

    mechanism = "<abstract>"

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.stats = ExecutorStats()
        self.exec_instruction_limit = DEFAULT_EXEC_INSTRUCTION_LIMIT

    @property
    def clock(self):
        return self.kernel.clock

    def boot(self) -> None:
        """One-time setup before the first test case (may be a no-op)."""

    def run(self, data: bytes) -> ExecResult:
        raise NotImplementedError

    def shutdown(self) -> None:
        """Tear down any live process state."""
