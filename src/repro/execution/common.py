"""Shared executor interfaces.

An *executor* is one point on the paper's execution-mechanism spectrum:
given raw test-case bytes, run the target once and report what
happened, charging every kernel and runtime cost to a shared virtual
clock.  All four mechanisms present the same interface so the fuzzer is
mechanism-agnostic — exactly how AFL++ treats its forkserver vs
persistent modes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.runtime.harness import IterationStatus
from repro.sim_os.kernel import Kernel
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.vm.errors import (
    ExecutionLimitExceeded,
    HarnessExit,
    ProcessExit,
    VMTrap,
)

#: Default per-test-case instruction budget (hang detection).
DEFAULT_EXEC_INSTRUCTION_LIMIT = 2_000_000


def classify_trap(trap: VMTrap | None) -> str:
    """Stable label for a trap kind (metrics / trace attributes)."""
    return trap.kind.name.lower() if trap is not None else "none"


def call_target(
    vm,
    function,
    args: list[int],
    process_exit_status: IterationStatus = IterationStatus.EXIT,
) -> tuple[IterationStatus, int | None, VMTrap | None]:
    """Run the target entry point and classify its outcome.

    The exception-to-status mapping is identical across execution
    mechanisms; what differs is only the meaning of a raw ``exit()``
    call — termination for fresh/forkserver children
    (:attr:`IterationStatus.EXIT`), death of the resident process for
    the naive persistent loop (:attr:`IterationStatus.PROCESS_EXIT`).
    """
    status = IterationStatus.OK
    return_code: int | None = None
    trap: VMTrap | None = None
    try:
        return_code = vm.run_function(function, args)
    except ProcessExit as exit_:
        status = process_exit_status
        return_code = exit_.code
    except HarnessExit as exit_:
        # Only reachable for modules built with the ExitPass.
        status = IterationStatus.EXIT
        return_code = exit_.code
    except VMTrap as trap_:
        status = IterationStatus.CRASH
        trap = trap_
    except ExecutionLimitExceeded:
        status = IterationStatus.HANG
    return status, return_code, trap


@dataclass
class ExecResult:
    """Outcome of executing one test case under some mechanism."""

    status: IterationStatus
    return_code: int | None
    trap: VMTrap | None
    coverage: bytearray            # live view of the AFL-style map
    ns: int                        # virtual time consumed, all-in
    instructions: int = 0

    @property
    def is_crash(self) -> bool:
        return self.status is IterationStatus.CRASH

    @property
    def is_hang(self) -> bool:
        return self.status is IterationStatus.HANG


@dataclass
class ExecutorStats:
    """Cumulative per-executor counters."""

    execs: int = 0
    crashes: int = 0
    hangs: int = 0
    clean_exits: int = 0
    normal_returns: int = 0
    respawns: int = 0
    total_ns: int = 0

    def observe(self, result: ExecResult) -> None:
        self.execs += 1
        self.total_ns += result.ns
        if result.status is IterationStatus.CRASH:
            self.crashes += 1
        elif result.status is IterationStatus.HANG:
            self.hangs += 1
        elif result.status is IterationStatus.OK:
            self.normal_returns += 1
        else:
            self.clean_exits += 1

    def execs_per_virtual_second(self) -> float:
        if self.total_ns == 0:
            return 0.0
        return self.execs / (self.total_ns / 1e9)


class Executor:
    """Base class for the four execution mechanisms."""

    mechanism = "<abstract>"

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.stats = ExecutorStats()
        self.exec_instruction_limit = DEFAULT_EXEC_INSTRUCTION_LIMIT
        self.telemetry: Telemetry = NULL_TELEMETRY
        # Optional chaos injector (``faults.poll(site)``), shared with
        # the kernel and every VM this executor creates.
        self.faults = None
        # Cumulative profiling dicts, shared with every VM this executor
        # creates when profiling is enabled (see vm_counters()).
        self.opcode_counts: dict[str, int] = {}
        self.libc_counts: dict[str, int] = {}
        # Optional input-to-state compare tap
        # (:class:`repro.fuzzing.i2s.CmpObserver`), threaded into every
        # VM this executor creates; None keeps icmp/switch dispatch on
        # the uninstrumented path.
        self.cmp_observer = None

    @property
    def clock(self):
        return self.kernel.clock

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        """Adopt a campaign's telemetry stack (tracer shared with the
        kernel so process-lifecycle spans land in the same trace)."""
        self.telemetry = telemetry
        self.kernel.tracer = telemetry.tracer

    def attach_faults(self, faults) -> None:
        """Share one chaos injector with the kernel and future VMs."""
        self.faults = faults
        self.kernel.faults = faults

    def attach_cmp_observer(self, observer) -> None:
        """Share one compare-operand tap with every future VM.

        Must be attached before :meth:`boot` so persistent mechanisms
        bake it into their resident VM; respawned VMs re-read it from
        :meth:`vm_kwargs` automatically.
        """
        self.cmp_observer = observer

    def vm_kwargs(self) -> dict:
        """Keyword arguments every VM this executor builds should get:
        the profiling dicts (when enabled), the chaos hook, and the
        compare tap."""
        kwargs = self.vm_counters()
        if self.faults is not None:
            kwargs["faults"] = self.faults
        if self.cmp_observer is not None:
            kwargs["cmp_observer"] = self.cmp_observer
        return kwargs

    # -- checkpoint support ---------------------------------------------

    def snapshot_state(self) -> dict:
        """Checkpointable executor state.  Process-level state (booted
        VMs, harnesses) is deliberately excluded: a resumed executor
        re-boots, which is semantically identical for every correct
        mechanism because each test case starts from a fresh state."""
        return {
            "stats": dataclasses.replace(self.stats),
            "exec_instruction_limit": self.exec_instruction_limit,
        }

    def restore_state(self, state: dict) -> None:
        self.stats = dataclasses.replace(state["stats"])
        self.exec_instruction_limit = state["exec_instruction_limit"]

    def vm_counters(self) -> dict:
        """Keyword arguments threading the profiling dicts into a VM
        (empty — the zero-overhead path — unless profiling is on)."""
        if self.telemetry.enabled and self.telemetry.config.profile_vm:
            return {
                "opcode_counts": self.opcode_counts,
                "libc_counts": self.libc_counts,
            }
        return {}

    def finish_exec(
        self,
        *,
        status: IterationStatus,
        return_code: int | None,
        trap: VMTrap | None,
        coverage: bytearray,
        start_ns: int,
        instructions: int,
        **extra_attrs,
    ) -> ExecResult:
        """Common per-exec epilogue for all mechanisms: build the
        :class:`ExecResult`, update :class:`ExecutorStats`, and emit
        the telemetry exec span / metrics."""
        result = ExecResult(
            status=status,
            return_code=return_code,
            trap=trap,
            coverage=coverage,
            ns=self.clock.now_ns - start_ns,
            instructions=instructions,
        )
        self.stats.observe(result)
        telemetry = self.telemetry
        if telemetry.enabled:
            metrics = telemetry.metrics
            metrics.counter("exec.total").inc()
            metrics.counter(f"exec.status.{status.value}").inc()
            if trap is not None:
                metrics.counter(f"exec.trap.{classify_trap(trap)}").inc()
            metrics.histogram("exec.instructions").observe(instructions)
            metrics.histogram("exec.ns").observe(result.ns)
            tracer = telemetry.tracer
            if tracer.enabled:
                tracer.span_at(
                    "exec", start_ns, self.clock.now_ns,
                    mechanism=self.mechanism,
                    status=status.value,
                    trap=classify_trap(trap),
                    instructions=instructions,
                    **extra_attrs,
                )
        return result

    def boot(self) -> None:
        """One-time setup before the first test case (may be a no-op)."""

    def run(self, data: bytes) -> ExecResult:
        raise NotImplementedError

    def shutdown(self) -> None:
        """Tear down any live process state."""
