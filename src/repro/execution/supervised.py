"""Supervised execution: self-healing wrapper around any mechanism.

Production fuzzing platforms never let an infrastructure hiccup kill a
campaign: FuzzBench's runner restarts wedged fuzzers, AFL++ respawns a
forkserver whose pipes collapse, OSS-Fuzz quarantines inputs that keep
killing the harness.  :class:`SupervisedExecutor` brings that table
stake here.  It wraps one of the four mechanisms and layers on:

- **health-checked retry** with capped exponential backoff, charged in
  *virtual* nanoseconds to the shared clock — so recovery costs real
  budget yet stays fully deterministic;
- **respawn-on-fault**: a transient infrastructure failure (spawn/fork
  EAGAIN, pipe drop, malloc squeeze, corpus I/O error, coverage-shm
  corruption) voids the attempt — never counted as an exec — and the
  wrapped executor is rebuilt before the input is retried;
- **wedge detection**: an injected hang (instruction-budget wedge) is
  killed and retried like AFL's timeout watchdog;
- **per-input quarantine**: an input that repeatedly kills the executor
  stops being executed and replays its last observed result;
- **graceful degradation**: a ClosureX executor whose state restoration
  fails ``restore_escalation_threshold`` consecutive times escalates to
  a full respawn, and after ``degrade_after_escalations`` escalations
  falls back to a forkserver-mode executor built by the caller's
  ``fallback_factory``.

Stats correctness: ``SupervisedExecutor.stats`` observes only the final
result of each *logical* test case, so a retried execution is never
double-counted toward ``execs`` or execs/sec — the Table 5 invariant
the chaos regression tests pin down.  The wrapped executor's own stats
keep counting raw attempts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.chaos.faults import InjectedFault
from repro.chaos.plan import FaultInjector
from repro.execution.common import ExecResult, Executor
from repro.integrity.faults import IntegrityFault
from repro.runtime.harness import IterationStatus
from repro.sim_os.pipes import PipeBroken
from repro.telemetry import Telemetry
from repro.vm.interpreter import COVERAGE_MAP_SIZE

#: Exception types the supervisor treats as recoverable infrastructure
#: failures.  Everything else (VMTrap, ProcessExit, ...) is target
#: behaviour and passes through untouched.  IntegrityFault carries
#: ``site="restore"``, so an unrepairable restore leak detected by the
#: integrity sentinel rides the same escalation ladder as an injected
#: restore failure.
RECOVERABLE_FAULTS = (InjectedFault, PipeBroken, IntegrityFault)


@dataclass
class SupervisionPolicy:
    """Knobs of the retry / quarantine / degradation ladder."""

    max_retries: int = 4                   # faults tolerated per test case
    backoff_base_ns: int = 50_000          # first retry backoff
    backoff_cap_ns: int = 2_000_000        # exponential backoff ceiling
    max_kills_per_input: int = 3           # executor kills before quarantine
    restore_escalation_threshold: int = 3  # consecutive restore faults
    degrade_after_escalations: int = 2     # escalations before fallback mode
    # Budget an injected wedge leaves the target (must starve even the
    # smallest simulated target, which runs in a few dozen instructions).
    wedge_instruction_limit: int = 16


@dataclass
class SupervisionStats:
    """What the supervisor did over the campaign."""

    recoveries: int = 0
    retries: int = 0
    backoff_ns: int = 0
    respawns: int = 0
    escalations: int = 0
    degradations: int = 0
    quarantined_inputs: int = 0
    quarantine_hits: int = 0
    gave_up: int = 0
    recovered_by_site: dict[str, int] = field(default_factory=dict)


@dataclass
class QuarantineRecord:
    """One input barred from further execution."""

    data: bytes
    result: ExecResult
    reason: str
    at_ns: int
    kills: int


def _input_key(data: bytes) -> str:
    return hashlib.sha1(data).hexdigest()[:16]


class SupervisedExecutor(Executor):
    """Self-healing wrapper presenting the plain Executor interface."""

    def __init__(
        self,
        inner: Executor,
        policy: SupervisionPolicy | None = None,
        injector: FaultInjector | None = None,
        fallback_factory=None,
    ):
        # inner must exist before Executor.__init__ runs: the base
        # constructor assigns exec_instruction_limit, whose property
        # setter below forwards to the wrapped executor.
        self.inner = inner
        super().__init__(inner.kernel)
        self.policy = policy if policy is not None else SupervisionPolicy()
        self.injector = injector
        self.fallback_factory = fallback_factory
        self.supervision = SupervisionStats()
        self.quarantine: dict[str, QuarantineRecord] = {}
        self._hang_kills: dict[str, int] = {}
        self._consecutive_restore_faults = 0
        self._degraded = False
        if injector is not None:
            inner.attach_faults(injector)
            self.faults = injector
            injector.attach(injector.telemetry, self.kernel.clock)

    # -- interface delegation -------------------------------------------

    @property
    def mechanism(self) -> str:  # type: ignore[override]
        return self.inner.mechanism

    @property
    def exec_instruction_limit(self) -> int:  # type: ignore[override]
        return self.inner.exec_instruction_limit

    @exec_instruction_limit.setter
    def exec_instruction_limit(self, value: int) -> None:
        self.inner.exec_instruction_limit = value

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        super().attach_telemetry(telemetry)
        self.inner.attach_telemetry(telemetry)
        if self.injector is not None:
            self.injector.attach(telemetry, self.kernel.clock)

    def attach_faults(self, faults) -> None:
        super().attach_faults(faults)
        self.inner.attach_faults(faults)

    def attach_cmp_observer(self, observer) -> None:
        super().attach_cmp_observer(observer)
        self.inner.attach_cmp_observer(observer)

    def shutdown(self) -> None:
        self.inner.shutdown()

    # -- lifecycle ------------------------------------------------------

    def boot(self) -> None:
        """Boot the wrapped executor, retrying transient boot faults."""
        attempt = 0
        while True:
            try:
                self.inner.boot()
                return
            except RECOVERABLE_FAULTS as fault:
                attempt += 1
                self._note_recovery(fault, attempt)
                if attempt > self.policy.max_retries:
                    raise
                self._charge_backoff(attempt)

    def healthy(self) -> bool:
        """Cheap liveness probe of the wrapped executor (the supervised
        analogue of AFL's 'is the forkserver still answering?')."""
        inner = self.inner
        channel = getattr(inner, "channel", None)
        if channel is not None and not channel.established:
            return False
        harness = getattr(inner, "harness", None)
        if harness is not None and harness.vm is None:
            return False
        return True

    # -- the supervised run loop ----------------------------------------

    def run(self, data: bytes) -> ExecResult:
        key = _input_key(data)
        record = self.quarantine.get(key)
        if record is not None:
            self.supervision.quarantine_hits += 1
            self.stats.observe(record.result)
            return record.result

        policy = self.policy
        start_ns = self.clock.now_ns
        attempts = 0
        wedged = self.injector is not None and \
            self.injector.poll("wedge") is not None
        while True:
            if attempts > 2 * policy.max_retries:
                return self._give_up(key, data, start_ns)
            saved_limit = self.inner.exec_instruction_limit
            try:
                if wedged:
                    # The injected wedge starves the target of its
                    # instruction budget — the watchdog will see a hang.
                    self.inner.exec_instruction_limit = \
                        policy.wedge_instruction_limit
                result = self.inner.run(data)
            except RECOVERABLE_FAULTS as fault:
                attempts += 1
                self._note_recovery(fault, attempts)
                self._charge_backoff(attempts)
                self._handle_fault(fault)
                continue
            finally:
                self.inner.exec_instruction_limit = saved_limit

            if wedged and result.is_hang:
                # Wedge confirmed: the inner executor already killed and
                # respawned the target; void the attempt and retry.
                wedged = False
                attempts += 1
                kills = self._hang_kills.get(key, 0) + 1
                self._hang_kills[key] = kills
                self._note_recovery(
                    InjectedFault("wedge", "wedged", attempts), attempts
                )
                self._charge_backoff(attempts)
                if kills >= policy.max_kills_per_input:
                    return self._quarantine(key, data, result, "wedge")
                continue
            wedged = False

            if self.injector is not None:
                shm_fault = self.injector.poll("shm")
                if shm_fault is not None:
                    # Corrupt the map the way a trashed shm segment
                    # would; the map sanity check rejects the exec.
                    self._scramble_coverage(result.coverage)
                    attempts += 1
                    self._note_recovery(shm_fault, attempts)
                    self._charge_backoff(attempts)
                    continue

            if result.is_hang:
                kills = self._hang_kills.get(key, 0) + 1
                self._hang_kills[key] = kills
                if kills >= policy.max_kills_per_input:
                    return self._quarantine(key, data, result, "hang")

            self._consecutive_restore_faults = 0
            self.stats.observe(result)
            return result

    # -- recovery internals ---------------------------------------------

    def _handle_fault(self, fault: Exception) -> None:
        """Decide how to heal after a recoverable fault."""
        site = getattr(fault, "site", "pipe")
        if site == "restore":
            self._consecutive_restore_faults += 1
            if (self._consecutive_restore_faults
                    >= self.policy.restore_escalation_threshold):
                self._consecutive_restore_faults = 0
                self.supervision.escalations += 1
                if (self.supervision.escalations
                        >= self.policy.degrade_after_escalations
                        and self.fallback_factory is not None
                        and not self._degraded):
                    self._degrade()
                    return
                self._respawn_inner()
            # Below the threshold the harness retries restoration in
            # place (modelled as: the next run restores successfully).
            return
        # Any other infrastructure fault leaves the wrapped executor
        # suspect (half-booted server, mid-execution abort): rebuild it
        # before retrying so the retry runs from a clean state.
        self._respawn_inner()

    def _respawn_inner(self) -> None:
        self.supervision.respawns += 1
        try:
            self.inner.shutdown()
        except RECOVERABLE_FAULTS:
            pass
        self.boot()

    def _degrade(self) -> None:
        """Fall back to the caller-provided (forkserver) executor."""
        try:
            self.inner.shutdown()
        except RECOVERABLE_FAULTS:
            pass
        limit = self.inner.exec_instruction_limit
        replacement: Executor = self.fallback_factory()
        replacement.exec_instruction_limit = limit
        if self.telemetry.enabled:
            replacement.attach_telemetry(self.telemetry)
        if self.injector is not None:
            replacement.attach_faults(self.injector)
        if self.cmp_observer is not None:
            replacement.attach_cmp_observer(self.cmp_observer)
        self.inner = replacement
        self._degraded = True
        self.supervision.degradations += 1
        self.boot()
        if self.telemetry.enabled and self.telemetry.tracer.enabled:
            self.telemetry.tracer.event(
                "supervisor.degrade", mechanism=replacement.mechanism,
            )

    def _charge_backoff(self, attempt: int) -> None:
        """Capped exponential backoff, charged to the virtual clock."""
        backoff = min(
            self.policy.backoff_base_ns << (attempt - 1),
            self.policy.backoff_cap_ns,
        )
        self.kernel.charge(backoff)
        self.supervision.backoff_ns += backoff
        self.supervision.retries += 1

    def _note_recovery(self, fault: Exception, attempt: int) -> None:
        site = getattr(fault, "site", "pipe")
        stats = self.supervision
        stats.recoveries += 1
        stats.recovered_by_site[site] = stats.recovered_by_site.get(site, 0) + 1
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("supervisor.recoveries").inc()
            self.telemetry.metrics.counter(f"supervisor.recovered.{site}").inc()
            if self.telemetry.tracer.enabled:
                self.telemetry.tracer.event(
                    "supervisor.recover", site=site, attempt=attempt,
                    detail=getattr(fault, "detail", ""),
                )

    def _scramble_coverage(self, coverage: bytearray) -> None:
        """Deterministically trash a coverage buffer (shm corruption)."""
        for index in range(0, len(coverage), 977):
            coverage[index] ^= 0xA5

    def _quarantine(self, key: str, data: bytes, result: ExecResult,
                    reason: str) -> ExecResult:
        self.quarantine[key] = QuarantineRecord(
            data=bytes(data), result=result, reason=reason,
            at_ns=self.clock.now_ns, kills=self._hang_kills.get(key, 0),
        )
        self.supervision.quarantined_inputs += 1
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("supervisor.quarantined").inc()
            if self.telemetry.tracer.enabled:
                self.telemetry.tracer.event(
                    "supervisor.quarantine", reason=reason, size=len(data),
                )
        self.stats.observe(result)
        return result

    def _give_up(self, key: str, data: bytes, start_ns: int) -> ExecResult:
        """Retry budget exhausted: quarantine the input and synthesize a
        hang-classified result so the campaign keeps moving."""
        self.supervision.gave_up += 1
        result = ExecResult(
            status=IterationStatus.HANG,
            return_code=None,
            trap=None,
            coverage=bytearray(COVERAGE_MAP_SIZE),
            ns=self.clock.now_ns - start_ns,
            instructions=0,
        )
        return self._quarantine(key, data, result, "fault-exhaustion")

    # -- checkpoint support ---------------------------------------------

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state.update(
            supervision=self.supervision,
            quarantine=dict(self.quarantine),
            hang_kills=dict(self._hang_kills),
            consecutive_restore_faults=self._consecutive_restore_faults,
            degraded=self._degraded,
            inner=self.inner.snapshot_state(),
            injector=(
                self.injector.snapshot_state()
                if self.injector is not None else None
            ),
        )
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self.supervision = state["supervision"]
        self.quarantine = dict(state["quarantine"])
        self._hang_kills = dict(state["hang_kills"])
        self._consecutive_restore_faults = state["consecutive_restore_faults"]
        self._degraded = state["degraded"]
        self.inner.restore_state(state["inner"])
        if self.injector is not None and state["injector"] is not None:
            self.injector.restore_state(state["injector"])
