"""HeapPass: reroute malloc-family calls through ClosureX's tracking wrappers.

Paper §4.2.2 / Figure 5: ClosureX declares wrappers (``myMalloc``...)
and rewrites every call to ``malloc``/``calloc``/``realloc``/``free``
with ``replaceAllUsesWith``.  At runtime the wrappers maintain a chunk
map of live allocations; after each test case the harness frees every
chunk the target leaked.

The pass also supports the paper's §7.2 "custom memory allocators"
extension: extra allocator symbol names can be mapped onto the wrapper
semantics (``extra_allocators={"xmalloc": "malloc"}``).
"""

from __future__ import annotations

from repro.ir.module import Module
from repro.passes.base import ModulePass, PassResult

#: original symbol -> ClosureX wrapper symbol
HEAP_WRAPPERS = {
    "malloc": "closurex_malloc",
    "calloc": "closurex_calloc",
    "realloc": "closurex_realloc",
    "free": "closurex_free",
}


class HeapPass(ModulePass):
    """Table 3's heap pass: route malloc-family calls through the
    harness's chunk map so leaked chunks are freed on restore."""

    name = "HeapPass"

    def __init__(self, extra_allocators: dict[str, str] | None = None):
        """*extra_allocators* maps custom symbol -> standard semantic
        ('malloc', 'calloc', 'realloc' or 'free')."""
        self.extra_allocators = dict(extra_allocators or {})
        for semantic in self.extra_allocators.values():
            if semantic not in HEAP_WRAPPERS:
                raise ValueError(f"unknown allocator semantic {semantic!r}")

    def run(self, module: Module) -> PassResult:
        result = PassResult(self.name)
        for original_name, wrapper_name in HEAP_WRAPPERS.items():
            self._reroute(module, original_name, wrapper_name, result)
        for custom_name, semantic in self.extra_allocators.items():
            self._reroute(module, custom_name, HEAP_WRAPPERS[semantic], result)
        return result

    @staticmethod
    def _reroute(module: Module, original_name: str, wrapper_name: str,
                 result: PassResult) -> None:
        if not module.has_function(original_name):
            return
        original = module.get_function(original_name)
        if not original.is_declaration:
            return
        wrapper = module.declare_function(wrapper_name, original.function_type)
        rewritten = original.replace_all_uses_with(wrapper)
        result.bump(f"{original_name}_calls_rerouted", rewritten)
