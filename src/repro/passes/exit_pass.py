"""ExitPass: reroute the target's ``exit()`` calls to ClosureX's exitHook.

Paper §4.2.1: programs terminate with ``exit()`` on malformed input —
extremely common under fuzzing — which would tear down a persistent
process.  ClosureX saves the harness state with ``setjmp`` and replaces
each ``exit`` call inside the *instrumented target code* with a wrapper
that ``longjmp``\\ s back to the harness loop, unwinding the stack
without killing the process.

In MiniIR the wrapper is the declared function ``closurex_exit_hook``,
whose native raises :class:`~repro.vm.errors.HarnessExit`; the Python
harness catches it, which is the ``setjmp``/``longjmp`` pair of the
paper's Listing 1.  Calls originating in external libraries (our libc
natives) are untouched, matching the paper's "leave libc's exits
alone" rule.
"""

from __future__ import annotations

from repro.ir.module import Module
from repro.ir.types import FunctionType, I32, VOID
from repro.passes.base import ModulePass, PassResult

EXIT_HOOK = "closurex_exit_hook"
HOOKABLE = ("exit", "abort")


class ExitPass(ModulePass):
    """Table 3's exit() pass: rewrite ``exit`` calls into a longjmp
    back to the harness loop so the process survives."""

    name = "ExitPass"

    def __init__(self, hook_abort: bool = False):
        # The paper hooks exit(); abort() is a crash signal the fuzzer
        # must still observe, so hooking it is off by default.
        self.targets = ("exit", "abort") if hook_abort else ("exit",)

    def run(self, module: Module) -> PassResult:
        result = PassResult(self.name)
        hook = module.declare_function(EXIT_HOOK, FunctionType(VOID, [I32]))
        for name in self.targets:
            if not module.has_function(name):
                continue
            original = module.get_function(name)
            if not original.is_declaration:
                continue  # target defines its own exit(); leave it be
            rewritten = original.replace_all_uses_with(hook)
            result.bump(f"{name}_calls_rerouted", rewritten)
        return result
