"""GlobalPass: segregate writable globals into ``closure_global_section``.

Paper §4.2.2 / Figures 3-4: the pass walks every global variable in the
module and asks ``isConstant()``; every *modifiable* global is moved
into a dedicated binary section via ``setSection``.  At run time the
harness learns the section's bounds from the loader (the paper uses
``readelf``; the MiniVM loader exposes section address/size directly)
and snapshots/restores it bytewise around each test case.

Keeping truly constant data (string literals, lookup tables) out of the
section keeps the per-iteration copy small — that is the pass's whole
performance point.  The optional *restrict_to* set (from a trusted
:class:`repro.analysis.pollution.PollutionReport`) pushes the idea one
step further: writable globals the target provably never modifies stay
in their default section, shrinking the snapshot to the state that can
actually change.
"""

from __future__ import annotations

from repro.ir.module import Module
from repro.passes.base import ModulePass, PassResult

CLOSURE_GLOBAL_SECTION = "closure_global_section"


class GlobalPass(ModulePass):
    """Table 3's globals pass: move writable globals into a dedicated
    section the harness snapshots at boot and restores per iteration."""

    name = "GlobalPass"

    def __init__(self, section: str = CLOSURE_GLOBAL_SECTION,
                 restrict_to: set[str] | None = None):
        self.section = section
        # When set, only these writable globals are relocated.  Callers
        # must pass a *proven* modified-set (PollutionReport with
        # trusted_globals) — an under-approximation here breaks restore
        # correctness.
        self.restrict_to = restrict_to

    def run(self, module: Module) -> PassResult:
        result = PassResult(self.name)
        for var in module.globals.values():
            if var.is_constant:
                result.details["constants_skipped"] = (
                    result.details.get("constants_skipped", 0) + 1
                )
                continue
            if self.restrict_to is not None and var.name not in self.restrict_to:
                result.details["globals_elided"] = (
                    result.details.get("globals_elided", 0) + 1
                )
                continue
            if var.section != self.section:
                var.set_section(self.section)
                result.bump("globals_relocated")
        return result
