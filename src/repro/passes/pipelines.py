"""Canonical pass pipelines for building fuzz targets.

- :func:`closurex_pipeline` — the full ClosureX instrumentation (the
  five passes of the paper's Table 3) plus the shared coverage
  instrumentation.
- :func:`baseline_pipeline` — what an AFL++ build gets: coverage
  instrumentation only; process management is the executor's job.
- :func:`pollution_aware_pipeline` — ClosureX instrumentation guided by
  the static pollution classifier: passes for provably-untouched state
  dimensions are elided, and with a trusted report the GlobalPass
  relocates only the globals the target can actually modify.

All pipelines take the *same* coverage seed so the baseline and
ClosureX builds of a target share identical edge ids, keeping coverage
numbers directly comparable (paper §5.3).  Skipping non-coverage passes
cannot perturb edge ids: those passes never add or remove basic blocks,
so the seeded id sequence is unchanged.

Every pipeline accepts ``optimize=True`` to follow instrumentation with
the validated IR optimizer (:mod:`repro.analysis.opt`): each transform
must survive strict-SSA verification, a structural self-check, and —
given ``optimize_seeds`` — differential replay proving bit-identical
observations against the unoptimized module.  Off by default.
"""

from __future__ import annotations

from repro.analysis.pollution import PollutionAnalyzer, PollutionReport
from repro.ir.module import Module
from repro.passes.base import ModulePass, PassManager, PassResult
from repro.telemetry.metrics import NULL_METRICS, MetricsRegistry
from repro.telemetry.tracer import NULL_TRACER, Tracer
from repro.passes.coverage import CoveragePass
from repro.passes.exit_pass import ExitPass
from repro.passes.file_pass import FilePass
from repro.passes.global_pass import GlobalPass
from repro.passes.heap_pass import HeapPass
from repro.passes.rename_main import RenameMainPass

#: Paper Table 3: the ClosureX passes and their one-line functionality.
PASS_TABLE: dict[str, str] = {
    "RenameMainPass": "Rename target's main",
    "HeapPass": "Inject tracking of target's heap memory",
    "FilePass": "Inject tracking of target's file descriptors",
    "GlobalPass": "Move target's writable globals into a separate memory section",
    "ExitPass": "Rename target's exit calls",
}


def closurex_passes(
    coverage_seed: int | None = None,
    extra_allocators: dict[str, str] | None = None,
    skip: set[str] | None = None,
) -> list[ModulePass]:
    """The ClosureX pipeline; *skip* names passes to drop (ablations)."""
    skip = skip or set()
    passes: list[ModulePass] = []
    for pass_ in (
        RenameMainPass(),
        ExitPass(),
        HeapPass(extra_allocators=extra_allocators),
        FilePass(),
        GlobalPass(),
    ):
        if pass_.name not in skip:
            passes.append(pass_)
    passes.append(CoveragePass(coverage_seed))
    return passes


def baseline_passes(coverage_seed: int | None = None) -> list[ModulePass]:
    """The AFL++-style build: coverage instrumentation only."""
    return [CoveragePass(coverage_seed)]


def persistent_passes(coverage_seed: int | None = None) -> list[ModulePass]:
    """The *naive* persistent-mode build (the paper's incorrect foil):
    the loop needs a callable entry point, but no state tracking is
    injected — exit() still kills the process, leaks accumulate."""
    return [RenameMainPass(), CoveragePass(coverage_seed)]


def pollution_aware_passes(
    report: PollutionReport,
    coverage_seed: int | None = None,
    extra_allocators: dict[str, str] | None = None,
) -> list[ModulePass]:
    """The ClosureX pipeline minus the passes *report* proves unnecessary.

    A clean dimension elides its pass outright; when the report's
    modified-globals set is trusted (no unknown-provenance stores), the
    GlobalPass additionally relocates only the globals the target can
    modify, shrinking the per-iteration snapshot.
    """
    skip = report.skip_passes()
    if report.trusted_globals:
        global_pass = GlobalPass(restrict_to=set(report.modified_globals))
    else:
        global_pass = GlobalPass()
    passes: list[ModulePass] = []
    for pass_ in (
        RenameMainPass(),
        ExitPass(),
        HeapPass(extra_allocators=extra_allocators),
        FilePass(),
        global_pass,
    ):
        if pass_.name not in skip:
            passes.append(pass_)
    passes.append(CoveragePass(coverage_seed))
    return passes


def optimize_build(
    module: Module,
    seeds: tuple[bytes, ...] = (),
    extra_allocators: dict[str, str] | None = None,
    metrics: MetricsRegistry = NULL_METRICS,
    tracer: Tracer = NULL_TRACER,
):
    """Run the validated optimizer over an instrumented *module*.

    Imported lazily: :mod:`repro.analysis.opt` replays modules through
    the VM stack, which itself imports this module for pipeline
    construction.  Returns the
    :class:`~repro.analysis.opt.optimizer.OptimizationReport`.
    """
    from repro.analysis.opt import optimize_module

    return optimize_module(
        module, seeds=seeds, extra_allocators=extra_allocators,
        metrics=metrics, tracer=tracer,
    )


def closurex_pipeline(
    module: Module,
    coverage_seed: int | None = None,
    extra_allocators: dict[str, str] | None = None,
    skip: set[str] | None = None,
    optimize: bool = False,
    optimize_seeds: tuple[bytes, ...] = (),
) -> list[PassResult]:
    """Instrument *module* in place for ClosureX execution."""
    manager = PassManager(closurex_passes(coverage_seed, extra_allocators, skip))
    results = manager.run(module)
    if optimize:
        optimize_build(module, optimize_seeds, extra_allocators)
    return results


def baseline_pipeline(
    module: Module,
    coverage_seed: int | None = None,
    optimize: bool = False,
    optimize_seeds: tuple[bytes, ...] = (),
) -> list[PassResult]:
    """Instrument *module* in place for baseline (AFL++) execution."""
    manager = PassManager(baseline_passes(coverage_seed))
    results = manager.run(module)
    if optimize:
        optimize_build(module, optimize_seeds)
    return results


def pollution_aware_pipeline(
    module: Module,
    coverage_seed: int | None = None,
    extra_allocators: dict[str, str] | None = None,
    report: PollutionReport | None = None,
    metrics: MetricsRegistry = NULL_METRICS,
    tracer: Tracer = NULL_TRACER,
    optimize: bool = False,
    optimize_seeds: tuple[bytes, ...] = (),
) -> tuple[list[PassResult], PollutionReport]:
    """Analyze then instrument *module* in place, eliding proven-clean passes.

    Runs the :class:`PollutionAnalyzer` on the raw module (unless a
    pre-computed *report* is supplied), builds the reduced pipeline, and
    returns both the pass results and the report so callers can hand it
    on to the runtime harness (which uses it to skip the matching
    restore sweeps).
    """
    if report is None:
        report = PollutionAnalyzer(
            module, extra_allocators=extra_allocators,
            metrics=metrics, tracer=tracer,
        ).run()
    manager = PassManager(
        pollution_aware_passes(report, coverage_seed, extra_allocators),
        tracer=tracer,
    )
    results = manager.run(module)
    if optimize:
        optimize_build(module, optimize_seeds, extra_allocators,
                       metrics=metrics, tracer=tracer)
    return results, report
