"""Canonical pass pipelines for building fuzz targets.

- :func:`closurex_pipeline` — the full ClosureX instrumentation (the
  five passes of the paper's Table 3) plus the shared coverage
  instrumentation.
- :func:`baseline_pipeline` — what an AFL++ build gets: coverage
  instrumentation only; process management is the executor's job.

Both pipelines take the *same* coverage seed so the baseline and
ClosureX builds of a target share identical edge ids, keeping coverage
numbers directly comparable (paper §5.3).
"""

from __future__ import annotations

from repro.ir.module import Module
from repro.passes.base import ModulePass, PassManager, PassResult
from repro.passes.coverage import CoveragePass
from repro.passes.exit_pass import ExitPass
from repro.passes.file_pass import FilePass
from repro.passes.global_pass import GlobalPass
from repro.passes.heap_pass import HeapPass
from repro.passes.rename_main import RenameMainPass

#: Paper Table 3: the ClosureX passes and their one-line functionality.
PASS_TABLE: dict[str, str] = {
    "RenameMainPass": "Rename target's main",
    "HeapPass": "Inject tracking of target's heap memory",
    "FilePass": "Inject tracking of target's file descriptors",
    "GlobalPass": "Move target's writable globals into a separate memory section",
    "ExitPass": "Rename target's exit calls",
}


def closurex_passes(
    coverage_seed: int | None = None,
    extra_allocators: dict[str, str] | None = None,
    skip: set[str] | None = None,
) -> list[ModulePass]:
    """The ClosureX pipeline; *skip* names passes to drop (ablations)."""
    skip = skip or set()
    passes: list[ModulePass] = []
    for pass_ in (
        RenameMainPass(),
        ExitPass(),
        HeapPass(extra_allocators=extra_allocators),
        FilePass(),
        GlobalPass(),
    ):
        if pass_.name not in skip:
            passes.append(pass_)
    passes.append(CoveragePass(coverage_seed))
    return passes


def baseline_passes(coverage_seed: int | None = None) -> list[ModulePass]:
    """The AFL++-style build: coverage instrumentation only."""
    return [CoveragePass(coverage_seed)]


def persistent_passes(coverage_seed: int | None = None) -> list[ModulePass]:
    """The *naive* persistent-mode build (the paper's incorrect foil):
    the loop needs a callable entry point, but no state tracking is
    injected — exit() still kills the process, leaks accumulate."""
    return [RenameMainPass(), CoveragePass(coverage_seed)]


def closurex_pipeline(
    module: Module,
    coverage_seed: int | None = None,
    extra_allocators: dict[str, str] | None = None,
    skip: set[str] | None = None,
) -> list[PassResult]:
    """Instrument *module* in place for ClosureX execution."""
    manager = PassManager(closurex_passes(coverage_seed, extra_allocators, skip))
    return manager.run(module)


def baseline_pipeline(module: Module, coverage_seed: int | None = None) -> list[PassResult]:
    """Instrument *module* in place for baseline (AFL++) execution."""
    manager = PassManager(baseline_passes(coverage_seed))
    return manager.run(module)
