"""RenameMainPass: rename the target's ``main`` to ``target_main``.

Paper §4.2.1 / Table 3: ClosureX provides its own harness ``main`` that
repeatedly invokes the target.  The pass finds the target's original
entry point and renames it (LLVM's ``Function::setName``) so the
harness entry point can take its place.
"""

from __future__ import annotations

from repro.ir.module import Module
from repro.passes.base import ModulePass, PassResult

TARGET_MAIN = "target_main"


class RenameMainPass(ModulePass):
    """Table 3's main() pass: rename ``main`` and emit the harness
    entry that loops test cases through it (paper Listing 1)."""

    name = "RenameMainPass"

    def __init__(self, original: str = "main", replacement: str = TARGET_MAIN):
        self.original = original
        self.replacement = replacement

    def run(self, module: Module) -> PassResult:
        result = PassResult(self.name)
        if not module.has_function(self.original):
            return result
        function = module.get_function(self.original)
        if function.is_declaration:
            return result
        module.rename_function(function, self.replacement)
        result.bump("renamed")
        return result
