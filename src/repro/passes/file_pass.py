"""FilePass: reroute file-handle routines through ClosureX's tracking hooks.

Paper §4.2.2: the OS caps open descriptors per process, so handles
leaked across iterations of a persistent loop eventually exhaust the
table and produce false crashes.  The pass rewrites ``fopen`` ->
``fopen_hook`` and ``fclose`` -> ``fclose_hook``; the hooks maintain a
handle map and the harness closes whatever the target leaked.

The same pattern extends to other resource-handle APIs (paper mentions
sockets and shared memory); *extra_opens*/*extra_closes* accept
additional symbol names to reroute through the same hooks.
"""

from __future__ import annotations

from repro.ir.module import Module
from repro.passes.base import ModulePass, PassResult

FOPEN_HOOK = "closurex_fopen_hook"
FCLOSE_HOOK = "closurex_fclose_hook"

FILE_WRAPPERS = {
    "fopen": FOPEN_HOOK,
    "fclose": FCLOSE_HOOK,
}


class FilePass(ModulePass):
    """Table 3's FILE pass: route fopen-family calls through the
    harness's handle tracker so leaked handles are closed on restore."""

    name = "FilePass"

    def __init__(self, extra_opens: list[str] | None = None,
                 extra_closes: list[str] | None = None):
        self.wrappers = dict(FILE_WRAPPERS)
        for name in extra_opens or []:
            self.wrappers[name] = FOPEN_HOOK
        for name in extra_closes or []:
            self.wrappers[name] = FCLOSE_HOOK

    def run(self, module: Module) -> PassResult:
        result = PassResult(self.name)
        for original_name, hook_name in self.wrappers.items():
            if not module.has_function(original_name):
                continue
            original = module.get_function(original_name)
            if not original.is_declaration:
                continue
            hook = module.declare_function(hook_name, original.function_type)
            rewritten = original.replace_all_uses_with(hook)
            result.bump(f"{original_name}_calls_rerouted", rewritten)
        return result
