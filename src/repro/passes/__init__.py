"""ClosureX compiler passes (paper Table 3) and pass infrastructure."""

from repro.passes.base import FunctionPass, ModulePass, PassManager, PassResult
from repro.passes.coverage import COV_GUARD, CoveragePass
from repro.passes.exit_pass import EXIT_HOOK, ExitPass
from repro.passes.file_pass import FCLOSE_HOOK, FOPEN_HOOK, FilePass
from repro.passes.global_pass import CLOSURE_GLOBAL_SECTION, GlobalPass
from repro.passes.heap_pass import HEAP_WRAPPERS, HeapPass
from repro.passes.pipelines import (
    PASS_TABLE,
    baseline_passes,
    baseline_pipeline,
    closurex_passes,
    closurex_pipeline,
    persistent_passes,
    pollution_aware_passes,
    pollution_aware_pipeline,
)
from repro.passes.rename_main import TARGET_MAIN, RenameMainPass

__all__ = [
    "FunctionPass", "ModulePass", "PassManager", "PassResult",
    "COV_GUARD", "CoveragePass",
    "EXIT_HOOK", "ExitPass",
    "FCLOSE_HOOK", "FOPEN_HOOK", "FilePass",
    "CLOSURE_GLOBAL_SECTION", "GlobalPass",
    "HEAP_WRAPPERS", "HeapPass",
    "PASS_TABLE", "baseline_passes", "baseline_pipeline",
    "closurex_passes", "closurex_pipeline", "persistent_passes",
    "pollution_aware_passes", "pollution_aware_pipeline",
    "TARGET_MAIN", "RenameMainPass",
]
