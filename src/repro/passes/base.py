"""Pass framework: module/function passes and the pass manager.

Mirrors LLVM's ``opt`` discipline: passes are small, composable
transformations over a module; the manager runs them in order and
(optionally) verifies the module after each one.  Every pass reports
what it changed through a :class:`PassResult`, which the tests and the
Figure 3-5 experiments use to assert the transformations happened.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.ir.module import Function, Module
from repro.ir.verifier import verify_module
from repro.telemetry.tracer import NULL_TRACER, Tracer


@dataclass
class PassResult:
    """What one pass did to one module."""

    pass_name: str
    changed: bool = False
    details: dict[str, int] = field(default_factory=dict)

    def bump(self, key: str, amount: int = 1) -> None:
        self.details[key] = self.details.get(key, 0) + amount
        if amount:
            self.changed = True

    def __str__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        return f"{self.pass_name}: {body or 'no changes'}"


class ModulePass:
    """Base class: transform a whole module."""

    name = "<module-pass>"

    def run(self, module: Module) -> PassResult:
        raise NotImplementedError


class FunctionPass(ModulePass):
    """Base class: transform one function at a time."""

    name = "<function-pass>"

    def run(self, module: Module) -> PassResult:
        result = PassResult(self.name)
        for function in list(module.defined_functions()):
            self.run_on_function(function, module, result)
        return result

    def run_on_function(self, function: Function, module: Module,
                        result: PassResult) -> None:
        raise NotImplementedError


class PassManager:
    """Runs a pipeline of passes over a module.

    An optional telemetry tracer receives one ``pass.run`` event per
    pass, carrying the wall-clock transform time (passes run at build
    time, outside any virtual clock) and the pass's rewrite counts.
    """

    def __init__(self, passes: list[ModulePass], verify_each: bool = True,
                 tracer: Tracer | None = None, strict_ssa: bool = True):
        self.passes = list(passes)
        self.verify_each = verify_each
        # Verify the SSA dominance invariant after every pass: passes
        # must never produce a def that fails to dominate a use.
        self.strict_ssa = strict_ssa
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.results: list[PassResult] = []

    def run(self, module: Module) -> list[PassResult]:
        self.results = []
        for pass_ in self.passes:
            wall_start = time.perf_counter_ns()
            result = pass_.run(module)
            wall_ns = time.perf_counter_ns() - wall_start
            self.results.append(result)
            if self.tracer.enabled:
                self.tracer.event(
                    "pass.run",
                    pass_name=result.pass_name,
                    module=module.name,
                    changed=result.changed,
                    wall_ns=wall_ns,
                    **{f"rewrites.{k}": v for k, v in result.details.items()},
                )
            if self.verify_each:
                verify_module(module, strict_ssa=self.strict_ssa)
        return self.results

    def result_for(self, pass_name: str) -> PassResult:
        for result in self.results:
            if result.pass_name == pass_name:
                return result
        raise KeyError(f"no result recorded for pass {pass_name!r}")
