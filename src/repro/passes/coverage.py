"""CoveragePass: SanCov-style edge-coverage instrumentation.

Both the AFL++ baseline and ClosureX builds use the *same* coverage
instrumentation, matching the paper's controlled comparison ("both use
the same hitcount-based edge coverage collection implementation,
loosely based on LLVM's Sanitizer Coverage Guards").

Each basic block gets a compile-time random location id; the injected
``__cov_guard(id)`` call performs the classic AFL update at run time::

    map[cur ^ prev]++;  prev = cur >> 1;

The id assignment is seeded deterministically from the module name so
builds are reproducible.
"""

from __future__ import annotations

import random

from repro.ir import cfg
from repro.ir.instructions import Call, Phi
from repro.ir.module import Module
from repro.ir.types import FunctionType, I32, VOID
from repro.ir.values import ConstantInt
from repro.ir.types import int_type
from repro.passes.base import ModulePass, PassResult
from repro.vm.interpreter import COVERAGE_MAP_SIZE

COV_GUARD = "__cov_guard"


class CoveragePass(ModulePass):
    """Instrument every basic-block edge with an AFL-style
    hitcount-map update (not a Table 3 pass, but required by the fuzzer)."""

    name = "CoveragePass"

    def __init__(self, seed: int | None = None):
        self.seed = seed

    def run(self, module: Module) -> PassResult:
        result = PassResult(self.name)
        guard = module.declare_function(COV_GUARD, FunctionType(VOID, [I32]))
        rng = random.Random(
            self.seed if self.seed is not None else _stable_seed(module.name)
        )
        i32 = int_type(32)
        for function in module.defined_functions():
            if function.name == COV_GUARD:
                continue
            # Stats only — every block still gets a guard, in layout
            # order, so the seeded id sequence (and thus edge ids) stays
            # identical across builds that share a seed.
            reachable = cfg.reachable_blocks(function)
            for block in function.blocks:
                if block not in reachable:
                    result.details["unreachable_blocks"] = (
                        result.details.get("unreachable_blocks", 0) + 1
                    )
                if _already_instrumented(block, guard):
                    continue
                location = rng.randrange(COVERAGE_MAP_SIZE)
                call = Call(guard, [ConstantInt(i32, location)])
                index = _first_non_phi_index(block)
                block.insert(index, call)
                result.bump("blocks_instrumented")
        return result


def _stable_seed(text: str) -> int:
    seed = 0xCBF29CE484222325
    for ch in text.encode():
        seed = ((seed ^ ch) * 0x100000001B3) & ((1 << 64) - 1)
    return seed


def _first_non_phi_index(block) -> int:
    for i, inst in enumerate(block.instructions):
        if not isinstance(inst, Phi):
            return i
    return len(block.instructions)


def _already_instrumented(block, guard) -> bool:
    for inst in block.instructions:
        if isinstance(inst, Call) and inst.callee is guard:
            return True
    return False
