"""Experiment E2 — Table 6: edge-coverage improvement.

Same campaigns as Table 5; each trial's final coverage is the number
of hit edge-map cells divided by the target's edge universe (static
CFG edges plus two dynamic pairs per direct call — the map cells a
complete exploration could hit).  Reported exactly like the paper's
Table 6: coverage %, % improvement of ClosureX over AFL++, and the
Mann-Whitney p-value per target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.campaign_runner import run_campaign
from repro.experiments.config import ExperimentConfig
from repro.experiments.stats import format_table, mann_whitney_p, mean
from repro.ir import cfg
from repro.targets import get_target


def edge_universe(target_name: str) -> int:
    """Denominator of the edge-coverage percentage for one target."""
    module = get_target(target_name).build_baseline()
    return cfg.edge_count(module) + 2 * cfg.call_site_count(module)


@dataclass
class Table6Row:
    """One benchmark's coverage row (edges per mechanism + stats)."""

    benchmark: str
    closurex_coverage: float        # percent
    aflpp_coverage: float           # percent
    improvement: float              # percent improvement
    p_value: float
    closurex_trials: list[float] = field(default_factory=list)
    aflpp_trials: list[float] = field(default_factory=list)


@dataclass
class Table6Result:
    """The reproduced Table 6: coverage across all benchmarks."""

    rows: list[Table6Row]
    average_improvement: float

    def render(self) -> str:
        body = [
            [
                row.benchmark,
                f"{row.closurex_coverage:.2f}%",
                f"{row.aflpp_coverage:.2f}%",
                f"{row.improvement:.2f}",
                f"{row.p_value:.3f}",
            ]
            for row in self.rows
        ]
        body.append(["Average", "", "", f"{self.average_improvement:.2f}", ""])
        return format_table(
            ["Benchmark", "ClosureX", "AFL++", "% Improvement", "p value"], body
        )


def run_table6(config: ExperimentConfig | None = None) -> Table6Result:
    config = config if config is not None else ExperimentConfig()
    rows: list[Table6Row] = []
    for target in config.targets:
        universe = edge_universe(target)
        closurex: list[float] = []
        aflpp: list[float] = []
        for trial in range(config.trials):
            seed = config.trial_seed(target, "any", trial)
            cx = run_campaign(target, "closurex", config.budget_ns, seed)
            fk = run_campaign(target, "forkserver", config.budget_ns, seed)
            closurex.append(100.0 * min(cx.edges_found, universe) / universe)
            aflpp.append(100.0 * min(fk.edges_found, universe) / universe)
        cx_mean, fk_mean = mean(closurex), mean(aflpp)
        improvement = 100.0 * (cx_mean - fk_mean) / fk_mean if fk_mean else 0.0
        rows.append(
            Table6Row(
                benchmark=target,
                closurex_coverage=cx_mean,
                aflpp_coverage=fk_mean,
                improvement=improvement,
                p_value=mann_whitney_p(closurex, aflpp),
                closurex_trials=closurex,
                aflpp_trials=aflpp,
            )
        )
    average = mean([row.improvement for row in rows])
    return Table6Result(rows=rows, average_improvement=average)
