"""Experiment sizing.

The paper runs 5 x 24-hour trials per configuration on Azure; we run
5 x N-virtual-millisecond trials and extrapolate throughput to the
24-hour horizon for reporting.  Ratios (speedups, improvements) are
horizon-independent.

Environment knobs (so CI runs stay quick and a full run is one export
away):

- ``REPRO_BUDGET_MS``  — virtual milliseconds per campaign (default 20)
- ``REPRO_TRIALS``     — trials per configuration (default 3)
- ``REPRO_TARGETS``    — comma-separated subset of target names
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.targets import target_names

#: The paper's horizon: 24 hours, in virtual nanoseconds.
HORIZON_24H_NS = 24 * 3600 * 10**9


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


def _env_targets() -> list[str]:
    value = os.environ.get("REPRO_TARGETS")
    if not value:
        return target_names()
    requested = [name.strip() for name in value.split(",") if name.strip()]
    known = set(target_names())
    unknown = [name for name in requested if name not in known]
    if unknown:
        raise ValueError(f"unknown targets in REPRO_TARGETS: {unknown}")
    return requested


@dataclass
class ExperimentConfig:
    """Sizing for one experiment run."""

    budget_ns: int = field(
        default_factory=lambda: _env_int("REPRO_BUDGET_MS", 20) * 1_000_000
    )
    trials: int = field(default_factory=lambda: _env_int("REPRO_TRIALS", 3))
    targets: list[str] = field(default_factory=_env_targets)
    base_seed: int = 1000

    def trial_seed(self, target: str, mechanism: str, trial: int) -> int:
        """Deterministic per-(target, mechanism, trial) fuzzer seed.

        The same trial index yields the same mutation schedule for both
        mechanisms, matching the paper's controlled comparison."""
        digest = 0
        for ch in f"{target}:{trial}".encode():
            digest = (digest * 33 + ch) & 0x7FFFFFFF
        return self.base_seed + digest
