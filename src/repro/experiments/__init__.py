"""Experiment harness: every table and figure of the paper's evaluation.

Index (see DESIGN.md §3 for the full mapping):

- E1 Table 5 (:func:`run_table5`) — test-case execution rate
- E2 Table 6 (:func:`run_table6`) — edge-coverage improvement
- E3 Table 7 (:func:`run_table7`) — time-to-bug
- E4 §6.1.4 (:func:`run_correctness`) — semantic-correctness validation
- E5 spectrum (:func:`run_spectrum`) — mechanism cost spectrum
- E6 figures 3-5 (:func:`run_global_pass_figure`, :func:`run_restore_lifecycle`)
- E7 motivation (:func:`run_motivation`) — persistent-mode pathologies
- E8 ablations (:func:`run_pass_ablation`, :func:`run_fd_rewind_ablation`)
- i2s-guards (:func:`run_i2s_guards`) — input-to-state time-to-guarded-edge

``python -m repro.experiments`` lists and runs these entry points from
the command line.  Beyond the paper's fixed tables, the
:mod:`repro.experiments.platform` subpackage runs arbitrary
(mechanism x target x seed x config) matrices with fuzzbench-style
statistics — see docs/experiments.md.
"""

from repro.experiments.ablation import (
    FdRewindResult,
    PassAblationResult,
    PassAblationRow,
    run_fd_rewind_ablation,
    run_pass_ablation,
)
from repro.experiments.campaign_runner import (
    MECHANISMS,
    build_executor,
    clear_campaign_cache,
    run_campaign,
)
from repro.experiments.config import HORIZON_24H_NS, ExperimentConfig
from repro.experiments.correctness_exp import (
    CorrectnessResult,
    CorrectnessRow,
    run_correctness,
)
from repro.experiments.figures import (
    GlobalPassFigure,
    MechanismPoint,
    RestoreLifecycleFigure,
    SpectrumResult,
    TimelineFigure,
    run_global_pass_figure,
    run_restore_lifecycle,
    run_spectrum,
    run_timeline,
)
from repro.experiments.i2s_exp import (
    GUARD_TARGETS,
    I2SGuardResult,
    I2SGuardRow,
    guard_cells,
    run_i2s_guards,
)
from repro.experiments.motivation import (
    DEMO_SOURCE,
    MotivationReport,
    build_demo_modules,
    run_motivation,
)
from repro.experiments.stats import (
    a12_magnitude,
    bootstrap_ci,
    format_count,
    format_table,
    mann_whitney_p,
    mann_whitney_u,
    mean,
    median,
    stddev,
    vargha_delaney_a12,
)
from repro.experiments.table5 import Table5Result, Table5Row, run_table5
from repro.experiments.table6 import Table6Result, Table6Row, edge_universe, run_table6
from repro.experiments.table7 import BUG_TARGETS, Table7Result, Table7Row, run_table7

__all__ = [
    "FdRewindResult", "PassAblationResult", "PassAblationRow",
    "run_fd_rewind_ablation", "run_pass_ablation",
    "MECHANISMS", "build_executor", "clear_campaign_cache", "run_campaign",
    "HORIZON_24H_NS", "ExperimentConfig",
    "CorrectnessResult", "CorrectnessRow", "run_correctness",
    "GlobalPassFigure", "MechanismPoint", "RestoreLifecycleFigure",
    "SpectrumResult", "TimelineFigure",
    "run_global_pass_figure", "run_restore_lifecycle", "run_spectrum",
    "run_timeline",
    "GUARD_TARGETS", "I2SGuardResult", "I2SGuardRow", "guard_cells",
    "run_i2s_guards",
    "DEMO_SOURCE", "MotivationReport", "build_demo_modules", "run_motivation",
    "a12_magnitude", "bootstrap_ci", "format_count", "format_table",
    "mann_whitney_p", "mann_whitney_u", "mean", "median", "stddev",
    "vargha_delaney_a12",
    "Table5Result", "Table5Row", "run_table5",
    "Table6Result", "Table6Row", "edge_universe", "run_table6",
    "BUG_TARGETS", "Table7Result", "Table7Row", "run_table7",
]
