"""Statistics helpers for the evaluation and the experiment platform.

The paper reports Mann-Whitney U p-values over 5 independent trials per
configuration (§5.4); :func:`mann_whitney_p` wraps scipy's exact test
the same way.  The experiment platform (``repro.experiments.platform``)
additionally ranks arms with the Vargha-Delaney Â₁₂ effect size and
bootstrap confidence intervals — the toolkit fuzzbench's ``stat_tests``
applies to fuzzer comparisons.
"""

from __future__ import annotations

import random

from scipy import stats


def mann_whitney_p(sample_a: list[float], sample_b: list[float]) -> float:
    """Two-sided Mann-Whitney U p-value; 1.0 when degenerate."""
    if not sample_a or not sample_b:
        return 1.0
    if set(sample_a) == set(sample_b) and len(set(sample_a)) == 1:
        return 1.0
    try:
        result = stats.mannwhitneyu(sample_a, sample_b, alternative="two-sided")
    except ValueError:
        return 1.0
    return float(result.pvalue)


def mann_whitney_u(sample_a: list[float], sample_b: list[float]) -> float:
    """The U statistic for *sample_a*: wins plus half-credit for ties.

    ``U_a = #{(a, b) : a > b} + 0.5 * #{(a, b) : a == b}`` over all
    ``len(a) * len(b)`` cross pairs — the direct-count definition, which
    for trial-sized samples (the paper uses 5 per configuration) is both
    exact and hand-checkable.  ``U_a + U_b = len(a) * len(b)``.
    """
    wins = 0.0
    for a in sample_a:
        for b in sample_b:
            if a > b:
                wins += 1.0
            elif a == b:
                wins += 0.5
    return wins


def vargha_delaney_a12(sample_a: list[float], sample_b: list[float]) -> float:
    """Vargha-Delaney Â₁₂: P(a > b) + 0.5 * P(a == b).

    The standard nonparametric effect size for fuzzer comparisons
    (Arcuri & Briand's recommendation): the probability that a random
    trial from *sample_a* beats one from *sample_b*, with ties split.
    0.5 means no effect; 1.0 means *a* always wins; by convention
    |Â₁₂ - 0.5| >= 0.21 is a "large" effect.  Returns 0.5 when either
    sample is empty (no evidence either way).
    """
    if not sample_a or not sample_b:
        return 0.5
    return mann_whitney_u(sample_a, sample_b) / (len(sample_a) * len(sample_b))


def a12_magnitude(a12: float) -> str:
    """Vargha-Delaney's verbal magnitude scale for an Â₁₂ value."""
    scaled = abs(a12 - 0.5)
    if scaled >= 0.21:
        return "large"
    if scaled >= 0.14:
        return "medium"
    if scaled >= 0.06:
        return "small"
    return "negligible"


def _quantile(ordered: list[float], q: float) -> float:
    """Linear-interpolation quantile of an already sorted sample."""
    if not ordered:
        return 0.0
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def bootstrap_ci(
    values: list[float],
    statistic=None,
    n_boot: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for *statistic*.

    Resamples *values* with replacement ``n_boot`` times using a local
    ``random.Random(seed)`` — fully deterministic for a fixed (values,
    seed) pair, which is what makes platform reports bit-reproducible —
    and returns the (lo, hi) percentile interval of the resampled
    statistic (default: :func:`median`).  Degenerate inputs collapse:
    an empty sample yields (0.0, 0.0), a single value (v, v).
    """
    if statistic is None:
        statistic = median
    if not values:
        return (0.0, 0.0)
    if len(values) == 1 or len(set(values)) == 1:
        point = float(statistic(values))
        return (point, point)
    rng = random.Random(seed)
    n = len(values)
    resampled = sorted(
        statistic([values[rng.randrange(n)] for _ in range(n)])
        for _ in range(n_boot)
    )
    alpha = (1.0 - confidence) / 2.0
    return (_quantile(resampled, alpha), _quantile(resampled, 1.0 - alpha))


def mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def median(values: list[float]) -> float:
    """The paper reports medians over 5 trials (§5.4)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def stddev(values: list[float]) -> float:
    """Sample standard deviation (Bessel-corrected); 0.0 when n < 2."""
    if len(values) < 2:
        return 0.0
    centre = mean(values)
    return (
        sum((v - centre) ** 2 for v in values) / (len(values) - 1)
    ) ** 0.5


def format_count(value: float) -> str:
    """Format a test-case count the way Table 5 does (e.g. ``379M``)."""
    if value >= 1e9:
        return f"{value / 1e9:.2f}B"
    if value >= 1e6:
        return f"{value / 1e6:.0f}M"
    if value >= 1e3:
        return f"{value / 1e3:.0f}K"
    return f"{value:.0f}"


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width text table (the benches print these)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: list[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
