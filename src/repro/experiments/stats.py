"""Statistics helpers for the evaluation (Mann-Whitney U, formatting).

The paper reports Mann-Whitney U p-values over 5 independent trials per
configuration (§5.4); :func:`mann_whitney_p` wraps scipy's exact test
the same way.
"""

from __future__ import annotations

from scipy import stats


def mann_whitney_p(sample_a: list[float], sample_b: list[float]) -> float:
    """Two-sided Mann-Whitney U p-value; 1.0 when degenerate."""
    if not sample_a or not sample_b:
        return 1.0
    if set(sample_a) == set(sample_b) and len(set(sample_a)) == 1:
        return 1.0
    try:
        result = stats.mannwhitneyu(sample_a, sample_b, alternative="two-sided")
    except ValueError:
        return 1.0
    return float(result.pvalue)


def mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def median(values: list[float]) -> float:
    """The paper reports medians over 5 trials (§5.4)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def stddev(values: list[float]) -> float:
    """Sample standard deviation (Bessel-corrected); 0.0 when n < 2."""
    if len(values) < 2:
        return 0.0
    centre = mean(values)
    return (
        sum((v - centre) ** 2 for v in values) / (len(values) - 1)
    ) ** 0.5


def format_count(value: float) -> str:
    """Format a test-case count the way Table 5 does (e.g. ``379M``)."""
    if value >= 1e9:
        return f"{value / 1e9:.2f}B"
    if value >= 1e6:
        return f"{value / 1e6:.0f}M"
    if value >= 1e3:
        return f"{value / 1e3:.0f}K"
    return f"{value:.0f}"


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width text table (the benches print these)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: list[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
