"""The measurer: pause a trial on a virtual-time cadence and snapshot it.

fuzzbench's measurer polls corpora from outside the fuzzer process; we
can do better because every campaign exposes a stepwise surface
(:meth:`~repro.fuzzing.campaign.Campaign.step_until`) driven by a
*virtual* clock.  :class:`Measurer` advances a trial one measurement
interval at a time, and at each pause records a snapshot — coverage-map
density, corpus size, execs, crash/hang counts, and the executor
ladder's restore/integrity counters — into the append-only results
store.  Pauses land between queue cycles and the mutation stages always
run against the true budget deadline, so a measured trial passes
through exactly the states of an unmeasured one: measurement is free of
observer effect on the virtual timeline.

Every snapshot is followed by an RPRCKPT1 campaign checkpoint, which
makes trials crash-safe *and* resumable: a killed platform run reloads
the checkpoint, trims any snapshots past it
(:meth:`~repro.experiments.platform.store.ResultsStore.truncate_after`),
and continues bit-identically — the finished stream is byte-equal to an
uninterrupted run's.

Multi-worker trials ride :class:`~repro.parallel.ParallelCampaign` with
the sync-barrier cadence as the measurement cadence, sampling through
the orchestrator's ``on_barrier`` observer; their coordinated barrier
checkpoints provide the same resume story.
"""

from __future__ import annotations

from repro.execution import SupervisedExecutor
from repro.execution.common import Executor
from repro.experiments.campaign_runner import build_executor
from repro.experiments.platform.spec import TrialSpec
from repro.experiments.platform.store import ResultsStore
from repro.fuzzing import Campaign
from repro.fuzzing.checkpoint import CheckpointError, load_checkpoint
from repro.parallel import ParallelCampaign, ParallelConfig
from repro.sim_os import Kernel
from repro.targets import get_target


def build_trial_executor(trial: TrialSpec) -> Executor:
    """Construct one trial's executor ladder from its spec.

    The mechanism core comes from the shared experiment builder —
    except a ClosureX trial with an integrity sentinel, which must be
    constructed with the sentinel in hand — and the spec's
    ``supervised`` option wraps the result in the self-healing
    supervisor the robustness layer provides.
    """
    kernel = Kernel()
    if trial.sentinel_digest_every and trial.arm.mechanism == "closurex":
        from repro.execution import ClosureXExecutor
        from repro.integrity import EscalationPolicy, IntegritySentinel
        spec = get_target(trial.target)
        sentinel = IntegritySentinel(EscalationPolicy(
            digest_every=trial.sentinel_digest_every,
        ))
        executor: Executor = ClosureXExecutor(
            spec.build_closurex(), spec.image_bytes, kernel,
            sentinel=sentinel,
        )
    else:
        executor = build_executor(trial.target, trial.arm.mechanism, kernel)
    if trial.supervised:
        executor = SupervisedExecutor(executor)
    return executor


def executor_health(executor) -> dict:
    """Restore/integrity counters from wherever the ladder keeps them.

    Looks through a supervisor wrapper for the sentinel, mirroring the
    checkpoint layer's integrity summary; everything defaults to zero
    so the snapshot schema is identical with and without the ladder.
    """
    supervision = getattr(executor, "supervision", None)
    sentinel = getattr(executor, "sentinel", None)
    if sentinel is None:
        sentinel = getattr(getattr(executor, "inner", None), "sentinel", None)
    health = {
        "recoveries": supervision.recoveries if supervision else 0,
        "respawns": supervision.respawns if supervision else 0,
        "degradations": supervision.degradations if supervision else 0,
        "quarantined": supervision.quarantined_inputs if supervision else 0,
        "integrity_checks": sentinel.stats.checks if sentinel else 0,
        "integrity_leaks": sentinel.stats.leaks if sentinel else 0,
        "integrity_repairs": sentinel.stats.repairs if sentinel else 0,
    }
    return health


class Measurer:
    """Runs trials to completion under cadence sampling (see module
    docstring); one instance is shared by a scheduler run."""

    def __init__(self, store: ResultsStore):
        self.store = store

    # -- snapshots ------------------------------------------------------

    def sample_campaign(self, trial: TrialSpec, k: int,
                         campaign: Campaign) -> dict:
        record = {
            "kind": "sample",
            "k": k,
            "t_ns": min(k * trial.measure_every_ns, trial.budget_ns),
            "clock_ns": campaign.clock.now_ns,
            "execs": campaign.execs,
            "edges": campaign.virgin.edges_found(),
            "corpus": len(campaign.corpus),
            "unique_crashes": campaign.triage.unique_count,
            "total_crashes": campaign.triage.total_crashes,
            "unique_hangs": campaign.triage.unique_hang_count,
            "total_hangs": campaign.triage.total_hangs,
        }
        record.update(executor_health(campaign.executor))
        metrics = campaign.telemetry.metrics
        if metrics.enabled:
            record["metrics"] = metrics.counter_values()
        return record

    def final_record(self, trial: TrialSpec, result) -> dict:
        return {
            "kind": "final",
            "trial_id": trial.trial_id,
            "target": trial.target,
            "arm": trial.arm.label,
            "mechanism": trial.arm.mechanism,
            "variant": trial.arm.variant,
            "trial_index": trial.trial_index,
            "seed": trial.seed,
            "budget_ns": trial.budget_ns,
            "n_workers": trial.n_workers,
            "execs": result.execs,
            "edges": result.edges_found,
            "corpus": result.corpus_size,
            "unique_crashes": result.unique_crashes,
            "total_crashes": result.total_crashes,
            "unique_hangs": result.unique_hangs,
            "elapsed_ns": result.elapsed_ns,
            "recoveries": result.recoveries,
            "quarantined": result.quarantined_inputs,
        }

    # -- single-worker trials -------------------------------------------

    def run_trial(self, trial: TrialSpec) -> dict:
        """Run (or resume) one trial to completion; returns the final
        record after appending it to the store.  A trial whose stream
        already ends in a final record is returned as-is, so re-running
        a finished experiment is a cheap no-op."""
        records = self.store.read(trial.trial_id)
        if records and records[-1].get("kind") == "final":
            return records[-1]
        if trial.n_workers > 1:
            return self.run_parallel_trial(trial)
        return self._run_campaign_trial(trial)

    def open_campaign(self, trial: TrialSpec) -> tuple[Campaign, int]:
        """A (campaign, next sample index) pair, resumed if possible."""
        config = trial.campaign_config()
        config.checkpoint_path = self.store.checkpoint_path(trial.trial_id)
        # Periodic checkpointing is disabled (interval past the budget);
        # the measurer checkpoints explicitly at every sample instead,
        # so checkpoint instants and sample instants coincide.
        config.checkpoint_interval_ns = trial.budget_ns * 4
        spec = get_target(trial.target)
        executor = build_trial_executor(trial)
        try:
            state = load_checkpoint(config.checkpoint_path)
            campaign = Campaign.from_state(state, executor, config)
            kept = self.store.truncate_after(
                trial.trial_id, state["clock_ns"]
            )
            return campaign, kept + 1
        except CheckpointError:
            self.store.reset_trial(trial.trial_id)
            return Campaign(executor, spec.seeds, config), 1

    def _run_campaign_trial(self, trial: TrialSpec) -> dict:
        campaign, next_k = self.open_campaign(trial)
        campaign.start()
        start_ns = campaign.run_start_ns
        deadline_ns = start_ns + trial.budget_ns
        k = next_k
        while True:
            pause_ns = min(start_ns + k * trial.measure_every_ns, deadline_ns)
            campaign.step_until(pause_ns)
            self.store.append(
                trial.trial_id, self.sample_campaign(trial, k, campaign)
            )
            campaign.checkpoint()
            if pause_ns >= deadline_ns:
                break
            k += 1
        result = campaign.finish_run()
        final = self.final_record(trial, result)
        self.store.append(trial.trial_id, final)
        return final

    # -- multi-worker trials --------------------------------------------

    def run_parallel_trial(self, trial: TrialSpec) -> dict:
        """One ParallelCampaign trial, sampled at sync barriers.

        Barrier samples merge what the orchestrator can see without
        unpickling worker state: summed execs, the hub's novelty map
        (a merged view of every globally novel discovery) and global
        corpus, and *summed* per-worker unique crash/hang counts — an
        upper bound until the final record's true merged dedup.
        """
        config = ParallelConfig(
            target=trial.target,
            n_workers=trial.n_workers,
            seed=trial.seed,
            budget_ns=trial.budget_ns,
            sync_every_ns=trial.sync_every_ns,
            mechanism=trial.arm.mechanism,
            supervised=trial.supervised,
            sentinel_digest_every=trial.sentinel_digest_every,
            checkpoint_path=self.store.checkpoint_path(trial.trial_id),
        )
        try:
            campaign = ParallelCampaign.resume(config.checkpoint_path)
            resumed_clock = min(
                campaign.round_index * trial.sync_every_ns, trial.budget_ns
            )
            self.store.truncate_after(trial.trial_id, resumed_clock)
        except (CheckpointError, OSError):
            self.store.reset_trial(trial.trial_id)
            campaign = ParallelCampaign(config)

        def on_barrier(round_index: int, deadline_ns: int, reports, hub):
            record = {
                "kind": "sample",
                "k": round_index,
                "t_ns": deadline_ns,
                "clock_ns": deadline_ns,
                "execs": sum(r.execs for r in reports),
                "edges": hub.virgin.edges_found(),
                "corpus": len(hub.corpus_hashes()),
                "unique_crashes": sum(r.unique_crashes for r in reports),
                "total_crashes": sum(r.total_crashes for r in reports),
                "unique_hangs": sum(r.unique_hangs for r in reports),
                "total_hangs": 0,
                "recoveries": 0, "respawns": 0, "degradations": 0,
                "quarantined": 0, "integrity_checks": 0,
                "integrity_leaks": 0, "integrity_repairs": 0,
            }
            self.store.append(trial.trial_id, record)

        campaign.on_barrier = on_barrier
        result = campaign.run()
        final = {
            "kind": "final",
            "trial_id": trial.trial_id,
            "target": trial.target,
            "arm": trial.arm.label,
            "mechanism": trial.arm.mechanism,
            "variant": trial.arm.variant,
            "trial_index": trial.trial_index,
            "seed": trial.seed,
            "budget_ns": trial.budget_ns,
            "n_workers": trial.n_workers,
            "execs": result.total_execs,
            "edges": result.merged_edges,
            "corpus": len(result.corpus_hashes),
            "unique_crashes": result.merged_unique_crashes,
            "total_crashes": sum(r.total_crashes for r in result.workers),
            "unique_hangs": result.merged_unique_hangs,
            "elapsed_ns": max(r.elapsed_ns for r in result.workers),
            "recoveries": sum(r.recoveries for r in result.workers),
            "quarantined": sum(
                r.quarantined_inputs for r in result.workers
            ),
        }
        self.store.append(trial.trial_id, final)
        return final
