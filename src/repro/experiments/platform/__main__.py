"""Command-line entry point for the experiment platform.

Examples::

    # the built-in demo matrix (2 mechanisms x 2 targets x 2 trials)
    python -m repro.experiments.platform --demo --out /tmp/exp

    # a custom matrix without writing a spec file
    python -m repro.experiments.platform --out /tmp/exp \\
        --targets md4c,giftext --mechanisms closurex,forkserver \\
        --trials 3 --budget-ms 8 --measure-ms 2

    # a spec file (see docs/experiments.md for the format)
    python -m repro.experiments.platform --spec exp.json --out /tmp/exp

    # continue a killed run: same command, same --out; finished trials
    # are skipped, half-finished ones resume from their checkpoints
    python -m repro.experiments.platform --spec exp.json --out /tmp/exp

The last lines of output are ``store digest:`` and ``report digest:``
— run the same spec twice into fresh directories and both match
bit-for-bit.
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from repro.experiments.platform.report import ReportGenerator
from repro.experiments.platform.scheduler import TrialScheduler
from repro.experiments.platform.spec import (
    MS,
    SPEC_MECHANISMS,
    ExperimentSpec,
    SpecError,
)
from repro.experiments.platform.store import ResultsStore
from repro.targets import target_names


def demo_spec() -> ExperimentSpec:
    """The built-in smoke matrix: small, fast, and fully featured."""
    return ExperimentSpec(
        name="demo",
        targets=["md4c", "giftext"],
        mechanisms=["closurex", "forkserver"],
        trials=2,
        budget_ns=4 * MS,
        measure_every_ns=1 * MS,
        base_seed=100,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.platform",
        description="Run a (mechanism x target x seed x config) "
                    "experiment matrix and generate a statistical "
                    "report.",
    )
    parser.add_argument("--spec", metavar="PATH",
                        help="experiment spec JSON file")
    parser.add_argument("--demo", action="store_true",
                        help="run the built-in demo matrix")
    parser.add_argument("--out", metavar="DIR",
                        help="results-store directory (default: a fresh "
                             "temporary directory)")
    parser.add_argument("--targets", metavar="A,B",
                        help="comma-separated targets (ad-hoc spec)")
    parser.add_argument("--mechanisms", metavar="A,B",
                        help=f"comma-separated mechanisms from "
                             f"{SPEC_MECHANISMS} (ad-hoc spec)")
    parser.add_argument("--trials", type=int, default=2,
                        help="trials per (target, arm) cell (default: 2)")
    parser.add_argument("--budget-ms", type=int, default=4,
                        help="per-trial budget in virtual ms (default: 4)")
    parser.add_argument("--measure-ms", type=int, default=1,
                        help="measurement cadence in virtual ms "
                             "(default: 1)")
    parser.add_argument("--seed", type=int, default=100,
                        help="base seed (default: 100)")
    parser.add_argument("--workers", type=int, default=1,
                        help="workers per trial; >1 uses ParallelCampaign "
                             "(default: 1)")
    parser.add_argument("--name", default="adhoc",
                        help="experiment name for ad-hoc specs")
    parser.add_argument("--max-live", type=int, default=4,
                        help="trials advanced concurrently (default: 4)")
    parser.add_argument("--report-only", action="store_true",
                        help="regenerate the report from an existing "
                             "--out store without running trials")
    parser.add_argument("--print-spec", action="store_true",
                        help="print the canonical spec JSON and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-trial progress lines")
    return parser


def spec_from_args(args) -> ExperimentSpec:
    """Resolve the spec from --spec / --demo / ad-hoc flags."""
    if args.spec:
        return ExperimentSpec.from_json_file(args.spec)
    if args.demo:
        return demo_spec()
    if not args.targets or not args.mechanisms:
        raise SpecError(
            "provide --spec, --demo, or both --targets and --mechanisms"
        )
    targets = [t.strip() for t in args.targets.split(",") if t.strip()]
    unknown = set(targets) - set(target_names())
    if unknown:
        raise SpecError(f"unknown targets: {sorted(unknown)}")
    return ExperimentSpec(
        name=args.name,
        targets=targets,
        mechanisms=[m.strip() for m in args.mechanisms.split(",")
                    if m.strip()],
        trials=args.trials,
        budget_ns=args.budget_ms * MS,
        measure_every_ns=args.measure_ms * MS,
        base_seed=args.seed,
        n_workers=args.workers,
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.report_only:
        if not args.out:
            print("error: --report-only needs --out", file=sys.stderr)
            return 2
        spec = None
    else:
        try:
            spec = spec_from_args(args)
        except SpecError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if args.print_spec:
            print(spec.canonical_json())
            return 0

    out = args.out or tempfile.mkdtemp(prefix="repro-experiment-")
    store = ResultsStore(out)
    if not args.report_only:
        log = (lambda message: None) if args.quiet else print
        scheduler = TrialScheduler(
            spec, store, max_live=args.max_live, log=log
        )
        scheduler.run()

    generator = ReportGenerator(store)
    report, digest = generator.write()
    print()
    print(generator.to_markdown(report))
    print(f"results store    : {out}")
    print(f"store digest: {store.digest()}")
    print(f"report digest: {digest}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
