"""The trial scheduler: drive a spec's trial matrix to completion.

fuzzbench's scheduler spawns one cloud instance per trial and polls;
ours exploits the virtual clock instead.  Every single-worker trial is
an independent simulation exposing the stepwise
``start/step_until/finish_run`` surface, so the scheduler keeps up to
``max_live`` trials open at once and advances them round-robin, one
measurement interval per turn — cooperative concurrency on the virtual
timeline.  All live trials grow their snapshot streams together (a
watcher of the results store sees the whole frontier move, exactly like
fuzzbench's dispatcher view), while each trial's virtual timeline —
and therefore every recorded byte — is unaffected by the interleaving.

Multi-worker trials (:class:`~repro.parallel.ParallelCampaign`) manage
their own worker fleet, so they occupy their slot for one full turn
rather than one interval.

Scheduling is crash-safe and resumable: trials already finished in the
store are skipped, half-finished trials resume from their RPRCKPT1
checkpoints, and the completed store is byte-identical to one produced
by an uninterrupted run — kill the platform at any point and re-run the
same command to continue.
"""

from __future__ import annotations

from repro.experiments.platform.measurer import Measurer
from repro.experiments.platform.spec import ExperimentSpec, TrialSpec
from repro.experiments.platform.store import ResultsStore


class _CampaignSlot:
    """One live single-worker trial, advanced an interval at a time."""

    def __init__(self, measurer: Measurer, trial: TrialSpec):
        self.measurer = measurer
        self.trial = trial
        self.campaign, self.k = measurer.open_campaign(trial)
        self.campaign.start()
        self.start_ns = self.campaign.run_start_ns
        self.deadline_ns = self.start_ns + trial.budget_ns
        self.final: dict | None = None

    def advance(self) -> bool:
        """Run one measurement interval; True when the trial finished."""
        trial = self.trial
        pause_ns = min(
            self.start_ns + self.k * trial.measure_every_ns, self.deadline_ns
        )
        self.campaign.step_until(pause_ns)
        self.measurer.store.append(
            trial.trial_id,
            self.measurer.sample_campaign(trial, self.k, self.campaign),
        )
        self.campaign.checkpoint()
        if pause_ns >= self.deadline_ns:
            result = self.campaign.finish_run()
            self.final = self.measurer.final_record(trial, result)
            self.measurer.store.append(trial.trial_id, self.final)
            return True
        self.k += 1
        return False


class _ParallelSlot:
    """One multi-worker trial; runs whole in a single turn."""

    def __init__(self, measurer: Measurer, trial: TrialSpec):
        self.measurer = measurer
        self.trial = trial
        self.final: dict | None = None

    def advance(self) -> bool:
        self.final = self.measurer.run_parallel_trial(self.trial)
        return True


class TrialScheduler:
    """Runs every trial of a spec through the measurer (see module
    docstring for the slot model and resume semantics)."""

    def __init__(self, spec: ExperimentSpec, store: ResultsStore,
                 max_live: int = 4, log=None):
        if max_live < 1:
            raise ValueError("max_live must be >= 1")
        self.spec = spec
        self.store = store
        self.measurer = Measurer(store)
        self.max_live = max_live
        self.log = log if log is not None else (lambda message: None)

    def run(self) -> list[dict]:
        """Drive the matrix to completion; returns the final records in
        spec enumeration order."""
        self.store.bind_spec(self.spec)
        trials = self.spec.enumerate_trials()
        finals: dict[str, dict] = {}
        pending: list[TrialSpec] = []
        for trial in trials:
            records = self.store.read(trial.trial_id)
            if records and records[-1].get("kind") == "final":
                finals[trial.trial_id] = records[-1]
                self.log(f"skip {trial.trial_id} (already complete)")
            else:
                pending.append(trial)

        live: list = []

        def refill() -> None:
            while pending and len(live) < self.max_live:
                trial = pending.pop(0)
                resumable = bool(self.store.read(trial.trial_id))
                slot = (
                    _ParallelSlot(self.measurer, trial)
                    if trial.n_workers > 1
                    else _CampaignSlot(self.measurer, trial)
                )
                live.append(slot)
                self.log(
                    f"{'resume' if resumable else 'start'} "
                    f"{trial.trial_id}"
                )

        refill()
        while live:
            for slot in list(live):
                if slot.advance():
                    live.remove(slot)
                    finals[slot.trial.trial_id] = slot.final
                    self.log(
                        f"done {slot.trial.trial_id}: "
                        f"{slot.final['execs']} execs, "
                        f"{slot.final['edges']} edges, "
                        f"{slot.final['unique_crashes']} crash(es)"
                    )
            refill()
        return [finals[trial.trial_id] for trial in trials]
