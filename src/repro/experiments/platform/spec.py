"""Experiment specifications: the (mechanism x target x seed x config)
matrix one platform run executes.

An :class:`ExperimentSpec` is a declarative description of a benchmark
experiment, fuzzbench-shaped: which *targets* to fuzz, which *arms* to
compare on each target (an arm is an execution mechanism plus an
optional named config variant — so "closurex" vs "closurex tuned with
double havoc energy" is as valid a comparison as "closurex" vs
"forkserver"), how many independent *trials* per (target, arm) cell,
the per-trial *virtual-time budget*, and the *measurement cadence* at
which the measurer samples coverage growth.

Everything is deterministic by construction: trial seeds are derived
from ``(base_seed, target, trial_index)`` only — the same trial index
replays the same mutation schedule under every arm, the paper's
controlled-comparison discipline — and the canonical JSON form (sorted
keys, no whitespace) gives the spec a stable digest that names the
experiment in the results store.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from repro.fuzzing.campaign import CampaignConfig

#: Virtual nanoseconds per virtual millisecond (CLI/spec sizing unit).
MS = 1_000_000

#: Mechanisms a spec may reference (the paper's execution spectrum).
SPEC_MECHANISMS = ("closurex", "forkserver", "persistent", "fresh")

#: CampaignConfig fields a variant may override.  Scheduling/diagnostic
#: fields (checkpoints, halts, telemetry) belong to the platform, not
#: the experiment definition, and are deliberately not overridable.
OVERRIDABLE_FIELDS = frozenset({
    "enable_deterministic", "det_stage_cap", "enable_trim",
    "trim_exec_cap", "havoc_base_energy", "max_input_size",
    "exec_instruction_limit",
})


class SpecError(ValueError):
    """An experiment spec that cannot be run as written."""


@dataclass(frozen=True)
class Arm:
    """One comparison arm: a mechanism plus a named config variant."""

    mechanism: str
    variant: str = "default"
    overrides: tuple[tuple[str, object], ...] = ()

    @property
    def label(self) -> str:
        """Human/report label; the bare mechanism for the default
        variant, ``mechanism@variant`` otherwise."""
        if self.variant == "default":
            return self.mechanism
        return f"{self.mechanism}@{self.variant}"


@dataclass(frozen=True)
class TrialSpec:
    """One scheduled trial: a cell of the matrix at one seed."""

    trial_id: str
    target: str
    arm: Arm
    trial_index: int
    seed: int
    budget_ns: int
    measure_every_ns: int
    n_workers: int = 1
    sync_every_ns: int = 0
    supervised: bool = False
    sentinel_digest_every: int = 0

    def campaign_config(self) -> CampaignConfig:
        """The trial's CampaignConfig with the arm's overrides applied."""
        config = CampaignConfig(budget_ns=self.budget_ns, seed=self.seed)
        return dataclasses.replace(config, **dict(self.arm.overrides))


@dataclass
class ExperimentSpec:
    """The full experiment matrix (see the module docstring)."""

    name: str
    targets: list[str]
    mechanisms: list[str]
    trials: int = 3
    budget_ns: int = 8 * MS
    measure_every_ns: int = 2 * MS
    base_seed: int = 0
    # Named config variants: each mechanism is crossed with each
    # variant, so {"default": {}, "hot": {"havoc_base_energy": 96}}
    # doubles the arm count.  Values are CampaignConfig overrides.
    variants: dict[str, dict] = field(default_factory=lambda: {"default": {}})
    # Multi-worker trials: >1 runs every trial as a ParallelCampaign of
    # this many shards, sampled at sync barriers.
    n_workers: int = 1
    sync_every_ns: int = 0            # 0 = measure_every_ns
    # Executor ladder options applied to every trial.
    supervised: bool = False
    sentinel_digest_every: int = 0

    def __post_init__(self) -> None:
        self.validate()

    # -- validation -----------------------------------------------------

    def validate(self) -> None:
        """Reject specs that cannot run (unknown mechanism/override)."""
        if not self.targets:
            raise SpecError("spec lists no targets")
        if not self.mechanisms:
            raise SpecError("spec lists no mechanisms")
        for mechanism in self.mechanisms:
            if mechanism not in SPEC_MECHANISMS:
                raise SpecError(
                    f"unknown mechanism {mechanism!r} "
                    f"(choose from {SPEC_MECHANISMS})"
                )
        if not self.variants:
            raise SpecError("spec lists no config variants")
        for variant, overrides in self.variants.items():
            unknown = set(overrides) - OVERRIDABLE_FIELDS
            if unknown:
                raise SpecError(
                    f"variant {variant!r} overrides unknown/locked "
                    f"CampaignConfig fields: {sorted(unknown)}"
                )
        if self.trials < 1:
            raise SpecError("trials must be >= 1")
        if self.budget_ns < 1 or self.measure_every_ns < 1:
            raise SpecError("budget_ns and measure_every_ns must be >= 1")
        if self.n_workers < 1:
            raise SpecError("n_workers must be >= 1")

    # -- derivations ----------------------------------------------------

    @property
    def arms(self) -> list[Arm]:
        """All (mechanism, variant) comparison arms, in spec order."""
        return [
            Arm(
                mechanism=mechanism,
                variant=variant,
                overrides=tuple(sorted(overrides.items())),
            )
            for mechanism in self.mechanisms
            for variant, overrides in sorted(self.variants.items())
        ]

    def trial_seed(self, target: str, trial_index: int) -> int:
        """Seed for (target, trial): identical across arms so every arm
        replays the same mutation schedule (paired comparison)."""
        digest = 0
        for ch in f"{target}:{trial_index}".encode():
            digest = (digest * 33 + ch) & 0x7FFFFFFF
        return self.base_seed + digest

    def enumerate_trials(self) -> list[TrialSpec]:
        """Every trial of the matrix, in deterministic order."""
        sync_every = self.sync_every_ns or self.measure_every_ns
        out: list[TrialSpec] = []
        for target in self.targets:
            for arm in self.arms:
                for trial_index in range(self.trials):
                    out.append(TrialSpec(
                        trial_id=(
                            f"{target}--{arm.mechanism}--{arm.variant}"
                            f"--t{trial_index}"
                        ),
                        target=target,
                        arm=arm,
                        trial_index=trial_index,
                        seed=self.trial_seed(target, trial_index),
                        budget_ns=self.budget_ns,
                        measure_every_ns=self.measure_every_ns,
                        n_workers=self.n_workers,
                        sync_every_ns=sync_every,
                        supervised=self.supervised,
                        sentinel_digest_every=self.sentinel_digest_every,
                    ))
        return out

    # -- serialisation --------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data form (round-trips through :meth:`from_dict`)."""
        return {
            "name": self.name,
            "targets": list(self.targets),
            "mechanisms": list(self.mechanisms),
            "trials": self.trials,
            "budget_ns": self.budget_ns,
            "measure_every_ns": self.measure_every_ns,
            "base_seed": self.base_seed,
            "variants": {k: dict(v) for k, v in self.variants.items()},
            "n_workers": self.n_workers,
            "sync_every_ns": self.sync_every_ns,
            "supervised": self.supervised,
            "sentinel_digest_every": self.sentinel_digest_every,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        """Build (and validate) a spec from its plain-data form."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SpecError(f"unknown spec fields: {sorted(unknown)}")
        if "name" not in data:
            raise SpecError("spec needs a name")
        return cls(**data)

    @classmethod
    def from_json_file(cls, path: str) -> "ExperimentSpec":
        """Load a spec from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def canonical_json(self) -> str:
        """Key-sorted, whitespace-free JSON — the digestable form."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """sha256 of the canonical JSON: the experiment's identity."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()
