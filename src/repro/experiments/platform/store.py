"""Append-only JSONL results store: one snapshot stream per trial.

Layout under the store root::

    spec.json                # the experiment's canonical spec
    trials/<trial_id>.jsonl  # one canonical-JSON record per line
    checkpoints/<trial_id>.ckpt[.N]  # RPRCKPT1 campaign checkpoints
    report.json / report.md  # written by the report generator

Each trial stream is a sequence of ``{"kind": "sample", ...}`` records
ordered by virtual time, terminated by exactly one ``{"kind": "final",
...}`` record.  Records are canonical JSON (sorted keys, no
whitespace), so the byte content of a stream — and therefore the
store's sha256 :meth:`ResultsStore.digest` — is a pure function of the
spec.  Appends are flushed line-by-line: a fuzzer-process death leaves
a valid prefix, and :meth:`ResultsStore.truncate_after` trims any
samples past the last campaign checkpoint so a resumed trial rejoins
its stream exactly where the checkpoint replays from.
"""

from __future__ import annotations

import hashlib
import json
import os


def canonical_line(record: dict) -> str:
    """One record in the store's canonical JSON form (no newline)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class StoreError(RuntimeError):
    """A results store that cannot be read or extended as asked."""


class ResultsStore:
    """Filesystem-backed, append-only experiment results (see module
    docstring for the layout and durability story).

    ``fsync_every`` batches the per-append ``os.fsync``: every append is
    still *flushed* (so the OS sees a complete line and a crash of this
    process alone loses nothing), but the disk barrier is paid only once
    per ``fsync_every`` appends — and always for ``final`` records, so a
    trial's completion is durable the moment it is recorded.  The
    default of 1 preserves the original fsync-per-append guarantee.  A
    power-loss-style torn tail after batched writes is already handled
    by :meth:`read`'s valid-prefix rule, so batching trades at most
    ``fsync_every - 1`` sample records of durability for throughput,
    never stream validity.
    """

    def __init__(self, root: str, fsync_every: int = 1):
        if fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        self.root = root
        self.fsync_every = fsync_every
        self.trials_dir = os.path.join(root, "trials")
        self.checkpoints_dir = os.path.join(root, "checkpoints")
        self._unsynced: dict[str, int] = {}
        os.makedirs(self.trials_dir, exist_ok=True)
        os.makedirs(self.checkpoints_dir, exist_ok=True)

    # -- paths ----------------------------------------------------------

    def trial_path(self, trial_id: str) -> str:
        """The trial's JSONL stream path."""
        return os.path.join(self.trials_dir, f"{trial_id}.jsonl")

    def checkpoint_path(self, trial_id: str) -> str:
        """The trial's campaign checkpoint path (RPRCKPT1 framing)."""
        return os.path.join(self.checkpoints_dir, f"{trial_id}.ckpt")

    @property
    def spec_path(self) -> str:
        """Where the canonical spec JSON lives."""
        return os.path.join(self.root, "spec.json")

    # -- spec binding ---------------------------------------------------

    def bind_spec(self, spec) -> None:
        """Record (or verify) which experiment this store belongs to.

        A fresh store adopts the spec; an existing one refuses a spec
        whose canonical form differs — resuming under a different
        matrix would silently mix incomparable streams.
        """
        canonical = spec.canonical_json()
        if os.path.exists(self.spec_path):
            with open(self.spec_path, "r", encoding="utf-8") as handle:
                existing = handle.read()
            if existing != canonical:
                raise StoreError(
                    f"store at {self.root!r} was created for a different "
                    "experiment spec; use a fresh --out directory"
                )
            return
        tmp = self.spec_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(canonical)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.spec_path)

    # -- appends --------------------------------------------------------

    def append(self, trial_id: str, record: dict) -> None:
        """Append one record to the trial's stream, flushed to disk and
        fsynced on the configured cadence (see class docstring)."""
        pending = self._unsynced.get(trial_id, 0) + 1
        barrier = (
            pending >= self.fsync_every or record.get("kind") == "final"
        )
        with open(self.trial_path(trial_id), "a", encoding="utf-8") as handle:
            handle.write(canonical_line(record) + "\n")
            handle.flush()
            if barrier:
                os.fsync(handle.fileno())
        self._unsynced[trial_id] = 0 if barrier else pending

    def sync(self, trial_id: str) -> None:
        """Force the disk barrier for one trial's stream now (no-op when
        nothing is pending since the last fsync)."""
        if not self._unsynced.get(trial_id):
            return
        with open(self.trial_path(trial_id), "a", encoding="utf-8") as handle:
            os.fsync(handle.fileno())
        self._unsynced[trial_id] = 0

    # -- reads ----------------------------------------------------------

    def read(self, trial_id: str) -> list[dict]:
        """All records of one trial stream (empty if absent).

        A trailing partial line (a crash mid-append) is dropped rather
        than raised: the stream's valid prefix is the trial's state.
        """
        path = self.trial_path(trial_id)
        if not os.path.exists(path):
            return []
        records: list[dict] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    break  # torn tail: keep the valid prefix
        return records

    def completed(self, trial_id: str) -> bool:
        """Whether the trial's stream ends in its final record."""
        records = self.read(trial_id)
        return bool(records) and records[-1].get("kind") == "final"

    def trial_ids(self) -> list[str]:
        """Every trial with a stream on disk, name-sorted."""
        return sorted(
            name[:-len(".jsonl")]
            for name in os.listdir(self.trials_dir)
            if name.endswith(".jsonl")
        )

    # -- resume support -------------------------------------------------

    def truncate_after(self, trial_id: str, clock_ns: int) -> int:
        """Drop records with ``clock_ns`` past the given instant.

        Called before resuming a trial from a checkpoint: samples
        appended after the checkpoint was written would otherwise be
        duplicated when the resumed campaign replays past them.
        Rewrites the stream atomically; returns how many records were
        kept.
        """
        records = self.read(trial_id)
        kept = [
            record for record in records
            if record.get("clock_ns", 0) <= clock_ns
            and record.get("kind") != "final"
        ]
        path = self.trial_path(trial_id)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            for record in kept:
                handle.write(canonical_line(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self._unsynced.pop(trial_id, None)
        return len(kept)

    def reset_trial(self, trial_id: str) -> None:
        """Forget a trial entirely (stream + checkpoints): the trial
        restarts from scratch on the next scheduler pass."""
        for path in (self.trial_path(trial_id),):
            if os.path.exists(path):
                os.remove(path)
        self._unsynced.pop(trial_id, None)
        prefix = os.path.basename(self.checkpoint_path(trial_id))
        for name in os.listdir(self.checkpoints_dir):
            if name == prefix or name.startswith(prefix + "."):
                os.remove(os.path.join(self.checkpoints_dir, name))

    # -- identity -------------------------------------------------------

    def digest(self) -> str:
        """sha256 over the spec and every trial stream, name-sorted.

        File order is fixed by sorting, content is canonical JSON, and
        checkpoints/reports are excluded — so two runs of the same spec
        produce the same digest regardless of scheduling order, and a
        resumed run matches an uninterrupted one.
        """
        h = hashlib.sha256()
        if os.path.exists(self.spec_path):
            with open(self.spec_path, "rb") as handle:
                h.update(handle.read())
        for trial_id in self.trial_ids():
            h.update(trial_id.encode())
            with open(self.trial_path(trial_id), "rb") as handle:
                h.update(handle.read())
        return h.hexdigest()
