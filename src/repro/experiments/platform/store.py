"""Append-only JSONL results store: one snapshot stream per trial.

Layout under the store root::

    spec.json                # the experiment's canonical spec
    trials/<trial_id>.jsonl  # one canonical-JSON record per line
    checkpoints/<trial_id>.ckpt[.N]  # RPRCKPT1 campaign checkpoints
    report.json / report.md  # written by the report generator

Each trial stream is a sequence of ``{"kind": "sample", ...}`` records
ordered by virtual time, terminated by exactly one ``{"kind": "final",
...}`` record.  Records are canonical JSON (sorted keys, no
whitespace), so the byte content of a stream — and therefore the
store's sha256 :meth:`ResultsStore.digest` — is a pure function of the
spec.

Durability is :mod:`repro.store`'s: each trial stream is an
:class:`repro.store.AppendLog` (flushed line-by-line, fsynced on the
configured cadence, torn-tail tolerant), the spec binding and resume
truncation go through :func:`repro.store.atomic_write`, and the whole
store therefore sits behind the disk-fault chaos seam — an ``ENOSPC``
mid-append leaves a torn tail that reads ignore and the next
successful append repairs, so a store that ran out of space resumes
cleanly once space returns.
"""

from __future__ import annotations

import hashlib
import os

from repro.store import AppendLog, StoreError, atomic_write
from repro.store.log import canonical_line

__all__ = ["ResultsStore", "StoreError", "canonical_line"]


class ResultsStore:
    """Filesystem-backed, append-only experiment results (see module
    docstring for the layout and durability story).

    ``fsync_every`` batches the per-append ``os.fsync``: every append is
    still *flushed* (so the OS sees a complete line and a crash of this
    process alone loses nothing), but the disk barrier is paid only once
    per ``fsync_every`` appends — and always for ``final`` records, so a
    trial's completion is durable the moment it is recorded.  The
    default of 1 preserves the original fsync-per-append guarantee.  A
    power-loss-style torn tail after batched writes is already handled
    by :meth:`read`'s valid-prefix rule, so batching trades at most
    ``fsync_every - 1`` sample records of durability for throughput,
    never stream validity.
    """

    def __init__(self, root: str, fsync_every: int = 1):
        if fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        self.root = root
        self.fsync_every = fsync_every
        self.trials_dir = os.path.join(root, "trials")
        self.checkpoints_dir = os.path.join(root, "checkpoints")
        self._logs: dict[str, AppendLog] = {}
        os.makedirs(self.trials_dir, exist_ok=True)
        os.makedirs(self.checkpoints_dir, exist_ok=True)

    # -- paths ----------------------------------------------------------

    def trial_path(self, trial_id: str) -> str:
        """The trial's JSONL stream path."""
        return os.path.join(self.trials_dir, f"{trial_id}.jsonl")

    def checkpoint_path(self, trial_id: str) -> str:
        """The trial's campaign checkpoint path (RPRCKPT1 framing)."""
        return os.path.join(self.checkpoints_dir, f"{trial_id}.ckpt")

    @property
    def spec_path(self) -> str:
        """Where the canonical spec JSON lives."""
        return os.path.join(self.root, "spec.json")

    def _log(self, trial_id: str) -> AppendLog:
        log = self._logs.get(trial_id)
        if log is None:
            log = AppendLog(
                self.trial_path(trial_id), fsync_every=self.fsync_every
            )
            self._logs[trial_id] = log
        return log

    @property
    def _unsynced(self) -> dict[str, int]:
        """Pending (flushed-but-unfsynced) append counts per trial —
        the batching state the tests introspect, read off the
        underlying logs."""
        return {
            trial_id: log._pending for trial_id, log in self._logs.items()
        }

    # -- spec binding ---------------------------------------------------

    def bind_spec(self, spec) -> None:
        """Record (or verify) which experiment this store belongs to.

        A fresh store adopts the spec; an existing one refuses a spec
        whose canonical form differs — resuming under a different
        matrix would silently mix incomparable streams.
        """
        canonical = spec.canonical_json()
        if os.path.exists(self.spec_path):
            with open(self.spec_path, "r", encoding="utf-8") as handle:
                existing = handle.read()
            if existing != canonical:
                raise StoreError(
                    f"store at {self.root!r} was created for a different "
                    "experiment spec; use a fresh --out directory"
                )
            return
        atomic_write(self.spec_path, canonical.encode("utf-8"))

    # -- appends --------------------------------------------------------

    def append(self, trial_id: str, record: dict) -> None:
        """Append one record to the trial's stream, flushed to disk and
        fsynced on the configured cadence (see class docstring);
        ``final`` records always take the barrier."""
        self._log(trial_id).append(
            record, sync=record.get("kind") == "final"
        )

    def sync(self, trial_id: str) -> None:
        """Force the disk barrier for one trial's stream now (no-op when
        nothing is pending since the last fsync)."""
        self._log(trial_id).sync()

    # -- reads ----------------------------------------------------------

    def read(self, trial_id: str) -> list[dict]:
        """All records of one trial stream (empty if absent).

        A trailing partial line (a crash or ``ENOSPC`` mid-append) is
        dropped rather than raised: the stream's valid prefix is the
        trial's state.
        """
        records, _damage = self._log(trial_id).scan()
        return records

    def completed(self, trial_id: str) -> bool:
        """Whether the trial's stream ends in its final record."""
        records = self.read(trial_id)
        return bool(records) and records[-1].get("kind") == "final"

    def trial_ids(self) -> list[str]:
        """Every trial with a stream on disk, name-sorted."""
        return sorted(
            name[:-len(".jsonl")]
            for name in os.listdir(self.trials_dir)
            if name.endswith(".jsonl")
        )

    # -- resume support -------------------------------------------------

    def truncate_after(self, trial_id: str, clock_ns: int) -> int:
        """Drop records with ``clock_ns`` past the given instant.

        Called before resuming a trial from a checkpoint: samples
        appended after the checkpoint was written would otherwise be
        duplicated when the resumed campaign replays past them.
        Rewrites the stream atomically; returns how many records were
        kept.
        """
        records = self.read(trial_id)
        kept = [
            record for record in records
            if record.get("clock_ns", 0) <= clock_ns
            and record.get("kind") != "final"
        ]
        self._log(trial_id).rewrite(kept)
        return len(kept)

    def reset_trial(self, trial_id: str) -> None:
        """Forget a trial entirely (stream + checkpoints): the trial
        restarts from scratch on the next scheduler pass."""
        self._logs.pop(trial_id, None)
        path = self.trial_path(trial_id)
        if os.path.exists(path):
            os.remove(path)
        prefix = os.path.basename(self.checkpoint_path(trial_id))
        for name in os.listdir(self.checkpoints_dir):
            if name == prefix or name.startswith(prefix + "."):
                os.remove(os.path.join(self.checkpoints_dir, name))

    # -- identity -------------------------------------------------------

    def digest(self) -> str:
        """sha256 over the spec and every trial stream, name-sorted.

        File order is fixed by sorting, content is canonical JSON, and
        checkpoints/reports are excluded — so two runs of the same spec
        produce the same digest regardless of scheduling order, and a
        resumed run matches an uninterrupted one.
        """
        h = hashlib.sha256()
        if os.path.exists(self.spec_path):
            with open(self.spec_path, "rb") as handle:
                h.update(handle.read())
        for trial_id in self.trial_ids():
            h.update(trial_id.encode())
            with open(self.trial_path(trial_id), "rb") as handle:
                h.update(handle.read())
        return h.hexdigest()
