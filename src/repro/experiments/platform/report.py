"""The report generator: ranked, statistically grounded comparisons.

Consumes a completed results store and produces, per target, a ranking
of arms by median final edge coverage with bootstrap confidence
intervals, a pairwise-comparison table (two-sided Mann-Whitney U
p-value plus Vargha-Delaney Â₁₂ effect size with its verbal magnitude,
the discipline fuzzbench's ``stat_tests`` applies), and the
coverage-growth-over-virtual-time curve of every arm (pointwise median
across trials, sampled on the measurement grid).  An overall ranking
averages each arm's per-target rank.

Output is markdown for humans and canonical JSON for machines; both
are pure functions of the store's bytes, so the report digest is as
reproducible as the store digest — the property the CI smoke test
pins.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib

from repro.experiments.platform.spec import ExperimentSpec
from repro.experiments.platform.store import ResultsStore
from repro.experiments.stats import (
    a12_magnitude,
    bootstrap_ci,
    mann_whitney_p,
    median,
    vargha_delaney_a12,
)
from repro.vm.interpreter import COVERAGE_MAP_SIZE

#: Unicode sparkline ramp for the markdown coverage curves.
_SPARK = "▁▂▃▄▅▆▇█"


def _round(value: float, digits: int = 6) -> float:
    """Stable rounding for floats destined for canonical JSON."""
    return round(float(value), digits)


def _sparkline(values: list[float]) -> str:
    """Eight-level text sparkline (empty string for no data)."""
    if not values:
        return ""
    top = max(values)
    if top <= 0:
        return _SPARK[0] * len(values)
    return "".join(
        _SPARK[min(len(_SPARK) - 1, int(v / top * (len(_SPARK) - 1)))]
        for v in values
    )


class ReportError(RuntimeError):
    """A store that cannot be turned into a report."""


class ReportGenerator:
    """Builds the experiment report from a results store (see module
    docstring for what the report contains)."""

    def __init__(self, store: ResultsStore):
        self.store = store
        if not os.path.exists(store.spec_path):
            raise ReportError(f"store {store.root!r} has no spec.json")
        self.spec = ExperimentSpec.from_json_file(store.spec_path)

    # -- aggregation ----------------------------------------------------

    def _cells(self) -> dict[tuple[str, str], list[dict]]:
        """(target, arm label) -> per-trial dicts with finals + curves."""
        cells: dict[tuple[str, str], list[dict]] = {}
        for trial in self.spec.enumerate_trials():
            records = self.store.read(trial.trial_id)
            if not records or records[-1].get("kind") != "final":
                raise ReportError(
                    f"trial {trial.trial_id!r} is incomplete; run the "
                    "scheduler to completion before reporting"
                )
            samples = [r for r in records if r.get("kind") == "sample"]
            cells.setdefault((trial.target, trial.arm.label), []).append({
                "final": records[-1],
                "t_ns": [s["t_ns"] for s in samples],
                "edges": [s["edges"] for s in samples],
            })
        return cells

    @staticmethod
    def _arm_summary(trials: list[dict], ci_seed: int) -> dict:
        finals = [t["final"] for t in trials]
        edges = [float(f["edges"]) for f in finals]
        execs = [float(f["execs"]) for f in finals]
        ci = bootstrap_ci(edges, seed=ci_seed)
        return {
            "trials": len(finals),
            "final_edges": [int(e) for e in edges],
            "final_execs": [int(x) for x in execs],
            "unique_crashes": [f["unique_crashes"] for f in finals],
            "median_edges": _round(median(edges)),
            "median_density": _round(median(edges) / COVERAGE_MAP_SIZE),
            "edges_ci95": [_round(ci[0]), _round(ci[1])],
            "median_execs": _round(median(execs)),
        }

    def build(self) -> dict:
        """The full report as a plain-data dict (canonical-JSON-able)."""
        cells = self._cells()
        arm_labels = [arm.label for arm in self.spec.arms]
        targets: dict[str, dict] = {}
        curves: dict[str, dict] = {}
        rank_sums = {label: 0 for label in arm_labels}

        for target in self.spec.targets:
            arms: dict[str, dict] = {}
            for label in arm_labels:
                trials = cells[(target, label)]
                ci_seed = zlib.crc32(f"{target}:{label}".encode())
                arms[label] = self._arm_summary(trials, ci_seed)

            # Rank by median final edges, descending; ties break on the
            # label so the order is total and deterministic.
            ranking = sorted(
                arm_labels,
                key=lambda label: (-arms[label]["median_edges"], label),
            )
            for rank, label in enumerate(ranking, start=1):
                rank_sums[label] += rank

            pairwise = []
            for i, label_a in enumerate(ranking):
                for label_b in ranking[i + 1:]:
                    edges_a = [float(e) for e in arms[label_a]["final_edges"]]
                    edges_b = [float(e) for e in arms[label_b]["final_edges"]]
                    a12 = vargha_delaney_a12(edges_a, edges_b)
                    pairwise.append({
                        "a": label_a,
                        "b": label_b,
                        "p_value": _round(mann_whitney_p(edges_a, edges_b)),
                        "a12": _round(a12),
                        "magnitude": a12_magnitude(a12),
                        "median_diff": _round(
                            median(edges_a) - median(edges_b)
                        ),
                    })
            targets[target] = {
                "arms": arms,
                "ranking": ranking,
                "pairwise": pairwise,
            }

            # Coverage-growth curves: the per-cell measurement grids are
            # identical across trials by construction, so the pointwise
            # median over trials is well defined.
            target_curves: dict[str, dict] = {}
            for label in arm_labels:
                trials = cells[(target, label)]
                grid = trials[0]["t_ns"]
                for trial in trials[1:]:
                    if trial["t_ns"] != grid:
                        raise ReportError(
                            f"misaligned measurement grids in "
                            f"{target}/{label}"
                        )
                median_curve = [
                    _round(median([
                        float(trial["edges"][i]) for trial in trials
                    ]))
                    for i in range(len(grid))
                ]
                target_curves[label] = {
                    "t_ns": grid,
                    "median_edges": median_curve,
                    "per_trial_edges": [trial["edges"] for trial in trials],
                }
            curves[target] = target_curves

        overall = sorted(
            arm_labels,
            key=lambda label: (rank_sums[label], label),
        )
        return {
            "experiment": {
                "name": self.spec.name,
                "spec_digest": self.spec.digest(),
                "spec": self.spec.to_dict(),
            },
            "targets": targets,
            "curves": curves,
            "overall": {
                "ranking": overall,
                "mean_rank": {
                    label: _round(rank_sums[label] / len(self.spec.targets))
                    for label in arm_labels
                },
            },
        }

    # -- rendering ------------------------------------------------------

    @staticmethod
    def to_json(report: dict) -> str:
        """Canonical JSON text of a built report."""
        return json.dumps(report, sort_keys=True, separators=(",", ":"))

    @classmethod
    def digest(cls, report: dict) -> str:
        """sha256 of the canonical JSON form."""
        return hashlib.sha256(cls.to_json(report).encode()).hexdigest()

    def to_markdown(self, report: dict) -> str:
        """Human-readable report (see docs/experiments.md for how to
        read the Â₁₂ / p-value columns)."""
        lines: list[str] = []
        experiment = report["experiment"]
        lines.append(f"# Experiment report: {experiment['name']}")
        lines.append("")
        lines.append(f"- spec digest: `{experiment['spec_digest']}`")
        spec = experiment["spec"]
        lines.append(
            f"- matrix: {len(spec['targets'])} target(s) x "
            f"{len(report['overall']['ranking'])} arm(s) x "
            f"{spec['trials']} trial(s), "
            f"budget {spec['budget_ns']} virtual ns, "
            f"measured every {spec['measure_every_ns']} virtual ns"
        )
        lines.append("")
        lines.append("## Overall ranking")
        lines.append("")
        lines.append("| rank | arm | mean per-target rank |")
        lines.append("|-----:|-----|---------------------:|")
        for rank, label in enumerate(report["overall"]["ranking"], start=1):
            mean_rank = report["overall"]["mean_rank"][label]
            lines.append(f"| {rank} | {label} | {mean_rank:.2f} |")

        for target, data in sorted(report["targets"].items()):
            lines.append("")
            lines.append(f"## {target}")
            lines.append("")
            lines.append(
                "| rank | arm | median edges | 95% CI | density "
                "| median execs | growth |"
            )
            lines.append(
                "|-----:|-----|-------------:|-------|--------:"
                "|-------------:|--------|"
            )
            for rank, label in enumerate(data["ranking"], start=1):
                arm = data["arms"][label]
                ci = arm["edges_ci95"]
                spark = _sparkline(
                    report["curves"][target][label]["median_edges"]
                )
                lines.append(
                    f"| {rank} | {label} | {arm['median_edges']:.1f} "
                    f"| [{ci[0]:.1f}, {ci[1]:.1f}] "
                    f"| {arm['median_density']:.4%} "
                    f"| {arm['median_execs']:.0f} | `{spark}` |"
                )
            if data["pairwise"]:
                lines.append("")
                lines.append(
                    "| comparison | p-value | Â₁₂ | magnitude "
                    "| median Δedges |"
                )
                lines.append(
                    "|------------|--------:|----:|-----------"
                    "|--------------:|"
                )
                for pair in data["pairwise"]:
                    lines.append(
                        f"| {pair['a']} vs {pair['b']} "
                        f"| {pair['p_value']:.4f} | {pair['a12']:.3f} "
                        f"| {pair['magnitude']} "
                        f"| {pair['median_diff']:+.1f} |"
                    )
        lines.append("")
        lines.append(
            "_Â₁₂ > 0.5: the first arm stochastically dominates; "
            "p-value: two-sided Mann-Whitney U; CI: percentile "
            "bootstrap of the median._"
        )
        lines.append("")
        return "\n".join(lines)

    def write(self) -> tuple[dict, str]:
        """Build the report and write ``report.json`` + ``report.md``
        into the store root; returns (report, report digest)."""
        report = self.build()
        json_path = os.path.join(self.store.root, "report.json")
        md_path = os.path.join(self.store.root, "report.md")
        with open(json_path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json(report) + "\n")
        with open(md_path, "w", encoding="utf-8") as handle:
            handle.write(self.to_markdown(report))
        return report, self.digest(report)
