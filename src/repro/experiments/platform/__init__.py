"""The experiment platform: fuzzbench-shaped benchmarking as a service.

Turns "reproduce Tables 5-7" into an engine that can answer *any*
comparison question over the repo's mechanisms and targets.  The four
moving parts, each its own module:

- :mod:`~repro.experiments.platform.spec` — :class:`ExperimentSpec`,
  the declarative (mechanism x target x seed x config-variant) matrix
  with a virtual-time budget and measurement cadence;
- :mod:`~repro.experiments.platform.scheduler` —
  :class:`TrialScheduler`, which drives trials concurrently through
  the stepwise Campaign surface (and ParallelCampaign for multi-worker
  trials), skipping finished trials and resuming half-finished ones;
- :mod:`~repro.experiments.platform.measurer` — :class:`Measurer`,
  which pauses each trial on the virtual-clock cadence and appends
  coverage/corpus/crash/integrity snapshots to the crash-safe JSONL
  :class:`ResultsStore`;
- :mod:`~repro.experiments.platform.report` —
  :class:`ReportGenerator`, which emits ranked pairwise comparisons
  (Mann-Whitney U, Vargha-Delaney Â₁₂, bootstrap CIs) and
  coverage-growth curves as markdown + canonical JSON.

``python -m repro.experiments.platform`` is the CLI; for a fixed spec
the results store and report are bit-reproducible across runs, kills,
and resumes.
"""

from repro.experiments.platform.measurer import (
    Measurer,
    build_trial_executor,
    executor_health,
)
from repro.experiments.platform.report import ReportError, ReportGenerator
from repro.experiments.platform.scheduler import TrialScheduler
from repro.experiments.platform.spec import (
    OVERRIDABLE_FIELDS,
    SPEC_MECHANISMS,
    Arm,
    ExperimentSpec,
    SpecError,
    TrialSpec,
)
from repro.experiments.platform.store import (
    ResultsStore,
    StoreError,
    canonical_line,
)

__all__ = [
    "Arm", "ExperimentSpec", "Measurer", "OVERRIDABLE_FIELDS",
    "ReportError", "ReportGenerator", "ResultsStore", "SPEC_MECHANISMS",
    "SpecError", "StoreError", "TrialScheduler", "TrialSpec",
    "build_trial_executor", "canonical_line", "executor_health",
]
