"""Experiment E8 — ablations over ClosureX's design choices.

Each ClosureX pass exists to neutralise one source of residual state;
dropping it should make the correctness invariant fail in exactly the
predicted way, while keeping it costs a measurable slice of the
restoration budget.  Two ablation suites:

- **pass ablation**: build the target with one pass removed and check
  which §6.1.4 invariant breaks (globals dirty, chunks leak, handles
  leak, exit kills the process);
- **FD-rewind optimisation**: the paper rewinds initialisation-phase
  handles instead of closing/reopening them; toggling it quantifies
  the saving.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.stats import format_table
from repro.runtime.harness import ClosureXHarness, HarnessConfig, IterationStatus
from repro.targets import get_target
from repro.vm.snapshot import NondetMask, diff_snapshots, take_snapshot


@dataclass
class PassAblationRow:
    """One pass-ablation configuration: what breaks without it."""

    skipped_pass: str
    survives_exit: bool          # did the loop survive an exit() input?
    globals_clean: bool
    heap_clean: bool
    fds_clean: bool

    @property
    def fully_clean(self) -> bool:
        return (
            self.survives_exit
            and self.globals_clean
            and self.heap_clean
            and self.fds_clean
        )


@dataclass
class PassAblationResult:
    """All ablation rows for one target, renderable as a table."""

    target: str
    rows: list[PassAblationRow]

    def render(self) -> str:
        body = [
            [
                row.skipped_pass or "(none)",
                "yes" if row.survives_exit else "NO",
                "yes" if row.globals_clean else "NO",
                "yes" if row.heap_clean else "NO",
                "yes" if row.fds_clean else "NO",
            ]
            for row in self.rows
        ]
        return format_table(
            ["Skipped pass", "Survives exit()", "Globals clean",
             "Heap clean", "FDs clean"],
            body,
        )

    def row_for(self, skipped: str) -> PassAblationRow:
        for row in self.rows:
            if row.skipped_pass == skipped:
                return row
        raise KeyError(skipped)


def _probe_build(target: str, skip: set[str], inputs: list[bytes]) -> PassAblationRow:
    spec = get_target(target)
    module = spec.build_closurex(skip=skip)
    harness = ClosureXHarness(module)
    harness.boot()
    assert harness.vm is not None and harness.snapshot is not None
    vm = harness.vm
    baseline = take_snapshot(vm)
    baseline_chunks = vm.heap.live_chunk_count()
    baseline_fds = vm.fd_table.open_handle_count()

    survives_exit = True
    for data in inputs:
        result = harness.run_test_case(data, restore=True)
        if result.status is IterationStatus.PROCESS_EXIT:
            survives_exit = False
            break
        if not result.status.survivable:
            break

    mask = NondetMask()
    mask.ignore_rand = True
    after = take_snapshot(vm)
    delta = diff_snapshots(baseline, after, mask)
    return PassAblationRow(
        skipped_pass=",".join(sorted(skip)) if skip else "",
        survives_exit=survives_exit,
        globals_clean=not delta.section_diffs,
        heap_clean=vm.heap.live_chunk_count() == baseline_chunks,
        fds_clean=vm.fd_table.open_handle_count() == baseline_fds,
    )


def run_pass_ablation(target: str, inputs: list[bytes] | None = None) -> PassAblationResult:
    """Drop each restoration pass in turn and observe what breaks.

    *inputs* should include at least one input that exits early (to
    exercise the ExitPass) and ones that leak heap/handles.
    """
    spec = get_target(target)
    if inputs is None:
        inputs = list(spec.seeds) + [b"", b"\xff" * 40]
    rows = [_probe_build(target, set(), inputs)]
    for skipped in ("ExitPass", "HeapPass", "FilePass", "GlobalPass"):
        rows.append(_probe_build(target, {skipped}, inputs))
    return PassAblationResult(target=target, rows=rows)


@dataclass
class FdRewindResult:
    """Measured effect of the FilePass rewind-vs-reopen ablation."""

    target: str
    rewound_with_optimisation: int
    closed_without_optimisation: int
    restore_ns_with: int
    restore_ns_without: int

    @property
    def saving_ns(self) -> int:
        return self.restore_ns_without - self.restore_ns_with


def run_fd_rewind_ablation(target: str, iterations: int = 20) -> FdRewindResult:
    """Quantify the init-handle ``fseek`` optimisation (paper §4.2.2)."""
    spec = get_target(target)

    def measure(rewind: bool) -> tuple[int, int, int]:
        module = spec.build_closurex()
        config = HarnessConfig(rewind_init_handles=rewind)
        harness = ClosureXHarness(module, config=config)
        harness.boot()
        rewound = closed = restore_ns = 0
        for _ in range(iterations):
            for seed in spec.seeds:
                result = harness.run_test_case(seed, restore=True)
                if result.restore is not None:
                    rewound += result.restore.rewound_fds
                    closed += result.restore.closed_fds
                    restore_ns += result.restore.restore_ns
        return rewound, closed, restore_ns

    rewound_on, _, ns_with = measure(True)
    _, closed_off, ns_without = measure(False)
    return FdRewindResult(
        target=target,
        rewound_with_optimisation=rewound_on,
        closed_without_optimisation=closed_off,
        restore_ns_with=ns_with,
        restore_ns_without=ns_without,
    )
