"""Command-line entry point for the paper's table/figure experiments.

Lists and runs the evaluation entry points that previously required
ad-hoc imports::

    python -m repro.experiments                # list what's available
    python -m repro.experiments table5         # reproduce Table 5
    python -m repro.experiments table6 table7  # several in one go
    python -m repro.experiments ablation --target md4c

Sizing follows the usual environment knobs (``REPRO_BUDGET_MS``,
``REPRO_TRIALS``, ``REPRO_TARGETS`` — see
:mod:`repro.experiments.config`), so CI-speed runs and full
reproductions are the same command under different exports.  For
matrix experiments with statistics beyond the paper's tables, see
``python -m repro.experiments.platform``.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.ablation import (
    run_fd_rewind_ablation,
    run_pass_ablation,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.correctness_exp import run_correctness
from repro.experiments.figures import run_spectrum, run_timeline
from repro.experiments.i2s_exp import run_i2s_guards
from repro.experiments.motivation import run_motivation
from repro.experiments.table5 import run_table5
from repro.experiments.table6 import run_table6
from repro.experiments.table7 import run_table7
from repro.targets import target_names

#: name -> (description, runner(config, target) -> renderable result).
#: Runners take the shared sizing config plus the --target option and
#: return any object with a ``render()`` method.
ENTRY_POINTS = {
    "table5": (
        "Table 5: test-case execution rate (ClosureX vs AFL++)",
        lambda config, target: run_table5(config),
    ),
    "table6": (
        "Table 6: edge-coverage improvement",
        lambda config, target: run_table6(config),
    ),
    "table7": (
        "Table 7: time-to-bug on the planted-bug targets",
        lambda config, target: run_table7(config),
    ),
    "correctness": (
        "§6.1.4: semantic-correctness validation",
        lambda config, target: run_correctness(config),
    ),
    "spectrum": (
        "Mechanism cost spectrum (per-iteration breakdown)",
        lambda config, target: run_spectrum(target),
    ),
    "timeline": (
        "Coverage/exec timelines per mechanism",
        lambda config, target: run_timeline(target, config),
    ),
    "motivation": (
        "§2 motivation: naive persistent-mode pathologies",
        lambda config, target: run_motivation(),
    ),
    "ablation": (
        "Pass ablation: drop each ClosureX pass in turn",
        lambda config, target: run_pass_ablation(target),
    ),
    "fd-rewind": (
        "FD-rewind ablation (restore cost vs correctness)",
        lambda config, target: run_fd_rewind_ablation(target),
    ),
    "i2s-guards": (
        "Input-to-state stage: time-to-guarded-edge vs havoc-only",
        lambda config, target: run_i2s_guards(config),
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the paper's table/figure experiments "
                    "(no arguments: list them).",
    )
    parser.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                        help=f"one or more of: {', '.join(ENTRY_POINTS)}")
    parser.add_argument("--target", default="giftext",
                        choices=target_names(),
                        help="target for single-target experiments "
                             "(default: giftext)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    return parser


def list_entry_points() -> str:
    """The listing printed by ``python -m repro.experiments``."""
    width = max(len(name) for name in ENTRY_POINTS)
    lines = ["available experiments:"]
    lines.extend(
        f"  {name.ljust(width)}  {description}"
        for name, (description, _runner) in ENTRY_POINTS.items()
    )
    lines.append(
        "\nsizing: REPRO_BUDGET_MS / REPRO_TRIALS / REPRO_TARGETS "
        "(see repro.experiments.config)"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list or not args.experiments:
        print(list_entry_points())
        return 0
    unknown = [name for name in args.experiments
               if name not in ENTRY_POINTS]
    if unknown:
        print(f"error: unknown experiment(s) {unknown}; "
              f"choose from {', '.join(ENTRY_POINTS)}", file=sys.stderr)
        return 2
    config = ExperimentConfig()
    for name in args.experiments:
        _description, runner = ENTRY_POINTS[name]
        print(f"== {name} ==")
        print(runner(config, args.target).render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
