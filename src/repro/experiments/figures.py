"""Figure-style experiments.

- **E5, mechanism spectrum** (the paper's Figures 1-2 territory): the
  per-test-case cost of each execution mechanism on one target, split
  into process-management overhead vs target execution, showing the
  fresh >> forkserver >> ClosureX ~ persistent ordering.
- **E6, pass transformations** (Figures 3-5): the structural effect of
  the GlobalPass (variables relocated into ``closure_global_section``)
  and the runtime chunk-map / global-restore lifecycle for one
  iteration.
- **Campaign timelines**: execs-over-time and coverage-over-time
  series per mechanism (the usual fuzzing-evaluation line plots).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.campaign_runner import build_executor, run_campaign
from repro.experiments.config import ExperimentConfig
from repro.experiments.stats import format_table, median, stddev
from repro.passes.base import PassManager
from repro.passes.global_pass import CLOSURE_GLOBAL_SECTION
from repro.passes.pipelines import closurex_passes
from repro.runtime.harness import ClosureXHarness
from repro.sim_os import Kernel
from repro.targets import get_target


# ---------------------------------------------------------------------------
# E5: mechanism spectrum
# ---------------------------------------------------------------------------


@dataclass
class MechanismPoint:
    """One mechanism's measured per-test-case cost breakdown."""

    mechanism: str
    ns_per_exec: float             # mean over all measured execs
    management_ns_per_exec: float
    execs_measured: int
    # Per-exec distribution, matching how the paper reports trial
    # medians rather than means alone (§5.4).
    median_ns_per_exec: float = 0.0
    stddev_ns_per_exec: float = 0.0

    @property
    def management_share(self) -> float:
        return self.management_ns_per_exec / self.ns_per_exec if self.ns_per_exec else 0.0


@dataclass
class SpectrumResult:
    """The execution-mechanism spectrum figure (fresh → persistent)."""

    target: str
    points: list[MechanismPoint]

    def render(self) -> str:
        body = [
            [
                p.mechanism,
                f"{p.ns_per_exec / 1000:.1f} us",
                f"{p.median_ns_per_exec / 1000:.1f} us",
                f"{p.stddev_ns_per_exec / 1000:.1f} us",
                f"{p.management_ns_per_exec / 1000:.1f} us",
                f"{100 * p.management_share:.0f}%",
            ]
            for p in self.points
        ]
        return format_table(
            ["Mechanism", "mean/exec", "median/exec", "stddev",
             "process mgmt", "mgmt share"],
            body,
        )

    def ordering_correct(self) -> bool:
        """fresh slowest, forkserver next, ClosureX near persistent."""
        by_name = {p.mechanism: p.ns_per_exec for p in self.points}
        return (
            by_name["fresh"] > by_name["forkserver"] > by_name["closurex"]
            and by_name["closurex"] < 2.5 * by_name["persistent"]
        )


def run_spectrum(target: str = "giftext", iterations: int = 40) -> SpectrumResult:
    """Measure per-exec cost of all four mechanisms on clean seeds."""
    spec = get_target(target)
    points: list[MechanismPoint] = []
    for mechanism in ("fresh", "forkserver", "persistent", "closurex"):
        kernel = Kernel()
        executor = build_executor(target, mechanism, kernel)
        executor.boot()
        start = kernel.clock.now_ns
        mgmt_start = kernel.stats.process_management_ns()
        samples: list[float] = []
        for _ in range(iterations):
            for seed in spec.seeds:
                samples.append(executor.run(seed).ns)
        executor.shutdown()
        count = len(samples)
        total = kernel.clock.now_ns - start
        mgmt = kernel.stats.process_management_ns() - mgmt_start
        points.append(
            MechanismPoint(
                mechanism, total / count, mgmt / count, count,
                median_ns_per_exec=median(samples),
                stddev_ns_per_exec=stddev(samples),
            )
        )
    return SpectrumResult(target=target, points=points)


# ---------------------------------------------------------------------------
# E6: pass-transformation structure (Figures 3-5)
# ---------------------------------------------------------------------------


@dataclass
class GlobalPassFigure:
    """Figure 3: where did the globals go?"""

    target: str
    relocated: list[str]
    kept_constant: list[str]
    section_bytes: int

    def render(self) -> str:
        return (
            f"{self.target}: {len(self.relocated)} writable globals "
            f"({self.section_bytes} B) -> {CLOSURE_GLOBAL_SECTION}; "
            f"{len(self.kept_constant)} constants untouched"
        )


def run_global_pass_figure(target: str) -> GlobalPassFigure:
    spec = get_target(target)
    module = spec.compile()
    PassManager(closurex_passes(spec.coverage_seed)).run(module)
    relocated = [
        name for name, var in module.globals.items()
        if var.section == CLOSURE_GLOBAL_SECTION
    ]
    constants = [
        name for name, var in module.globals.items() if var.is_constant
    ]
    section_bytes = sum(
        module.globals[name].value_type.size() for name in relocated
    )
    return GlobalPassFigure(
        target=target,
        relocated=relocated,
        kept_constant=constants,
        section_bytes=section_bytes,
    )


@dataclass
class RestoreLifecycleFigure:
    """Figures 4-5: one iteration's snapshot/track/restore trace."""

    target: str
    dirty_global_bytes: int      # bytes the test case modified
    leaked_chunks: int           # chunk map contents before the sweep
    leaked_bytes: int
    open_handles: int            # handle map before the sweep
    restored_section_bytes: int
    clean_after_restore: bool

    def render(self) -> str:
        return (
            f"{self.target}: test case dirtied {self.dirty_global_bytes} B of "
            f"globals, leaked {self.leaked_chunks} chunks "
            f"({self.leaked_bytes} B) and {self.open_handles} handles; "
            f"restore copied {self.restored_section_bytes} B back; "
            f"clean={self.clean_after_restore}"
        )


def run_restore_lifecycle(target: str, data: bytes | None = None) -> RestoreLifecycleFigure:
    spec = get_target(target)
    module = spec.build_closurex()
    harness = ClosureXHarness(module)
    harness.boot()
    assert harness.vm is not None and harness.snapshot is not None
    payload = data if data is not None else spec.seeds[0]
    harness.run_test_case(payload, restore=False)
    dirty = len(harness.snapshot.dirty_offsets())
    leaked = harness.chunk_map.leaked()
    handles = harness.fd_tracker.leaked()
    report = harness.restore_state()
    clean = (
        harness.vm.heap.live_chunk_count() == harness.chunk_map.live_count()
        and not harness.snapshot.dirty_offsets()
    )
    return RestoreLifecycleFigure(
        target=target,
        dirty_global_bytes=dirty,
        leaked_chunks=len(leaked),
        leaked_bytes=sum(c.size for c in leaked),
        open_handles=len(handles),
        restored_section_bytes=report.section_bytes,
        clean_after_restore=clean,
    )


# ---------------------------------------------------------------------------
# campaign timelines (execs / coverage over virtual time)
# ---------------------------------------------------------------------------


@dataclass
class TimelineSeries:
    """Coverage-over-virtual-time samples for one mechanism."""

    mechanism: str
    points: list[tuple[float, int, int]]  # (virtual secs, execs, edges)


@dataclass
class TimelineFigure:
    """Coverage-timeline figure data for one target, all mechanisms."""

    target: str
    series: list[TimelineSeries] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"timeline: {self.target}"]
        for s in self.series:
            tail = s.points[-1] if s.points else (0.0, 0, 0)
            lines.append(
                f"  {s.mechanism}: {len(s.points)} samples, final "
                f"t={tail[0]:.3f}vs execs={tail[1]} edges={tail[2]}"
            )
        return "\n".join(lines)


def run_timeline(target: str, config: ExperimentConfig | None = None) -> TimelineFigure:
    config = config if config is not None else ExperimentConfig()
    figure = TimelineFigure(target=target)
    for mechanism in ("closurex", "forkserver"):
        seed = config.trial_seed(target, "timeline", 0)
        result = run_campaign(target, mechanism, config.budget_ns, seed)
        figure.series.append(
            TimelineSeries(
                mechanism=mechanism,
                points=[
                    (p.ns / 1e9, p.execs, p.edges) for p in result.timeline
                ],
            )
        )
    return figure
