"""Experiment E4 — §6.1.4: semantic-correctness validation.

For each target: build a queue (the seeds plus inputs discovered by a
short ClosureX campaign), then for a sample of queue entries check

- dataflow equivalence  (fresh snapshot vs ClosureX-after-pollution), and
- control-flow equivalence (fresh edge trace vs ClosureX-after-pollution),

with naturally non-deterministic inputs masked/excluded, plus a
memcheck (Valgrind-equivalent) pass over the queue.  The paper's
claim — zero divergence after masking — is what the report asserts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.correctness import (
    check_controlflow_equivalence,
    check_dataflow_equivalence,
    run_memcheck,
)
from repro.experiments.campaign_runner import run_campaign
from repro.experiments.config import ExperimentConfig
from repro.experiments.stats import format_table
from repro.targets import get_target


@dataclass
class CorrectnessRow:
    """Per-target §6.1.4 equivalence verdicts (dataflow/CFG/memcheck)."""

    benchmark: str
    inputs_checked: int = 0
    dataflow_equivalent: int = 0
    dataflow_diverged: int = 0
    controlflow_equivalent: int = 0
    controlflow_diverged: int = 0
    nondet_excluded: int = 0
    memcheck_clean: bool = True

    @property
    def fully_correct(self) -> bool:
        return (
            self.dataflow_diverged == 0
            and self.controlflow_diverged == 0
            and self.memcheck_clean
        )


@dataclass
class CorrectnessResult:
    """The full correctness-validation table."""

    rows: list[CorrectnessRow]
    pollution_rounds: int

    @property
    def all_correct(self) -> bool:
        return all(row.fully_correct for row in self.rows)

    def render(self) -> str:
        body = [
            [
                row.benchmark,
                str(row.inputs_checked),
                f"{row.dataflow_equivalent}/{row.dataflow_equivalent + row.dataflow_diverged}",
                f"{row.controlflow_equivalent}/{row.controlflow_equivalent + row.controlflow_diverged}",
                str(row.nondet_excluded),
                "yes" if row.memcheck_clean else "NO",
            ]
            for row in self.rows
        ]
        return format_table(
            ["Benchmark", "Inputs", "Dataflow eq.", "Ctrl-flow eq.",
             "Nondet excl.", "Memcheck clean"],
            body,
        )


def build_queue(target: str, config: ExperimentConfig, cap: int = 48) -> list[bytes]:
    """Seeds plus corpus discovered by one short ClosureX campaign."""
    spec = get_target(target)
    seed = config.trial_seed(target, "queue", 0)
    campaign_budget = min(config.budget_ns, 10_000_000)
    result = run_campaign(target, "closurex", campaign_budget, seed)
    queue = list(spec.seeds)
    # Campaign results are cached and do not expose raw corpus bytes;
    # synthesise additional queue entries by mutating seeds with the
    # same seeded generator the campaign used.
    rng = random.Random(seed)
    from repro.fuzzing import HavocMutator

    havoc = HavocMutator(rng)
    while len(queue) < min(cap, len(spec.seeds) + result.corpus_size):
        queue.append(havoc.mutate(rng.choice(spec.seeds)))
    return queue[:cap]


def run_correctness(
    config: ExperimentConfig | None = None,
    sample_size: int = 6,
    pollution_rounds: int = 100,
) -> CorrectnessResult:
    """Run E4.  ``pollution_rounds`` plays the paper's "1000 iterations
    of other randomly selected test cases" role (scaled by default)."""
    config = config if config is not None else ExperimentConfig()
    rows: list[CorrectnessRow] = []
    for target in config.targets:
        spec = get_target(target)
        module = spec.build_closurex()
        queue = build_queue(target, config)
        rng = random.Random(config.trial_seed(target, "correctness", 0))
        row = CorrectnessRow(benchmark=target)
        sample = queue[: min(sample_size, len(queue))]
        for data in sample:
            pollution = [rng.choice(queue) for _ in range(pollution_rounds)]
            dataflow = check_dataflow_equivalence(module, data, pollution)
            row.inputs_checked += 1
            if dataflow.equivalent:
                row.dataflow_equivalent += 1
            else:
                row.dataflow_diverged += 1
            controlflow = check_controlflow_equivalence(module, data, pollution)
            if controlflow.nondeterministic:
                row.nondet_excluded += 1
            elif controlflow.equivalent:
                row.controlflow_equivalent += 1
            else:
                row.controlflow_diverged += 1
        row.memcheck_clean = run_memcheck(module, queue[:24]).clean
        rows.append(row)
    return CorrectnessResult(rows=rows, pollution_rounds=pollution_rounds)
