"""Experiment E7 — the motivation: naive persistent fuzzing is incorrect.

Demonstrates the three pathologies of §1-2 on a purpose-built stateful
target, then quantifies residual-state pollution on the real benchmark
targets:

- **missed crash**: an earlier input flips a global mode bit; a later
  input that crashes any fresh process no longer crashes the polluted
  persistent process;
- **false crash**: per-iteration heap leaks and unclosed file handles
  eventually raise OOM / FD-exhaustion crashes on perfectly valid
  inputs;
- **non-reproducibility**: the "crashing" input from a persistent run
  does not crash in a fresh process.

ClosureX, run on the same sequences, behaves exactly like a fresh
process every time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.execution import (
    ClosureXExecutor,
    FreshProcessExecutor,
    NaivePersistentExecutor,
)
from repro.minic import compile_c
from repro.passes.base import PassManager
from repro.passes.pipelines import baseline_passes, closurex_passes, persistent_passes
from repro.sim_os import Kernel
from repro.vm.errors import TrapKind

#: A deliberately stateful target: global mode bit + per-run leaks.
DEMO_SOURCE = r"""
int strict_mode = 1;
long runs;
char input_buf[64];

int main(int argc, char **argv) {
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    long n = fread(input_buf, 1, 64, f);
    runs++;
    char *scratch = (char*)malloc(4096);
    scratch[0] = (char)runs;
    if (n < 1) { exit(2); }              /* leaks scratch AND f */
    if (input_buf[0] == 'D') {
        strict_mode = 0;                 /* pollutes later iterations */
    }
    if (input_buf[0] == 'L') {
        return 3;                        /* early return: leaks scratch + f */
    }
    if (input_buf[0] == 'C' && strict_mode) {
        int *p = NULL;
        *p = 1;                          /* the real bug */
    }
    fclose(f);
    free(scratch);
    return 0;
}
"""

DEMO_IMAGE_BYTES = 100_000


def build_demo_modules():
    """(baseline, persistent, closurex) builds of the demo target."""
    baseline = compile_c(DEMO_SOURCE, "stateful-demo")
    PassManager(baseline_passes(7)).run(baseline)
    persistent = compile_c(DEMO_SOURCE, "stateful-demo")
    PassManager(persistent_passes(7)).run(persistent)
    closurex = compile_c(DEMO_SOURCE, "stateful-demo")
    PassManager(closurex_passes(7)).run(closurex)
    return baseline, persistent, closurex


@dataclass
class MotivationReport:
    """Observed pathologies per mechanism."""

    fresh_crash: bool = False
    persistent_missed_crash: bool = False
    persistent_false_crashes: list[TrapKind] = field(default_factory=list)
    false_crash_reproducible_fresh: bool = False
    closurex_crash: bool = False
    persistent_peak_leaked_bytes: int = 0
    persistent_peak_open_fds: int = 0

    @property
    def demonstrates_incorrectness(self) -> bool:
        return (
            self.fresh_crash
            and self.persistent_missed_crash
            and bool(self.persistent_false_crashes)
            and not self.false_crash_reproducible_fresh
            and self.closurex_crash
        )

    def describe(self) -> str:
        lines = [
            f"fresh process crashes on 'C': {self.fresh_crash}",
            f"naive persistent misses the crash after 'D': "
            f"{self.persistent_missed_crash}",
            f"naive persistent false crashes: "
            f"{[k.value for k in self.persistent_false_crashes]}",
            f"  ...reproducible in a fresh process: "
            f"{self.false_crash_reproducible_fresh}",
            f"ClosureX still catches the crash after 'D': {self.closurex_crash}",
            f"persistent peak leak: {self.persistent_peak_leaked_bytes} B, "
            f"peak open FDs: {self.persistent_peak_open_fds}",
        ]
        return "\n".join(lines)


def run_motivation(leak_iterations: int = 80) -> MotivationReport:
    """Run the three-pathology demonstration."""
    baseline, persistent_mod, closurex_mod = build_demo_modules()
    report = MotivationReport()
    crash_input = b"C crash please"
    disable_input = b"D disable"

    # Ground truth: a fresh process always crashes on 'C'.
    fresh = FreshProcessExecutor(baseline, DEMO_IMAGE_BYTES, Kernel())
    result = fresh.run(crash_input)
    report.fresh_crash = result.is_crash

    # Pathology 1: missed crash. 'D' pollutes the global; 'C' no longer
    # crashes the same persistent process.
    persistent = NaivePersistentExecutor(persistent_mod, DEMO_IMAGE_BYTES, Kernel())
    persistent.boot()
    persistent.run(disable_input)
    result = persistent.run(crash_input)
    report.persistent_missed_crash = not result.is_crash

    # Pathology 2: false crashes. Benign inputs leak 4 KiB + one FD per
    # iteration; eventually the process dies on a perfectly valid input.
    # (A small heap budget stands in for hours of accumulation.)
    leaky = NaivePersistentExecutor(persistent_mod, DEMO_IMAGE_BYTES, Kernel())
    leaky.boot()
    assert leaky.vm is not None
    leaky.vm.heap.budget_bytes = 48 * 4096
    leak_input = b"L leak on early return"
    false_crash_input = None
    for _ in range(leak_iterations):
        # 'L' returns early, leaking 4 KiB and one FILE handle each
        # iteration — pollution a fresh process would never see.
        result = leaky.run(leak_input)
        report.persistent_peak_leaked_bytes = leaky.pollution.peak_leaked_bytes
        report.persistent_peak_open_fds = leaky.pollution.peak_open_fds
        if result.is_crash and result.trap is not None:
            report.persistent_false_crashes.append(result.trap.kind)
            false_crash_input = leak_input
            break

    # Pathology 3: the false crash does not reproduce in a fresh process.
    if false_crash_input is not None:
        fresh2 = FreshProcessExecutor(baseline, DEMO_IMAGE_BYTES, Kernel())
        report.false_crash_reproducible_fresh = fresh2.run(false_crash_input).is_crash

    # ClosureX: same 'D' then 'C' sequence, crash still caught.
    closurex = ClosureXExecutor(closurex_mod, DEMO_IMAGE_BYTES, Kernel())
    closurex.boot()
    closurex.run(disable_input)
    result = closurex.run(crash_input)
    report.closurex_crash = result.is_crash
    return report
