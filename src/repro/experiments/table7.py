"""Experiment E3 — Table 7: time-to-bug.

For the four bug-bearing targets, run N trials per mechanism and
record, for every planted bug, the virtual time of its first discovery
in each trial.  Rows mirror the paper's Table 7: mean seconds-to-bug
with the number of finding trials in parentheses, plus the bug-type
label, for ClosureX and AFL++ side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.campaign_runner import run_campaign
from repro.experiments.config import ExperimentConfig
from repro.experiments.stats import format_table, mean
from repro.targets import get_target

#: The paper's Table 7 covers exactly these four programs.
BUG_TARGETS = ("c-blosc2", "gpmf-parser", "libbpf", "md4c")


@dataclass
class Table7Row:
    """One planted bug's time-to-discovery row."""

    benchmark: str
    bug_id: str
    bug_type: str
    closurex_times: list[float] = field(default_factory=list)  # virtual secs
    aflpp_times: list[float] = field(default_factory=list)
    trials: int = 0

    def mean_time(self, mechanism: str) -> float | None:
        times = self.closurex_times if mechanism == "closurex" else self.aflpp_times
        return mean(times) if times else None

    def cell(self, mechanism: str) -> str:
        times = self.closurex_times if mechanism == "closurex" else self.aflpp_times
        if not times:
            return f"- (0/{self.trials})"
        return f"{mean(times):.3f} ({len(times)})"


@dataclass
class Table7Result:
    """The reproduced Table 7: time-to-bug across the 15 bugs."""

    rows: list[Table7Row]
    trials: int

    def render(self) -> str:
        body = [
            [row.benchmark, row.cell("closurex"), row.cell("aflpp"), row.bug_type]
            for row in self.rows
        ]
        return format_table(
            ["Benchmark", "ClosureX (vs)", "AFL++ (vs)", "Bug Type"], body
        )

    def aggregate_speedup(self) -> float | None:
        """Mean per-bug time ratio over bugs both mechanisms found."""
        ratios = []
        for row in self.rows:
            cx, fk = row.mean_time("closurex"), row.mean_time("aflpp")
            if cx and fk and cx > 0:
                ratios.append(fk / cx)
        return mean(ratios) if ratios else None

    def finding_counts(self) -> tuple[int, int]:
        """(closurex, aflpp) total bug-finding trials across all rows."""
        cx = sum(len(r.closurex_times) for r in self.rows)
        fk = sum(len(r.aflpp_times) for r in self.rows)
        return cx, fk


def run_table7(config: ExperimentConfig | None = None,
               targets: tuple[str, ...] = BUG_TARGETS) -> Table7Result:
    config = config if config is not None else ExperimentConfig()
    selected = [t for t in targets if t in config.targets] or list(targets)
    rows: list[Table7Row] = []
    for target in selected:
        spec = get_target(target)
        per_bug = {
            bug.bug_id: Table7Row(
                benchmark=target,
                bug_id=bug.bug_id,
                bug_type=bug.table7_label,
                trials=config.trials,
            )
            for bug in spec.bugs
        }
        for trial in range(config.trials):
            seed = config.trial_seed(target, "any", trial)
            for mechanism, bucket in (("closurex", "closurex_times"),
                                      ("forkserver", "aflpp_times")):
                result = run_campaign(target, mechanism, config.budget_ns, seed)
                for report in result.crash_reports:
                    bug = spec.find_bug(report.identity)
                    if bug is None:
                        continue
                    getattr(per_bug[bug.bug_id], bucket).append(
                        report.found_at_ns / 1e9
                    )
        rows.extend(per_bug.values())
    return Table7Result(rows=rows, trials=config.trials)
