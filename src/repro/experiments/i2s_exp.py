"""I2S guard-cracking experiment: time-to-guarded-edge, I2S vs havoc.

Magic-byte and length-field guards are where plain havoc stalls: a
32-bit magic is a 1-in-2^32 lottery per mutation, but one observed
``icmp`` tells the input-to-state stage the winning value outright.
This experiment quantifies that on the repo's guard-bearing targets.

Method, per target:

1. Pick the **campaign seeds** — usually the target's stock corpus;
   for freetype, version-corrupted fonts modelling the common
   weak-seed scenario (fuzzing a format without a valid corpus, where
   the file magic guards the whole parser).
2. Build a **witness** input that passes a guard those seeds never
   satisfy (the byte-swapped pcap magic, the ``GIF87a`` signature, a
   valid sfnt version).
3. Build a **decoy**: the same input with the guard value broken — a
   *near miss* that evaluates the guard and fails it.  Short-circuit
   ``&&`` lowering means "evaluated the second compare" edges are
   witness-unique w.r.t. the seeds yet reachable by any near miss;
   subtracting the decoy's cells removes them, leaving only edges that
   genuinely require the guard to hold.
4. Compute the guard's **cells**: coverage-map cells the witness hits
   that neither the campaign seeds nor the decoy hit.  Every input
   runs twice at different virtual instants and only cells stable
   across both runs count, so PRNG-dependent paths (targets seeding
   ``rand`` from the clock) cannot contaminate the cell set.
5. Run paired campaigns — havoc-only vs I2S-enabled, same seed, same
   virtual budget — and record the first virtual instant a corpus
   entry's coverage signature touches any guard cell (censored at the
   budget when none does).

The acceptance criterion is the issue's: on at least three targets the
I2S arm reaches the guarded edge within half the virtual time the
havoc-only arm needs.  ``benchmarks/test_i2s_guards.py`` runs this and
commits the rendered report under ``benchmarks/results/``.

Guards that do NOT make clean rows, and why (measured, not guessed):

- freetype's version check *from the stock seeds* has no
  discriminating edge: MiniC lowers ``&&`` through a result slot, so
  the accept and reject paths share every block-to-block edge and the
  sole divergence (the slot branch) is already seeded by the valid
  corpus.  Hence the weak-seed framing above, where the accept-side
  parser is unseeded and every post-guard edge discriminates.
- zlib's stored-block checks alias under truncation: the oversized-
  block edge (``off + len > input_len``) is reachable by simply
  truncating a seed's payload — the seed's own valid ``len/~len``
  pair does the rest — so havoc reaches it in under a millisecond and
  the edge says nothing about solving the two-field complement
  constraint.  The deeper ``len > 512`` check needs a 519-byte input
  and censors both arms.
- bsdtar's checksum compares a *decoded* octal sum, so no byte
  encoding of either operand appears in the input: not I2S-encodable.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.experiments.campaign_runner import build_executor
from repro.experiments.config import ExperimentConfig
from repro.experiments.stats import format_table, median
from repro.fuzzing.campaign import Campaign, CampaignConfig
from repro.sim_os.kernel import Kernel
from repro.targets import get_target


@dataclass(frozen=True)
class GuardSpec:
    """One guarded edge to race: what to crack, starting from where."""

    #: Human-readable guard label for the report table.
    guard: str
    #: witness(spec) -> input passing the guard.
    witness: object
    #: decoy(spec) -> near-miss input evaluating and failing the guard.
    decoy: object
    #: campaign_seeds(spec) -> seed corpus both arms fuzz from
    #: (defaults to the target's stock seeds when None).
    campaign_seeds: object = None

    def seeds(self, spec) -> list[bytes]:
        if self.campaign_seeds is None:
            return list(spec.seeds)
        return self.campaign_seeds(spec)


def _pcap_witness(spec) -> bytes:
    """A byte-swapped pcap capture (magic bytes ``a1 b2 c3 d4``).

    Everything but the magic is a field-wise big-endian re-encoding of
    a seed capture — same packets, same caplens — so the only cells
    the witness can add over the seeds are the swapped-read branches,
    and those are reachable *only* once the exact 4-byte magic holds.
    """
    return _be_pcap(0xD4C3B2A1)


def _pcap_decoy(spec) -> bytes:
    """The byte-swapped capture with its magic zeroed: same bytes
    everywhere else, fails the dispatch, absorbs any near-miss edge."""
    return _be_pcap(0)


def _be_pcap(magic: int) -> bytes:
    from repro.targets.libpcap import _ethernet_ipv4

    out = struct.pack("<I", magic)
    out += struct.pack(">HHiIII", 2, 4, 0, 0, 256, 1)
    for payload in (_ethernet_ipv4(6), _ethernet_ipv4(17)):
        out += struct.pack(">IIII", 0, 0, len(payload), len(payload))
        out += payload
    return out


def _giftext_witness(spec) -> bytes:
    """A seed GIF re-signed as GIF87a (seeds are all GIF89a).

    The seeds themselves are the natural near miss — ``GIF89a``
    matches the first four signature bytes and fails at the fifth — so
    the decoy only has to absorb the "not a GIF at all" reject path.
    """
    return b"GIF87a" + spec.seeds[0][6:]


def _giftext_decoy(spec) -> bytes:
    return b"\x00IF87a" + spec.seeds[0][6:]


def _freetype_witness(spec) -> bytes:
    """A stock (version-valid) seed font: every cell past the version
    guard discriminates, because the campaign seeds are corrupted."""
    return spec.seeds[0]


def _freetype_decoy(spec) -> bytes:
    """A near-miss version (0x00020000): evaluates both compares of
    the version check and fails, like the corrupted campaign seeds."""
    return b"\x00\x02\x00\x00" + spec.seeds[0][4:]


def _freetype_campaign_seeds(spec) -> list[bytes]:
    """The stock fonts with their sfnt version stomped: a weak-seed
    corpus where the 4-byte version magic guards the whole parser."""
    return [b"\xde\xad\xbe\xef" + seed[4:] for seed in spec.seeds]


#: target name -> guarded edge to race.
GUARD_TARGETS: dict[str, GuardSpec] = {
    "libpcap": GuardSpec(
        guard="byte-swapped magic 0xd4c3b2a1",
        witness=_pcap_witness,
        decoy=_pcap_decoy,
    ),
    "giftext": GuardSpec(
        guard="GIF87a signature",
        witness=_giftext_witness,
        decoy=_giftext_decoy,
    ),
    "freetype": GuardSpec(
        guard="sfnt version magic (weak seeds)",
        witness=_freetype_witness,
        decoy=_freetype_decoy,
        campaign_seeds=_freetype_campaign_seeds,
    ),
}


def _stable_cells(executor, data: bytes) -> set[int]:
    """Cells hit by *data* in two runs at different virtual instants.

    The intersection drops any cell whose reachability depends on the
    virtual clock (targets seeding a PRNG from ``time()``).
    """
    first = {
        i for i, v in enumerate(executor.run(data).coverage) if v
    }
    second = {
        i for i, v in enumerate(executor.run(data).coverage) if v
    }
    return first & second


def guard_cells(target: str) -> set[int]:
    """Coverage cells unique to the target's witness input.

    Subtracts both the campaign seeds' cells and the decoy's
    (near-miss) cells, so every returned cell requires the guard to
    actually hold.  Uses the ClosureX executor — the same module build
    the campaigns run — so cell indices line up with campaign coverage
    signatures.
    """
    guard = GUARD_TARGETS[target]
    spec = get_target(target)
    executor = build_executor(target, "closurex", Kernel())
    executor.boot()
    baseline: set[int] = set()
    for seed in guard.seeds(spec):
        baseline |= _stable_cells(executor, seed)
    baseline |= _stable_cells(executor, guard.decoy(spec))
    witness_cells = _stable_cells(executor, guard.witness(spec))
    executor.shutdown()
    cells = witness_cells - baseline
    if not cells:
        raise RuntimeError(
            f"{target}: witness for {guard.guard!r} hits no cell the "
            "seeds and decoy miss"
        )
    return cells


def time_to_guard(target: str, cells: set[int], seed: int, budget_ns: int,
                  i2s: bool) -> int:
    """Virtual ns until a corpus entry touches a guard cell (censored
    at *budget_ns* when the campaign never reaches one)."""
    guard = GUARD_TARGETS[target]
    spec = get_target(target)
    executor = build_executor(target, "closurex", Kernel())
    config = CampaignConfig(
        budget_ns=budget_ns, seed=seed, i2s_enabled=i2s,
    )
    campaign = Campaign(executor, guard.seeds(spec), config)
    campaign.run()
    start = campaign.run_start_ns
    best: int | None = None
    for entry in campaign.corpus.entries:
        signature = entry.coverage_signature
        if any(signature[cell] for cell in cells):
            at = entry.discovered_at_ns - start
            if best is None or at < best:
                best = at
    return best if best is not None else budget_ns


@dataclass
class I2SGuardRow:
    """One target's paired time-to-guard measurements."""

    target: str
    guard: str
    havoc_ns: list[int] = field(default_factory=list)
    i2s_ns: list[int] = field(default_factory=list)
    budget_ns: int = 0

    def median_ns(self, arm: str) -> float:
        times = self.havoc_ns if arm == "havoc" else self.i2s_ns
        return median([float(t) for t in times])

    @property
    def criterion_met(self) -> bool:
        """I2S reached the guard in <= 50% of havoc's virtual time."""
        return self.median_ns("i2s") <= 0.5 * self.median_ns("havoc")

    def cell(self, arm: str) -> str:
        value = self.median_ns(arm)
        if value >= self.budget_ns:
            return f">= {value / 1e6:.1f}ms (censored)"
        return f"{value / 1e6:.2f}ms"


@dataclass
class I2SGuardResult:
    """The full report: one row per guard-bearing target."""

    rows: list[I2SGuardRow]
    trials: int
    budget_ns: int

    @property
    def targets_met(self) -> int:
        return sum(row.criterion_met for row in self.rows)

    def render(self) -> str:
        body = [
            [
                row.target,
                row.guard,
                row.cell("havoc"),
                row.cell("i2s"),
                "yes" if row.criterion_met else "no",
            ]
            for row in self.rows
        ]
        table = format_table(
            ["Target", "Guard", "Havoc median", "I2S median", "<=50%"],
            body,
        )
        summary = (
            f"\ncriterion (I2S <= 50% of havoc time-to-guard) met on "
            f"{self.targets_met}/{len(self.rows)} targets "
            f"({self.trials} trials, {self.budget_ns / 1e6:.0f}ms budget)"
        )
        return table + summary


def run_i2s_guards(config: ExperimentConfig | None = None,
                   targets: tuple[str, ...] | None = None) -> I2SGuardResult:
    """Run the paired time-to-guard comparison on every guard target."""
    config = config if config is not None else ExperimentConfig()
    selected = list(targets if targets is not None else GUARD_TARGETS)
    rows: list[I2SGuardRow] = []
    for target in selected:
        guard = GUARD_TARGETS[target]
        cells = guard_cells(target)
        row = I2SGuardRow(
            target=target, guard=guard.guard, budget_ns=config.budget_ns
        )
        for trial in range(config.trials):
            seed = config.trial_seed(target, "i2s", trial)
            row.havoc_ns.append(
                time_to_guard(target, cells, seed, config.budget_ns, False)
            )
            row.i2s_ns.append(
                time_to_guard(target, cells, seed, config.budget_ns, True)
            )
        rows.append(row)
    return I2SGuardResult(
        rows=rows, trials=config.trials, budget_ns=config.budget_ns
    )
