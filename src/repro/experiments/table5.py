"""Experiment E1 — Table 5: test-case execution rate.

For every benchmark, run N-trial fuzzing campaigns under ClosureX and
under the AFL++ forkserver with identical seeds/mutators, extrapolate
each trial's throughput to the paper's 24-hour horizon, and report the
per-target speedup and Mann-Whitney p-value — the same row format as
the paper's Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.campaign_runner import run_campaign
from repro.experiments.config import HORIZON_24H_NS, ExperimentConfig
from repro.experiments.stats import format_count, format_table, mann_whitney_p, mean


@dataclass
class Table5Row:
    """One benchmark's throughput row (execs/s per mechanism)."""

    benchmark: str
    closurex_execs_24h: float
    aflpp_execs_24h: float
    speedup: float
    p_value: float
    closurex_trials: list[float] = field(default_factory=list)
    aflpp_trials: list[float] = field(default_factory=list)


@dataclass
class Table5Result:
    """The reproduced Table 5: throughput across all benchmarks."""

    rows: list[Table5Row]
    average_speedup: float

    def render(self) -> str:
        body = [
            [
                row.benchmark,
                format_count(row.closurex_execs_24h),
                format_count(row.aflpp_execs_24h),
                f"{row.speedup:.2f}",
                f"{row.p_value:.4f}",
            ]
            for row in self.rows
        ]
        body.append(["Average", "", "", f"{self.average_speedup:.2f}", ""])
        return format_table(
            ["Benchmark", "ClosureX", "AFL++", "Speedup", "p value"], body
        )


def run_table5(config: ExperimentConfig | None = None) -> Table5Result:
    config = config if config is not None else ExperimentConfig()
    rows: list[Table5Row] = []
    for target in config.targets:
        closurex: list[float] = []
        aflpp: list[float] = []
        for trial in range(config.trials):
            seed = config.trial_seed(target, "any", trial)
            cx = run_campaign(target, "closurex", config.budget_ns, seed)
            fk = run_campaign(target, "forkserver", config.budget_ns, seed)
            closurex.append(cx.extrapolate_execs(HORIZON_24H_NS))
            aflpp.append(fk.extrapolate_execs(HORIZON_24H_NS))
        cx_mean, fk_mean = mean(closurex), mean(aflpp)
        rows.append(
            Table5Row(
                benchmark=target,
                closurex_execs_24h=cx_mean,
                aflpp_execs_24h=fk_mean,
                speedup=cx_mean / fk_mean if fk_mean else 0.0,
                p_value=mann_whitney_p(closurex, aflpp),
                closurex_trials=closurex,
                aflpp_trials=aflpp,
            )
        )
    average = mean([row.speedup for row in rows])
    return Table5Result(rows=rows, average_speedup=average)
