"""Shared campaign plumbing for the table experiments.

Builds the right (module, executor) pair for a mechanism and runs a
seeded campaign; Tables 5-7 all consume the same runs, so results are
cached per (target, mechanism, trial, budget) within a process.
"""

from __future__ import annotations

from functools import lru_cache

from repro.execution import (
    ClosureXExecutor,
    Executor,
    ForkServerExecutor,
    FreshProcessExecutor,
    NaivePersistentExecutor,
)
from repro.fuzzing import Campaign, CampaignConfig, CampaignResult
from repro.sim_os import Kernel
from repro.targets import get_target

MECHANISMS = ("closurex", "forkserver", "persistent", "fresh")


def build_executor(target_name: str, mechanism: str, kernel: Kernel,
                   optimize: bool = False) -> Executor:
    """Instrument the target for *mechanism* and wrap it in an executor.

    With ``optimize=True`` the instrumented module is additionally run
    through the validated IR optimizer (:mod:`repro.analysis.opt`)
    before wrapping — observations are proven bit-identical, only the
    per-execution instruction count changes.
    """
    spec = get_target(target_name)
    if mechanism == "closurex":
        return ClosureXExecutor(spec.build_closurex(optimize=optimize),
                                spec.image_bytes, kernel)
    if mechanism == "forkserver":
        return ForkServerExecutor(spec.build_baseline(optimize=optimize),
                                  spec.image_bytes, kernel)
    if mechanism == "persistent":
        return NaivePersistentExecutor(spec.build_persistent(optimize=optimize),
                                       spec.image_bytes, kernel)
    if mechanism == "fresh":
        return FreshProcessExecutor(spec.build_baseline(optimize=optimize),
                                    spec.image_bytes, kernel)
    raise ValueError(f"unknown mechanism {mechanism!r}")


@lru_cache(maxsize=None)
def run_campaign(
    target_name: str, mechanism: str, budget_ns: int, seed: int
) -> CampaignResult:
    """Run (or return the cached result of) one fuzzing campaign."""
    spec = get_target(target_name)
    kernel = Kernel()
    executor = build_executor(target_name, mechanism, kernel)
    campaign = Campaign(
        executor,
        spec.seeds,
        CampaignConfig(budget_ns=budget_ns, seed=seed),
    )
    return campaign.run()


def clear_campaign_cache() -> None:
    run_campaign.cache_clear()
