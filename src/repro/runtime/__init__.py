"""ClosureX runtime: harness loop, chunk map, FD tracker, global snapshot."""

from repro.runtime.chunkmap import ChunkMap, ChunkRecord
from repro.runtime.fdtracker import FDTracker, HandleRecord
from repro.runtime.globals_snapshot import GlobalSectionSnapshot
from repro.runtime.harness import (
    DEFAULT_INPUT_PATH,
    HOOK_OVERHEAD_NS,
    ClosureXHarness,
    HarnessConfig,
    IterationResult,
    IterationStatus,
    RestoreReport,
)

__all__ = [
    "ChunkMap", "ChunkRecord",
    "FDTracker", "HandleRecord",
    "GlobalSectionSnapshot",
    "DEFAULT_INPUT_PATH", "HOOK_OVERHEAD_NS",
    "ClosureXHarness", "HarnessConfig", "IterationResult",
    "IterationStatus", "RestoreReport",
]
