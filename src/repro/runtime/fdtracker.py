"""The ClosureX file-descriptor tracker (paper §4.2.2, FilePass runtime).

Tracks every FILE handle the target opens via the rerouted
``fopen_hook``/``fclose_hook``.  After a test case the harness closes
leaked handles.  Handles opened during the initialisation phase get the
paper's optimisation: instead of close-and-reopen they are *rewound*
(``fseek`` to 0), which is cheaper and preserves the handle identity a
fresh process would have after its own init.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class HandleRecord:
    """One tracked FILE handle (id, path, init-phase flag)."""

    handle: int
    path: str
    init: bool


class FDTracker:
    """Handle -> record of every FILE the target has open."""

    def __init__(self) -> None:
        self._handles: dict[int, HandleRecord] = {}
        self.total_opened = 0
        self.total_closed_by_target = 0
        self.total_swept = 0
        self.total_rewound = 0

    def record(self, handle: int, path: str, init: bool = False) -> None:
        if handle == 0:
            return
        self._handles[handle] = HandleRecord(handle, path, init)
        self.total_opened += 1

    def get(self, handle: int) -> HandleRecord | None:
        return self._handles.get(handle)

    def remove(self, handle: int) -> bool:
        record = self._handles.pop(handle, None)
        if record is None:
            return False
        self.total_closed_by_target += 1
        return True

    def mark_all_init(self) -> int:
        for record in self._handles.values():
            record.init = True
        return len(self._handles)

    def leaked(self) -> list[HandleRecord]:
        return [h for h in self._handles.values() if not h.init]

    def init_handles(self) -> list[HandleRecord]:
        return [h for h in self._handles.values() if h.init]

    def sweep(self) -> tuple[list[HandleRecord], list[HandleRecord]]:
        """Returns ``(to_close, to_rewind)`` and drops the closed ones."""
        to_close = self.leaked()
        for record in to_close:
            del self._handles[record.handle]
        to_rewind = self.init_handles()
        self.total_swept += len(to_close)
        self.total_rewound += len(to_rewind)
        return to_close, to_rewind

    def open_count(self) -> int:
        return len(self._handles)

    def __contains__(self, handle: int) -> bool:
        return handle in self._handles
