"""The ClosureX harness: the persistent fuzzing loop of paper Listing 1.

The harness owns one MiniVM "process" running a ClosureX-instrumented
module and drives it through test cases:

1. **boot** — load the binary, set up ``argv``, run any deferred
   initialisation, mark init-phase heap chunks / file handles as
   process-invariant, and capture the ground-truth snapshot of
   ``closure_global_section``.
2. **run_test_case** — write the input, ``setjmp``, call
   ``target_main``; a hooked ``exit()`` longjmps back here
   (:class:`HarnessExit`), a genuine crash surfaces as
   :class:`VMTrap`.
3. **restore** — sweep leaked heap chunks, close/rewind leaked file
   handles, restore the global section, and rewind stack/heap address
   cursors: the fine-grain state restoration that makes the next
   iteration semantically identical to a fresh process.

The rerouted libc wrappers (``closurex_malloc`` et al.) are installed
as VM natives bound to this harness — the "resolved during the linking
phase with ClosureX's harness" step of the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.analysis.pollution import PollutionReport
from repro.ir.module import Function, Module
from repro.passes.global_pass import CLOSURE_GLOBAL_SECTION
from repro.passes.rename_main import TARGET_MAIN
from repro.runtime.chunkmap import ChunkMap
from repro.runtime.fdtracker import FDTracker
from repro.runtime.globals_snapshot import GlobalSectionSnapshot
from repro.sim_os.costs import DEFAULT_COSTS, CostModel
from repro.vm.errors import (
    CrashSite,
    ExecutionLimitExceeded,
    HarnessExit,
    ProcessExit,
    VMTrap,
)
from repro.vm.filesystem import VirtualFS
from repro.vm.interpreter import VM
from repro.vm.libc import NATIVE_BASE_COST

#: Extra virtual-ns charged by each tracking wrapper on top of the
#: underlying libc call — the paper's "the instrumentation itself isn't
#: zero-cost" overhead.
HOOK_OVERHEAD_NS = 6

DEFAULT_INPUT_PATH = "/fuzz/input"


class IterationStatus(enum.Enum):
    """Outcome categories of one harness loop iteration."""

    OK = "ok"                    # target_main returned normally
    EXIT = "exit"                # hooked exit() -> longjmp to harness
    PROCESS_EXIT = "process_exit"  # unhooked exit(): process died
    CRASH = "crash"
    HANG = "hang"

    @property
    def survivable(self) -> bool:
        """Can the persistent process keep running after this outcome?"""
        return self in (IterationStatus.OK, IterationStatus.EXIT)


@dataclass
class HarnessConfig:
    """Tunables for one harness instance."""

    input_path: str = DEFAULT_INPUT_PATH
    instruction_limit: int = 2_000_000       # per test case (hang detection)
    heap_budget: int = 64 << 20
    max_open_files: int | None = None
    deferred_init_functions: tuple[str, ...] = ()
    rewind_init_handles: bool = True         # paper's fseek optimisation
    #: Static pollution classification of the target (from
    #: TargetSpec.build_analyzed / pollution_aware_pipeline).  A clean
    #: dimension lets restore_state skip the matching sweep entirely —
    #: the analysis *proved* the sweep can never find anything.
    pollution: PollutionReport | None = None


@dataclass
class RestoreReport:
    """What one restoration pass did (drives its cost and the tests)."""

    leaked_chunks: int = 0
    leaked_bytes: int = 0
    closed_fds: int = 0
    rewound_fds: int = 0
    section_bytes: int = 0
    restore_ns: int = 0


@dataclass
class IterationResult:
    """Outcome of one test case under the harness."""

    status: IterationStatus
    return_code: int | None = None
    trap: VMTrap | None = None
    exec_ns: int = 0
    restore: RestoreReport | None = None
    instructions: int = 0


class ClosureXHarness:
    """One persistent process executing ClosureX-instrumented code."""

    def __init__(
        self,
        module: Module,
        fs: VirtualFS | None = None,
        costs: CostModel | None = None,
        config: HarnessConfig | None = None,
        vm_counters: dict | None = None,
    ):
        if not module.has_function(TARGET_MAIN):
            raise ValueError(
                "module has no target_main — run the ClosureX pipeline first"
            )
        self.module = module
        self.fs = fs if fs is not None else VirtualFS()
        self.costs = costs if costs is not None else DEFAULT_COSTS
        self.config = config if config is not None else HarnessConfig()
        # Optional telemetry: VM profiling-dict kwargs from the owning
        # executor (see Executor.vm_counters).
        self.vm_counters = vm_counters if vm_counters is not None else {}
        self.chunk_map = ChunkMap()
        self.fd_tracker = FDTracker()
        self.vm: VM | None = None
        self.snapshot: GlobalSectionSnapshot | None = None
        self.in_init_phase = True
        self.iterations = 0
        self._argc = 0
        self._argv = 0
        self._heap_mark = 0
        self._target_main: Function | None = None

    # ------------------------------------------------------------------
    # natives: the linked-in ClosureX runtime wrappers
    # ------------------------------------------------------------------

    def _make_natives(self):
        harness = self

        def call_underlying(vm: VM, name: str, args: list[int], site: CrashSite):
            """Invoke the wrapped libc routine at full price: the hook
            adds tracking overhead on top of the original call's cost,
            it never discounts it."""
            vm.charge(NATIVE_BASE_COST.get(name, 20) + HOOK_OVERHEAD_NS)
            return vm.natives[name](vm, args, site)

        def closurex_malloc(vm: VM, args: list[int], site: CrashSite) -> int:
            address = call_underlying(vm, "malloc", args, site)
            harness.chunk_map.record(address, args[0], harness.in_init_phase)
            return address

        def closurex_calloc(vm: VM, args: list[int], site: CrashSite) -> int:
            address = call_underlying(vm, "calloc", args, site)
            harness.chunk_map.record(address, args[0] * args[1], harness.in_init_phase)
            return address

        def closurex_realloc(vm: VM, args: list[int], site: CrashSite) -> int:
            address = call_underlying(vm, "realloc", args, site)
            if args[0]:
                harness.chunk_map.remove(args[0])
            harness.chunk_map.record(
                address, args[1], harness.in_init_phase
            )
            return address

        def closurex_free(vm: VM, args: list[int], site: CrashSite) -> None:
            if args[0]:
                harness.chunk_map.remove(args[0])
            call_underlying(vm, "free", args, site)

        def fopen_hook(vm: VM, args: list[int], site: CrashSite) -> int:
            handle = call_underlying(vm, "fopen", args, site)
            if handle:
                path = vm.memory.read_cstring(args[0], site).decode("latin-1")
                harness.fd_tracker.record(handle, path, harness.in_init_phase)
            return handle

        def fclose_hook(vm: VM, args: list[int], site: CrashSite) -> int:
            harness.fd_tracker.remove(args[0])
            return call_underlying(vm, "fclose", args, site)

        return {
            "closurex_malloc": closurex_malloc,
            "closurex_calloc": closurex_calloc,
            "closurex_realloc": closurex_realloc,
            "closurex_free": closurex_free,
            "closurex_fopen_hook": fopen_hook,
            "closurex_fclose_hook": fclose_hook,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def boot(self, charge_load: bool = True) -> VM:
        """Load the process image and establish the restore point.

        *charge_load* is False when the process image is inherited from
        a forkserver parent (loading was paid once, at spawn)."""
        config = self.config
        self.vm = VM(
            self.module,
            fs=self.fs,
            heap_budget=config.heap_budget,
            max_open_files=config.max_open_files,
            extra_natives=self._make_natives(),
            **self.vm_counters,
        )
        self.vm.load()
        if charge_load:
            self.vm.charge(self.vm.load_cost)
        if not self.fs.exists(config.input_path):
            self.fs.write_file(config.input_path, b"")
        self._argc, self._argv = self.vm.setup_argv(
            [self.module.name, config.input_path]
        )
        self._target_main = self.module.get_function(TARGET_MAIN)

        # Deferred initialisation (paper §7.2 extension): run
        # input-independent init once, outside the fuzzing loop.
        self.in_init_phase = True
        for name in config.deferred_init_functions:
            function = self.module.get_function(name)
            self.vm.run_function(function, [])
        self.chunk_map.mark_all_init()
        self.fd_tracker.mark_all_init()
        self._heap_mark = self.vm.memory.heap_segment.cursor

        self.snapshot = GlobalSectionSnapshot(self.vm, CLOSURE_GLOBAL_SECTION)
        self.snapshot.capture()
        self.in_init_phase = False
        return self.vm

    @property
    def booted(self) -> bool:
        return self.vm is not None

    def run_test_case(self, data: bytes, restore: bool = True) -> IterationResult:
        """Execute one test case in the persistent loop."""
        if self.vm is None or self.snapshot is None or self._target_main is None:
            raise RuntimeError("harness not booted")
        vm = self.vm
        config = self.config
        self.fs.write_file(config.input_path, data)
        vm.instruction_limit = vm.instructions_executed + config.instruction_limit
        # The fuzzer clears the shared coverage map before each run, as
        # AFL++ does; the time this takes is part of dispatch_ns.
        vm.reset_coverage()
        start_cost = vm.cost
        start_insts = vm.instructions_executed
        vm.charge(self.costs.loop_iteration_ns + self.costs.setjmp_ns)

        status = IterationStatus.OK
        return_code: int | None = None
        trap: VMTrap | None = None
        try:
            return_code = vm.run_function(self._target_main, [self._argc, self._argv])
        except HarnessExit as exit_:
            status = IterationStatus.EXIT
            return_code = exit_.code
        except ProcessExit as exit_:
            status = IterationStatus.PROCESS_EXIT
            return_code = exit_.code
        except VMTrap as trap_:
            status = IterationStatus.CRASH
            trap = trap_
        except ExecutionLimitExceeded:
            status = IterationStatus.HANG

        self.iterations += 1
        report: RestoreReport | None = None
        if restore and status.survivable:
            report = self.restore_state()
        return IterationResult(
            status=status,
            return_code=return_code,
            trap=trap,
            exec_ns=vm.cost - start_cost,
            restore=report,
            instructions=vm.instructions_executed - start_insts,
        )

    def restore_state(self) -> RestoreReport:
        """Fine-grain state restoration between test cases.

        The chaos plane can silently sabotage any single dimension of
        this pass (``skip-heap-sweep`` / ``leak-fd`` /
        ``dirty-global-byte`` / ``skip-ctx-rewind``): no exception is
        raised, the restore just does the wrong thing — exactly the
        failure mode of a pass regression or harness bug.  Detecting
        and healing those is the integrity sentinel's job
        (:mod:`repro.integrity`).
        """
        if self.vm is None or self.snapshot is None:
            raise RuntimeError("harness not booted")
        vm = self.vm
        report = RestoreReport()
        pollution = self.config.pollution
        skip_heap = pollution is not None and pollution.is_clean("heap")
        skip_fd = pollution is not None and pollution.is_clean("file")

        faults = vm.faults
        sabotage_heap = sabotage_fd = sabotage_global = sabotage_ctx = False
        if faults is not None:
            sabotage_heap = faults.poll("skip-heap-sweep") is not None
            sabotage_fd = faults.poll("leak-fd") is not None
            sabotage_global = faults.poll("dirty-global-byte") is not None
            sabotage_ctx = faults.poll("skip-ctx-rewind") is not None

        # 1. Heap: free every chunk the target leaked (Figure 5 C).
        #    Proven heap-clean targets never allocate after init (and
        #    init-phase chunks are never swept), so the walk is elided.
        if not skip_heap and not sabotage_heap:
            report.leaked_chunks, report.leaked_bytes = self._sweep_heap()

        # 2. File handles: close leaked ones, rewind init-phase ones.
        if not skip_fd and not sabotage_fd:
            report.closed_fds, report.rewound_fds = self._sweep_fds()

        # 3. Globals: copy the ground-truth snapshot back (Figure 4).
        #    A global-clean target has an empty (or absent) section, so
        #    this is free there anyway; dirty targets with a trusted
        #    report got a *smaller* section from the restricted
        #    GlobalPass, which is where the byte savings come from.
        report.section_bytes = self.snapshot.restore()
        if sabotage_global:
            self._corrupt_global_byte()

        # 4. Address-cursor rewind: the process's allocator and stack
        #    hand out the same addresses next iteration, as real ones do.
        #    (With the HeapPass ablated, untracked chunks survive the
        #    sweep and the cursor must stay put — mirroring a real
        #    allocator that cannot reuse leaked memory.)
        if not sabotage_ctx:
            self._rewind_cursors()

        report.restore_ns = self.costs.closurex_restore_cost(
            report.section_bytes,
            report.leaked_chunks,
            report.closed_fds,
            report.rewound_fds,
            skip_heap_sweep=skip_heap,
            skip_fd_sweep=skip_fd,
        )
        vm.charge(report.restore_ns)
        return report

    # ------------------------------------------------------------------
    # per-dimension sweeps (shared by restore_state and targeted repair)
    # ------------------------------------------------------------------

    def _sweep_heap(self) -> tuple[int, int]:
        """Free leaked chunks; returns ``(chunks, bytes)`` swept."""
        assert self.vm is not None
        chunks = 0
        leaked_bytes = 0
        for chunk in self.chunk_map.sweep():
            self.vm.heap.free(chunk.address, self.vm.site)
            chunks += 1
            leaked_bytes += chunk.size
        return chunks, leaked_bytes

    def _sweep_fds(self) -> tuple[int, int]:
        """Close leaked handles, rewind init ones; ``(closed, rewound)``."""
        assert self.vm is not None
        vm = self.vm
        closed = rewound = 0
        to_close, to_rewind = self.fd_tracker.sweep()
        for record in to_close:
            vm.fd_table.fclose(record.handle, vm.site)
            closed += 1
        if self.config.rewind_init_handles:
            for record in to_rewind:
                file = vm.fd_table.get(record.handle, vm.site)
                vm.fd_table.fseek(file, 0, 0)
                rewound += 1
        return closed, rewound

    def _rewind_cursors(self) -> None:
        assert self.vm is not None
        vm = self.vm
        vm.reset_stack_addresses()
        if all(r.base < self._heap_mark for r in vm.heap.live.values()):
            vm.reset_heap_addresses(self._heap_mark)

    def _corrupt_global_byte(self) -> None:
        """Chaos payload: flip one byte of the restored section — the
        observable effect of a restore that copied wrong data."""
        assert self.vm is not None
        section = self.vm.section_bytes(CLOSURE_GLOBAL_SECTION)
        if not section:
            return
        poisoned = bytes([section[0] ^ 0x5A]) + section[1:]
        self.vm.restore_section(CLOSURE_GLOBAL_SECTION, poisoned)

    def repair_dimensions(self, dimensions: tuple[str, ...]) -> int:
        """Targeted in-place repair: re-run the restore sweeps for the
        named state dimensions (the integrity sentinel's first rung).

        Unlike :meth:`restore_state` this ignores pollution-based skip
        proofs — a leak observed in a proven-clean dimension means the
        proof is wrong, and the repair must actually sweep.  Returns
        the virtual-ns cost of the repair (not yet charged anywhere:
        the caller owns the accounting).
        """
        if self.vm is None or self.snapshot is None:
            raise RuntimeError("harness not booted")
        chunks = closed = rewound = section_bytes = 0
        if "heap" in dimensions:
            chunks, _bytes = self._sweep_heap()
            # Leaked chunks above the mark blocked the cursor rewind in
            # restore_state; with them freed the heap dimension is only
            # whole once the cursor is back too.
            self._rewind_cursors()
        if "file" in dimensions:
            closed, rewound = self._sweep_fds()
        if "global" in dimensions:
            section_bytes = self.snapshot.restore()
        if "exit" in dimensions:
            self._rewind_cursors()
        return self.costs.integrity_repair_cost(
            chunks, closed, rewound, section_bytes
        )
