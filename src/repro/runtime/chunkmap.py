"""The ClosureX chunk map (paper Figure 5).

Runtime side of the HeapPass: the rerouted ``closurex_malloc`` /
``closurex_calloc`` / ``closurex_realloc`` / ``closurex_free`` wrappers
record every live allocation here.  After a test case the harness
sweeps whatever the target leaked.

Chunks allocated during the harness's initialisation phase (before the
fuzzing loop starts) are process-invariant state — a fresh process
would carry them too — so they are marked ``init`` and never swept.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ChunkRecord:
    """One tracked heap allocation (address, size, init-phase flag)."""

    address: int
    size: int
    init: bool


class ChunkMap:
    """Address -> record of every allocation the target still owns."""

    def __init__(self) -> None:
        self._chunks: dict[int, ChunkRecord] = {}
        self.total_tracked = 0
        self.total_freed_by_target = 0
        self.total_swept = 0

    def record(self, address: int, size: int, init: bool = False) -> None:
        if address == 0:
            return
        self._chunks[address] = ChunkRecord(address, size, init)
        self.total_tracked += 1

    def remove(self, address: int) -> bool:
        """Target freed *address*; returns False if it was untracked."""
        record = self._chunks.pop(address, None)
        if record is None:
            return False
        self.total_freed_by_target += 1
        return True

    def leaked(self) -> list[ChunkRecord]:
        """Chunks the target failed to free (init chunks excluded)."""
        return [c for c in self._chunks.values() if not c.init]

    def mark_all_init(self) -> int:
        """Flag every currently tracked chunk as initialisation state."""
        for chunk in self._chunks.values():
            chunk.init = True
        return len(self._chunks)

    def sweep(self) -> list[ChunkRecord]:
        """Remove and return all leaked (non-init) chunks."""
        leaked = self.leaked()
        for chunk in leaked:
            del self._chunks[chunk.address]
        self.total_swept += len(leaked)
        return leaked

    def live_count(self, include_init: bool = True) -> int:
        if include_init:
            return len(self._chunks)
        return sum(1 for c in self._chunks.values() if not c.init)

    def __contains__(self, address: int) -> bool:
        return address in self._chunks

    def __len__(self) -> int:
        return len(self._chunks)
