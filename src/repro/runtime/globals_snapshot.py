"""Global-section snapshot/restore (paper Figure 4, GlobalPass runtime).

At boot the harness copies the entire ``closure_global_section`` into an
internal buffer ("ground truth").  After every test case it writes the
buffer back, undoing whatever the test case did to writable globals.

The harness learns the section's bounds from the loader — the MiniVM
analogue of parsing the ELF with ``readelf`` and exporting
``CLOSURE_GLOBAL_SECTION_ADDR``/``_SIZE`` as the paper does.
"""

from __future__ import annotations

from repro.vm.interpreter import VM


class GlobalSectionSnapshot:
    """Ground-truth copy of one named section of a loaded VM."""

    def __init__(self, vm: VM, section: str):
        self.vm = vm
        self.section = section
        self.buffer: bytes = b""
        self.size = vm.section_size(section)
        self.restore_count = 0

    def capture(self) -> int:
        """Snapshot the section; returns bytes captured."""
        self.buffer = self.vm.section_bytes(self.section)
        return len(self.buffer)

    def restore(self) -> int:
        """Write the snapshot back; returns bytes copied."""
        if len(self.buffer) != self.size:
            raise RuntimeError(
                f"snapshot of {self.section!r} not captured before restore"
            )
        copied = self.vm.restore_section(self.section, self.buffer)
        self.restore_count += 1
        return copied

    def dirty_offsets(self) -> list[int]:
        """Offsets whose current value differs from the snapshot
        (diagnostics for the Figure 4 experiment)."""
        current = self.vm.section_bytes(self.section)
        return [i for i in range(len(current)) if current[i] != self.buffer[i]]
