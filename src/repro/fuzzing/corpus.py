"""Corpus management: queue entries, favored selection, energy.

A trimmed-down AFL++ scheduler: entries that reach map cells fastest
(lowest ``exec_ns * len``) become *favored*; favored entries are fuzzed
preferentially; an entry's *energy* (number of havoc executions it
receives per visit) scales with its speed relative to the corpus
average and its discovery depth.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np


def input_hash(data: bytes) -> str:
    """Stable content identity of one corpus input — the dedup key the
    multi-worker sync protocol exchanges instead of raw bytes.

    sha256, deliberately identical to the corpus object store's
    addressing (:func:`repro.store.object_digest`): an entry's content
    hash *is* its store address, so hash-only corpus exchange can
    resolve payloads straight from a shared :class:`~repro.store
    .CorpusStore` without a translation table.
    """
    return hashlib.sha256(bytes(data)).hexdigest()


@dataclass
class QueueEntry:
    """One corpus input and its scheduling metadata."""

    entry_id: int
    data: bytes
    coverage_signature: bytes
    exec_ns: int
    discovered_at_ns: int
    depth: int = 0
    parent_id: int | None = None
    favored: bool = False
    det_done: bool = False
    trim_done: bool = False
    # Input-to-state stage ran once for this entry.  Old checkpoints
    # predate the field; readers use getattr(entry, "i2s_done", False).
    i2s_done: bool = False
    times_selected: int = 0

    @property
    def weight(self) -> int:
        """Lower is better for favored selection (AFL's fav_factor)."""
        return max(1, self.exec_ns) * max(1, len(self.data))


class Corpus:
    """The fuzzing queue."""

    def __init__(self) -> None:
        self.entries: list[QueueEntry] = []
        self._next_id = 0
        self._cursor = 0
        # map cell -> best entry covering it (AFL's top_rated[]).
        self._top_rated: dict[int, QueueEntry] = {}
        # High-water mark of export_new(): entries below it have already
        # been offered to the sync hub (multi-worker corpus exchange).
        self._export_cursor = 0

    def add(
        self,
        data: bytes,
        coverage_signature: bytes,
        exec_ns: int,
        now_ns: int,
        parent: QueueEntry | None = None,
    ) -> QueueEntry:
        entry = QueueEntry(
            entry_id=self._next_id,
            data=data,
            coverage_signature=coverage_signature,
            exec_ns=exec_ns,
            discovered_at_ns=now_ns,
            depth=(parent.depth + 1) if parent is not None else 0,
            parent_id=parent.entry_id if parent is not None else None,
        )
        self._next_id += 1
        self.entries.append(entry)
        self._update_top_rated(entry)
        return entry

    def _update_top_rated(self, entry: QueueEntry) -> None:
        signature = np.frombuffer(entry.coverage_signature, dtype=np.uint8)
        for cell in np.nonzero(signature)[0]:
            best = self._top_rated.get(int(cell))
            if best is None or entry.weight < best.weight:
                self._top_rated[int(cell)] = entry
        self._recompute_favored()

    def _recompute_favored(self) -> None:
        favored_ids = {entry.entry_id for entry in self._top_rated.values()}
        for entry in self.entries:
            entry.favored = entry.entry_id in favored_ids

    def select_next(self, rng) -> QueueEntry:
        """Cycle through the queue, probabilistically skipping
        non-favored entries (AFL's 75%/95% skip heuristic, simplified)."""
        if not self.entries:
            raise IndexError("corpus is empty")
        for _ in range(len(self.entries) * 2):
            entry = self.entries[self._cursor % len(self.entries)]
            self._cursor += 1
            if entry.favored or rng.random() > 0.75:
                entry.times_selected += 1
                return entry
        entry = self.entries[self._cursor % len(self.entries)]
        self._cursor += 1
        entry.times_selected += 1
        return entry

    def average_exec_ns(self) -> float:
        if not self.entries:
            return 1.0
        return sum(e.exec_ns for e in self.entries) / len(self.entries)

    def energy(self, entry: QueueEntry, base: int = 64) -> int:
        """Havoc iterations this entry earns per visit (perf_score)."""
        score = float(base)
        average = self.average_exec_ns()
        ratio = entry.exec_ns / average if average else 1.0
        if ratio < 0.5:
            score *= 2.0
        elif ratio > 2.0:
            score *= 0.5
        score *= 1.0 + min(entry.depth, 8) * 0.25   # deeper finds get more
        if entry.favored:
            score *= 1.5
        if entry.times_selected > 8:
            score *= 0.5                            # don't beat dead horses
        return max(8, int(score))

    def __len__(self) -> int:
        return len(self.entries)

    def favored_count(self) -> int:
        return sum(1 for e in self.entries if e.favored)

    # -- multi-worker sync support --------------------------------------

    def export_new(self) -> list[QueueEntry]:
        """Entries added since the previous call (discoveries to offer
        at the next sync barrier).  Advances the export cursor, so each
        entry is exported exactly once."""
        # getattr: corpora unpickled from pre-parallel checkpoints lack
        # the cursor; treat their whole queue as already exported.
        cursor = getattr(self, "_export_cursor", len(self.entries))
        fresh = self.entries[cursor:]
        self._export_cursor = len(self.entries)
        return fresh

    def content_hashes(self) -> set[str]:
        """Hashes of every input currently queued (sync-import dedup)."""
        return {input_hash(e.data) for e in self.entries}
