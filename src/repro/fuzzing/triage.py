"""Crash triage: deduplication and bug bookkeeping.

Crashes are deduplicated by trap identity — (trap kind, function,
basic block) — which approximates AFL++'s coverage-signature dedup but
with the ground truth our VM can actually provide.  The targets'
planted-bug manifests map trap sites back to stable bug ids so the
time-to-bug experiment (Table 7) can report per-bug first-discovery
times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vm.errors import TrapKind, VMTrap

CrashIdentity = tuple[TrapKind, str, str]


@dataclass
class CrashReport:
    """First occurrence of one deduplicated crash."""

    identity: CrashIdentity
    trap: VMTrap
    input_data: bytes
    found_at_ns: int
    occurrences: int = 1

    @property
    def kind(self) -> TrapKind:
        return self.identity[0]

    @property
    def function(self) -> str:
        return self.identity[1]

    def describe(self) -> str:
        return (
            f"{self.kind.value} in @{self.function} "
            f"(block %{self.identity[2]}, first at {self.found_at_ns / 1e9:.3f} vs)"
        )


class CrashTriage:
    """Collects and deduplicates crashes during a campaign."""

    def __init__(self) -> None:
        self.unique: dict[CrashIdentity, CrashReport] = {}
        self.total_crashes = 0

    def record(self, trap: VMTrap, input_data: bytes, now_ns: int) -> CrashReport | None:
        """Record a crash; returns the report if it is a *new* bug."""
        self.total_crashes += 1
        identity = trap.identity()
        existing = self.unique.get(identity)
        if existing is not None:
            existing.occurrences += 1
            return None
        report = CrashReport(identity, trap, input_data, now_ns)
        self.unique[identity] = report
        return report

    @property
    def unique_count(self) -> int:
        return len(self.unique)

    def reports(self) -> list[CrashReport]:
        return sorted(self.unique.values(), key=lambda r: r.found_at_ns)

    def first_hit_ns(self, identity: CrashIdentity) -> int | None:
        report = self.unique.get(identity)
        return report.found_at_ns if report is not None else None
