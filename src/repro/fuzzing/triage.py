"""Crash triage: deduplication and bug bookkeeping.

Crashes are deduplicated by trap identity — (trap kind, function,
basic block) — which approximates AFL++'s coverage-signature dedup but
with the ground truth our VM can actually provide.  The targets'
planted-bug manifests map trap sites back to stable bug ids so the
time-to-bug experiment (Table 7) can report per-bug first-discovery
times.

Hangs get their own dedup bucket (AFL's ``hangs/`` directory): a
hang has no trap site, so its identity is a digest of the coverage
signature the wedged execution produced — two inputs spinning in the
same loop collapse into one report.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.vm.errors import TrapKind, VMTrap

CrashIdentity = tuple[TrapKind, str, str]


@dataclass
class CrashReport:
    """First occurrence of one deduplicated crash."""

    identity: CrashIdentity
    trap: VMTrap
    input_data: bytes
    found_at_ns: int
    occurrences: int = 1

    @property
    def kind(self) -> TrapKind:
        return self.identity[0]

    @property
    def function(self) -> str:
        return self.identity[1]

    def describe(self) -> str:
        return (
            f"{self.kind.value} in @{self.function} "
            f"(block %{self.identity[2]}, first at {self.found_at_ns / 1e9:.3f} vs)"
        )


@dataclass
class HangReport:
    """First occurrence of one deduplicated hang (AFL's ``hangs/``)."""

    signature_digest: str
    input_data: bytes
    found_at_ns: int
    occurrences: int = 1

    def describe(self) -> str:
        return (
            f"hang [{self.signature_digest}] "
            f"(first at {self.found_at_ns / 1e9:.3f} vs)"
        )


class CrashTriage:
    """Collects and deduplicates crashes (and hangs) during a campaign."""

    def __init__(self) -> None:
        self.unique: dict[CrashIdentity, CrashReport] = {}
        self.total_crashes = 0
        self.unique_hangs: dict[str, HangReport] = {}
        self.total_hangs = 0

    def record(self, trap: VMTrap, input_data: bytes, now_ns: int) -> CrashReport | None:
        """Record a crash; returns the report if it is a *new* bug."""
        self.total_crashes += 1
        identity = trap.identity()
        existing = self.unique.get(identity)
        if existing is not None:
            existing.occurrences += 1
            return None
        report = CrashReport(identity, trap, input_data, now_ns)
        self.unique[identity] = report
        return report

    def record_hang(self, coverage_signature: bytes, input_data: bytes,
                    now_ns: int) -> HangReport | None:
        """Record a hang-classified input; returns the report if new."""
        self.total_hangs += 1
        digest = hashlib.sha1(coverage_signature).hexdigest()[:16]
        existing = self.unique_hangs.get(digest)
        if existing is not None:
            existing.occurrences += 1
            return None
        report = HangReport(digest, input_data, now_ns)
        self.unique_hangs[digest] = report
        return report

    @property
    def unique_count(self) -> int:
        return len(self.unique)

    @property
    def unique_hang_count(self) -> int:
        return len(self.unique_hangs)

    def reports(self) -> list[CrashReport]:
        return sorted(self.unique.values(), key=lambda r: r.found_at_ns)

    def hang_reports(self) -> list[HangReport]:
        return sorted(self.unique_hangs.values(), key=lambda r: r.found_at_ns)

    def first_hit_ns(self, identity: CrashIdentity) -> int | None:
        report = self.unique.get(identity)
        return report.found_at_ns if report is not None else None

    def merge(self, other: "CrashTriage") -> None:
        """Fold another shard's triage tables into this one.

        Dedup identities are global (trap site / coverage digest), so
        merging keeps one report per bug across all workers — the
        earliest discovery (by that worker's virtual clock, ties broken
        by merge order) — while occurrence and total counters sum.
        """
        self.total_crashes += other.total_crashes
        for identity, report in other.unique.items():
            existing = self.unique.get(identity)
            if existing is None:
                self.unique[identity] = report
                continue
            combined = existing.occurrences + report.occurrences
            winner = min(existing, report, key=lambda r: r.found_at_ns)
            winner.occurrences = combined
            self.unique[identity] = winner
        self.total_hangs += other.total_hangs
        for digest, hang in other.unique_hangs.items():
            existing_hang = self.unique_hangs.get(digest)
            if existing_hang is None:
                self.unique_hangs[digest] = hang
                continue
            combined = existing_hang.occurrences + hang.occurrences
            winner = min(existing_hang, hang, key=lambda r: r.found_at_ns)
            winner.occurrences = combined
            self.unique_hangs[digest] = winner
