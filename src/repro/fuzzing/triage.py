"""Crash triage: deduplication and bug bookkeeping.

Crashes are deduplicated by trap identity — (trap kind, function,
basic block) — which approximates AFL++'s coverage-signature dedup but
with the ground truth our VM can actually provide.  The targets'
planted-bug manifests map trap sites back to stable bug ids so the
time-to-bug experiment (Table 7) can report per-bug first-discovery
times.

Hangs get their own dedup bucket (AFL's ``hangs/`` directory): a
hang has no trap site, so its identity is a digest of the coverage
signature the wedged execution produced — two inputs spinning in the
same loop collapse into one report.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.vm.errors import TrapKind, VMTrap

CrashIdentity = tuple[TrapKind, str, str]


@dataclass
class CrashReport:
    """First occurrence of one deduplicated crash."""

    identity: CrashIdentity
    trap: VMTrap
    input_data: bytes
    found_at_ns: int
    occurrences: int = 1

    @property
    def kind(self) -> TrapKind:
        return self.identity[0]

    @property
    def function(self) -> str:
        return self.identity[1]

    def describe(self) -> str:
        return (
            f"{self.kind.value} in @{self.function} "
            f"(block %{self.identity[2]}, first at {self.found_at_ns / 1e9:.3f} vs)"
        )


@dataclass
class HangReport:
    """First occurrence of one deduplicated hang (AFL's ``hangs/``)."""

    signature_digest: str
    input_data: bytes
    found_at_ns: int
    occurrences: int = 1

    def describe(self) -> str:
        return (
            f"hang [{self.signature_digest}] "
            f"(first at {self.found_at_ns / 1e9:.3f} vs)"
        )


class CrashTriage:
    """Collects and deduplicates crashes (and hangs) during a campaign."""

    def __init__(self) -> None:
        self.unique: dict[CrashIdentity, CrashReport] = {}
        self.total_crashes = 0
        self.unique_hangs: dict[str, HangReport] = {}
        self.total_hangs = 0

    def record(self, trap: VMTrap, input_data: bytes, now_ns: int) -> CrashReport | None:
        """Record a crash; returns the report if it is a *new* bug."""
        self.total_crashes += 1
        identity = trap.identity()
        existing = self.unique.get(identity)
        if existing is not None:
            existing.occurrences += 1
            return None
        report = CrashReport(identity, trap, input_data, now_ns)
        self.unique[identity] = report
        return report

    def record_hang(self, coverage_signature: bytes, input_data: bytes,
                    now_ns: int) -> HangReport | None:
        """Record a hang-classified input; returns the report if new."""
        self.total_hangs += 1
        digest = hashlib.sha1(coverage_signature).hexdigest()[:16]
        existing = self.unique_hangs.get(digest)
        if existing is not None:
            existing.occurrences += 1
            return None
        report = HangReport(digest, input_data, now_ns)
        self.unique_hangs[digest] = report
        return report

    @property
    def unique_count(self) -> int:
        return len(self.unique)

    @property
    def unique_hang_count(self) -> int:
        return len(self.unique_hangs)

    def reports(self) -> list[CrashReport]:
        return sorted(self.unique.values(), key=lambda r: r.found_at_ns)

    def hang_reports(self) -> list[HangReport]:
        return sorted(self.unique_hangs.values(), key=lambda r: r.found_at_ns)

    def first_hit_ns(self, identity: CrashIdentity) -> int | None:
        report = self.unique.get(identity)
        return report.found_at_ns if report is not None else None
