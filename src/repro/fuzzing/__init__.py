"""AFL++-style coverage-guided fuzzer built on the executor interface."""

from repro.fuzzing.campaign import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    TimelinePoint,
)
from repro.fuzzing.checkpoint import (
    CheckpointError,
    capture_state,
    load_checkpoint,
    load_state,
    save_checkpoint,
    save_state,
)
from repro.fuzzing.corpus import Corpus, QueueEntry, input_hash
from repro.fuzzing.i2s import (
    AutoDictionary,
    CmpObserver,
    I2SStage,
    StageStats,
    operand_encodings,
    replacement_patches,
)
from repro.fuzzing.coverage import (
    VirginMap,
    classify,
    coverage_signature,
    edge_count,
)
from repro.fuzzing.mutators import (
    HavocMutator,
    deterministic_mutations,
)
from repro.fuzzing.triage import (
    CrashIdentity,
    CrashReport,
    CrashTriage,
    HangReport,
)

__all__ = [
    "Campaign", "CampaignConfig", "CampaignResult", "TimelinePoint",
    "CheckpointError", "capture_state", "load_checkpoint", "load_state",
    "save_checkpoint", "save_state",
    "Corpus", "QueueEntry", "input_hash",
    "AutoDictionary", "CmpObserver", "I2SStage", "StageStats",
    "operand_encodings", "replacement_patches",
    "VirginMap", "classify", "coverage_signature", "edge_count",
    "HavocMutator", "deterministic_mutations",
    "CrashIdentity", "CrashReport", "CrashTriage", "HangReport",
]
