"""Mutation engine: AFL++-style deterministic and havoc stages.

Both execution mechanisms are driven by the *same* mutation machinery
(paper §5.3: "configured to use the same coverage tracing and seed
mutation mechanisms"), so the only experimental variable is process
management.
"""

from __future__ import annotations

import random
from typing import Iterator

INTERESTING_8 = [-128, -1, 0, 1, 16, 32, 64, 100, 127]
INTERESTING_16 = [-32768, -129, 128, 255, 256, 512, 1000, 1024, 4096, 32767]
INTERESTING_32 = [-2147483648, -100663046, -32769, 32768, 65535, 65536,
                  100663045, 2147483647]

ARITH_MAX = 16
HAVOC_STACK_POW = 5           # up to 2**5 stacked havoc tweaks
MAX_INPUT_SIZE = 4096


def deterministic_mutations(data: bytes) -> Iterator[bytes]:
    """The deterministic stage: walking bitflips, arithmetic, and
    interesting-value substitutions, exactly once per queue entry."""
    if not data:
        return
    yield from _bitflips(data)
    yield from _byteflips(data)
    yield from _arith8(data)
    yield from _interesting8(data)
    yield from _interesting16(data)


def _bitflips(data: bytes) -> Iterator[bytes]:
    for bit in range(len(data) * 8):
        out = bytearray(data)
        out[bit // 8] ^= 0x80 >> (bit % 8)
        yield bytes(out)


def _byteflips(data: bytes) -> Iterator[bytes]:
    for i in range(len(data)):
        out = bytearray(data)
        out[i] ^= 0xFF
        yield bytes(out)


def _arith8(data: bytes) -> Iterator[bytes]:
    for i in range(len(data)):
        original = data[i]
        for delta in range(1, ARITH_MAX + 1):
            for value in ((original + delta) & 0xFF, (original - delta) & 0xFF):
                if value == original:
                    continue
                out = bytearray(data)
                out[i] = value
                yield bytes(out)


def _interesting8(data: bytes) -> Iterator[bytes]:
    for i in range(len(data)):
        for value in INTERESTING_8:
            byte = value & 0xFF
            if byte == data[i]:
                continue
            out = bytearray(data)
            out[i] = byte
            yield bytes(out)


def _interesting16(data: bytes) -> Iterator[bytes]:
    for i in range(len(data) - 1):
        for value in INTERESTING_16:
            out = bytearray(data)
            out[i:i + 2] = (value & 0xFFFF).to_bytes(2, "little")
            if bytes(out) != data:
                yield bytes(out)


class HavocMutator:
    """Stacked random mutations (AFL's havoc stage) plus splicing.

    When a *dictionary* (an :class:`repro.fuzzing.i2s.AutoDictionary`,
    or any object that is truthy when non-empty and offers
    ``pick(rng)``) is supplied, two extra operators — token overwrite
    and token insert — join the choice space.  They only enter the RNG
    draw once the dictionary holds at least one token, so a campaign
    without I2S (or before the first harvested constant) produces a
    byte-identical mutation stream to a dictionary-less mutator.
    """

    def __init__(self, rng: random.Random, max_size: int = MAX_INPUT_SIZE,
                 dictionary=None):
        self.rng = rng
        self.max_size = max_size
        self.dictionary = dictionary

    def mutate(self, data: bytes) -> bytes:
        out = bytearray(data if data else b"\x00")
        operations = 1 << (1 + self.rng.randrange(HAVOC_STACK_POW))
        for _ in range(operations):
            self._apply_one(out)
            if not out:
                out = bytearray(b"\x00")
        return bytes(out[: self.max_size])

    def splice(self, first: bytes, second: bytes) -> bytes:
        """Crossover two inputs at random split points, then havoc."""
        if not first or not second:
            return self.mutate(first or second)
        split_a = self.rng.randrange(len(first))
        split_b = self.rng.randrange(len(second))
        return self.mutate(first[:split_a] + second[split_b:])

    # -- individual havoc operations ------------------------------------

    def _apply_one(self, out: bytearray) -> None:
        n_choices = 14 if self.dictionary else 12
        choice = self.rng.randrange(n_choices)
        if choice == 0:
            self._flip_bit(out)
        elif choice == 1:
            self._random_byte(out)
        elif choice == 2:
            self._arith(out)
        elif choice == 3:
            self._interesting(out)
        elif choice == 4:
            self._delete_block(out)
        elif choice == 5:
            self._clone_block(out)
        elif choice == 6:
            self._overwrite_block(out)
        elif choice == 7:
            self._insert_random(out)
        elif choice == 8:
            self._swap_words(out)
        elif choice == 9:
            self._truncate(out)
        elif choice == 10:
            self._overwrite_word(out)
        elif choice == 11:
            self._random_byte(out)
        elif choice == 12:
            self._dict_overwrite(out)
        else:
            self._dict_insert(out)

    def _flip_bit(self, out: bytearray) -> None:
        if out:
            bit = self.rng.randrange(len(out) * 8)
            out[bit // 8] ^= 1 << (bit % 8)

    def _random_byte(self, out: bytearray) -> None:
        if out:
            out[self.rng.randrange(len(out))] = self.rng.randrange(256)

    def _arith(self, out: bytearray) -> None:
        if out:
            index = self.rng.randrange(len(out))
            delta = self.rng.randrange(1, ARITH_MAX + 1)
            if self.rng.random() < 0.5:
                delta = -delta
            out[index] = (out[index] + delta) & 0xFF

    def _interesting(self, out: bytearray) -> None:
        if not out:
            return
        width = self.rng.choice((1, 2, 4))
        if len(out) < width:
            width = 1
        index = self.rng.randrange(len(out) - width + 1)
        pool = {1: INTERESTING_8, 2: INTERESTING_16, 4: INTERESTING_32}[width]
        value = self.rng.choice(pool) & ((1 << (width * 8)) - 1)
        out[index:index + width] = value.to_bytes(width, "little")

    def _delete_block(self, out: bytearray) -> None:
        if len(out) > 1:
            length = self.rng.randrange(1, max(2, len(out) // 2))
            start = self.rng.randrange(len(out) - length + 1)
            del out[start:start + length]

    def _clone_block(self, out: bytearray) -> None:
        if out:
            length = self.rng.randrange(1, min(len(out), 32) + 1)
            start = self.rng.randrange(len(out) - length + 1)
            insert_at = self.rng.randrange(len(out) + 1)
            out[insert_at:insert_at] = out[start:start + length]
            del out[self.max_size:]     # clamp, never silently skip

    def _overwrite_block(self, out: bytearray) -> None:
        if len(out) > 1:
            length = self.rng.randrange(1, min(len(out), 32) + 1)
            src = self.rng.randrange(len(out) - length + 1)
            dst = self.rng.randrange(len(out) - length + 1)
            out[dst:dst + length] = out[src:src + length]

    def _insert_random(self, out: bytearray) -> None:
        length = self.rng.randrange(1, 16)
        blob = bytes(self.rng.randrange(256) for _ in range(length))
        insert_at = self.rng.randrange(len(out) + 1)
        out[insert_at:insert_at] = blob
        del out[self.max_size:]         # clamp, never silently skip

    def _swap_words(self, out: bytearray) -> None:
        if len(out) >= 4:
            a = self.rng.randrange(len(out) - 1)
            b = self.rng.randrange(len(out) - 1)
            out[a:a + 2], out[b:b + 2] = out[b:b + 2], out[a:a + 2]

    def _truncate(self, out: bytearray) -> None:
        if len(out) > 4:
            keep = self.rng.randrange(2, len(out))
            del out[keep:]

    def _overwrite_word(self, out: bytearray) -> None:
        if len(out) >= 4:
            index = self.rng.randrange(len(out) - 3)
            value = self.rng.randrange(1 << 32)
            out[index:index + 4] = value.to_bytes(4, "little")

    def _dict_overwrite(self, out: bytearray) -> None:
        token = self.dictionary.pick(self.rng)
        if token is None or not out:
            return
        pos = self.rng.randrange(len(out))
        end = min(len(out), pos + len(token))
        out[pos:end] = token[:end - pos]

    def _dict_insert(self, out: bytearray) -> None:
        token = self.dictionary.pick(self.rng)
        if token is None:
            return
        insert_at = self.rng.randrange(len(out) + 1)
        out[insert_at:insert_at] = token
        del out[self.max_size:]         # clamp, never silently skip
