"""Input-to-state mutation: compare tapping, colorization, replacement.

The cmplog/RedQueen insight is that most "hard" branches in format
parsers compare a value *derived from the input* against a value the
fuzzer could simply write into the input — magic numbers, length
fields, version tags, checksum reconstructions.  Native fuzzers need a
shadow "cmplog" binary to see those operands; here the VM interprets
every ``icmp``/``switch`` itself, so an opt-in :class:`CmpObserver`
records the concrete operand pairs as a side effect of execution
(interpreter tap in :meth:`repro.vm.interpreter.VM._exec_icmp`,
null-object fast path when disabled, following the telemetry pattern).

On top of the tap, :class:`I2SStage` runs the classic pipeline once
per queue entry:

1. **probe** — execute the entry with the observer armed, collecting
   ``(site, width, lhs, rhs, predicate)`` tuples;
2. **colorize** — re-randomize don't-care byte ranges while the
   coverage signature stays identical, so operand byte patterns become
   high-entropy and locate *uniquely* in the input;
3. **locate** — search every plausible encoding of each observed
   operand (widths 1/2/4/8, both endiannesses, zero- and sign-extended
   forms) in the original input, confirmed against the colored run;
4. **replace** — patch the located offsets with the *other* compare
   operand (exact, ±1, truncated/extended as the width demands) and
   feed each candidate through the campaign's normal novelty filter.

Observed constants also feed an :class:`AutoDictionary` (joined by
statically mined ``icmp``/``switch``/``memcmp``-family constants, see
:func:`repro.analysis.dictionary.mine_dictionary_tokens`), which the
havoc stage consumes through two dictionary operators in
:mod:`repro.fuzzing.mutators`.

Everything is deterministic for a fixed campaign seed: colorization
randomness comes from a :class:`random.Random` seeded from the
``(campaign seed, entry content hash)`` pair — never from the campaign
RNG, whose draw sequence must stay byte-identical with I2S disabled —
and the whole stage state (per-site pairs, dictionary, stats) survives
RPRCKPT1 checkpoints bit-identically via :meth:`I2SStage.snapshot` /
:meth:`I2SStage.restore`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.fuzzing.corpus import input_hash
from repro.fuzzing.coverage import coverage_signature
from repro.ir.types import IntType

#: Hard cap on records collected by one probe execution — keeps a
#: compare-heavy exec (e.g. a long loop over ``icmp``) from ballooning
#: memory or stage time.
MAX_RECORDS_PER_EXEC = 4096
#: Distinct (width, lhs, rhs, predicate) pairs remembered per site.
MAX_PAIRS_PER_SITE = 8
#: Switch cases observed per dispatch (the rest rarely matter).
MAX_SWITCH_CASES = 8

#: Operand widths (bytes) tried when locating a value in the input.
_SEARCH_WIDTHS = (1, 2, 4, 8)


class CmpObserver:
    """Collects compare-operand tuples from the VM dispatch loop.

    The observer is *attached* for the life of the executor (it rides
    into every VM via ``Executor.vm_kwargs()``, surviving respawns)
    but only *records* between :meth:`begin` and :meth:`take` — the
    interpreter checks ``observer.active`` before calling in, so
    ordinary fuzzing executions pay one attribute check per compare
    and zero allocations.
    """

    __slots__ = ("active", "records", "limit")

    def __init__(self, limit: int = MAX_RECORDS_PER_EXEC):
        self.active = False
        self.records: list[tuple] = []
        self.limit = limit

    def begin(self) -> None:
        """Arm the observer for the next execution."""
        self.records = []
        self.active = True

    def take(self) -> list[tuple]:
        """Disarm and return the records collected since :meth:`begin`."""
        self.active = False
        records = self.records
        self.records = []
        return records

    def observe_icmp(self, site, inst, lhs: int, rhs: int) -> None:
        """Record one ``icmp`` evaluation (called by the interpreter)."""
        if len(self.records) >= self.limit:
            return
        operand_type = inst.lhs.type
        if not isinstance(operand_type, IntType):
            return                      # pointer compares carry no input bytes
        self.records.append((
            (site.function, site.block, inst.name),
            operand_type.bits, lhs, rhs, inst.predicate,
        ))

    def observe_switch(self, site, inst, value: int) -> None:
        """Record a ``switch`` dispatch as one eq-pair per case."""
        if len(self.records) >= self.limit:
            return
        value_type = inst.value.type
        if not isinstance(value_type, IntType):
            return
        site_key = (site.function, site.block, "switch")
        for case_value, _block in inst.cases[:MAX_SWITCH_CASES]:
            if len(self.records) >= self.limit:
                return
            self.records.append(
                (site_key, value_type.bits, value, case_value, "eq")
            )


class AutoDictionary:
    """Ordered, deduplicated token list feeding the havoc stage.

    Tokens arrive from two sources — dynamically observed compare
    constants and statically mined IR constants — and are handed to
    :class:`~repro.fuzzing.mutators.HavocMutator` dictionary
    operators.  Insertion order is part of campaign determinism (the
    mutator draws ``rng.choice(tokens)``), so the list only ever
    appends, and :meth:`restore` replaces contents in place (the
    mutator holds a reference to this object).
    """

    def __init__(self, max_tokens: int = 256, max_token_len: int = 32):
        self.max_tokens = max_tokens
        self.max_token_len = max_token_len
        self.tokens: list[bytes] = []
        self._seen: set[bytes] = set()

    def add(self, token: bytes) -> bool:
        """Add one token; returns whether it was new and kept."""
        token = bytes(token)
        if not 2 <= len(token) <= self.max_token_len:
            return False                # 1-byte tokens are plain havoc's job
        if token in self._seen or len(self.tokens) >= self.max_tokens:
            return False
        self._seen.add(token)
        self.tokens.append(token)
        return True

    def add_value(self, value: int, bits: int) -> int:
        """Add both-endianness encodings of an observed constant."""
        added = 0
        unsigned = value & ((1 << bits) - 1)
        if unsigned < 0x100:
            return 0                    # single-byte values: not worth a slot
        nbytes = (unsigned.bit_length() + 7) // 8
        for width in (2, 4, 8):
            if width >= nbytes:
                nbytes = width
                break
        for order in ("little", "big"):
            added += self.add(unsigned.to_bytes(nbytes, order))
        return added

    def pick(self, rng: random.Random) -> bytes | None:
        """Deterministically draw one token (None when empty)."""
        if not self.tokens:
            return None
        return rng.choice(self.tokens)

    def restore(self, tokens: list[bytes]) -> None:
        """Replace contents in place (checkpoint resume)."""
        self.tokens[:] = [bytes(t) for t in tokens]
        self._seen = set(self.tokens)

    def __len__(self) -> int:
        return len(self.tokens)

    def __bool__(self) -> bool:
        return bool(self.tokens)


@dataclass
class StageStats:
    """Per-mutation-stage efficacy account: execs, finds, virtual ns.

    The campaign scheduler compares stages by *finds per virtual
    nanosecond* — the only currency that matters under a virtual-time
    budget — and throttles the I2S stage when it stops paying relative
    to havoc (see ``CampaignConfig.i2s_throttle_ratio``).
    """

    execs: int = 0
    finds: int = 0
    ns: int = 0

    def find_rate(self) -> float:
        """Finds per virtual nanosecond (0.0 before any time passes)."""
        return self.finds / self.ns if self.ns else 0.0


def operand_encodings(value: int, bits: int) -> list[tuple[int, bool, bytes]]:
    """Every plausible byte encoding of an observed operand.

    Returns ``(nbytes, big_endian, encoded)`` tuples covering widths
    1/2/4/8 in both byte orders, for both the zero-extended and (when
    the value is negative at *bits*) the sign-extended interpretation —
    the input may store a compare operand narrower *or* wider than the
    width the compare itself ran at.
    """
    out: list[tuple[int, bool, bytes]] = []
    seen: set[bytes] = set()
    unsigned = value & ((1 << bits) - 1)
    signed = unsigned - (1 << bits) if unsigned >> (bits - 1) & 1 else unsigned
    for nbytes in _SEARCH_WIDTHS:
        span = 1 << (8 * nbytes)
        fits: list[int] = []
        if unsigned < span:
            fits.append(unsigned)                       # zext form
        if -(span >> 1) <= signed < 0:
            fits.append(signed + span)                  # sext form
        for encodable in fits:
            for big in (False, True):
                encoded = encodable.to_bytes(nbytes, "big" if big else "little")
                if encoded not in seen:
                    seen.add(encoded)
                    out.append((nbytes, big, encoded))
    return out


def replacement_patches(other: int, bits: int, nbytes: int,
                        big: bool) -> list[bytes]:
    """Patch candidates for one located offset: the other compare
    operand and its ±1 neighbours, encoded at the width and byte order
    the operand was located at (truncating when the located slot is
    narrower than the compare — the ``trunc`` variant)."""
    mask = (1 << bits) - 1
    span = 1 << (8 * nbytes)
    order = "big" if big else "little"
    patches = []
    seen = set()
    for variant in (other, (other + 1) & mask, (other - 1) & mask):
        encoded = (variant % span).to_bytes(nbytes, order)
        if encoded not in seen:
            seen.add(encoded)
            patches.append(encoded)
    return patches


def _find_offsets(haystack: bytes, needle: bytes, cap: int) -> list[int]:
    """Up to *cap* match offsets of *needle*, in ascending order."""
    offsets: list[int] = []
    start = 0
    while len(offsets) < cap:
        at = haystack.find(needle, start)
        if at < 0:
            break
        offsets.append(at)
        start = at + 1
    return offsets


class I2SStage:
    """The per-entry input-to-state stage driven by the campaign loop.

    Holds everything the stage accumulates across a campaign — the
    observer, the auto-dictionary, per-site observed pairs — and runs
    the probe → colorize → locate → replace pipeline for one queue
    entry via :meth:`run_entry`.  All randomness is derived from the
    campaign seed and the entry's content hash, never the campaign
    RNG, so enabling I2S does not perturb the havoc stream and a fixed
    seed replays bit-identically.
    """

    def __init__(self, config):
        self.config = config
        self.observer = CmpObserver()
        self.dictionary = AutoDictionary(
            max_tokens=config.i2s_dict_tokens,
            max_token_len=config.i2s_dict_token_max_len,
        )
        #: site key -> up to MAX_PAIRS_PER_SITE distinct observed
        #: (bits, lhs, rhs, predicate) tuples, in first-seen order.
        self.site_pairs: dict[tuple, list[tuple]] = {}
        self.static_mined = False

    # -- checkpoint round-trip ------------------------------------------

    def snapshot(self) -> dict:
        """Picklable stage state for RPRCKPT1 checkpoints."""
        return {
            "site_pairs": {k: list(v) for k, v in self.site_pairs.items()},
            "dict_tokens": list(self.dictionary.tokens),
            "static_mined": self.static_mined,
        }

    def restore(self, state: dict) -> None:
        """Install checkpointed stage state (resume path)."""
        self.site_pairs = {
            tuple(k): list(v) for k, v in state["site_pairs"].items()
        }
        self.dictionary.restore(state["dict_tokens"])
        self.static_mined = bool(state["static_mined"])

    # -- dictionary sources ---------------------------------------------

    def mine_static(self, module) -> int:
        """Mine dictionary tokens from the target's IR, exactly once."""
        from repro.analysis.dictionary import mine_dictionary_tokens
        added = 0
        for token in mine_dictionary_tokens(
            module, max_token_len=self.config.i2s_dict_token_max_len
        ):
            added += self.dictionary.add(token)
        self.static_mined = True
        return added

    def _harvest(self, records: list[tuple]) -> None:
        """Fold one probe's records into site state + dictionary."""
        for site, bits, lhs, rhs, predicate in records:
            pairs = self.site_pairs.setdefault(site, [])
            pair = (bits, lhs, rhs, predicate)
            if pair not in pairs and len(pairs) < MAX_PAIRS_PER_SITE:
                pairs.append(pair)
            self.dictionary.add_value(lhs, bits)
            self.dictionary.add_value(rhs, bits)

    # -- the per-entry pipeline -----------------------------------------

    def run_entry(self, campaign, entry, deadline_ns: int) -> None:
        """Probe, colorize, locate, and replace for one queue entry."""
        config = self.config
        budget = config.i2s_entry_exec_cap
        clock = campaign.clock

        self.observer.begin()
        result = campaign._execute(entry.data)
        records = self.observer.take()
        budget -= 1
        if result is None or not records:
            return
        self._harvest(records)

        colored = entry.data
        colored_records = records
        if config.i2s_colorize_budget > 0 and entry.data and budget > 1:
            colored, budget = self._colorize(campaign, entry, budget,
                                             deadline_ns)
            if colored != entry.data and budget > 0:
                self.observer.begin()
                colored_result = campaign._execute(colored)
                colored_records = self.observer.take()
                budget -= 1
                if colored_result is None:
                    colored_records = []

        self._replace(campaign, entry, records, colored, colored_records,
                      budget, deadline_ns)

    def _colorize(self, campaign, entry, budget: int,
                  deadline_ns: int) -> tuple[bytes, int]:
        """Randomize don't-care bytes while the coverage signature holds.

        Binary-splitting acceptance (the RedQueen algorithm): try to
        re-randomize a whole range; on a signature change, split and
        recurse, leaving single disagreeing bytes uncolored.  The
        result is an input whose behaviour matches the original but
        whose "free" bytes are high-entropy, so operand byte patterns
        locate uniquely.
        """
        config = self.config
        rng = random.Random(
            f"i2s-color:{config.seed}:{input_hash(entry.data)}"
        )
        colored = bytearray(entry.data)
        target_signature = entry.coverage_signature
        color_budget = min(budget - 1, config.i2s_colorize_budget)
        spans: list[tuple[int, int]] = [(0, len(colored))]
        while spans and color_budget > 0:
            if campaign.clock.now_ns >= deadline_ns:
                break
            start, length = spans.pop()
            if length <= 0:
                continue
            candidate = bytearray(colored)
            for i in range(start, start + length):
                candidate[i] = rng.randrange(256)
            result = campaign._execute(bytes(candidate))
            color_budget -= 1
            budget -= 1
            if (result is not None
                    and coverage_signature(result.coverage)
                    == target_signature):
                colored = candidate
            elif length > 1:
                half = length // 2
                spans.append((start + half, length - half))
                spans.append((start, half))
        return bytes(colored), budget

    def _replace(self, campaign, entry, records, colored, colored_records,
                 budget: int, deadline_ns: int) -> None:
        """Substitute the other compare operand at located offsets."""
        config = self.config
        data = entry.data
        # Match baseline and colored records positionally per site so a
        # baseline operand can be confirmed against its colored value.
        colored_by_site: dict[tuple, list[tuple]] = {}
        for record in colored_records:
            colored_by_site.setdefault(record[0], []).append(record)
        occurrence: dict[tuple, int] = {}
        tried: set[bytes] = set()

        for site, bits, lhs, rhs, predicate in records:
            index = occurrence.get(site, 0)
            occurrence[site] = index + 1
            twins = colored_by_site.get(site, [])
            twin = twins[index] if index < len(twins) else None
            for operand, other, twin_operand in (
                (lhs, rhs, twin[2] if twin else None),
                (rhs, lhs, twin[3] if twin else None),
            ):
                if operand == other:
                    continue            # guard already satisfied
                for nbytes, big, encoded in operand_encodings(operand, bits):
                    offsets = _find_offsets(
                        data, encoded, config.i2s_max_offsets_per_pair
                    )
                    if twin_operand is not None and twin_operand != operand:
                        # Confirm against the colored run: the same
                        # offset must hold the colored operand's bytes
                        # in the colored input.
                        order = "big" if big else "little"
                        span = 1 << (8 * nbytes)
                        colored_encoded = (
                            (twin_operand & ((1 << bits) - 1)) % span
                        ).to_bytes(nbytes, order)
                        offsets = [
                            at for at in offsets
                            if colored[at:at + nbytes] == colored_encoded
                        ]
                    for at in offsets:
                        for patch in replacement_patches(
                            other, bits, nbytes, big
                        ):
                            if budget <= 0 or (
                                campaign.clock.now_ns >= deadline_ns
                            ):
                                return
                            candidate = (
                                data[:at] + patch + data[at + nbytes:]
                            )
                            if candidate == data or candidate in tried:
                                continue
                            tried.add(candidate)
                            campaign._fuzz_one(candidate, entry)
                            budget -= 1
