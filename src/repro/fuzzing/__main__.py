"""Command-line entry point for single-worker fuzzing campaigns.

Examples::

    # 20 virtual ms of ClosureX fuzzing on the gif target
    python -m repro.fuzzing --target giftext

    # same campaign with the input-to-state stage armed
    python -m repro.fuzzing --target libpcap --i2s --budget-ms 40

    # checkpoint every 4 virtual ms; resume continues bit-identically
    python -m repro.fuzzing --target md4c --checkpoint /tmp/fuzz.ckpt
    python -m repro.fuzzing --resume /tmp/fuzz.ckpt

The final line of output is ``digest: <sha256>`` — the same
configuration always prints the same digest, and an interrupted
campaign resumed from its checkpoint prints the digest of the
never-interrupted run.
"""

from __future__ import annotations

import argparse
import hashlib
import sys

from repro.fuzzing.campaign import Campaign, CampaignConfig
from repro.fuzzing.checkpoint import load_checkpoint
from repro.sim_os import Kernel
from repro.targets import get_target, target_names

MS = 1_000_000  # virtual ns per virtual ms

#: Mechanisms a single-worker CLI campaign can run under.
CLI_MECHANISMS = ("closurex", "forkserver", "persistent", "fresh")


def campaign_digest(campaign, result) -> str:
    """Stable fingerprint of everything 'bit-identical' means for one
    finished campaign: corpus contents and signatures, crash identities,
    exec count, and the virtual clock."""
    h = hashlib.sha256()
    h.update(f"{result.execs}:{result.elapsed_ns}".encode())
    for entry in campaign.corpus.entries:
        h.update(entry.data)
        h.update(entry.coverage_signature)
    for report in result.crash_reports:
        h.update(repr(report.identity).encode())
    return h.hexdigest()


def _build_executor(target_name: str, mechanism: str):
    # Local import: repro.experiments owns the mechanism->executor
    # table; pulling it lazily keeps `python -m repro.fuzzing --help`
    # fast and avoids a hard layering cycle at import time.
    from repro.experiments.campaign_runner import build_executor

    return build_executor(target_name, mechanism, Kernel())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzzing",
        description="Run one deterministic fuzzing campaign "
                    "(optionally with the input-to-state stage).",
    )
    parser.add_argument("--target", choices=target_names(),
                        help="target program (see --list-targets)")
    parser.add_argument("--mechanism", choices=CLI_MECHANISMS,
                        default="closurex",
                        help="execution mechanism (default: closurex)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default: 0)")
    parser.add_argument("--budget-ms", type=int, default=20,
                        help="virtual budget in virtual milliseconds "
                             "(default: 20)")
    parser.add_argument("--i2s", action="store_true",
                        help="enable the input-to-state stage (compare "
                             "tapping, colorization, auto-dictionary)")
    parser.add_argument("--checkpoint", metavar="PATH",
                        help="write a crash-safe checkpoint every "
                             "interval (see --checkpoint-ms)")
    parser.add_argument("--checkpoint-ms", type=int, default=4,
                        help="checkpoint cadence in virtual ms "
                             "(default: 4)")
    parser.add_argument("--resume", metavar="PATH",
                        help="resume a campaign from a checkpoint")
    parser.add_argument("--list-targets", action="store_true",
                        help="list available targets and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_targets:
        for name in target_names():
            print(name)
        return 0
    if args.resume is not None:
        if args.target is None:
            print("error: --resume needs --target (checkpoints identify "
                  "the mechanism, not the target program)", file=sys.stderr)
            return 2
        state = load_checkpoint(args.resume)
        executor = _build_executor(args.target, state["mechanism"])
        campaign = Campaign.resume(args.resume, executor)
    else:
        if args.target is None:
            print("error: --target is required (or --resume / "
                  "--list-targets)", file=sys.stderr)
            return 2
        spec = get_target(args.target)
        executor = _build_executor(args.target, args.mechanism)
        campaign = Campaign(executor, spec.seeds, CampaignConfig(
            budget_ns=args.budget_ms * MS,
            seed=args.seed,
            i2s_enabled=args.i2s,
            checkpoint_path=args.checkpoint,
            checkpoint_interval_ns=args.checkpoint_ms * MS,
        ))
    result = campaign.run()
    print(f"mechanism        : {result.mechanism}")
    print(f"seed             : {campaign.config.seed}")
    print(f"budget           : {result.budget_ns / MS:g} vms")
    print(f"execs            : {result.execs}")
    print(f"corpus           : {result.corpus_size} inputs")
    print(f"edges found      : {result.edges_found}")
    print(f"unique crashes   : {result.unique_crashes} "
          f"(hangs: {result.unique_hangs})")
    for name, stats in sorted(result.stage_stats.items()):
        print(f"stage {name:<10} : {stats.execs} execs, "
              f"{stats.finds} finds")
    if args.i2s and campaign._i2s is not None:
        print(f"i2s dictionary   : {len(campaign._i2s.dictionary)} tokens "
              f"({len(campaign._i2s.site_pairs)} compare sites)")
    print(f"digest: {campaign_digest(campaign, result)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
