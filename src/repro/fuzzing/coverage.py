"""AFL-style coverage-map processing.

The VM's instrumented guards maintain a 64 KiB hitcount map per
execution.  This module implements the fuzzer-side half: hitcount
*classification* into AFL's power-of-two buckets, and the *virgin map*
that decides whether an execution produced new behaviour (new edge, or
a new hitcount bucket for a known edge).

numpy is used for the hot full-map operations; with 65536-byte maps the
per-exec cost is microseconds.
"""

from __future__ import annotations

import numpy as np

from repro.vm.interpreter import COVERAGE_MAP_SIZE

#: AFL's count_class_lookup: bucket raw hitcounts into 8 classes.
_CLASS_LOOKUP = np.zeros(256, dtype=np.uint8)
_CLASS_LOOKUP[1] = 1
_CLASS_LOOKUP[2] = 2
_CLASS_LOOKUP[3] = 4
_CLASS_LOOKUP[4:8] = 8
_CLASS_LOOKUP[8:16] = 16
_CLASS_LOOKUP[16:32] = 32
_CLASS_LOOKUP[32:128] = 64
_CLASS_LOOKUP[128:256] = 128


def classify(raw_map: bytearray | bytes) -> np.ndarray:
    """Bucket a raw hitcount map into AFL's 8 classes."""
    arr = np.frombuffer(bytes(raw_map), dtype=np.uint8)
    return _CLASS_LOOKUP[arr]


class VirginMap:
    """Accumulated union of all behaviour seen so far.

    ``virgin`` starts all-ones (0xFF = fully unseen); observing an
    execution clears the bits of every (edge, bucket) it exhibited —
    AFL++'s exact bookkeeping.
    """

    NO_NEW = 0
    NEW_COUNTS = 1
    NEW_EDGES = 2

    def __init__(self, size: int = COVERAGE_MAP_SIZE):
        self.size = size
        self.virgin = np.full(size, 0xFF, dtype=np.uint8)

    def observe(self, raw_map: bytearray | bytes) -> int:
        """Fold one execution in; returns NO_NEW / NEW_COUNTS / NEW_EDGES."""
        classified = classify(raw_map)
        new_bits = classified & self.virgin
        if not new_bits.any():
            return self.NO_NEW
        # A brand-new edge is one whose virgin byte was still 0xFF.
        new_edges = bool((new_bits[self.virgin == 0xFF]).any())
        self.virgin &= ~classified
        return self.NEW_EDGES if new_edges else self.NEW_COUNTS

    def would_be_new(self, raw_map: bytearray | bytes) -> int:
        """Like :meth:`observe` but without folding the map in."""
        classified = classify(raw_map)
        new_bits = classified & self.virgin
        if not new_bits.any():
            return self.NO_NEW
        new_edges = bool((new_bits[self.virgin == 0xFF]).any())
        return self.NEW_EDGES if new_edges else self.NEW_COUNTS

    def observe_classified(self, signature: bytes) -> int:
        """Fold in an *already classified* map (a corpus entry's
        coverage signature, as exchanged between campaign shards);
        returns the same NO_NEW / NEW_COUNTS / NEW_EDGES verdict as
        :meth:`observe`."""
        classified = np.frombuffer(signature, dtype=np.uint8)
        new_bits = classified & self.virgin
        if not new_bits.any():
            return self.NO_NEW
        new_edges = bool((new_bits[self.virgin == 0xFF]).any())
        self.virgin &= ~classified
        return self.NEW_EDGES if new_edges else self.NEW_COUNTS

    def merge(self, other: "VirginMap") -> None:
        """Union another map's observed behaviour into this one (the
        multi-worker merged-coverage operation: virgin bits survive
        only where *both* maps never saw the (edge, bucket))."""
        if other.size != self.size:
            raise ValueError("cannot merge virgin maps of different sizes")
        self.virgin &= other.virgin

    def edges_found(self) -> int:
        """Number of map cells with at least one observed bucket."""
        return int((self.virgin != 0xFF).sum())

    def to_bytes(self) -> bytes:
        """The virgin map's exact contents (checkpoint / digest form)."""
        return self.virgin.tobytes()

    @classmethod
    def from_bytes(cls, payload: bytes) -> "VirginMap":
        """Rebuild a map serialised with :meth:`to_bytes`."""
        virgin = cls(size=len(payload))
        virgin.virgin = np.frombuffer(payload, dtype=np.uint8).copy()
        return virgin


def edge_count(raw_map: bytearray | bytes) -> int:
    """Distinct map cells hit by one execution."""
    arr = np.frombuffer(bytes(raw_map), dtype=np.uint8)
    return int((arr != 0).sum())


def coverage_signature(raw_map: bytearray | bytes) -> bytes:
    """Classified map as bytes — the per-entry signature the corpus
    scheduler uses for favored-entry selection."""
    return classify(raw_map).tobytes()
