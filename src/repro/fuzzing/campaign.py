"""The fuzzing campaign driver.

Ties the pieces together the way ``afl-fuzz`` does: seed the queue, then
loop — select an entry, run its deterministic stage once, then havoc
with corpus-energy-scaled intensity — until the virtual time budget is
exhausted.  Mechanism-agnostic: any :class:`~repro.execution.Executor`
slots in, which is exactly the controlled comparison the paper's
evaluation needs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
from dataclasses import dataclass, field

from repro.execution.common import (
    DEFAULT_EXEC_INSTRUCTION_LIMIT,
    ExecResult,
    Executor,
)
from repro.fuzzing.checkpoint import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.fuzzing.corpus import Corpus, QueueEntry, input_hash
from repro.fuzzing.coverage import VirginMap, coverage_signature
from repro.fuzzing.i2s import I2SStage, StageStats
from repro.fuzzing.mutators import HavocMutator, deterministic_mutations
from repro.fuzzing.triage import CrashTriage
from repro.telemetry import CampaignReporter, TelemetryConfig, build_telemetry


@dataclass
class CampaignConfig:
    """Tunables for one fuzzing run."""

    budget_ns: int = 200_000_000          # virtual time budget
    seed: int = 0                         # RNG seed (per-trial variation)
    # Shard identity when this campaign is one worker of a parallel
    # run (repro.parallel); 0 for a standalone campaign and for the
    # main instance, AFL++'s -M/-S convention.
    shard_id: int = 0
    # AFL++ skips the deterministic stage by default (its -D flag turns
    # it back on); we match that default.
    enable_deterministic: bool = False
    det_stage_cap: int = 512              # cap det stage execs per entry
    # AFL++ trims queue entries before fuzzing them: remove chunks while
    # the coverage signature stays identical.
    enable_trim: bool = True
    trim_exec_cap: int = 48               # cap trim execs per entry
    havoc_base_energy: int = 48
    max_input_size: int = 1024
    timeline_samples: int = 64            # coverage/exec timeline resolution
    # Per-test-case instruction budget (hang watchdog), applied to the
    # executor at campaign start — AFL's -t, in instructions.
    exec_instruction_limit: int = DEFAULT_EXEC_INSTRUCTION_LIMIT
    # Crash-safe checkpointing: when a path is set, campaign state is
    # atomically persisted every checkpoint_interval_ns of virtual time
    # and Campaign.resume(path, executor) continues bit-identically.
    checkpoint_path: str | None = None
    checkpoint_interval_ns: int = 50_000_000
    # Checkpoint generations kept on disk (path, path.1, ...): loading
    # falls back to an older generation when the newest fails its CRC.
    checkpoint_keep: int = 2
    # Abandon the loop once the clock passes this instant (test hook
    # modelling a fuzzer-process crash mid-campaign); None = run to the
    # budget deadline.
    halt_at_ns: int | None = None
    # Observability; the default is the shared null stack (zero events,
    # zero files, no measurable overhead).
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    # Content-addressed corpus persistence: a live
    # :class:`repro.store.CorpusStore` (duck-typed ``put(data, owner)``)
    # into which every queue entry's payload is stored under
    # ``corpus_owner``, deduplicating identical inputs across
    # campaigns, shards, and tenants and letting the parallel sync
    # protocol exchange digests instead of payloads.  Process-local:
    # the store handle is never pickled into checkpoints (resume
    # re-registers the corpus with whatever store the new process
    # configures).  ``corpus_owner`` defaults to
    # ``campaign-s<seed>-w<shard_id>``.
    corpus_store: object | None = None
    corpus_owner: str | None = None
    # Input-to-state (cmplog/RedQueen-style) stage.  Off by default:
    # with i2s_enabled=False no observer is attached, the VM compare
    # dispatch stays on the uninstrumented path, and the mutation RNG
    # stream is byte-identical to pre-I2S campaigns.
    i2s_enabled: bool = False
    # Colorization executions per queue entry (0 disables colorization;
    # located offsets then go unconfirmed, trading precision for execs).
    i2s_colorize_budget: int = 16
    # Total executions the I2S stage may spend on one queue entry
    # (probe + colorize + replacement candidates).
    i2s_entry_exec_cap: int = 128
    # Offsets tried per (operand encoding) match in the input.
    i2s_max_offsets_per_pair: int = 4
    # Auto-dictionary capacity and per-token length cap; tokens come
    # from observed compare constants and static IR mining.
    i2s_dict_tokens: int = 256
    i2s_dict_token_max_len: int = 32
    # Mine icmp/switch/memcmp-family constants from the target IR into
    # the dictionary at campaign start (needs an executor exposing its
    # module, e.g. ClosureX).
    i2s_static_dictionary: bool = True
    # Stage self-throttling: after the I2S stage has spent this many
    # execs, skip it for entries while its finds-per-virtual-ns falls
    # below ratio x the havoc stage's rate.  Re-evaluated every entry,
    # so a stage that starts paying again un-throttles.
    i2s_throttle_min_execs: int = 256
    i2s_throttle_ratio: float = 0.1


@dataclass
class TimelinePoint:
    """One sampled (virtual time, execs, coverage, crashes) tuple."""

    ns: int
    execs: int
    edges: int
    unique_crashes: int


@dataclass
class CampaignResult:
    """Everything a finished campaign knows."""

    mechanism: str
    execs: int = 0
    budget_ns: int = 0
    elapsed_ns: int = 0
    corpus_size: int = 0
    edges_found: int = 0
    unique_crashes: int = 0
    total_crashes: int = 0
    unique_hangs: int = 0
    total_hangs: int = 0
    recoveries: int = 0
    quarantined_inputs: int = 0
    timeline: list[TimelinePoint] = field(default_factory=list)
    crash_reports: list = field(default_factory=list)
    hang_reports: list = field(default_factory=list)
    # Per-mutation-stage efficacy accounts (stage name -> StageStats).
    stage_stats: dict = field(default_factory=dict)

    @property
    def execs_per_second(self) -> float:
        return self.execs / (self.elapsed_ns / 1e9) if self.elapsed_ns else 0.0

    def extrapolate_execs(self, horizon_ns: int) -> float:
        """Scale observed throughput to a longer horizon (e.g. 24 h),
        for reporting in the paper's 'test cases in 24 hours' units."""
        if self.elapsed_ns == 0:
            return 0.0
        return self.execs * horizon_ns / self.elapsed_ns


class Campaign:
    """One coverage-guided fuzzing run against one executor."""

    def __init__(self, executor: Executor, seeds: list[bytes],
                 config: CampaignConfig | None = None):
        self.executor = executor
        self.seeds = [bytes(s) for s in seeds] or [b"\x00"]
        self.config = config if config is not None else CampaignConfig()
        self.rng = random.Random(self.config.seed)
        self.corpus = Corpus()
        self.virgin = VirginMap()
        self.triage = CrashTriage()
        # Per-stage efficacy accounting; the I2S throttle reads these.
        self.stage_stats: dict[str, StageStats] = {
            name: StageStats() for name in ("trim", "det", "i2s", "havoc")
        }
        self._i2s: I2SStage | None = None
        dictionary = None
        if self.config.i2s_enabled:
            self._i2s = I2SStage(self.config)
            dictionary = self._i2s.dictionary
            executor.attach_cmp_observer(self._i2s.observer)
        self.havoc = HavocMutator(self.rng, self.config.max_input_size,
                                  dictionary=dictionary)
        self.execs = 0
        self.current_entry_id = 0
        self.run_start_ns = 0
        self._timeline: list[TimelinePoint] = []
        self._next_sample_ns = 0
        self._sample_every = max(1, self.config.budget_ns // self.config.timeline_samples)
        self._resume_state: dict | None = None
        self._next_checkpoint_ns: int | None = None
        self._deadline_ns = self.config.budget_ns
        self._halted = False
        self.corpus_store = self.config.corpus_store
        self.corpus_owner = self.config.corpus_owner or (
            f"campaign-s{self.config.seed}-w{self.config.shard_id}"
        )
        executor.exec_instruction_limit = self.config.exec_instruction_limit
        # Telemetry: the null stack unless the config opts in, in which
        # case the executor (and through it the kernel) share our tracer.
        self.telemetry = build_telemetry(self.config.telemetry, executor.clock)
        if self.telemetry.enabled:
            executor.attach_telemetry(self.telemetry)
        self.reporter: CampaignReporter | None = None

    # ------------------------------------------------------------------

    @property
    def clock(self):
        return self.executor.clock

    def run(self) -> CampaignResult:
        """Boot, fuzz to the budget deadline, tear down, report.

        The three phases are also available separately — :meth:`start`,
        :meth:`step_until`, :meth:`finish_run` — which is how a parallel
        worker interleaves fuzzing with sync barriers; ``run()`` is the
        single-shard composition of the three.
        """
        self.start()
        self.step_until(self._deadline_ns)
        return self.finish_run()

    def start(self) -> None:
        """Phase 1: boot the executor and seed (or resume) the queue."""
        resumed = self._resume_state is not None
        start_ns = (
            self._resume_state["start_ns"] if resumed else self.clock.now_ns
        )
        self.run_start_ns = start_ns
        self._deadline_ns = start_ns + self.config.budget_ns
        self._halted = False
        self._sample_every = max(
            1, self.config.budget_ns // self.config.timeline_samples
        )
        if self.telemetry.enabled:
            self.reporter = CampaignReporter(
                self,
                out_dir=self.config.telemetry.report_dir,
                interval_ns=self.config.telemetry.report_interval_ns,
            )
        tracer = self.telemetry.tracer
        with tracer.span("campaign.boot", mechanism=self.executor.mechanism):
            self.executor.boot()
        if resumed:
            self._apply_resume_state()
            if self.reporter is not None:
                self.reporter.start_ns = start_ns
        else:
            self._next_sample_ns = start_ns
            with tracer.span("stage.seed", seeds=len(self.seeds)):
                self._seed_queue()
        if (self._i2s is not None
                and self.config.i2s_static_dictionary
                and not self._i2s.static_mined):
            module = self._target_module()
            if module is not None:
                mined = self._i2s.mine_static(module)
                if self.telemetry.enabled:
                    self.telemetry.metrics.counter(
                        "fuzz.i2s.static_tokens"
                    ).inc(mined)
        if self.config.checkpoint_path is not None:
            self._next_checkpoint_ns = (
                self.clock.now_ns + self.config.checkpoint_interval_ns
            )
            if not resumed:
                # Baseline checkpoint right after seeding, so a death
                # inside the first queue cycle (checkpoints land only on
                # cycle boundaries, which can be virtual ms apart) still
                # leaves something to resume from.
                self.checkpoint()

    def step_until(self, pause_ns: int) -> None:
        """Phase 2: run queue cycles until the clock passes *pause_ns*
        (a sync barrier) or the budget deadline, whichever is earlier.

        The mutation stages themselves always run against the true
        budget deadline — a barrier only decides where between cycles
        the loop pauses — so a sharded run passes through exactly the
        states of an unsharded one.
        """
        deadline_ns = self._deadline_ns
        # halt_at_ns models the fuzzer process dying mid-campaign.  The
        # kill lands between stages — crucially *before* the periodic
        # checkpoint that stage boundary would have written, so resume
        # always replays from an earlier on-trajectory checkpoint.  The
        # stages themselves always run against the true budget deadline;
        # a halted run must not "gracefully wind down" into a state the
        # uninterrupted run never passes through.
        halt_ns = self.config.halt_at_ns
        tracer = self.telemetry.tracer
        while (not self._halted
               and self.clock.now_ns < deadline_ns
               and self.clock.now_ns < pause_ns
               and len(self.corpus)):
            entry = self.corpus.select_next(self.rng)
            self.current_entry_id = entry.entry_id
            if tracer.enabled:
                tracer.event(
                    "queue.select", entry=entry.entry_id,
                    favored=entry.favored, depth=entry.depth,
                    times_selected=entry.times_selected,
                )
            if self.config.enable_trim and not entry.trim_done:
                marker = self._stage_marker()
                with tracer.span("stage.trim", entry=entry.entry_id):
                    self._trim_entry(entry, deadline_ns)
                self._stage_record("trim", marker)
                entry.trim_done = True
            if self.config.enable_deterministic and not entry.det_done:
                marker = self._stage_marker()
                with tracer.span("stage.det", entry=entry.entry_id):
                    self._deterministic_stage(entry, deadline_ns)
                self._stage_record("det", marker)
                entry.det_done = True
            if (self._i2s is not None
                    and not getattr(entry, "i2s_done", False)
                    and self.clock.now_ns < deadline_ns):
                if self._i2s_throttled():
                    if self.telemetry.enabled:
                        self.telemetry.metrics.counter(
                            "fuzz.i2s.throttle_skips"
                        ).inc()
                else:
                    marker = self._stage_marker()
                    with tracer.span("stage.i2s", entry=entry.entry_id):
                        self._i2s.run_entry(self, entry, deadline_ns)
                    self._stage_record("i2s", marker)
                entry.i2s_done = True
            if self.clock.now_ns < deadline_ns:
                marker = self._stage_marker()
                with tracer.span("stage.havoc", entry=entry.entry_id):
                    self._havoc_stage(entry, deadline_ns)
                self._stage_record("havoc", marker)
            if halt_ns is not None and self.clock.now_ns >= halt_ns:
                self._halted = True
                break
            self._maybe_checkpoint()

    def finish_run(self) -> CampaignResult:
        """Phase 3: tear down the executor and build the result."""
        self.executor.shutdown()
        return self._finish(self.run_start_ns)

    def state_digest(self) -> str:
        """Stable fingerprint of everything 'bit-identical' means for a
        single campaign: merged coverage, corpus contents, crash set,
        exec count, and the virtual instant — the single-shard analogue
        of :meth:`~repro.parallel.ParallelResult.digest`.  A resumed
        campaign that replays correctly produces the same digest as the
        uninterrupted run; the fuzzing service uses this as each job's
        correctness receipt."""
        h = hashlib.sha256()
        h.update(self.virgin.to_bytes())
        for key in sorted(input_hash(e.data) for e in self.corpus.entries):
            h.update(key.encode())
        for identity in sorted(
            (r.kind.value, r.function, r.identity[2])
            for r in self.triage.reports()
        ):
            h.update(repr(identity).encode())
        h.update(str(self.execs).encode())
        h.update(str(self.clock.now_ns).encode())
        return h.hexdigest()

    # ------------------------------------------------------------------
    # checkpoint / resume
    # ------------------------------------------------------------------

    def checkpoint(self, path: str | None = None) -> str:
        """Atomically persist the campaign's full state; returns the path."""
        path = path if path is not None else self.config.checkpoint_path
        if path is None:
            raise ValueError("no checkpoint path configured")
        save_checkpoint(self, path, keep=self.config.checkpoint_keep)
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("campaign.checkpoints").inc()
            if self.telemetry.tracer.enabled:
                self.telemetry.tracer.event(
                    "campaign.checkpoint", execs=self.execs,
                )
        return path

    def _maybe_checkpoint(self) -> None:
        if (self._next_checkpoint_ns is None
                or self.clock.now_ns < self._next_checkpoint_ns):
            return
        self.checkpoint()
        self._next_checkpoint_ns = (
            self.clock.now_ns + self.config.checkpoint_interval_ns
        )

    @classmethod
    def resume(cls, path: str, executor: Executor,
               config: CampaignConfig | None = None) -> "Campaign":
        """Rebuild a campaign from a checkpoint; ``run()`` then continues
        bit-identically to the uninterrupted run under the same seed.

        *executor* must be a freshly built executor of the same
        mechanism — its process state is re-booted, then the virtual
        clock is pinned back to the checkpointed instant.
        """
        return cls.from_state(load_checkpoint(path), executor, config)

    @classmethod
    def from_state(cls, state: dict, executor: Executor,
                   config: CampaignConfig | None = None) -> "Campaign":
        """Rebuild a campaign from an in-memory state dict (the
        :func:`~repro.fuzzing.checkpoint.capture_state` shape).  This is
        the resume primitive: :meth:`resume` loads the dict from disk,
        the parallel orchestrator hands over the dict it captured at the
        last sync barrier when replacing a dead worker."""
        if state.get("kind", "campaign") != "campaign":
            raise CheckpointError(
                f"state is a {state.get('kind')!r} checkpoint, "
                "not a single campaign"
            )
        if executor.mechanism != state["mechanism"]:
            raise CheckpointError(
                f"checkpoint is for mechanism {state['mechanism']!r}, "
                f"got {executor.mechanism!r}"
            )
        if config is None:
            # A non-None "i2s" snapshot means the interrupted campaign
            # ran with the stage enabled; the continuation must too, or
            # its mutation stream diverges from the uninterrupted run.
            config = CampaignConfig(
                budget_ns=state["budget_ns"], seed=state["seed"],
                i2s_enabled=state.get("i2s") is not None,
            )
        campaign = cls(executor, seeds=[], config=config)
        campaign._resume_state = state
        return campaign

    def _apply_resume_state(self) -> None:
        """Install checkpointed state after the executor has re-booted."""
        state = self._resume_state
        assert state is not None
        self.corpus = state["corpus"]
        self.virgin = state["virgin"]
        self.triage = state["triage"]
        self.execs = state["execs"]
        self.current_entry_id = state["current_entry_id"]
        self.rng.setstate(state["rng_state"])
        self._timeline = list(state["timeline"])
        self._next_sample_ns = state["next_sample_ns"]
        self.executor.restore_state(state["executor_state"])
        # I2S stage state and per-stage accounts ride along in newer
        # checkpoints; .get() keeps pre-I2S checkpoints loadable.
        for name, stats in (state.get("stage_stats") or {}).items():
            if name in self.stage_stats:
                self.stage_stats[name] = dataclasses.replace(stats)
        i2s_state = state.get("i2s")
        if self._i2s is not None and i2s_state is not None:
            self._i2s.restore(i2s_state)
        # Re-register the resumed corpus with the store: the payloads
        # are usually already objects on disk (puts are idempotent), but
        # a resume under a fresh store root — or one whose objects were
        # quarantined — must leave the store able to resolve every
        # digest the sync protocol may announce.
        if self.corpus_store is not None:
            for entry in self.corpus.entries:
                self._store_input(entry.data)
        # Pin the clock back to the checkpointed instant so the re-boot
        # we just paid does not shift the continuation off the original
        # timeline — this is what makes resume bit-identical.
        self.clock.now_ns = state["clock_ns"]

    # ------------------------------------------------------------------

    def _store_input(self, data: bytes) -> None:
        """Persist one queue payload into the shared corpus store.

        Off the virtual timeline by construction — the store touches
        neither the clock nor the mutation RNG — so campaigns with and
        without a store are bit-identical.
        """
        if self.corpus_store is not None:
            self.corpus_store.put(data, owner=self.corpus_owner)

    def _seed_queue(self) -> None:
        for seed in self.seeds:
            result = self._execute(seed)
            if result is None:
                continue
            self.virgin.observe(result.coverage)
            self.corpus.add(
                seed, coverage_signature(result.coverage),
                result.ns, self.clock.now_ns,
            )
            self._store_input(seed)

    def _trim_entry(self, entry: QueueEntry, deadline_ns: int) -> None:
        """AFL-style trimming: delete chunks as long as the coverage
        signature is unchanged.  Smaller entries mutate better and
        execute faster."""
        budget = self.config.trim_exec_cap
        data = entry.data
        if len(data) < 8:
            return
        chunk = max(4, len(data) // 8)
        while chunk >= 4 and budget > 0:
            offset = 0
            while offset < len(data) and budget > 0:
                if self.clock.now_ns >= deadline_ns:
                    return
                candidate = data[:offset] + data[offset + chunk:]
                if not candidate:
                    break
                result = self._execute(candidate)
                budget -= 1
                if (
                    result is not None
                    and not result.is_crash
                    and coverage_signature(result.coverage) == entry.coverage_signature
                ):
                    data = candidate          # chunk was irrelevant
                else:
                    offset += chunk
            chunk //= 2
        if len(data) < len(entry.data):
            if self.telemetry.enabled:
                self.telemetry.metrics.counter("trim.bytes_removed").inc(
                    len(entry.data) - len(data)
                )
            entry.data = data
            self._store_input(data)

    def _deterministic_stage(self, entry: QueueEntry, deadline_ns: int) -> None:
        budget = self.config.det_stage_cap
        for mutated in deterministic_mutations(entry.data):
            if budget <= 0 or self.clock.now_ns >= deadline_ns:
                return
            budget -= 1
            self._fuzz_one(mutated, entry)

    def _havoc_stage(self, entry: QueueEntry, deadline_ns: int) -> None:
        energy = self.corpus.energy(entry, self.config.havoc_base_energy)
        for _ in range(energy):
            if self.clock.now_ns >= deadline_ns:
                return
            if len(self.corpus) > 1 and self.rng.random() < 0.15:
                other = self.rng.choice(self.corpus.entries)
                mutated = self.havoc.splice(entry.data, other.data)
            else:
                mutated = self.havoc.mutate(entry.data)
            self._fuzz_one(mutated, entry)

    def _fuzz_one(self, data: bytes, parent: QueueEntry) -> bool:
        """Execute one mutated candidate; returns whether it joined the
        queue (the per-stage 'finds' currency)."""
        result = self._execute(data)
        if result is None:
            return False
        novelty = self.virgin.observe(result.coverage)
        if novelty == VirginMap.NEW_EDGES or (
            novelty == VirginMap.NEW_COUNTS and self.rng.random() < 0.5
        ):
            added = self.corpus.add(
                data, coverage_signature(result.coverage),
                result.ns, self.clock.now_ns, parent,
            )
            self._store_input(data)
            if self.telemetry.enabled:
                self.telemetry.metrics.counter("corpus.adds").inc()
                if self.telemetry.tracer.enabled:
                    self.telemetry.tracer.event(
                        "corpus.add", entry=added.entry_id,
                        parent=parent.entry_id, depth=added.depth,
                        size=len(data),
                    )
            return True
        return False

    # -- per-stage efficacy accounting ----------------------------------

    def _stage_marker(self) -> tuple[int, int, int]:
        """Snapshot (execs, finds, clock) before a stage runs."""
        finds = len(self.corpus.entries) + self.triage.unique_count
        return (self.execs, finds, self.clock.now_ns)

    def _stage_record(self, stage: str, marker: tuple[int, int, int]) -> None:
        """Charge a finished stage with everything since its marker."""
        execs0, finds0, ns0 = marker
        stats = self.stage_stats[stage]
        delta_execs = self.execs - execs0
        delta_finds = (
            len(self.corpus.entries) + self.triage.unique_count - finds0
        )
        stats.execs += delta_execs
        stats.finds += delta_finds
        stats.ns += self.clock.now_ns - ns0
        if self.telemetry.enabled and stage == "i2s":
            metrics = self.telemetry.metrics
            metrics.counter("fuzz.i2s.execs").inc(delta_execs)
            metrics.counter("fuzz.i2s.finds").inc(delta_finds)
            if self._i2s is not None:
                metrics.gauge("fuzz.i2s.dict_tokens").set(
                    len(self._i2s.dictionary)
                )
                metrics.gauge("fuzz.i2s.sites").set(
                    len(self._i2s.site_pairs)
                )

    def _i2s_throttled(self) -> bool:
        """Whether the I2S stage should be skipped for this entry: it
        has had a fair trial (min execs) and its finds-per-virtual-ns
        sits below the configured fraction of havoc's."""
        stats = self.stage_stats["i2s"]
        if stats.execs < self.config.i2s_throttle_min_execs:
            return False
        havoc = self.stage_stats["havoc"]
        if havoc.ns == 0:
            return False
        return stats.find_rate() < (
            self.config.i2s_throttle_ratio * havoc.find_rate()
        )

    def _target_module(self):
        """The target's MiniIR module, if the executor exposes one
        (ClosureX does; supervised executors forward via ``inner``)."""
        executor = self.executor
        while executor is not None:
            module = getattr(executor, "module", None)
            if module is not None:
                return module
            executor = getattr(executor, "inner", None)
        return None

    def import_input(self, data: bytes) -> bool:
        """Adopt an input discovered by another shard (sync import).

        The input is executed here — charging this worker's virtual
        clock, exactly like AFL++'s ``sync_fuzzers`` re-runs imported
        queue files — and joins the queue only if it exhibits behaviour
        this worker has not seen.  Unlike :meth:`_fuzz_one` the
        NEW_COUNTS acceptance is unconditional (no RNG draw), so
        imports never perturb the mutation RNG stream.  Returns whether
        the input was adopted.
        """
        result = self._execute(data)
        if result is None:
            return False
        novelty = self.virgin.observe(result.coverage)
        if novelty == VirginMap.NO_NEW:
            return False
        added = self.corpus.add(
            data, coverage_signature(result.coverage),
            result.ns, self.clock.now_ns,
        )
        self._store_input(data)
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("corpus.imports").inc()
            if self.telemetry.tracer.enabled:
                self.telemetry.tracer.event(
                    "corpus.import", entry=added.entry_id, size=len(data),
                )
        return True

    def _execute(self, data: bytes) -> ExecResult | None:
        result = self.executor.run(data)
        self.execs += 1
        if result.is_crash and result.trap is not None:
            self.triage.record(result.trap, data, self.clock.now_ns)
        elif result.is_hang:
            self.triage.record_hang(
                coverage_signature(result.coverage), data, self.clock.now_ns
            )
        self._maybe_sample(self._sample_every)
        if self.reporter is not None:
            self.reporter.maybe_update()
        return result

    def _maybe_sample(self, sample_every: int) -> None:
        if self.clock.now_ns >= self._next_sample_ns:
            self._timeline.append(
                TimelinePoint(
                    ns=self.clock.now_ns,
                    execs=self.execs,
                    edges=self.virgin.edges_found(),
                    unique_crashes=self.triage.unique_count,
                )
            )
            self._next_sample_ns = self.clock.now_ns + sample_every

    def _finish(self, start_ns: int) -> CampaignResult:
        if self.reporter is not None:
            self.reporter.finalize()
        self.telemetry.flush()
        supervision = getattr(self.executor, "supervision", None)
        return CampaignResult(
            mechanism=self.executor.mechanism,
            execs=self.execs,
            budget_ns=self.config.budget_ns,
            elapsed_ns=self.clock.now_ns - start_ns,
            corpus_size=len(self.corpus),
            edges_found=self.virgin.edges_found(),
            unique_crashes=self.triage.unique_count,
            total_crashes=self.triage.total_crashes,
            unique_hangs=self.triage.unique_hang_count,
            total_hangs=self.triage.total_hangs,
            recoveries=supervision.recoveries if supervision else 0,
            quarantined_inputs=(
                supervision.quarantined_inputs if supervision else 0
            ),
            timeline=self._timeline,
            crash_reports=self.triage.reports(),
            hang_reports=self.triage.hang_reports(),
            stage_stats={
                name: dataclasses.replace(stats)
                for name, stats in self.stage_stats.items()
            },
        )
