"""Crash-safe campaign checkpoint/resume.

A long campaign must survive the death of the *fuzzer* process, not
just the target's.  The checkpoint captures everything the campaign
loop's future depends on — corpus entries with their scheduling
metadata, the virgin coverage map, the triage dedup tables, the
mutator RNG state, the virtual clock, and the executor's cumulative
stats — so ``Campaign.resume(path, executor)`` continues **bit-
identically** to a run that was never interrupted: the RNG replays the
same mutation stream, the clock re-enters at the same virtual
nanosecond, and the corpus scheduler picks the same entries.

Durability: the file is written with the classic tmp + fsync +
``os.replace`` dance, so a crash mid-checkpoint leaves the previous
checkpoint intact — there is never a moment with no valid checkpoint
on disk.

Executor process state (booted VMs, harness snapshots) is *not*
serialised: on resume the executor re-boots and the clock is then
pinned back to the checkpointed instant.  For every correct mechanism
this is exact — each test case starts from fresh-process state by
construction — and it keeps checkpoints small and mechanism-agnostic.
(The naive persistent executor's cross-input pollution is the one
thing resume cannot reconstruct; that mechanism is broken by design.)
"""

from __future__ import annotations

import os
import pickle

CHECKPOINT_VERSION = 1
CHECKPOINT_MAGIC = b"RPRCKPT1"


class CheckpointError(RuntimeError):
    """Unreadable, truncated, or incompatible checkpoint file."""


def capture_state(campaign) -> dict:
    """One consistent snapshot of everything resume needs."""
    executor = campaign.executor
    return {
        "version": CHECKPOINT_VERSION,
        "mechanism": executor.mechanism,
        "seed": campaign.config.seed,
        "budget_ns": campaign.config.budget_ns,
        "start_ns": campaign.run_start_ns,
        "clock_ns": campaign.clock.now_ns,
        "execs": campaign.execs,
        "current_entry_id": campaign.current_entry_id,
        "rng_state": campaign.rng.getstate(),
        "corpus": campaign.corpus,
        "virgin": campaign.virgin,
        "triage": campaign.triage,
        "timeline": list(campaign._timeline),
        "next_sample_ns": campaign._next_sample_ns,
        "executor_state": executor.snapshot_state(),
    }


def save_checkpoint(campaign, path: str) -> None:
    """Atomically persist *campaign*'s state to *path*."""
    payload = CHECKPOINT_MAGIC + pickle.dumps(
        capture_state(campaign), protocol=pickle.HIGHEST_PROTOCOL
    )
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


def load_checkpoint(path: str) -> dict:
    """Read and validate a checkpoint written by :func:`save_checkpoint`."""
    try:
        with open(path, "rb") as handle:
            payload = handle.read()
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {error}")
    if not payload.startswith(CHECKPOINT_MAGIC):
        raise CheckpointError(f"{path!r} is not a campaign checkpoint")
    try:
        state = pickle.loads(payload[len(CHECKPOINT_MAGIC):])
    except Exception as error:  # truncated/corrupt pickle stream
        raise CheckpointError(f"corrupt checkpoint {path!r}: {error}")
    if state.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {state.get('version')} != {CHECKPOINT_VERSION}"
        )
    return state
